/**
 * @file
 * Table V reproduction: SARA vs. the vanilla Plasticine compiler (PC)
 * on the PC-era benchmark set, same chip configuration, DDR3 DRAM.
 *
 * PC limitations modeled (paper §IV-C): hierarchical-FSM handshakes
 * routed through per-loop controller hubs (token latency doubled +
 * hub delay), full program-order serialization of accessors (no CMMC
 * peer-to-peer tokens, no control-reduction), a single write and read
 * accessor per VMU, and no memory partitioner — which caps the par
 * factor (unrolling would multiply accessors). SARA compiles the very
 * same programs with CMMC and all optimizations at a 4-8x larger par
 * factor.
 */

#include "baseline/pc_workloads.h"
#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

int
main()
{
    banner("Table V: SARA vs vanilla Plasticine compiler (DDR3)");

    Table t({"app", "PC cycles", "SARA cycles", "speedup", "PC par",
             "SARA par"});
    std::vector<double> speedups;
    for (const std::string name : {"kmeans", "gda", "logreg", "sgd"}) {
        bool heavy = name == "kmeans" || name == "gda";
        // --- Vanilla PC: par limited to vectorization. ---
        workloads::WorkloadConfig pcCfg;
        pcCfg.par = 16;
        pcCfg.scale = heavy ? 4 : 2;
        auto pcW = baseline::buildPcByName(name, pcCfg);
        runtime::RunConfig pcRc;
        pcRc.compiler.spec = arch::PlasticineSpec::vanilla();
        pcRc.compiler.control = compiler::ControlScheme::HierarchicalFsm;
        pcRc.compiler.enableMsr = false;
        pcRc.compiler.enableRtelm = false;
        pcRc.compiler.enableControlReduction = false;
        pcRc.compiler.enableXbarElm = true; // PC also computed affine
                                            // addresses at the PMU.
        pcRc.dram = dram::DramSpec::ddr3();
        auto pc = runtime::runWorkload(pcW, pcRc);

        // --- SARA on the same program, larger par. ---
        workloads::WorkloadConfig saraCfg;
        saraCfg.par = heavy ? 256 : 64;
        saraCfg.scale = pcCfg.scale;
        auto saraW = baseline::buildPcByName(name, saraCfg);
        runtime::RunConfig saraRc;
        saraRc.compiler.spec = arch::PlasticineSpec::vanilla();
        saraRc.dram = dram::DramSpec::ddr3();
        auto sara = runtime::runWorkload(saraW, saraRc);

        double speedup = static_cast<double>(pc.sim.cycles) /
                         static_cast<double>(sara.sim.cycles);
        speedups.push_back(speedup);
        t.addRow({name, std::to_string(pc.sim.cycles),
                  std::to_string(sara.sim.cycles), Table::fmtX(speedup),
                  std::to_string(pcCfg.par),
                  std::to_string(saraCfg.par)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("geo-mean speedup: %.2fx (paper: 4.9x geo-mean; "
                "kmeans/gda ~14x, logreg/sgd lower)\n",
                geomean(speedups));
    return 0;
}
