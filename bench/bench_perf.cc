/**
 * @file
 * Host-throughput microbenchmark for the simulator event core. Unlike
 * the figure binaries (which reproduce *simulated* results), this one
 * measures how fast the simulator itself runs: wall-clock Mcycles/s
 * and events/s per workload, the spurious-wakeup ratio under the
 * targeted notifyOne policy vs the broadcast notifyAll baseline, a
 * host sampling-profiler breakdown of where the wall time goes
 * (scheduler drain, CV waits, fire path, NoC arbitration, DRAM model),
 * and peak RSS. Each workload compiles once and re-simulates `--reps`
 * times per configuration (best-of to shed scheduler noise).
 *
 * A second sweep drives the region-parallel event core: every
 * workload re-simulates at --scale-threads (default 1,2,4,8) and the
 * resulting curves (Mcycles/s, events/s, barrier-wait ratio, region
 * and quantum counts) land in the "scaling" section of the JSON. The
 * sweep aborts if any thread count disagrees with the sequential
 * cycle count — a perf run doubles as a cycle-identity check for the
 * parallel core. Wall-clock points are honest measurements of this
 * host; on a single-core runner the parallel curves will not show
 * speedup and are still recorded as such.
 *
 * Sweep points route through the src/jobs pool: `-j N` runs them
 * concurrently (deterministic output order; results land in
 * index-addressed slots). The default is `-j 1` because co-scheduled
 * points perturb each other's wall-times; use -j > 1 when only the
 * deterministic counters matter. The host profiler attribution is
 * only collected at -j 1 for the same reason.
 *
 * Memory units: peak RSS is reported as `peak_rss_kib` in the JSON
 * (getrusage ru_maxrss, which is KiB on Linux) and as MiB (KiB/1024)
 * in the table — binary units throughout, never decimal MB.
 *
 * Simulated cycle counts must be identical across wakeup policies —
 * the benchmark aborts if they are not, so a perf run doubles as a
 * cycle-identity check. The deterministic counters (cycles, events,
 * wakeups, spurious) land in BENCH_perf.json, which CI diffs against
 * bench/golden_perf.json; wall-times are reported but never gated.
 *
 *   bench_perf [--reps N] [--workloads mlp,pr,...] [--out FILE.json]
 *              [-j N] [--scale-threads 1,2,4,8]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench/bench_common.h"
#include "support/hostprof.h"

namespace sara::bench {
namespace {

struct PerfOptions
{
    int reps = 3;
    int jobs = 1; ///< Sweep-point concurrency (wall-times prefer 1).
    std::string out = "BENCH_perf.json";
    std::vector<std::string> workloads = {"mlp", "lstm", "gda",
                                          "logreg", "ms", "pr"};
    std::vector<int> scaleThreads = {1, 2, 4, 8};
};

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        parts.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return parts;
}

PerfOptions
parseArgs(int argc, char **argv)
{
    PerfOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--reps")
            opt.reps = std::stoi(next());
        else if (arg == "-j")
            opt.jobs = std::stoi(next());
        else if (arg == "--out")
            opt.out = next();
        else if (arg == "--workloads")
            opt.workloads = splitList(next());
        else if (arg == "--scale-threads") {
            opt.scaleThreads.clear();
            for (const std::string &t : splitList(next()))
                opt.scaleThreads.push_back(std::stoi(t));
        } else
            fatal("unknown option ", arg,
                  " (supported: --reps N, --workloads a,b,c, --out F, "
                  "-j N, --scale-threads 1,2,4)");
    }
    if (opt.reps < 1)
        fatal("--reps must be >= 1");
    if (opt.jobs < 0)
        fatal("-j must be >= 0");
    if (opt.scaleThreads.empty() || opt.scaleThreads.front() != 1)
        fatal("--scale-threads must start with 1 (the sequential "
              "baseline every other point is checked against)");
    return opt;
}

/** Peak resident set, in KiB (ru_maxrss unit on Linux). This is the
 *  one place the unit is decided; everything downstream (table MiB
 *  column, `peak_rss_kib` JSON field, README) derives from it. */
uint64_t
peakRssKib()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<uint64_t>(ru.ru_maxrss);
}

/** One simulate-only measurement (compile reused via preCompiled). */
struct Measure
{
    sim::SimResult sim;
    double bestMs = 0.0;
    /** Host-profiler samples per phase (when profiled). */
    uint64_t phase[telemetry::kNumHostPhases] = {};
    uint64_t phaseTotal = 0;
};

Measure
simulate(const workloads::Workload &w, runtime::RunConfig rc,
         const runtime::RunOutcome &compiled, bool noc, bool targeted,
         int reps, int simThreads = 1, bool profile = false)
{
    rc.check = false;
    rc.cachingCompiler = nullptr;
    rc.preCompiled = &compiled.compiled;
    rc.sim.useNoc = noc;
    rc.sim.targetedWakeups = targeted;
    rc.sim.simThreads = simThreads;
    rc.sim.traceFile.clear();
    Measure m;
    auto &prof = telemetry::HostProfiler::global();
    if (profile)
        prof.clearSamples();
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        auto out = runtime::runWorkload(w, rc);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < m.bestMs)
            m.bestMs = ms;
        m.sim = std::move(out.sim);
    }
    if (profile) {
        for (int p = 0; p < telemetry::kNumHostPhases; ++p)
            m.phase[p] =
                prof.samples(static_cast<telemetry::HostPhase>(p));
        m.phaseTotal = prof.totalSamples();
    }
    return m;
}

/** Run `fn(i)` over [0, n) through the jobs pool with `threads`
 *  workers; results go into index-addressed slots so output order
 *  never depends on scheduling. */
void
sweep(size_t n, const std::string &prefix, int threads,
      const std::function<void(size_t)> &fn)
{
    jobs::BatchOptions opt;
    opt.threads = threads;
    auto report = jobs::forEachIndex(n, prefix, fn, opt);
    if (!report.allOk())
        fatal("perf sweep '", prefix, "' failed: ",
              report.firstError());
}

int
perfMain(int argc, char **argv)
{
    PerfOptions opt = parseArgs(argc, argv);
    banner("event-core host throughput (wall-clock, not simulated)");

    const size_t nw = opt.workloads.size();

    // Compile every workload once, through the jobs pool.
    std::vector<workloads::Workload> ws(nw);
    std::vector<runtime::RunOutcome> compiled(nw);
    runtime::RunConfig rc;
    rc.check = false;
    sweep(nw, "perf-compile", opt.jobs, [&](size_t i) {
        workloads::WorkloadConfig cfg;
        cfg.par = 8;
        ws[i] = workloads::buildByName(opt.workloads[i], cfg);
        compiled[i] = runtime::runWorkload(ws[i], rc);
    });

    Table table({"app", "mode", "cycles", "ms", "Mcyc/s", "Mev/s",
                 "wakeups", "spurious%", "bcast spur%", "rss MiB"});
    BenchJson out("perf");

    // Sampling profiler: attributes the targeted runs' wall time to
    // event-core phases (~200us per sample). Only meaningful when
    // sweep points run one at a time.
    const bool profile = opt.jobs == 1;
    auto &prof = telemetry::HostProfiler::global();
    prof.start();

    // Wakeup-policy comparison: one point per (workload, mode).
    struct PolicyPoint
    {
        Measure tgt, bcast;
        uint64_t rss = 0;
    };
    std::vector<PolicyPoint> pts(nw * 2);
    sweep(pts.size(), "perf-policy", opt.jobs, [&](size_t p) {
        size_t i = p / 2;
        bool noc = (p % 2) == 1;
        PolicyPoint &pt = pts[p];
        pt.tgt = simulate(ws[i], rc, compiled[i], noc, true, opt.reps,
                          1, profile);
        pt.bcast =
            simulate(ws[i], rc, compiled[i], noc, false, opt.reps);
        if (pt.tgt.sim.cycles != pt.bcast.sim.cycles)
            fatal(opt.workloads[i],
                  ": wakeup policies disagree on cycles (",
                  pt.tgt.sim.cycles, " targeted vs ",
                  pt.bcast.sim.cycles, " broadcast)");
        pt.rss = peakRssKib();
    });

    uint64_t totalWake[2] = {0, 0}, totalSpur[2] = {0, 0};
    uint64_t phaseAgg[telemetry::kNumHostPhases] = {};
    auto ratio = [](const sim::SimResult &s) {
        return s.wakeups ? static_cast<double>(s.spuriousWakeups) /
                               static_cast<double>(s.wakeups)
                         : 0.0;
    };
    for (size_t p = 0; p < pts.size(); ++p) {
        const std::string &name = opt.workloads[p / 2];
        const char *mode = (p % 2) ? "noc" : "fixed";
        const PolicyPoint &pt = pts[p];
        double sec = pt.tgt.bestMs / 1e3;
        double mcycS = sec > 0 ? pt.tgt.sim.cycles / sec / 1e6 : 0.0;
        double mevS =
            sec > 0 ? pt.tgt.sim.hostEvents / sec / 1e6 : 0.0;
        for (int ph = 0; ph < telemetry::kNumHostPhases; ++ph)
            phaseAgg[ph] += pt.tgt.phase[ph];
        totalWake[0] += pt.tgt.sim.wakeups;
        totalSpur[0] += pt.tgt.sim.spuriousWakeups;
        totalWake[1] += pt.bcast.sim.wakeups;
        totalSpur[1] += pt.bcast.sim.spuriousWakeups;

        table.addRow({name, mode, std::to_string(pt.tgt.sim.cycles),
                      Table::fmt(pt.tgt.bestMs, 2),
                      Table::fmt(mcycS, 2), Table::fmt(mevS, 2),
                      std::to_string(pt.tgt.sim.wakeups),
                      Table::fmt(100.0 * ratio(pt.tgt.sim), 1),
                      Table::fmt(100.0 * ratio(pt.bcast.sim), 1),
                      Table::fmt(pt.rss / 1024.0, 0)});

        out.beginRow()
            .kv("workload", name)
            .kv("mode", mode)
            .kv("cycles", pt.tgt.sim.cycles)
            .kv("events", pt.tgt.sim.hostEvents)
            .kv("wakeups", pt.tgt.sim.wakeups)
            .kv("spurious", pt.tgt.sim.spuriousWakeups)
            .kv("bcast_wakeups", pt.bcast.sim.wakeups)
            .kv("bcast_spurious", pt.bcast.sim.spuriousWakeups)
            .kv("host_ms", pt.tgt.bestMs)
            .kv("bcast_host_ms", pt.bcast.bestMs)
            .kv("mcycles_per_s", mcycS)
            .kv("events_per_s", mevS * 1e6)
            .kv("spurious_ratio", ratio(pt.tgt.sim))
            .kv("bcast_spurious_ratio", ratio(pt.bcast.sim))
            .kv("peak_rss_kib", pt.rss);
        // Wall-time attribution for the targeted runs of this row.
        out.writer().key("host_profile").beginObject();
        out.writer().kv("samples", pt.tgt.phaseTotal);
        for (int ph = 0; ph < telemetry::kNumHostPhases; ++ph)
            out.writer().kv(telemetry::hostPhaseName(
                                static_cast<telemetry::HostPhase>(ph)),
                            pt.tgt.phase[ph]);
        out.writer().endObject();
        out.endRow();
    }
    std::printf("%s", table.str().c_str());

    auto pct = [](uint64_t spur, uint64_t wake) {
        return wake ? 100.0 * static_cast<double>(spur) /
                          static_cast<double>(wake)
                    : 0.0;
    };
    std::printf("\nspurious wakeups: targeted %.1f%% (%llu/%llu) vs "
                "broadcast %.1f%% (%llu/%llu)\n",
                pct(totalSpur[0], totalWake[0]),
                static_cast<unsigned long long>(totalSpur[0]),
                static_cast<unsigned long long>(totalWake[0]),
                pct(totalSpur[1], totalWake[1]),
                static_cast<unsigned long long>(totalSpur[1]),
                static_cast<unsigned long long>(totalWake[1]));

    prof.stop();
    uint64_t phaseSum = 0;
    for (int p = 0; p < telemetry::kNumHostPhases; ++p)
        phaseSum += phaseAgg[p];
    if (phaseSum > 0) {
        std::printf("host profile (%llu samples):",
                    static_cast<unsigned long long>(phaseSum));
        for (int p = 0; p < telemetry::kNumHostPhases; ++p)
            std::printf(" %s %.1f%%",
                        telemetry::hostPhaseName(
                            static_cast<telemetry::HostPhase>(p)),
                        100.0 * static_cast<double>(phaseAgg[p]) /
                            static_cast<double>(phaseSum));
        std::printf("\n");
    }

    // Region-parallel scaling curves (fixed-latency mode, targeted
    // wakeups): one point per (workload, sim-threads). Every point
    // must reproduce the sequential cycle count bit-exactly.
    banner("region-parallel event core scaling");
    const size_t nt = opt.scaleThreads.size();
    std::vector<Measure> scale(nw * nt);
    sweep(scale.size(), "perf-scale", opt.jobs, [&](size_t p) {
        size_t i = p / nt;
        int threads = opt.scaleThreads[p % nt];
        scale[p] = simulate(ws[i], rc, compiled[i], /*noc=*/false,
                            /*targeted=*/true, opt.reps, threads);
    });

    Table st({"app", "threads", "regions", "quanta", "cycles", "ms",
              "Mcyc/s", "Mev/s", "barrier%", "fallback"});
    out.section("scaling");
    for (size_t p = 0; p < scale.size(); ++p) {
        size_t i = p / nt;
        int threads = opt.scaleThreads[p % nt];
        const Measure &m = scale[p];
        const Measure &base = scale[i * nt]; // The sim-threads=1 point.
        if (m.sim.cycles != base.sim.cycles)
            fatal(opt.workloads[i], ": --sim-threads ", threads,
                  " diverged from sequential (", m.sim.cycles, " vs ",
                  base.sim.cycles, " cycles)");
        double sec = m.bestMs / 1e3;
        double mcycS = sec > 0 ? m.sim.cycles / sec / 1e6 : 0.0;
        double mevS = sec > 0 ? m.sim.hostEvents / sec / 1e6 : 0.0;
        st.addRow({opt.workloads[i], std::to_string(threads),
                   std::to_string(m.sim.simRegions),
                   std::to_string(m.sim.quanta),
                   std::to_string(m.sim.cycles),
                   Table::fmt(m.bestMs, 2), Table::fmt(mcycS, 2),
                   Table::fmt(mevS, 2),
                   Table::fmt(100.0 * m.sim.barrierWaitRatio, 1),
                   m.sim.parallelFallback ? m.sim.fallbackReason
                                          : "-"});
        out.beginRow()
            .kv("workload", opt.workloads[i])
            .kv("sim_threads", threads)
            .kv("sim_regions", m.sim.simRegions)
            .kv("quanta", m.sim.quanta)
            .kv("cycles", m.sim.cycles)
            .kv("events", m.sim.hostEvents)
            .kv("host_ms", m.bestMs)
            .kv("mcycles_per_s", mcycS)
            .kv("events_per_s", mevS * 1e6)
            .kv("barrier_wait_ratio", m.sim.barrierWaitRatio)
            .kv("parallel_fallback", m.sim.parallelFallback);
        if (m.sim.parallelFallback)
            out.kv("fallback_reason", m.sim.fallbackReason);
        out.endRow();
    }
    std::printf("%s", st.str().c_str());

    out.write(opt.out);
    return 0;
}

} // namespace
} // namespace sara::bench

int
main(int argc, char **argv)
{
    return sara::bench::perfMain(argc, argv);
}
