/**
 * @file
 * Host-throughput microbenchmark for the simulator event core. Unlike
 * the figure binaries (which reproduce *simulated* results), this one
 * measures how fast the simulator itself runs: wall-clock Mcycles/s
 * and events/s per workload, the spurious-wakeup ratio under the
 * targeted notifyOne policy vs the broadcast notifyAll baseline, a
 * host sampling-profiler breakdown of where the wall time goes
 * (scheduler drain, CV waits, fire path, NoC arbitration, DRAM model),
 * and peak RSS. Each workload compiles once and re-simulates `--reps`
 * times per configuration (best-of to shed scheduler noise).
 *
 * Memory units: peak RSS is reported as `peak_rss_kib` in the JSON
 * (getrusage ru_maxrss, which is KiB on Linux) and as MiB (KiB/1024)
 * in the table — binary units throughout, never decimal MB.
 *
 * Simulated cycle counts must be identical across wakeup policies —
 * the benchmark aborts if they are not, so a perf run doubles as a
 * cycle-identity check. The deterministic counters (cycles, events,
 * wakeups, spurious) land in BENCH_perf.json, which CI diffs against
 * bench/golden_perf.json; wall-times are reported but never gated.
 *
 *   bench_perf [--reps N] [--workloads mlp,pr,...] [--out FILE.json]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench/bench_common.h"
#include "support/hostprof.h"

namespace sara::bench {
namespace {

struct PerfOptions
{
    int reps = 3;
    std::string out = "BENCH_perf.json";
    std::vector<std::string> workloads = {"mlp", "lstm", "gda",
                                          "logreg", "ms", "pr"};
};

PerfOptions
parseArgs(int argc, char **argv)
{
    PerfOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--reps")
            opt.reps = std::stoi(next());
        else if (arg == "--out")
            opt.out = next();
        else if (arg == "--workloads") {
            opt.workloads.clear();
            std::string list = next();
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                opt.workloads.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else
            fatal("unknown option ", arg,
                  " (supported: --reps N, --workloads a,b,c, --out F)");
    }
    if (opt.reps < 1)
        fatal("--reps must be >= 1");
    return opt;
}

/** Peak resident set, in KiB (ru_maxrss unit on Linux). This is the
 *  one place the unit is decided; everything downstream (table MiB
 *  column, `peak_rss_kib` JSON field, README) derives from it. */
uint64_t
peakRssKib()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<uint64_t>(ru.ru_maxrss);
}

/** One simulate-only measurement (compile reused via preCompiled). */
struct Measure
{
    sim::SimResult sim;
    double bestMs = 0.0;
    /** Host-profiler samples per phase (when profiled). */
    uint64_t phase[telemetry::kNumHostPhases] = {};
    uint64_t phaseTotal = 0;
};

Measure
simulate(const workloads::Workload &w, runtime::RunConfig rc,
         const runtime::RunOutcome &compiled, bool noc, bool targeted,
         int reps, bool profile = false)
{
    rc.check = false;
    rc.cachingCompiler = nullptr;
    rc.preCompiled = &compiled.compiled;
    rc.sim.useNoc = noc;
    rc.sim.targetedWakeups = targeted;
    rc.sim.traceFile.clear();
    Measure m;
    auto &prof = telemetry::HostProfiler::global();
    if (profile)
        prof.clearSamples();
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        auto out = runtime::runWorkload(w, rc);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < m.bestMs)
            m.bestMs = ms;
        m.sim = std::move(out.sim);
    }
    if (profile) {
        for (int p = 0; p < telemetry::kNumHostPhases; ++p)
            m.phase[p] =
                prof.samples(static_cast<telemetry::HostPhase>(p));
        m.phaseTotal = prof.totalSamples();
    }
    return m;
}

int
perfMain(int argc, char **argv)
{
    PerfOptions opt = parseArgs(argc, argv);
    banner("event-core host throughput (wall-clock, not simulated)");

    Table table({"app", "mode", "cycles", "ms", "Mcyc/s", "Mev/s",
                 "wakeups", "spurious%", "bcast spur%", "rss MiB"});
    BenchJson out("perf");

    // Sampling profiler: attributes the targeted runs' wall time to
    // event-core phases (~200us per sample).
    auto &prof = telemetry::HostProfiler::global();
    prof.start();

    uint64_t totalWake[2] = {0, 0}, totalSpur[2] = {0, 0};
    uint64_t phaseAgg[telemetry::kNumHostPhases] = {};
    for (const std::string &name : opt.workloads) {
        workloads::WorkloadConfig cfg;
        cfg.par = 8;
        auto w = workloads::buildByName(name, cfg);
        runtime::RunConfig rc;
        rc.check = false;
        auto compiled = runtime::runWorkload(w, rc); // Compile once.

        for (bool noc : {false, true}) {
            Measure tgt = simulate(w, rc, compiled, noc, true,
                                   opt.reps, /*profile=*/true);
            Measure bcast =
                simulate(w, rc, compiled, noc, false, opt.reps);
            if (tgt.sim.cycles != bcast.sim.cycles)
                fatal(name, ": wakeup policies disagree on cycles (",
                      tgt.sim.cycles, " targeted vs ",
                      bcast.sim.cycles, " broadcast)");

            const char *mode = noc ? "noc" : "fixed";
            double sec = tgt.bestMs / 1e3;
            double mcycS =
                sec > 0 ? tgt.sim.cycles / sec / 1e6 : 0.0;
            double mevS =
                sec > 0 ? tgt.sim.hostEvents / sec / 1e6 : 0.0;
            auto ratio = [](const sim::SimResult &s) {
                return s.wakeups
                           ? static_cast<double>(s.spuriousWakeups) /
                                 static_cast<double>(s.wakeups)
                           : 0.0;
            };
            uint64_t rss = peakRssKib();
            for (int p = 0; p < telemetry::kNumHostPhases; ++p)
                phaseAgg[p] += tgt.phase[p];
            totalWake[0] += tgt.sim.wakeups;
            totalSpur[0] += tgt.sim.spuriousWakeups;
            totalWake[1] += bcast.sim.wakeups;
            totalSpur[1] += bcast.sim.spuriousWakeups;

            table.addRow({name, mode, std::to_string(tgt.sim.cycles),
                          Table::fmt(tgt.bestMs, 2),
                          Table::fmt(mcycS, 2), Table::fmt(mevS, 2),
                          std::to_string(tgt.sim.wakeups),
                          Table::fmt(100.0 * ratio(tgt.sim), 1),
                          Table::fmt(100.0 * ratio(bcast.sim), 1),
                          Table::fmt(rss / 1024.0, 0)});

            out.beginRow()
                .kv("workload", name)
                .kv("mode", mode)
                .kv("cycles", tgt.sim.cycles)
                .kv("events", tgt.sim.hostEvents)
                .kv("wakeups", tgt.sim.wakeups)
                .kv("spurious", tgt.sim.spuriousWakeups)
                .kv("bcast_wakeups", bcast.sim.wakeups)
                .kv("bcast_spurious", bcast.sim.spuriousWakeups)
                .kv("host_ms", tgt.bestMs)
                .kv("bcast_host_ms", bcast.bestMs)
                .kv("mcycles_per_s", mcycS)
                .kv("events_per_s", mevS * 1e6)
                .kv("spurious_ratio", ratio(tgt.sim))
                .kv("bcast_spurious_ratio", ratio(bcast.sim))
                .kv("peak_rss_kib", rss);
            // Wall-time attribution for the targeted runs of this row.
            out.writer().key("host_profile").beginObject();
            out.writer().kv("samples", tgt.phaseTotal);
            for (int p = 0; p < telemetry::kNumHostPhases; ++p)
                out.writer().kv(
                    telemetry::hostPhaseName(
                        static_cast<telemetry::HostPhase>(p)),
                    tgt.phase[p]);
            out.writer().endObject();
            out.endRow();
        }
    }
    std::printf("%s", table.str().c_str());

    auto pct = [](uint64_t spur, uint64_t wake) {
        return wake ? 100.0 * static_cast<double>(spur) /
                          static_cast<double>(wake)
                    : 0.0;
    };
    std::printf("\nspurious wakeups: targeted %.1f%% (%llu/%llu) vs "
                "broadcast %.1f%% (%llu/%llu)\n",
                pct(totalSpur[0], totalWake[0]),
                static_cast<unsigned long long>(totalSpur[0]),
                static_cast<unsigned long long>(totalWake[0]),
                pct(totalSpur[1], totalWake[1]),
                static_cast<unsigned long long>(totalSpur[1]),
                static_cast<unsigned long long>(totalWake[1]));

    prof.stop();
    uint64_t phaseSum = 0;
    for (int p = 0; p < telemetry::kNumHostPhases; ++p)
        phaseSum += phaseAgg[p];
    if (phaseSum > 0) {
        std::printf("host profile (%llu samples):",
                    static_cast<unsigned long long>(phaseSum));
        for (int p = 0; p < telemetry::kNumHostPhases; ++p)
            std::printf(" %s %.1f%%",
                        telemetry::hostPhaseName(
                            static_cast<telemetry::HostPhase>(p)),
                        100.0 * static_cast<double>(phaseAgg[p]) /
                            static_cast<double>(phaseSum));
        std::printf("\n");
    }

    out.write(opt.out);
    return 0;
}

} // namespace
} // namespace sara::bench

int
main(int argc, char **argv)
{
    return sara::bench::perfMain(argc, argv);
}
