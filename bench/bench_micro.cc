/**
 * @file
 * google-benchmark micro-suite for the toolchain itself: compile-phase
 * throughput, graph-algorithm kernels, solver iterations, and
 * simulator event throughput. Guards against performance regressions
 * in the compiler/simulator (the "slow cycle-accurate simulator" is
 * the methodology bottleneck, §IV-a).
 */

#include <benchmark/benchmark.h>

#include "compiler/driver.h"
#include "compiler/partition.h"
#include "runtime/run.h"
#include "solver/mip.h"
#include "support/digraph.h"
#include "support/rng.h"
#include "workloads/workload.h"

using namespace sara;

namespace {

workloads::Workload
mlp(int par)
{
    workloads::WorkloadConfig cfg;
    cfg.par = par;
    return workloads::buildMlp(cfg);
}

void
BM_CompileMlp(benchmark::State &state)
{
    auto w = mlp(static_cast<int>(state.range(0)));
    compiler::CompilerOptions opt;
    opt.spec = arch::PlasticineSpec::paper();
    opt.pnrIterations = 500;
    for (auto _ : state) {
        auto r = compiler::compile(w.program, opt);
        benchmark::DoNotOptimize(r.resources.pcus);
    }
}
BENCHMARK(BM_CompileMlp)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void
BM_SimulateMlp(benchmark::State &state)
{
    auto w = mlp(static_cast<int>(state.range(0)));
    runtime::RunConfig rc;
    rc.compiler.spec = arch::PlasticineSpec::paper();
    rc.compiler.pnrIterations = 500;
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = runtime::runWorkload(w, rc);
        cycles = r.sim.cycles;
        benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SimulateMlp)->Arg(64)->Unit(benchmark::kMillisecond);

void
BM_TransitiveReduction(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Rng rng(7);
        Digraph g(n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                if (rng.chance(0.2))
                    g.addEdge(i, j);
        state.ResumeTiming();
        g.transitiveReduction();
        benchmark::DoNotOptimize(g.numEdges());
    }
}
BENCHMARK(BM_TransitiveReduction)->Arg(32)->Arg(128);

void
BM_PartitionTraversal(benchmark::State &state)
{
    Rng rng(11);
    compiler::PartitionProblem prob;
    prob.n = static_cast<int>(state.range(0));
    prob.opCost.assign(prob.n, 1);
    for (int i = 1; i < prob.n; ++i)
        prob.edges.push_back(
            {static_cast<int>(rng.index(i)), i});
    for (auto _ : state) {
        auto sol = compiler::partitionTraversal(
            prob, compiler::PartitionAlgo::DfsFwd);
        benchmark::DoNotOptimize(sol.numPartitions);
    }
}
BENCHMARK(BM_PartitionTraversal)->Arg(64)->Arg(512);

void
BM_SolverAnneal(benchmark::State &state)
{
    Rng rng(13);
    compiler::PartitionProblem prob;
    prob.n = 48;
    prob.opCost.assign(prob.n, 1);
    for (int i = 1; i < prob.n; ++i)
        prob.edges.push_back({static_cast<int>(rng.index(i)), i});
    auto warm =
        compiler::partitionTraversal(prob, compiler::PartitionAlgo::DfsFwd);
    solver::AnnealOptions ao;
    ao.iterations = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        auto res = solver::anneal(
            prob.n, warm.assign,
            [&](const std::vector<int> &a, bool *f) {
                return compiler::partitionCost(prob, a, f);
            },
            ao);
        benchmark::DoNotOptimize(res.cost);
    }
}
BENCHMARK(BM_SolverAnneal)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
