/**
 * @file
 * Par-factor sweeps for the NN layer-graph frontend models (fig9-style
 * scaling, applied to graph-built programs).
 *
 * Two phases, both over the three shipped models (mlp_graph,
 * transformer_cell, resnet_block):
 *
 *   global  every layer at the same par factor (the classic fig9
 *           x-axis), fixed-latency and NoC cycle counts side by side.
 *   layer   one heavy layer (matmul / conv / attention) at a time
 *           swept through LowerOptions::parOverride while the rest of
 *           the model stays at the default par — the per-layer
 *           sensitivity a whole-model sweep can't show.
 *
 * Writes BENCH_graph.json (schema sara-bench/v1); rows carry
 * (phase, model, layer, par) so trend checks can key on any slice.
 * `--quick` shrinks both sweeps for CI.
 */

#include "bench/bench_common.h"
#include "graph/lower.h"
#include "graph/models.h"

using namespace sara;
using namespace sara::bench;

namespace {

struct PointG
{
    runtime::RunOutcome r;
    uint64_t nocCycles = 0;
    double flops = 0.0;
};

PointG
run(const BenchContext &ctx, const graph::LayerGraph &g, int par,
    const std::map<std::string, int> &overrides = {})
{
    graph::LowerOptions o;
    o.par = par;
    o.parOverride = overrides;
    graph::LowerResult lowered = graph::lowerGraph(g, o);
    runtime::RunConfig rc;
    rc.compiler.spec = arch::PlasticineSpec::paper();
    ctx.configure(rc);
    PointG pt;
    pt.r = runtime::runWorkload(lowered.workload, rc);
    pt.nocCycles = bench::nocCycles(lowered.workload, rc, pt.r);
    pt.flops = lowered.workload.nominalFlops;
    return pt;
}

void
emitRow(BenchJson &out, const std::string &phase,
        const std::string &model, const std::string &layer, int par,
        const PointG &pt)
{
    out.beginRow()
        .kv("phase", phase)
        .kv("model", model)
        .kv("layer", layer)
        .kv("par", par)
        .kv("cycles", pt.r.sim.cycles)
        .kv("noc_cycles", pt.nocCycles)
        .kv("gflops", pt.r.gflops())
        .kv("pcus", pt.r.compiled.resources.pcus)
        .kv("pmus", pt.r.compiled.resources.pmus)
        .kv("fits", pt.r.compiled.resources.fits)
        .endRow();
}

void
globalSweep(const BenchContext &ctx, BenchJson &out,
            const std::vector<graph::LayerGraph> &models,
            const std::vector<int> &pars)
{
    banner("graph models: global par sweep");
    std::vector<PointG> results(models.size() * pars.size());
    ctx.forEach(results.size(), "graph-global", [&](size_t i) {
        results[i] =
            run(ctx, models[i / pars.size()], pars[i % pars.size()]);
    });
    for (size_t m = 0; m < models.size(); ++m) {
        const std::string &name = models[m].name;
        Table t({"par", "cycles", "cycles (noc)", "speedup", "GFLOPS",
                 "PCUs", "PMUs"});
        double base = 0.0;
        for (size_t p = 0; p < pars.size(); ++p) {
            const PointG &pt = results[m * pars.size() + p];
            if (base == 0.0)
                base = static_cast<double>(pt.r.sim.cycles);
            t.addRow({std::to_string(pars[p]),
                      std::to_string(pt.r.sim.cycles),
                      std::to_string(pt.nocCycles),
                      Table::fmtX(base / pt.r.sim.cycles),
                      Table::fmt(pt.r.gflops(), 1),
                      std::to_string(pt.r.compiled.resources.pcus),
                      std::to_string(pt.r.compiled.resources.pmus)});
            emitRow(out, "global", name, "*", pars[p], pt);
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
}

void
layerSweep(const BenchContext &ctx, BenchJson &out,
           const std::vector<graph::LayerGraph> &models,
           const std::vector<int> &pars)
{
    banner("graph models: per-layer par sweep (rest of model at 16)");
    struct Job
    {
        size_t model;
        std::string layer;
        int par;
    };
    std::vector<Job> jobsToRun;
    for (size_t m = 0; m < models.size(); ++m)
        for (const auto &n : models[m].nodes) {
            if (n.kind != graph::NodeKind::Matmul &&
                n.kind != graph::NodeKind::Conv &&
                n.kind != graph::NodeKind::Attention)
                continue;
            for (int par : pars)
                jobsToRun.push_back({m, n.name, par});
        }

    std::vector<PointG> results(jobsToRun.size());
    ctx.forEach(results.size(), "graph-layer", [&](size_t i) {
        const Job &j = jobsToRun[i];
        results[i] =
            run(ctx, models[j.model], 16, {{j.layer, j.par}});
    });

    size_t i = 0;
    for (size_t m = 0; m < models.size(); ++m) {
        Table t({"layer", "par", "cycles", "cycles (noc)", "GFLOPS"});
        bool any = false;
        for (; i < jobsToRun.size() && jobsToRun[i].model == m; ++i) {
            const Job &j = jobsToRun[i];
            const PointG &pt = results[i];
            t.addRow({j.layer, std::to_string(j.par),
                      std::to_string(pt.r.sim.cycles),
                      std::to_string(pt.nocCycles),
                      Table::fmt(pt.r.gflops(), 1)});
            emitRow(out, "layer", models[m].name, j.layer, j.par, pt);
            any = true;
        }
        if (any)
            std::printf("-- %s --\n%s", models[m].name.c_str(),
                        t.str().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            rest.push_back(argv[i]);
    }
    BenchContext ctx =
        BenchContext::parse(static_cast<int>(rest.size()), rest.data());

    std::vector<graph::LayerGraph> models;
    models.push_back(graph::mlpGraph());
    models.push_back(graph::transformerCellGraph());
    models.push_back(graph::resnetBlockGraph());

    const std::vector<int> globalPars =
        quick ? std::vector<int>{4, 16} : std::vector<int>{1, 4, 16, 64};
    const std::vector<int> layerPars =
        quick ? std::vector<int>{4, 64} : std::vector<int>{4, 16, 64};

    BenchJson out("graph");
    globalSweep(ctx, out, models, globalPars);
    layerSweep(ctx, out, models, layerPars);
    out.write();
    ctx.reportCache();
    return 0;
}
