/**
 * @file
 * Fig. 9 reproduction.
 *
 * (a) Performance and resource scaling vs. par factor for a
 *     resource-bound kernel (mlp) and a bandwidth-bound kernel (rf):
 *     performance should scale near-linearly until on-chip resources
 *     (mlp) or HBM bandwidth (rf) saturate.
 * (b) Performance-resource trade-off space for mlp and lstm across
 *     par factors and optimization sets; the Pareto-frontier points
 *     are marked.
 */

#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

namespace {

/** One sweep point: the fixed-latency outcome plus the cycle count of
 *  the same compiled graph re-simulated through the contended NoC. */
struct Point9
{
    runtime::RunOutcome r;
    uint64_t nocCycles = 0;
};

Point9
run(const BenchContext &ctx, const std::string &name, int par,
    bool allOpts = true)
{
    workloads::WorkloadConfig cfg;
    cfg.par = par;
    auto w = workloads::buildByName(name, cfg);
    runtime::RunConfig rc;
    rc.compiler.spec = arch::PlasticineSpec::paper();
    rc.compiler.pnrIterations = 2000;
    if (!allOpts) {
        rc.compiler.enableMsr = false;
        rc.compiler.enableRtelm = false;
        rc.compiler.enableRetime = false;
        rc.compiler.enableRetimeM = false;
        rc.compiler.enableXbarElm = false;
        rc.compiler.enableMultibuffer = false;
        rc.compiler.enableControlReduction = false;
    }
    ctx.configure(rc);
    Point9 pt;
    pt.r = runtime::runWorkload(w, rc);
    pt.nocCycles = nocCycles(w, rc, pt.r);
    return pt;
}

void
fig9a(const BenchContext &ctx, BenchJson &out)
{
    banner("Fig. 9a: performance & resource scaling vs par factor");
    const std::vector<int> pars = {1, 2, 4, 8, 16, 32, 64, 128, 192, 256};
    const std::vector<std::string> apps = {"mlp", "rf"};

    // Sweep points run in parallel; rows are emitted in order below.
    std::vector<Point9> results(apps.size() * pars.size());
    ctx.forEach(results.size(), "fig9a", [&](size_t i) {
        results[i] =
            run(ctx, apps[i / pars.size()], pars[i % pars.size()]);
    });

    for (size_t a = 0; a < apps.size(); ++a) {
        const std::string &name = apps[a];
        Table t({"par", "cycles", "cycles (noc)", "speedup", "PCUs",
                 "PMUs", "AGs", "DRAM GB/s", "fits"});
        double base = 0.0;
        for (size_t p = 0; p < pars.size(); ++p) {
            int par = pars[p];
            const auto &r = results[a * pars.size() + p].r;
            uint64_t noc = results[a * pars.size() + p].nocCycles;
            if (base == 0.0)
                base = static_cast<double>(r.sim.cycles);
            t.addRow({std::to_string(par), std::to_string(r.sim.cycles),
                      std::to_string(noc),
                      Table::fmtX(base / r.sim.cycles),
                      std::to_string(r.compiled.resources.pcus),
                      std::to_string(r.compiled.resources.pmus),
                      std::to_string(r.compiled.resources.ags),
                      Table::fmt(r.dramGBs(), 1),
                      r.compiled.resources.fits ? "y" : "n"});
            out.beginRow()
                .kv("panel", "a")
                .kv("app", name)
                .kv("par", par)
                .kv("cycles", r.sim.cycles)
                .kv("noc_cycles", noc)
                .kv("speedup", base / r.sim.cycles)
                .kv("pcus", r.compiled.resources.pcus)
                .kv("pmus", r.compiled.resources.pmus)
                .kv("ags", r.compiled.resources.ags)
                .kv("dram_gbs", r.dramGBs())
                .kv("fits", r.compiled.resources.fits)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
}

void
fig9b(const BenchContext &ctx, BenchJson &out)
{
    banner("Fig. 9b: performance-resource trade-off (Pareto frontier)");
    const std::vector<int> pars = {1, 4, 16, 64, 128, 256};
    for (const std::string name : {"mlp", "lstm"}) {
        struct Point
        {
            int par;
            bool opts;
            uint64_t cycles;
            int resources;
            uint64_t nocCycles;
        };
        std::vector<Point> pts(pars.size() * 2);
        ctx.forEach(pts.size(), "fig9b-" + name, [&](size_t i) {
            int par = pars[i / 2];
            bool opts = i % 2 == 0;
            auto pt = run(ctx, name, par, opts);
            pts[i] = {par, opts, pt.r.sim.cycles,
                      pt.r.compiled.resources.total(), pt.nocCycles};
        });
        Table t({"par", "opts", "cycles", "cycles (noc)", "total PUs",
                 "pareto"});
        for (const auto &pt : pts) {
            bool dominated = false;
            for (const auto &other : pts)
                if (other.cycles <= pt.cycles &&
                    other.resources <= pt.resources &&
                    (other.cycles < pt.cycles ||
                     other.resources < pt.resources))
                    dominated = true;
            t.addRow({std::to_string(pt.par), pt.opts ? "all" : "none",
                      std::to_string(pt.cycles),
                      std::to_string(pt.nocCycles),
                      std::to_string(pt.resources),
                      dominated ? "" : "*"});
            out.beginRow()
                .kv("panel", "b")
                .kv("app", name)
                .kv("par", pt.par)
                .kv("opts", pt.opts)
                .kv("cycles", pt.cycles)
                .kv("noc_cycles", pt.nocCycles)
                .kv("total_units", pt.resources)
                .kv("pareto", !dominated)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = BenchContext::parse(argc, argv);
    BenchJson out("fig9");
    fig9a(ctx, out);
    fig9b(ctx, out);
    out.write();
    ctx.reportCache();
    return 0;
}
