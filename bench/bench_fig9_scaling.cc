/**
 * @file
 * Fig. 9 reproduction.
 *
 * (a) Performance and resource scaling vs. par factor for a
 *     resource-bound kernel (mlp) and a bandwidth-bound kernel (rf):
 *     performance should scale near-linearly until on-chip resources
 *     (mlp) or HBM bandwidth (rf) saturate.
 * (b) Performance-resource trade-off space for mlp and lstm across
 *     par factors and optimization sets; the Pareto-frontier points
 *     are marked.
 */

#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

namespace {

runtime::RunOutcome
run(const std::string &name, int par, bool allOpts = true)
{
    workloads::WorkloadConfig cfg;
    cfg.par = par;
    auto w = workloads::buildByName(name, cfg);
    runtime::RunConfig rc;
    rc.compiler.spec = arch::PlasticineSpec::paper();
    rc.compiler.pnrIterations = 2000;
    if (!allOpts) {
        rc.compiler.enableMsr = false;
        rc.compiler.enableRtelm = false;
        rc.compiler.enableRetime = false;
        rc.compiler.enableRetimeM = false;
        rc.compiler.enableXbarElm = false;
        rc.compiler.enableMultibuffer = false;
        rc.compiler.enableControlReduction = false;
    }
    return runtime::runWorkload(w, rc);
}

void
fig9a(BenchJson &out)
{
    banner("Fig. 9a: performance & resource scaling vs par factor");
    const std::vector<int> pars = {1, 2, 4, 8, 16, 32, 64, 128, 192, 256};
    for (const std::string name : {"mlp", "rf"}) {
        Table t({"par", "cycles", "speedup", "PCUs", "PMUs", "AGs",
                 "DRAM GB/s", "fits"});
        double base = 0.0;
        for (int par : pars) {
            auto r = run(name, par);
            if (base == 0.0)
                base = static_cast<double>(r.sim.cycles);
            t.addRow({std::to_string(par), std::to_string(r.sim.cycles),
                      Table::fmtX(base / r.sim.cycles),
                      std::to_string(r.compiled.resources.pcus),
                      std::to_string(r.compiled.resources.pmus),
                      std::to_string(r.compiled.resources.ags),
                      Table::fmt(r.dramGBs(), 1),
                      r.compiled.resources.fits ? "y" : "n"});
            out.beginRow()
                .kv("panel", "a")
                .kv("app", name)
                .kv("par", par)
                .kv("cycles", r.sim.cycles)
                .kv("speedup", base / r.sim.cycles)
                .kv("pcus", r.compiled.resources.pcus)
                .kv("pmus", r.compiled.resources.pmus)
                .kv("ags", r.compiled.resources.ags)
                .kv("dram_gbs", r.dramGBs())
                .kv("fits", r.compiled.resources.fits)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
}

void
fig9b(BenchJson &out)
{
    banner("Fig. 9b: performance-resource trade-off (Pareto frontier)");
    const std::vector<int> pars = {1, 4, 16, 64, 128, 256};
    for (const std::string name : {"mlp", "lstm"}) {
        struct Point
        {
            int par;
            bool opts;
            uint64_t cycles;
            int resources;
        };
        std::vector<Point> pts;
        for (int par : pars)
            for (bool opts : {true, false}) {
                auto r = run(name, par, opts);
                pts.push_back({par, opts, r.sim.cycles,
                               r.compiled.resources.total()});
            }
        Table t({"par", "opts", "cycles", "total PUs", "pareto"});
        for (const auto &pt : pts) {
            bool dominated = false;
            for (const auto &other : pts)
                if (other.cycles <= pt.cycles &&
                    other.resources <= pt.resources &&
                    (other.cycles < pt.cycles ||
                     other.resources < pt.resources))
                    dominated = true;
            t.addRow({std::to_string(pt.par), pt.opts ? "all" : "none",
                      std::to_string(pt.cycles),
                      std::to_string(pt.resources),
                      dominated ? "" : "*"});
            out.beginRow()
                .kv("panel", "b")
                .kv("app", name)
                .kv("par", pt.par)
                .kv("opts", pt.opts)
                .kv("cycles", pt.cycles)
                .kv("total_units", pt.resources)
                .kv("pareto", !dominated)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
}

} // namespace

int
main()
{
    BenchJson out("fig9");
    fig9a(out);
    fig9b(out);
    out.write();
    return 0;
}
