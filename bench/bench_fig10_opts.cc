/**
 * @file
 * Fig. 10 reproduction: effectiveness of individual compiler
 * optimizations. For each app, one optimization at a time is disabled
 * and the runtime / resource deltas vs. the all-optimizations build
 * are reported (the paper plots normalized runtime and resource).
 */

#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

namespace {

struct Knob
{
    const char *name;
    void (*disable)(compiler::CompilerOptions &);
};

const Knob kKnobs[] = {
    {"msr", [](compiler::CompilerOptions &o) { o.enableMsr = false; }},
    {"rtelm",
     [](compiler::CompilerOptions &o) { o.enableRtelm = false; }},
    {"retime",
     [](compiler::CompilerOptions &o) { o.enableRetime = false; }},
    {"retime-m",
     [](compiler::CompilerOptions &o) { o.enableRetimeM = false; }},
    {"xbar-elm",
     [](compiler::CompilerOptions &o) { o.enableXbarElm = false; }},
    {"multibuffer",
     [](compiler::CompilerOptions &o) { o.enableMultibuffer = false; }},
    {"ctrl-reduction",
     [](compiler::CompilerOptions &o) {
         o.enableControlReduction = false;
     }},
    {"duplication",
     [](compiler::CompilerOptions &o) { o.enableDuplication = false; }},
};

runtime::RunOutcome
run(const workloads::Workload &w, const compiler::CompilerOptions &opt)
{
    runtime::RunConfig rc;
    rc.compiler = opt;
    return runtime::runWorkload(w, rc);
}

} // namespace

int
main()
{
    banner("Fig. 10: per-optimization effectiveness "
           "(values normalized to the all-optimizations build; "
           "runtime > 1 means disabling the optimization slows the "
           "app down, resource > 1 means it saves resources)");

    BenchJson out("fig10");
    for (const std::string name :
         {"mlp", "lstm", "bs", "gda", "ms", "sort", "pr", "rf"}) {
        workloads::WorkloadConfig cfg;
        cfg.par = 64;
        if (name == "bs" || name == "ms")
            cfg.scale = 4;
        auto w = workloads::buildByName(name, cfg);

        compiler::CompilerOptions base;
        base.spec = arch::PlasticineSpec::paper();
        base.pnrIterations = 2000;
        auto ref = run(w, base);

        Table t({"disabled opt", "runtime x", "resource x", "tokens",
                 "cycles"});
        t.addRow({"(none)", "1.00", "1.00",
                  std::to_string(ref.compiled.lowering.stats.tokens),
                  std::to_string(ref.sim.cycles)});
        out.beginRow()
            .kv("app", name)
            .kv("disabled", "none")
            .kv("runtime_x", 1.0)
            .kv("resource_x", 1.0)
            .kv("tokens", ref.compiled.lowering.stats.tokens)
            .kv("cycles", ref.sim.cycles)
            .endRow();
        for (const auto &knob : kKnobs) {
            auto opt = base;
            knob.disable(opt);
            auto r = run(w, opt);
            double rt = static_cast<double>(r.sim.cycles) /
                        static_cast<double>(ref.sim.cycles);
            double res =
                static_cast<double>(r.compiled.resources.total()) /
                std::max(1, ref.compiled.resources.total());
            t.addRow({knob.name, Table::fmt(rt), Table::fmt(res),
                      std::to_string(r.compiled.lowering.stats.tokens),
                      std::to_string(r.sim.cycles)});
            out.beginRow()
                .kv("app", name)
                .kv("disabled", knob.name)
                .kv("runtime_x", rt)
                .kv("resource_x", res)
                .kv("tokens", r.compiled.lowering.stats.tokens)
                .kv("cycles", r.sim.cycles)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
    out.write();
    return 0;
}
