/**
 * @file
 * Fig. 10 reproduction: effectiveness of individual compiler
 * optimizations. For each app, one optimization at a time is disabled
 * and the runtime / resource deltas vs. the all-optimizations build
 * are reported (the paper plots normalized runtime and resource).
 */

#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

namespace {

struct Knob
{
    const char *name;
    void (*disable)(compiler::CompilerOptions &);
};

const Knob kKnobs[] = {
    {"msr", [](compiler::CompilerOptions &o) { o.enableMsr = false; }},
    {"rtelm",
     [](compiler::CompilerOptions &o) { o.enableRtelm = false; }},
    {"retime",
     [](compiler::CompilerOptions &o) { o.enableRetime = false; }},
    {"retime-m",
     [](compiler::CompilerOptions &o) { o.enableRetimeM = false; }},
    {"xbar-elm",
     [](compiler::CompilerOptions &o) { o.enableXbarElm = false; }},
    {"multibuffer",
     [](compiler::CompilerOptions &o) { o.enableMultibuffer = false; }},
    {"ctrl-reduction",
     [](compiler::CompilerOptions &o) {
         o.enableControlReduction = false;
     }},
    {"duplication",
     [](compiler::CompilerOptions &o) { o.enableDuplication = false; }},
};

struct Point10
{
    runtime::RunOutcome r;
    uint64_t nocCycles = 0;
};

Point10
run(const BenchContext &ctx, const workloads::Workload &w,
    const compiler::CompilerOptions &opt)
{
    runtime::RunConfig rc;
    rc.compiler = opt;
    ctx.configure(rc);
    Point10 pt;
    pt.r = runtime::runWorkload(w, rc);
    pt.nocCycles = nocCycles(w, rc, pt.r);
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Fig. 10: per-optimization effectiveness "
           "(values normalized to the all-optimizations build; "
           "runtime > 1 means disabling the optimization slows the "
           "app down, resource > 1 means it saves resources)");

    const std::vector<std::string> apps = {"mlp", "lstm", "bs", "gda",
                                           "ms",  "sort", "pr", "rf"};
    constexpr size_t kRuns = 1 + std::size(kKnobs); // ref + each knob.

    // All (app, knob) sweep points run in parallel; the reference run
    // each app normalizes against is just point 0 of its stripe.
    std::vector<workloads::Workload> ws(apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
        workloads::WorkloadConfig cfg;
        cfg.par = 64;
        if (apps[a] == "bs" || apps[a] == "ms")
            cfg.scale = 4;
        ws[a] = workloads::buildByName(apps[a], cfg);
    }
    std::vector<Point10> results(apps.size() * kRuns);
    ctx.forEach(results.size(), "fig10", [&](size_t i) {
        compiler::CompilerOptions opt;
        opt.spec = arch::PlasticineSpec::paper();
        opt.pnrIterations = 2000;
        size_t k = i % kRuns;
        if (k > 0)
            kKnobs[k - 1].disable(opt);
        results[i] = run(ctx, ws[i / kRuns], opt);
    });

    BenchJson out("fig10");
    for (size_t a = 0; a < apps.size(); ++a) {
        const std::string &name = apps[a];
        const auto &ref = results[a * kRuns].r;

        Table t({"disabled opt", "runtime x", "resource x", "tokens",
                 "cycles", "cycles (noc)"});
        t.addRow({"(none)", "1.00", "1.00",
                  std::to_string(ref.compiled.lowering.stats.tokens),
                  std::to_string(ref.sim.cycles),
                  std::to_string(results[a * kRuns].nocCycles)});
        out.beginRow()
            .kv("app", name)
            .kv("disabled", "none")
            .kv("runtime_x", 1.0)
            .kv("resource_x", 1.0)
            .kv("tokens", ref.compiled.lowering.stats.tokens)
            .kv("cycles", ref.sim.cycles)
            .kv("noc_cycles", results[a * kRuns].nocCycles)
            .endRow();
        for (size_t k = 0; k < std::size(kKnobs); ++k) {
            const auto &knob = kKnobs[k];
            const auto &r = results[a * kRuns + 1 + k].r;
            uint64_t noc = results[a * kRuns + 1 + k].nocCycles;
            double rt = static_cast<double>(r.sim.cycles) /
                        static_cast<double>(ref.sim.cycles);
            double res =
                static_cast<double>(r.compiled.resources.total()) /
                std::max(1, ref.compiled.resources.total());
            t.addRow({knob.name, Table::fmt(rt), Table::fmt(res),
                      std::to_string(r.compiled.lowering.stats.tokens),
                      std::to_string(r.sim.cycles),
                      std::to_string(noc)});
            out.beginRow()
                .kv("app", name)
                .kv("disabled", knob.name)
                .kv("runtime_x", rt)
                .kv("resource_x", res)
                .kv("tokens", r.compiled.lowering.stats.tokens)
                .kv("cycles", r.sim.cycles)
                .kv("noc_cycles", noc)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
    out.write();
    ctx.reportCache();
    return 0;
}
