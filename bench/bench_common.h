#ifndef SARA_BENCH_COMMON_H
#define SARA_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the table/figure reproduction binaries. Each
 * binary regenerates one piece of the paper's evaluation (§IV) and
 * prints the same rows/series the paper reports.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/run.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace sara::bench {

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / xs.size());
}

/** Nominal off-chip traffic (bytes) of a workload: inputs + outputs
 *  once each — what an ideally-cached GPU implementation moves. */
inline double
nominalBytes(const workloads::Workload &w)
{
    double bytes = 0.0;
    for (const auto &[tid, data] : w.dramInputs)
        bytes += 4.0 * data.size();
    bytes += 4.0 * w.elements;
    return bytes;
}

inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace sara::bench

#endif // SARA_BENCH_COMMON_H
