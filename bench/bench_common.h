#ifndef SARA_BENCH_COMMON_H
#define SARA_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the table/figure reproduction binaries. Each
 * binary regenerates one piece of the paper's evaluation (§IV) and
 * prints the same rows/series the paper reports.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/run.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace sara::bench {

/**
 * Streaming collector for the machine-readable companion of each
 * figure table (schema "sara-bench/v1"). The binaries print the
 * human-readable table as before and additionally drop a
 * BENCH_<figure>.json next to the binary so plots and CI trend checks
 * never have to scrape stdout.
 *
 *   BenchJson out("fig9");
 *   out.beginRow().kv("app", name).kv("gflops", r.gflops()).endRow();
 *   out.write();   // -> BENCH_fig9.json
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string figure) : figure_(std::move(figure))
    {
        w_.beginObject();
        w_.kv("schema", "sara-bench/v1");
        w_.kv("figure", figure_);
        w_.key("rows").beginArray();
    }

    BenchJson &beginRow()
    {
        w_.beginObject();
        return *this;
    }
    BenchJson &endRow()
    {
        w_.endObject();
        return *this;
    }
    template <typename T>
    BenchJson &
    kv(const std::string &k, T &&v)
    {
        w_.kv(k, std::forward<T>(v));
        return *this;
    }

    /** Close the document and write BENCH_<figure>.json (or `path`). */
    void
    write(std::string path = "")
    {
        w_.endArray().endObject();
        if (path.empty())
            path = "BENCH_" + figure_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("cannot write bench report to ", path);
            return;
        }
        const std::string &doc = w_.str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("[bench] wrote %s\n", path.c_str());
    }

  private:
    std::string figure_;
    json::Writer w_;
};

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / xs.size());
}

/** Nominal off-chip traffic (bytes) of a workload: inputs + outputs
 *  once each — what an ideally-cached GPU implementation moves. */
inline double
nominalBytes(const workloads::Workload &w)
{
    double bytes = 0.0;
    for (const auto &[tid, data] : w.dramInputs)
        bytes += 4.0 * data.size();
    bytes += 4.0 * w.elements;
    return bytes;
}

inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace sara::bench

#endif // SARA_BENCH_COMMON_H
