#ifndef SARA_BENCH_COMMON_H
#define SARA_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the table/figure reproduction binaries. Each
 * binary regenerates one piece of the paper's evaluation (§IV) and
 * prints the same rows/series the paper reports.
 */

#include <cmath>
#include <cstdio>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "artifact/cache.h"
#include "jobs/jobs.h"
#include "runtime/run.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/table.h"
#include "support/telemetry.h"
#include "workloads/workload.h"

namespace sara::bench {

/**
 * Execution context shared by the figure binaries: every bench sweep
 * accepts `-j N` (parallel sweep points via the job scheduler; default
 * all cores, `-j 1` restores the old serial behavior) and
 * `--cache-dir DIR` / `--cache` (compile through the artifact cache,
 * so a re-run after an interrupted or repeated sweep only pays for
 * simulation). Sweep *output* stays deterministic regardless of `-j`:
 * points run in parallel but rows are emitted in submission order.
 */
struct BenchContext
{
    int threads = 0; ///< Sweep-point concurrency (0 = hardware).
    bool useCache = false;
    std::string cacheDir;
    std::unique_ptr<artifact::ArtifactCache> cache;
    std::unique_ptr<artifact::CachingCompiler> compiler;

    static BenchContext
    parse(int argc, char **argv)
    {
        BenchContext ctx;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "-j")
                ctx.threads = std::stoi(next());
            else if (arg == "--cache")
                ctx.useCache = true;
            else if (arg == "--cache-dir") {
                ctx.useCache = true;
                ctx.cacheDir = next();
            } else
                fatal("unknown bench option ", arg,
                      " (supported: -j N, --cache, --cache-dir DIR)");
        }
        if (ctx.useCache) {
            telemetry::Registry::global().setEnabled(true);
            ctx.cache =
                std::make_unique<artifact::ArtifactCache>(ctx.cacheDir);
            std::printf("[bench] artifact cache at %s\n",
                        ctx.cache->dir().c_str());
        }
        // Always compile through the caching front-end: with no cache
        // directory it still deduplicates identical in-flight sweep
        // points (fig9's repeated base configs).
        ctx.compiler = std::make_unique<artifact::CachingCompiler>(
            ctx.cache.get());
        return ctx;
    }

    /** Apply this context to a run configuration. */
    void
    configure(runtime::RunConfig &rc) const
    {
        rc.cachingCompiler = compiler.get();
    }

    /**
     * Run `fn(i)` for every sweep point in [0, n) with bounded
     * concurrency; fatal()s on the first failing point (a bench sweep
     * has no partial-success story). Callers write results into
     * index-addressed slots and emit rows afterwards, in order.
     */
    void
    forEach(size_t n, const std::string &prefix,
            const std::function<void(size_t)> &fn) const
    {
        jobs::BatchOptions opt;
        opt.threads = threads;
        auto report = jobs::forEachIndex(n, prefix, fn, opt);
        if (!report.allOk())
            fatal("bench sweep '", prefix,
                  "' failed: ", report.firstError());
    }

    /** Print cache counters after a sweep (no-op without --cache). */
    void
    reportCache() const
    {
        if (!useCache)
            return;
        auto &reg = telemetry::Registry::global();
        std::printf("[bench] cache: %llu hits, %llu misses, %llu "
                    "stored\n",
                    static_cast<unsigned long long>(
                        reg.counter("artifact.cache.hit")),
                    static_cast<unsigned long long>(
                        reg.counter("artifact.cache.miss")),
                    static_cast<unsigned long long>(
                        reg.counter("artifact.cache.store")));
    }
};

/**
 * Streaming collector for the machine-readable companion of each
 * figure table (schema "sara-bench/v1"). The binaries print the
 * human-readable table as before and additionally drop a
 * BENCH_<figure>.json next to the binary so plots and CI trend checks
 * never have to scrape stdout.
 *
 *   BenchJson out("fig9");
 *   out.beginRow().kv("app", name).kv("gflops", r.gflops()).endRow();
 *   out.write();   // -> BENCH_fig9.json
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string figure) : figure_(std::move(figure))
    {
        w_.beginObject();
        w_.kv("schema", "sara-bench/v1");
        w_.kv("figure", figure_);
        w_.key("rows").beginArray();
    }

    BenchJson &beginRow()
    {
        w_.beginObject();
        return *this;
    }
    BenchJson &endRow()
    {
        w_.endObject();
        return *this;
    }
    template <typename T>
    BenchJson &
    kv(const std::string &k, T &&v)
    {
        w_.kv(k, std::forward<T>(v));
        return *this;
    }

    /** Direct writer access for nested row values (objects/arrays). */
    json::Writer &writer() { return w_; }

    /** Close the current top-level array and open a sibling one
     *  (e.g. bench_perf's "scaling" curves next to "rows"); the
     *  beginRow()/endRow() helpers then append to the new array. */
    BenchJson &
    section(const std::string &name)
    {
        w_.endArray();
        w_.key(name).beginArray();
        return *this;
    }

    /** Close the document and write BENCH_<figure>.json (or `path`). */
    void
    write(std::string path = "")
    {
        w_.endArray().endObject();
        if (path.empty())
            path = "BENCH_" + figure_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("cannot write bench report to ", path);
            return;
        }
        const std::string &doc = w_.str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("[bench] wrote %s\n", path.c_str());
    }

  private:
    std::string figure_;
    json::Writer w_;
};

/**
 * Re-simulate an already-compiled outcome through the cycle-level NoC
 * (src/noc) and return the contended cycle count. The fig binaries
 * report both numbers side by side: the delta is what link-level
 * arbitration and backpressure cost on top of the fixed PnR latencies.
 */
inline uint64_t
nocCycles(const workloads::Workload &w, runtime::RunConfig rc,
          const runtime::RunOutcome &r)
{
    rc.sim.useNoc = true;
    rc.sim.traceFile.clear();
    rc.check = false;
    rc.cachingCompiler = nullptr;
    rc.preCompiled = &r.compiled; // Simulate, don't recompile.
    return runtime::runWorkload(w, rc).sim.cycles;
}

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / xs.size());
}

/** Nominal off-chip traffic (bytes) of a workload: inputs + outputs
 *  once each — what an ideally-cached GPU implementation moves. */
inline double
nominalBytes(const workloads::Workload &w)
{
    double bytes = 0.0;
    for (const auto &[tid, data] : w.dramInputs)
        bytes += 4.0 * data.size();
    bytes += 4.0 * w.elements;
    return bytes;
}

inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace sara::bench

#endif // SARA_BENCH_COMMON_H
