/**
 * @file
 * Fig. 11 reproduction: traversal-based vs solver-based partitioning
 * and merging.
 *  (a) physical units after partition+merge, normalized to the best
 *      algorithm per app (the paper reports traversal up to 1.7x
 *      worse than the solver's near-optimal packing);
 *  (b/c) compile time per algorithm (traversal runs in well under a
 *      second at our scaled-down sizes; the solver costs orders of
 *      magnitude more, mirroring the paper's minutes-vs-hours gap).
 */

#include "bench/bench_common.h"

#include "compiler/partition.h"

using namespace sara;
using namespace sara::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Fig. 11: traversal vs solver partitioning/merging");
    using compiler::PartitionAlgo;
    const PartitionAlgo algos[] = {
        PartitionAlgo::BfsFwd, PartitionAlgo::BfsBwd,
        PartitionAlgo::DfsFwd, PartitionAlgo::DfsBwd,
        PartitionAlgo::Solver};
    const std::vector<std::string> apps = {"mlp", "lstm",   "bs",
                                           "gda", "kmeans", "ms"};
    constexpr size_t kAlgos = std::size(algos);

    struct Row
    {
        PartitionAlgo algo;
        int pcus = 0;
        double partMs = 0.0;
        uint64_t cycles = 0;
        uint64_t nocCycles = 0;
    };
    // This figure *measures compile time*, so sweep points always
    // compile fresh (a cached artifact would report zeroed phase
    // times); -j still parallelizes the (app, algorithm) grid. The
    // partitioning quality also shows up as runtime: each point is
    // simulated with the fixed-latency model and through the NoC
    // (after the phase timings are captured, so they stay pure).
    std::vector<Row> allRows(apps.size() * kAlgos);
    ctx.forEach(allRows.size(), "fig11", [&](size_t i) {
        workloads::WorkloadConfig cfg;
        cfg.par = 64;
        auto w = workloads::buildByName(apps[i / kAlgos], cfg);
        compiler::CompilerOptions opt;
        opt.spec = arch::PlasticineSpec::paper();
        opt.partitioner = algos[i % kAlgos];
        opt.pnrIterations = 500;
        opt.solverIterations = 60000;
        auto r = compiler::compile(w.program, opt);
        allRows[i] = {opt.partitioner, r.resources.pcus,
                      r.phaseMs("partition") + r.phaseMs("merge")};
        runtime::RunConfig rc;
        rc.compiler = opt;
        rc.preCompiled = &r;
        runtime::RunOutcome sim = runtime::runWorkload(w, rc);
        allRows[i].cycles = sim.sim.cycles;
        allRows[i].nocCycles = nocCycles(w, rc, sim);
    });

    BenchJson out("fig11");
    for (size_t a = 0; a < apps.size(); ++a) {
        const std::string &name = apps[a];
        std::vector<Row> rows(allRows.begin() + a * kAlgos,
                              allRows.begin() + (a + 1) * kAlgos);
        int best = INT32_MAX;
        for (const auto &row : rows)
            best = std::min(best, row.pcus);
        Table t({"algorithm", "PCUs", "normalized", "compile ms",
                 "cycles", "cycles (noc)"});
        for (const auto &row : rows) {
            double norm =
                static_cast<double>(row.pcus) / std::max(1, best);
            t.addRow({compiler::partitionAlgoName(row.algo),
                      std::to_string(row.pcus), Table::fmtX(norm),
                      Table::fmt(row.partMs, 1),
                      std::to_string(row.cycles),
                      std::to_string(row.nocCycles)});
            out.beginRow()
                .kv("app", name)
                .kv("algorithm",
                    compiler::partitionAlgoName(row.algo))
                .kv("pcus", row.pcus)
                .kv("normalized", norm)
                .kv("partition_ms", row.partMs)
                .kv("cycles", row.cycles)
                .kv("noc_cycles", row.nocCycles)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
    out.write();
    return 0;
}
