/**
 * @file
 * Fig. 11 reproduction: traversal-based vs solver-based partitioning
 * and merging.
 *  (a) physical units after partition+merge, normalized to the best
 *      algorithm per app (the paper reports traversal up to 1.7x
 *      worse than the solver's near-optimal packing);
 *  (b/c) compile time per algorithm (traversal runs in well under a
 *      second at our scaled-down sizes; the solver costs orders of
 *      magnitude more, mirroring the paper's minutes-vs-hours gap).
 */

#include "bench/bench_common.h"

#include "compiler/partition.h"

using namespace sara;
using namespace sara::bench;

int
main()
{
    banner("Fig. 11: traversal vs solver partitioning/merging");
    using compiler::PartitionAlgo;
    const PartitionAlgo algos[] = {
        PartitionAlgo::BfsFwd, PartitionAlgo::BfsBwd,
        PartitionAlgo::DfsFwd, PartitionAlgo::DfsBwd,
        PartitionAlgo::Solver};

    BenchJson out("fig11");
    for (const std::string name : {"mlp", "lstm", "bs", "gda", "kmeans",
                                   "ms"}) {
        workloads::WorkloadConfig cfg;
        cfg.par = 64;
        auto w = workloads::buildByName(name, cfg);

        struct Row
        {
            PartitionAlgo algo;
            int pcus = 0;
            double partMs = 0.0;
        };
        std::vector<Row> rows;
        int best = INT32_MAX;
        for (auto algo : algos) {
            compiler::CompilerOptions opt;
            opt.spec = arch::PlasticineSpec::paper();
            opt.partitioner = algo;
            opt.pnrIterations = 500;
            opt.solverIterations = 60000;
            auto r = compiler::compile(w.program, opt);
            Row row;
            row.algo = algo;
            row.pcus = r.resources.pcus;
            row.partMs = r.phaseMs("partition") + r.phaseMs("merge");
            best = std::min(best, row.pcus);
            rows.push_back(row);
        }
        Table t({"algorithm", "PCUs", "normalized", "compile ms"});
        for (const auto &row : rows) {
            double norm =
                static_cast<double>(row.pcus) / std::max(1, best);
            t.addRow({compiler::partitionAlgoName(row.algo),
                      std::to_string(row.pcus), Table::fmtX(norm),
                      Table::fmt(row.partMs, 1)});
            out.beginRow()
                .kv("app", name)
                .kv("algorithm",
                    compiler::partitionAlgoName(row.algo))
                .kv("pcus", row.pcus)
                .kv("normalized", norm)
                .kv("partition_ms", row.partMs)
                .endRow();
        }
        std::printf("-- %s --\n%s", name.c_str(), t.str().c_str());
    }
    out.write();
    return 0;
}
