/**
 * @file
 * Load generator for the sarad service. Drives three phases against a
 * live daemon (in-process by default, or an external one via
 * --connect) and records the serving story the ROADMAP asks for into
 * BENCH_serve.json (schema sara-serve/v1, checked in CI):
 *
 *   1. cold vs warm: distinct compile requests against a fresh cache,
 *      then repeated requests against the warm cache. Warm p50 must
 *      sit far below cold p50 (acceptance: >= 10x) and the warm phase
 *      must never recompile.
 *   2. saturation sweep: open-loop `run` traffic at stepped offered
 *      rates bracketing the measured capacity. Each step records
 *      completed throughput, rejects, and p50/p99 latency; past the
 *      knee every extra request gets a structured `rejected` response
 *      (never a hang, never a dropped reply).
 *   3. fairness: two tenants at equal offered load past saturation;
 *      weighted fair scheduling must hand them throughput within 20%
 *      of each other.
 *
 * Options:
 *   --connect PATH   drive an already-running sarad instead of the
 *                    in-process server (CI smoke uses this)
 *   --out FILE       report path (default BENCH_serve.json)
 *   --quick          shorter steps (CI)
 *   --workers N      in-process server worker threads (default 4)
 *   --queue-depth N  in-process admission bound (default 32)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>

#include "serve/client.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/logging.h"

using namespace sara;
using Clock = std::chrono::steady_clock;

namespace {

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t idx = static_cast<size_t>(q * (xs.size() - 1));
    return xs[idx];
}

struct BenchOptions
{
    std::string connect; ///< External daemon socket (empty: in-process).
    std::string out = "BENCH_serve.json";
    bool quick = false;
    int workers = 4;
    size_t queueDepth = 32;
};

serve::Request
runRequest(const std::string &id, const std::string &tenant,
           const std::string &workload, int par)
{
    serve::Request r;
    r.id = id;
    r.verb = serve::Verb::Run;
    r.tenant = tenant;
    r.workload = workload;
    r.par = par;
    return r;
}

const char *
respStatus(const json::Value &v)
{
    const json::Value *s = v.find("status");
    return s && s->isString() ? s->str.c_str() : "?";
}

// ---------------------------------------------------------------------------
// Open-loop driver: one connection, a paced sender and a reader that
// matches responses to send times by id. Every request must receive
// exactly one response (ok / rejected / error); a 20 s receive stall
// is treated as a server hang and aborts the bench.
// ---------------------------------------------------------------------------

struct LoadResult
{
    uint64_t sent = 0, ok = 0, rejected = 0, errors = 0;
    std::vector<double> latMs; ///< ok responses only.
    double wallMs = 0.0;       ///< First send -> last response.

    double
    completedRps() const
    {
        return wallMs > 0.0 ? ok / (wallMs / 1e3) : 0.0;
    }
};

LoadResult
openLoop(const std::string &socket, const std::string &tenant,
         const std::string &idPrefix, const std::string &workload,
         int par, double rps, double durationS, uint64_t maxRequests)
{
    serve::Client client(socket);
    timeval tv{20, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    LoadResult res;
    std::mutex mu;
    std::unordered_map<std::string, Clock::time_point> sendTimes;

    uint64_t total = std::min<uint64_t>(
        maxRequests, static_cast<uint64_t>(rps * durationS));
    total = std::max<uint64_t>(total, 1);

    auto start = Clock::now();
    std::thread reader([&] {
        uint64_t received = 0;
        while (received < total) {
            auto v = client.recv();
            if (!v)
                fatal("bench_serve: daemon closed mid-sweep");
            ++received;
            auto now = Clock::now();
            std::string status = respStatus(*v);
            const json::Value *id = v->find("id");
            if (status == "ok") {
                ++res.ok;
                std::lock_guard<std::mutex> lock(mu);
                if (id) {
                    auto it = sendTimes.find(id->str);
                    if (it != sendTimes.end())
                        res.latMs.push_back(
                            msBetween(it->second, now));
                }
            } else if (status == "rejected") {
                ++res.rejected;
            } else {
                ++res.errors;
            }
        }
        res.wallMs = msBetween(start, Clock::now());
    });

    std::chrono::duration<double> interval(1.0 / rps);
    for (uint64_t i = 0; i < total; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        interval * static_cast<double>(i)));
        std::string id = idPrefix + std::to_string(i);
        {
            std::lock_guard<std::mutex> lock(mu);
            sendTimes.emplace(id, Clock::now());
        }
        client.send(runRequest(id, tenant, workload, par));
        ++res.sent;
    }
    reader.join();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--connect")
            opt.connect = next();
        else if (arg == "--out")
            opt.out = next();
        else if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--workers")
            opt.workers = std::stoi(next());
        else if (arg == "--queue-depth")
            opt.queueDepth = std::stoul(next());
        else
            fatal("unknown bench option ", arg);
    }

    // --- Spin up (or attach to) the daemon -----------------------------
    namespace fs = std::filesystem;
    std::unique_ptr<serve::Server> server;
    std::string socket = opt.connect;
    if (socket.empty()) {
        fs::path dir = fs::temp_directory_path() / "sara-bench-serve";
        fs::remove_all(dir);
        fs::create_directories(dir);
        serve::ServerOptions so;
        so.socketPath = (dir / "sarad.sock").string();
        so.cacheDir = (dir / "cache").string();
        so.useDiskCache = true;
        so.workers = opt.workers;
        so.queueDepth = opt.queueDepth;
        server = std::make_unique<serve::Server>(std::move(so));
        server->start();
        socket = server->socketPath();
    }
    if (!serve::waitForServer(socket, 5000))
        fatal("bench_serve: no daemon at ", socket);
    std::printf("[bench] driving sarad at %s\n", socket.c_str());

    const std::string workload = "ms";
    const int par = 4;

    // --- Phase 1: cold vs warm ----------------------------------------
    // Distinct (workload, par) keys compile cold; repeats hit the warm
    // in-memory/on-disk cache without recompiling.
    struct Key
    {
        std::string workload;
        int par;
    };
    const std::vector<Key> keys = {
        {"ms", 4}, {"ms", 8}, {"logreg", 4}, {"gda", 4}};
    const int repeats = opt.quick ? 10 : 50;

    std::vector<double> coldMs, warmMs;
    uint64_t warmRecompiles = 0, warmCacheHits = 0;
    {
        serve::Client client(socket);
        for (size_t k = 0; k < keys.size(); ++k) {
            serve::Request r;
            r.id = "cold" + std::to_string(k);
            r.verb = serve::Verb::Compile;
            r.workload = keys[k].workload;
            r.par = keys[k].par;
            auto t0 = Clock::now();
            json::Value v = client.call(r);
            coldMs.push_back(msBetween(t0, Clock::now()));
            if (std::string(respStatus(v)) != "ok")
                fatal("cold compile failed: ", v.at("error").str);
        }
        for (int rep = 0; rep < repeats; ++rep) {
            for (size_t k = 0; k < keys.size(); ++k) {
                serve::Request r;
                r.id = "warm" + std::to_string(rep * keys.size() + k);
                r.verb = serve::Verb::Compile;
                r.workload = keys[k].workload;
                r.par = keys[k].par;
                auto t0 = Clock::now();
                json::Value v = client.call(r);
                warmMs.push_back(msBetween(t0, Clock::now()));
                if (std::string(respStatus(v)) != "ok")
                    fatal("warm compile failed");
                bool fromCache = v.at("from_cache").boolean;
                bool deduped = v.at("deduped").boolean;
                if (fromCache)
                    ++warmCacheHits;
                else if (!deduped)
                    ++warmRecompiles;
            }
        }
    }
    double coldP50 = percentile(coldMs, 0.50);
    double warmP50 = percentile(warmMs, 0.50);
    double speedup = warmP50 > 0.0 ? coldP50 / warmP50 : 0.0;
    std::printf("[bench] cold p50 %.2fms, warm p50 %.3fms (%.0fx), "
                "%llu/%zu warm hits, %llu recompiles\n",
                coldP50, warmP50, speedup,
                static_cast<unsigned long long>(warmCacheHits),
                warmMs.size(),
                static_cast<unsigned long long>(warmRecompiles));

    // --- Capacity estimate (closed loop) ------------------------------
    // Serial round trips of the warm `run` request give the per-worker
    // service time; the sweep rates bracket workers/service.
    double serviceMs;
    {
        serve::Client client(socket);
        client.call(runRequest("prewarm", "default", workload, par));
        const int probes = opt.quick ? 20 : 50;
        auto t0 = Clock::now();
        for (int i = 0; i < probes; ++i)
            client.call(runRequest("probe" + std::to_string(i),
                                   "default", workload, par));
        serviceMs = msBetween(t0, Clock::now()) / probes;
    }
    int workers = opt.workers;
    if (server)
        workers = server->workers();
    double capacityRps = workers / (serviceMs / 1e3);
    std::printf("[bench] closed-loop service %.2fms -> est. capacity "
                "%.0f req/s on %d workers\n",
                serviceMs, capacityRps, workers);

    // --- Phase 2: stepped-rate open-loop sweep ------------------------
    const std::vector<double> factors = {0.1, 0.25, 0.5, 1.0, 2.0,
                                         4.0};
    const double stepS = opt.quick ? 0.6 : 1.5;
    const uint64_t maxReqs = opt.quick ? 2000 : 8000;
    struct Step
    {
        double offered;
        LoadResult r;
    };
    std::vector<Step> steps;
    for (double f : factors) {
        double rate = std::max(10.0, capacityRps * f);
        std::string prefix = "s";
        prefix += std::to_string(steps.size());
        prefix += '-';
        Step s{rate, openLoop(socket, "default", prefix, workload, par,
                              rate, stepS, maxReqs)};
        std::printf("[bench] offered %7.0f/s: %5llu ok, %5llu "
                    "rejected, %llu errors, p50 %.2fms p99 %.2fms "
                    "(completed %.0f/s)\n",
                    s.offered,
                    static_cast<unsigned long long>(s.r.ok),
                    static_cast<unsigned long long>(s.r.rejected),
                    static_cast<unsigned long long>(s.r.errors),
                    percentile(s.r.latMs, 0.5),
                    percentile(s.r.latMs, 0.99), s.r.completedRps());
        steps.push_back(std::move(s));
    }
    double saturationRps = 0.0;
    for (const auto &s : steps)
        saturationRps = std::max(saturationRps, s.r.completedRps());
    const Step &past = steps.back();
    bool gracefulRejection = past.r.rejected > 0 &&
                             past.r.errors == 0 &&
                             past.r.ok + past.r.rejected == past.r.sent;
    std::printf("[bench] saturation %.0f req/s; past-knee rejection "
                "%s\n",
                saturationRps, gracefulRejection ? "graceful" : "NOT "
                                                               "graceful");

    // --- Phase 3: two-tenant fairness at saturation -------------------
    // Each tenant offers 0.75x capacity (1.5x aggregate), from its own
    // connection, concurrently.
    const double fairRate = std::max(10.0, capacityRps * 0.75);
    // The fairness ratio is the noisiest acceptance number, so the
    // phase keeps its full duration even under --quick.
    const double fairS = 2.0;
    LoadResult ra, rb;
    {
        std::thread ta([&] {
            ra = openLoop(socket, "tenant-a", "a-", workload, par,
                          fairRate, fairS, maxReqs);
        });
        std::thread tb([&] {
            rb = openLoop(socket, "tenant-b", "b-", workload, par,
                          fairRate, fairS, maxReqs);
        });
        ta.join();
        tb.join();
    }
    double tputA = ra.completedRps(), tputB = rb.completedRps();
    double ratio = (tputA > 0 && tputB > 0)
                       ? std::max(tputA, tputB) / std::min(tputA, tputB)
                       : 0.0;
    std::printf("[bench] fairness: tenant-a %.0f/s, tenant-b %.0f/s "
                "(ratio %.2f)\n",
                tputA, tputB, ratio);

    // --- Final stats + (optionally) stop the in-process server --------
    std::string statsDoc;
    {
        serve::Client client(socket);
        serve::Request r;
        r.id = "stats";
        r.verb = serve::Verb::Stats;
        json::Value v = client.call(r);
        statsDoc = std::string(respStatus(v));
    }
    if (server) {
        server->requestStop();
        server->wait();
        server.reset();
    }

    // --- Report --------------------------------------------------------
    json::Writer j;
    j.beginObject();
    j.kv("schema", "sara-serve/v1");
    j.key("config")
        .beginObject()
        .kv("workers", workers)
        .kv("queue_depth", static_cast<uint64_t>(opt.queueDepth))
        .kv("external_daemon", !opt.connect.empty())
        .kv("quick", opt.quick)
        .kv("workload", workload)
        .kv("par", par)
        .endObject();
    j.key("cold_warm")
        .beginObject()
        .kv("distinct_keys", static_cast<uint64_t>(keys.size()))
        .kv("repeats", repeats)
        .kv("cold_p50_ms", coldP50)
        .kv("warm_p50_ms", warmP50)
        .kv("speedup", speedup)
        .kv("warm_cache_hits", warmCacheHits)
        .kv("warm_recompiles", warmRecompiles)
        .endObject();
    j.kv("closed_loop_service_ms", serviceMs);
    j.key("rates").beginArray();
    for (const auto &s : steps) {
        j.beginObject();
        j.kv("offered_rps", s.offered);
        j.kv("sent", s.r.sent);
        j.kv("ok", s.r.ok);
        j.kv("rejected", s.r.rejected);
        j.kv("errors", s.r.errors);
        j.kv("completed_rps", s.r.completedRps());
        j.kv("p50_ms", percentile(s.r.latMs, 0.50));
        j.kv("p99_ms", percentile(s.r.latMs, 0.99));
        j.endObject();
    }
    j.endArray();
    j.kv("saturation_rps", saturationRps);
    j.key("rejection")
        .beginObject()
        .kv("past_knee_rejected", past.r.rejected)
        .kv("past_knee_errors", past.r.errors)
        .kv("all_answered",
            past.r.ok + past.r.rejected + past.r.errors ==
                past.r.sent)
        .kv("graceful", gracefulRejection)
        .endObject();
    j.key("fairness")
        .beginObject()
        .kv("offered_rps_each", fairRate)
        .key("tenants")
        .beginArray();
    for (const auto *r : {&ra, &rb}) {
        j.beginObject();
        j.kv("tenant", r == &ra ? "tenant-a" : "tenant-b");
        j.kv("sent", r->sent);
        j.kv("ok", r->ok);
        j.kv("rejected", r->rejected);
        j.kv("throughput_rps", r->completedRps());
        j.kv("p50_ms", percentile(r->latMs, 0.50));
        j.kv("p99_ms", percentile(r->latMs, 0.99));
        j.endObject();
    }
    j.endArray();
    j.kv("throughput_ratio", ratio).endObject();
    j.endObject();

    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (!f)
        fatal("cannot write ", opt.out);
    const std::string &doc = j.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[bench] wrote %s (stats verb: %s)\n", opt.out.c_str(),
                statsDoc.c_str());

    bool pass = speedup >= 10.0 && warmRecompiles == 0 &&
                gracefulRejection && ratio > 0.0 && ratio <= 1.2;
    std::printf("[bench] acceptance: %s (speedup %.0fx, recompiles "
                "%llu, rejection %s, fairness ratio %.2f)\n",
                pass ? "PASS" : "FAIL", speedup,
                static_cast<unsigned long long>(warmRecompiles),
                gracefulRejection ? "graceful" : "broken", ratio);
    return pass ? 0 : 1;
}
