/**
 * @file
 * Chaos soak for crash-only serving. Replays seeded, deterministic
 * fault schedules against the sarad stack and asserts the crash-only
 * invariants the DESIGN doc promises (BENCH_chaos.json, schema
 * sara-chaos/v1, checked in CI):
 *
 *   Phase A — crash drills (one per seed, before any threads exist):
 *     fork a writer child that hammers the artifact cache with atomic
 *     publishes, SIGKILL it after a seed-derived 3-30 ms delay, then
 *     run the startup recovery sweep on the survivors. Acceptance:
 *     stale temps removed, at most the one in-flight entry
 *     quarantined, pre-existing entries untouched and loadable.
 *
 *   Phase B — live soak (one in-process daemon per seed): a host
 *     fault plan (torn response writes, dropped connections, a torn
 *     cache store, ENOSPC, a transient compile fault) armed with the
 *     soak seed, driven by a menagerie of clients — well-behaved
 *     reconnecting loaders, a slow-loris that stalls mid-request-line,
 *     a poison client whose 1-cycle budget trips the workload circuit
 *     breaker, an idle connection, and an overload burst past the
 *     connection cap. Acceptance per seed: zero client-observed hangs
 *     (every recv bounded), slow-loris and idle connections shed,
 *     overload answered with a structured `overloaded` line, breaker
 *     tripped, stats conservation on the drained daemon
 *     (requests == admitted + rejected, admitted == completed +
 *     errors), bounded drain, and after a restart on the same cache
 *     directory: every surviving entry loads (ok + quarantined ==
 *     scanned) and a warm request answers ok.
 *
 * Options:
 *   --seeds N   soak seeds 1..N (default 8)
 *   --quick     3 seeds, shorter load (CI smoke)
 *   --out FILE  report path (default BENCH_chaos.json)
 *
 * Exit 0 iff every drill and every soak passes every invariant.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "artifact/artifact.h"
#include "artifact/cache.h"
#include "compiler/driver.h"
#include "fault/fault.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "workloads/workload.h"

using namespace sara;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

struct ChaosOptions
{
    int seeds = 8;
    bool quick = false;
    std::string out = "BENCH_chaos.json";
};

// ---------------------------------------------------------------------------
// Raw client: like serve::Client but never fatal()s — chaos clients
// must survive injected disconnects and torn lines, and every receive
// carries a timeout that doubles as the no-hang tripwire.
// ---------------------------------------------------------------------------

struct RawClient
{
    int fd = -1;
    std::string buf;

    ~RawClient() { close(); }

    void
    close()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        buf.clear();
    }

    bool
    connectTo(const std::string &path)
    {
        close();
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            close();
            return false;
        }
        return true;
    }

    bool
    sendRaw(const std::string &bytes)
    {
        size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(n);
        }
        return true;
    }

    bool sendLine(const std::string &line) { return sendRaw(line + "\n"); }

    enum class Rx
    {
        Line,
        Eof,
        Timeout,
        Error
    };

    /** Read one newline-terminated line; a torn write (no newline,
     *  then shutdown) surfaces as Eof, never as a partial Line. */
    Rx
    recvLine(std::string &out, int timeoutMs)
    {
        auto deadline =
            Clock::now() + std::chrono::milliseconds(timeoutMs);
        for (;;) {
            size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                out = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return Rx::Line;
            }
            double remain = msBetween(Clock::now(), deadline);
            if (remain <= 0)
                return Rx::Timeout;
            pollfd p{fd, POLLIN, 0};
            int pr = ::poll(&p, 1,
                            std::min(static_cast<int>(remain) + 1, 100));
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                return Rx::Error;
            }
            if (pr == 0)
                continue;
            char tmp[4096];
            ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
            if (n == 0)
                return Rx::Eof;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return Rx::Error;
            }
            buf.append(tmp, static_cast<size_t>(n));
        }
    }
};

const char *
lineStatus(const std::string &line, std::string &scratch)
{
    try {
        json::Value v = json::parse(line);
        const json::Value *s = v.find("status");
        if (s && s->isString()) {
            scratch = s->str;
            return scratch.c_str();
        }
    } catch (const std::exception &) {
    }
    return "torn";
}

serve::Request
runRequest(const std::string &id, const std::string &tenant,
           const std::string &workload, int par, uint64_t maxCycles = 0)
{
    serve::Request r;
    r.id = id;
    r.verb = serve::Verb::Run;
    r.tenant = tenant;
    r.workload = workload;
    r.par = par;
    r.maxCycles = maxCycles;
    return r;
}

// ---------------------------------------------------------------------------
// Phase A: fork + SIGKILL crash drill against the artifact cache.
// ---------------------------------------------------------------------------

struct DrillResult
{
    uint64_t seed = 0;
    int delayMs = 0;
    int scanned = 0, ok = 0, quarantined = 0, tmpRemoved = 0;
    bool preIntact = false;
    bool pass = false;
};

DrillResult
crashDrill(uint64_t seed, const fs::path &base, const std::string &key,
           const compiler::CompileResult &result)
{
    DrillResult d;
    d.seed = seed;
    fs::path dir = base / ("drill-" + std::to_string(seed));
    fs::remove_all(dir);
    fs::create_directories(dir);

    // Two intact entries the crash must not damage.
    artifact::writeArtifactFile((dir / "pre0.sara").string(), "pre0",
                                result);
    artifact::writeArtifactFile((dir / "pre1.sara").string(), "pre1",
                                result);

    // Seed-derived kill delay: 3-30 ms, replayable.
    d.delayMs = 3 + static_cast<int>((seed * 2654435761ULL) % 28);

    pid_t pid = ::fork();
    if (pid == 0) {
        // Child: hammer the cache with atomic publishes until killed
        // mid-write. Never returns to the bench's main().
        try {
            for (uint64_t n = 0;; ++n) {
                std::string k = "inflight" + std::to_string(n % 4);
                artifact::writeArtifactFile(
                    (dir / (k + ".sara")).string(), k, result);
            }
        } catch (const std::exception &) {
        }
        ::_exit(2);
    }
    if (pid < 0)
        fatal("bench_chaos: fork failed: ", std::strerror(errno));
    sleepMs(d.delayMs);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);

    // Startup path == recovery path: sweep, then verify survivors.
    artifact::ArtifactCache cache(dir.string(), 0);
    auto st = cache.recover();
    d.scanned = st.scanned;
    d.ok = st.ok;
    d.quarantined = st.quarantined;
    d.tmpRemoved = st.tmpRemoved;

    d.preIntact = true;
    try {
        artifact::readArtifactFile((dir / "pre0.sara").string());
        artifact::readArtifactFile((dir / "pre1.sara").string());
    } catch (const std::exception &) {
        d.preIntact = false;
    }
    d.pass = d.preIntact && d.quarantined <= 1 &&
             d.ok + d.quarantined == d.scanned;
    std::printf("[chaos] drill seed %llu: kill after %d ms -> scanned "
                "%d ok %d quarantined %d tmp_removed %d %s\n",
                static_cast<unsigned long long>(seed), d.delayMs,
                d.scanned, d.ok, d.quarantined, d.tmpRemoved,
                d.pass ? "PASS" : "FAIL");
    (void)key;
    return d;
}

// ---------------------------------------------------------------------------
// Phase B: live soak.
// ---------------------------------------------------------------------------

struct ClientStats
{
    uint64_t sent = 0, ok = 0, rejected = 0, errors = 0;
    uint64_t overloaded = 0, torn = 0, reconnects = 0, connectFails = 0;
    uint64_t hangs = 0;
};

struct SoakResult
{
    uint64_t seed = 0;
    std::vector<std::string> plan;
    ClientStats load;
    ClientStats poison;
    uint64_t breakerRejects = 0;
    int lorisRounds = 0, lorisShed = 0;
    bool idleShed = false;
    uint64_t burstOverloaded = 0;
    bool drained = false;
    double drainMs = 0.0;
    bool conservedAdmission = false; ///< requests == admitted + rejected
    bool conservedOutcome = false;   ///< admitted == completed + errors
    int recScanned = 0, recOk = 0, recQuarantined = 0, recTmpRemoved = 0;
    bool cacheClean = false;
    bool restartOk = false;
    uint64_t hangs = 0;
    std::map<std::string, uint64_t> counters;
    bool pass = false;
};

void
loaderThread(const std::string &socket, const std::string &tenant,
             int requests, std::atomic<bool> *hangFlag, ClientStats *out)
{
    RawClient c;
    std::string line, scratch;
    for (int i = 0; i < requests; ++i) {
        if (c.fd < 0) {
            if (!c.connectTo(socket)) {
                ++out->connectFails;
                sleepMs(30);
                continue;
            }
            ++out->reconnects;
        }
        serve::Request r = runRequest(
            tenant + "-" + std::to_string(i), tenant, "ms", 4);
        if (!c.sendLine(r.str())) {
            c.close();
            continue;
        }
        ++out->sent;
        auto rx = c.recvLine(line, 20000);
        if (rx == RawClient::Rx::Timeout) {
            ++out->hangs;
            hangFlag->store(true);
            c.close();
            continue;
        }
        if (rx != RawClient::Rx::Line) {
            // Injected sock-drop / torn write: reconnect and move on.
            ++out->torn;
            c.close();
            continue;
        }
        std::string status = lineStatus(line, scratch);
        if (status == "ok")
            ++out->ok;
        else if (status == "rejected")
            ++out->rejected;
        else if (status == "overloaded") {
            ++out->overloaded;
            c.close();
        } else
            ++out->errors;
        sleepMs(2);
    }
}

void
poisonThread(const std::string &socket, int requests,
             std::atomic<bool> *hangFlag, ClientStats *out,
             uint64_t *breakerRejects)
{
    RawClient c;
    std::string line, scratch;
    for (int i = 0; i < requests; ++i) {
        if (c.fd < 0 && !c.connectTo(socket)) {
            ++out->connectFails;
            sleepMs(30);
            continue;
        }
        // A 1-cycle budget can never finish: every execution fails,
        // and after breaker-threshold consecutive failures the
        // workload's breaker rejects the rest for a cooldown.
        serve::Request r = runRequest("poison-" + std::to_string(i),
                                      "poison", "kmeans", 4, 1);
        if (!c.sendLine(r.str())) {
            c.close();
            continue;
        }
        ++out->sent;
        auto rx = c.recvLine(line, 20000);
        if (rx == RawClient::Rx::Timeout) {
            ++out->hangs;
            hangFlag->store(true);
            c.close();
            continue;
        }
        if (rx != RawClient::Rx::Line) {
            ++out->torn;
            c.close();
            continue;
        }
        std::string status = lineStatus(line, scratch);
        if (status == "rejected") {
            ++out->rejected;
            if (line.find("circuit breaker open") != std::string::npos)
                ++*breakerRejects;
        } else if (status == "ok")
            ++out->ok;
        else
            ++out->errors;
        sleepMs(30);
    }
}

void
lorisThread(const std::string &socket, int rounds, int *shed)
{
    for (int i = 0; i < rounds; ++i) {
        RawClient c;
        if (!c.connectTo(socket))
            continue;
        // A few bytes of a request line, then silence: the reader's
        // partial-line deadline must shed us, not wait forever.
        if (!c.sendRaw("{\"schema\":\"sara-req"))
            continue;
        std::string line;
        auto rx = c.recvLine(line, 5000);
        if (rx == RawClient::Rx::Line || rx == RawClient::Rx::Eof)
            ++*shed;
    }
}

void
idleThread(const std::string &socket, bool *shed)
{
    RawClient c;
    if (!c.connectTo(socket))
        return;
    // Connect, send nothing: the idle timeout must close us.
    std::string line;
    auto rx = c.recvLine(line, 5000);
    *shed = (rx == RawClient::Rx::Eof || rx == RawClient::Rx::Line);
}

uint64_t
overloadBurst(const std::string &socket, size_t conns)
{
    std::vector<std::unique_ptr<RawClient>> burst;
    for (size_t i = 0; i < conns; ++i) {
        auto c = std::make_unique<RawClient>();
        if (c->connectTo(socket))
            burst.push_back(std::move(c));
    }
    uint64_t overloaded = 0;
    std::string line, scratch;
    for (auto &c : burst) {
        auto rx = c->recvLine(line, 1500);
        if (rx == RawClient::Rx::Line &&
            std::string(lineStatus(line, scratch)) == "overloaded")
            ++overloaded;
        // Accepted burst conns get no response and are idle-shed;
        // either way they are closed here.
    }
    return overloaded;
}

/** requestStop + wait with a wall-clock bound; false = drain hang. */
bool
boundedDrain(serve::Server &server, double timeoutMs, double *drainMs)
{
    auto t0 = Clock::now();
    server.requestStop();
    std::atomic<bool> done{false};
    std::thread waiter([&] {
        server.wait();
        done.store(true);
    });
    while (!done.load() && msBetween(t0, Clock::now()) < timeoutMs)
        sleepMs(20);
    if (drainMs)
        *drainMs = msBetween(t0, Clock::now());
    if (!done.load()) {
        waiter.detach();
        return false;
    }
    waiter.join();
    return true;
}

SoakResult
soak(uint64_t seed, const fs::path &base, const ChaosOptions &opt)
{
    SoakResult s;
    s.seed = seed;
    s.plan = {
        "sock-torn-write@0.05", "sock-drop@0.04",
        "disk-short-write@1.0:count=1", // Tear the first cache store.
        "disk-enospc@0.4:count=1",
        "compile-fault@0.2:count=1", // Absorbed by the retry policy.
    };

    fs::path dir = base / ("soak-" + std::to_string(seed));
    fs::remove_all(dir);
    fs::create_directories(dir);

    auto &reg = telemetry::Registry::global();
    reg.setEnabled(true);
    reg.clear();

    std::vector<fault::FaultSpec> specs;
    for (const auto &t : s.plan)
        specs.push_back(fault::parseFaultSpec(t));
    fault::FaultInjector injector(std::move(specs), seed);

    serve::ServerOptions so;
    so.socketPath = (dir / "sarad.sock").string();
    so.cacheDir = (dir / "cache").string();
    so.useDiskCache = true;
    so.workers = 2;
    so.queueDepth = 8;
    so.maxConnections = 8;
    so.readDeadlineMs = 200.0;
    so.idleTimeoutMs = 400.0;
    so.requestDeadlineMs = 10000.0;
    so.breakerThreshold = 3;
    so.breakerCooldownMs = 200.0;
    so.fault = &injector;

    auto server = std::make_unique<serve::Server>(std::move(so));
    server->start();
    std::string socket = server->socketPath();
    if (!serve::waitForServer(socket, 5000))
        fatal("bench_chaos: daemon did not come up at ", socket);

    std::atomic<bool> hangFlag{false};
    const int loadReqs = opt.quick ? 30 : 80;
    const int poisonReqs = 12;
    s.lorisRounds = opt.quick ? 2 : 3;

    ClientStats loads[3];
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i)
        threads.emplace_back(loaderThread, socket,
                             "tenant-" + std::to_string(i), loadReqs,
                             &hangFlag, &loads[i]);
    threads.emplace_back(poisonThread, socket, poisonReqs, &hangFlag,
                         &s.poison, &s.breakerRejects);
    threads.emplace_back(lorisThread, socket, s.lorisRounds,
                         &s.lorisShed);
    threads.emplace_back(idleThread, socket, &s.idleShed);

    // Mid-soak overload burst: hold 2x the connection cap open at
    // once; the surplus must get a structured `overloaded` line.
    sleepMs(300);
    s.burstOverloaded = overloadBurst(socket, 16);

    for (auto &t : threads)
        t.join();
    for (const auto &l : loads) {
        s.load.sent += l.sent;
        s.load.ok += l.ok;
        s.load.rejected += l.rejected;
        s.load.errors += l.errors;
        s.load.overloaded += l.overloaded;
        s.load.torn += l.torn;
        s.load.reconnects += l.reconnects;
        s.load.connectFails += l.connectFails;
        s.load.hangs += l.hangs;
    }
    s.hangs = s.load.hangs + s.poison.hangs;

    s.drained = boundedDrain(*server, 30000.0, &s.drainMs);
    if (!s.drained) {
        // A hung drain leaks the server deliberately; tearing it down
        // would hang the bench too. The seed already failed.
        server.release();
        s.pass = false;
        return s;
    }
    server.reset();

    // Conservation over the drained daemon's counters.
    s.counters = reg.counterSnapshot();
    auto ctr = [&](const char *n) -> uint64_t {
        auto it = s.counters.find(n);
        return it == s.counters.end() ? 0 : it->second;
    };
    s.conservedAdmission = ctr("serve.requests") ==
                           ctr("serve.admitted") + ctr("serve.rejected");
    s.conservedOutcome = ctr("serve.admitted") ==
                         ctr("serve.completed") + ctr("serve.errors");

    // Crash-only restart: sweep the same cache directory, then serve
    // a warm request from it.
    {
        artifact::ArtifactCache cache((dir / "cache").string(), 0);
        auto st = cache.recover();
        s.recScanned = st.scanned;
        s.recOk = st.ok;
        s.recQuarantined = st.quarantined;
        s.recTmpRemoved = st.tmpRemoved;
        s.cacheClean = st.ok + st.quarantined == st.scanned;
    }
    {
        serve::ServerOptions ro;
        ro.socketPath = (dir / "sarad2.sock").string();
        ro.cacheDir = (dir / "cache").string();
        ro.useDiskCache = true;
        ro.workers = 2;
        serve::Server restarted(std::move(ro));
        restarted.start();
        if (serve::waitForServer(restarted.socketPath(), 5000)) {
            RawClient c;
            std::string line, scratch;
            if (c.connectTo(restarted.socketPath()) &&
                c.sendLine(
                    runRequest("restart-0", "default", "ms", 4).str())) {
                auto rx = c.recvLine(line, 20000);
                s.restartOk =
                    rx == RawClient::Rx::Line &&
                    std::string(lineStatus(line, scratch)) == "ok";
            }
        }
        if (!boundedDrain(restarted, 15000.0, nullptr))
            s.restartOk = false;
    }

    s.pass = s.hangs == 0 && !hangFlag.load() && s.drained &&
             s.conservedAdmission && s.conservedOutcome &&
             s.lorisShed == s.lorisRounds && s.idleShed &&
             s.burstOverloaded >= 1 && ctr("serve.breaker.tripped") >= 1 &&
             s.cacheClean && s.restartOk;

    std::printf(
        "[chaos] soak seed %llu: load %llu/%llu ok, poison "
        "%llu err + %llu breaker-rejects, loris %d/%d shed, idle %s, "
        "burst overloaded %llu, drain %.0f ms, recovery %d/%d ok "
        "(%d quarantined), restart %s -> %s\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(s.load.ok),
        static_cast<unsigned long long>(s.load.sent),
        static_cast<unsigned long long>(s.poison.errors),
        static_cast<unsigned long long>(s.breakerRejects), s.lorisShed,
        s.lorisRounds, s.idleShed ? "shed" : "NOT-SHED",
        static_cast<unsigned long long>(s.burstOverloaded), s.drainMs,
        s.recOk, s.recScanned, s.recQuarantined,
        s.restartOk ? "ok" : "FAILED", s.pass ? "PASS" : "FAIL");
    return s;
}

void
writeClientStats(json::Writer &j, const char *key, const ClientStats &c)
{
    j.key(key)
        .beginObject()
        .kv("sent", c.sent)
        .kv("ok", c.ok)
        .kv("rejected", c.rejected)
        .kv("errors", c.errors)
        .kv("overloaded", c.overloaded)
        .kv("torn", c.torn)
        .kv("reconnects", c.reconnects)
        .kv("connect_fails", c.connectFails)
        .kv("hangs", c.hangs)
        .endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    ChaosOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--seeds")
            opt.seeds = std::stoi(next());
        else if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--out")
            opt.out = next();
        else
            fatal("unknown bench option ", arg);
    }
    if (opt.quick)
        opt.seeds = std::min(opt.seeds, 3);
    if (opt.seeds < 1)
        fatal("--seeds must be >= 1");

    std::signal(SIGPIPE, SIG_IGN);
    telemetry::Registry::global().setEnabled(true);

    fs::path base = fs::temp_directory_path() / "sara-bench-chaos";
    fs::remove_all(base);
    fs::create_directories(base);

    // One compile feeds every crash drill; it runs before any fork()
    // and before any thread exists (fork safety).
    workloads::WorkloadConfig cfg;
    cfg.par = 4;
    auto w = workloads::buildByName("ms", cfg);
    compiler::CompilerOptions copt;
    copt.spec = arch::PlasticineSpec::paper();
    auto result = compiler::compile(w.program, copt);
    std::string key = artifact::contentKey(w.program, copt);

    std::printf("[chaos] %d seeds%s, scratch %s\n", opt.seeds,
                opt.quick ? " (quick)" : "", base.string().c_str());

    std::vector<DrillResult> drills;
    for (int seedN = 1; seedN <= opt.seeds; ++seedN)
        drills.push_back(crashDrill(static_cast<uint64_t>(seedN), base,
                                    key, result));

    std::vector<SoakResult> soaks;
    for (int seedN = 1; seedN <= opt.seeds; ++seedN)
        soaks.push_back(soak(static_cast<uint64_t>(seedN), base, opt));

    bool drillsPass = true, soaksPass = true;
    for (const auto &d : drills)
        drillsPass = drillsPass && d.pass;
    for (const auto &s : soaks)
        soaksPass = soaksPass && s.pass;
    bool pass = drillsPass && soaksPass;

    json::Writer j;
    j.beginObject();
    j.kv("schema", "sara-chaos/v1");
    j.key("config")
        .beginObject()
        .kv("seeds", static_cast<uint64_t>(opt.seeds))
        .kv("quick", opt.quick)
        .endObject();
    j.key("drills").beginArray();
    for (const auto &d : drills) {
        j.beginObject();
        j.kv("seed", d.seed);
        j.kv("kill_delay_ms", d.delayMs);
        j.kv("scanned", d.scanned);
        j.kv("ok", d.ok);
        j.kv("quarantined", d.quarantined);
        j.kv("tmp_removed", d.tmpRemoved);
        j.kv("pre_entries_intact", d.preIntact);
        j.kv("pass", d.pass);
        j.endObject();
    }
    j.endArray();
    j.key("soaks").beginArray();
    for (const auto &s : soaks) {
        j.beginObject();
        j.kv("seed", s.seed);
        j.key("fault_plan").beginArray();
        for (const auto &p : s.plan)
            j.value(p);
        j.endArray();
        writeClientStats(j, "load", s.load);
        writeClientStats(j, "poison", s.poison);
        j.kv("breaker_rejects_observed", s.breakerRejects);
        j.kv("loris_rounds", s.lorisRounds);
        j.kv("loris_shed", s.lorisShed);
        j.kv("idle_shed", s.idleShed);
        j.kv("burst_overloaded", s.burstOverloaded);
        j.kv("drained", s.drained);
        j.kv("drain_ms", s.drainMs);
        j.kv("conserved_admission", s.conservedAdmission);
        j.kv("conserved_outcome", s.conservedOutcome);
        j.key("recovery")
            .beginObject()
            .kv("scanned", s.recScanned)
            .kv("ok", s.recOk)
            .kv("quarantined", s.recQuarantined)
            .kv("tmp_removed", s.recTmpRemoved)
            .endObject();
        j.kv("cache_clean", s.cacheClean);
        j.kv("restart_ok", s.restartOk);
        j.kv("hangs", s.hangs);
        j.key("counters").beginObject();
        for (const char *n :
             {"serve.requests", "serve.admitted", "serve.rejected",
              "serve.completed", "serve.errors", "serve.overloaded",
              "serve.shed.slowloris", "serve.shed.idle",
              "serve.watchdog.cancelled", "serve.breaker.tripped",
              "serve.breaker.rejected", "serve.fault.sock_drop",
              "serve.fault.sock_torn", "artifact.cache.quarantined",
              "artifact.cache.fault.enospc",
              "artifact.cache.fault.short_write",
              "artifact.cache.tmp_removed"}) {
            auto it = s.counters.find(n);
            j.kv(n, it == s.counters.end() ? uint64_t(0) : it->second);
        }
        j.endObject();
        j.kv("pass", s.pass);
        j.endObject();
    }
    j.endArray();
    j.kv("pass", pass);
    j.endObject();

    std::FILE *f = std::fopen(opt.out.c_str(), "w");
    if (!f)
        fatal("cannot write ", opt.out);
    const std::string &doc = j.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[chaos] wrote %s\n", opt.out.c_str());
    std::printf("[chaos] acceptance: %s (%d drills %s, %d soaks %s)\n",
                pass ? "PASS" : "FAIL", static_cast<int>(drills.size()),
                drillsPass ? "pass" : "FAIL",
                static_cast<int>(soaks.size()),
                soaksPass ? "pass" : "FAIL");
    return pass ? 0 : 1;
}
