/**
 * @file
 * Table VI reproduction: SARA on Plasticine vs. a Tesla V100.
 *
 * The GPU side is the calibrated analytical roofline of
 * baseline/gpu_model.h (DESIGN.md substitution #3): the environment
 * has no GPU, so per-kernel-class efficiency factors stand in for
 * TensorFlow/cuDNN, GunRock, and CUDA measurements. The Plasticine
 * side is our cycle-level simulation at 1 GHz. The paper's shape:
 * 1.9x geo-mean for SARA; V100 wins absolute snet throughput but
 * loses area-normalized (Plasticine is 8.3x smaller); rf/ms/pr win
 * big on dataflow execution and flexible parallelism.
 */

#include "baseline/gpu_model.h"
#include "bench/bench_common.h"

using namespace sara;
using namespace sara::bench;

int
main()
{
    banner("Table VI: SARA (Plasticine 20x20, 1 GHz, HBM2) vs Tesla "
           "V100 (analytical)");

    auto gpu = baseline::GpuSpec::v100();
    Table t({"app", "RDA us", "V100 us", "speedup", "area-norm",
             "GPU bound", "note"});
    std::vector<double> speedups;
    for (const std::string name :
         {"snet", "lstm", "pr", "bs", "sort", "rf", "ms"}) {
        workloads::WorkloadConfig cfg;
        cfg.par = name == "sort" ? 16 : 128;
        if (name == "bs")
            cfg.scale = 32;
        else if (name == "ms")
            cfg.scale = 8;
        else if (name == "snet" || name == "pr" || name == "rf")
            cfg.scale = 4;
        else if (name == "lstm" || name == "sort")
            cfg.scale = 2;
        auto w = workloads::buildByName(name, cfg);

        runtime::RunConfig rc;
        rc.compiler.spec = arch::PlasticineSpec::paper();
        rc.compiler.pnrIterations = 2000;
        auto r = runtime::runWorkload(w, rc);

        auto prof = baseline::profileFor(name);
        auto est = baseline::estimateGpu(gpu, prof, w.nominalFlops,
                                         nominalBytes(w));
        double speedup = est.timeUs / r.timeUs();
        speedups.push_back(speedup);
        double areaNorm = speedup * gpu.areaRatioVsPlasticine;
        t.addRow({name, Table::fmt(r.timeUs(), 1),
                  Table::fmt(est.timeUs, 1), Table::fmtX(speedup),
                  w.computeBound ? Table::fmtX(areaNorm) : "-",
                  est.computeBound ? "compute" : "memory", prof.note});
    }
    std::printf("%s", t.str().c_str());
    std::printf("geo-mean speedup: %.2fx (paper: 1.9x geo-mean over "
                "V100 at 12%% of the silicon area)\n",
                geomean(speedups));
    return 0;
}
