/**
 * @file
 * Quickstart: build a tiny tiled pipeline with the imperative Builder
 * API, compile it with SARA, run it on the cycle-level Plasticine
 * simulator, and validate the result against the sequential
 * interpreter.
 *
 *   c[i] = 2 * a[i] + b[i]  over 8 tiles of 64 elements.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/driver.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "sim/simulator.h"

using namespace sara;
using namespace sara::ir;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Write the program against the single-threaded imperative
    //    abstraction (the Spatial-like nested-loop IR).
    // ------------------------------------------------------------------
    const int64_t tiles = 8, tile = 64, n = tiles * tile;
    Program p;
    Builder b(p);

    auto a = p.addTensor("a", MemSpace::Dram, n);
    auto bv = p.addTensor("b", MemSpace::Dram, n);
    auto c = p.addTensor("c", MemSpace::Dram, n);
    auto bufA = p.addTensor("bufA", MemSpace::OnChip, tile);
    auto bufB = p.addTensor("bufB", MemSpace::OnChip, tile);
    auto bufC = p.addTensor("bufC", MemSpace::OnChip, tile);

    auto t = b.beginLoop("t", 0, tiles);
    {
        // Load stage: DRAM -> scratchpads (vectorized by 16 lanes).
        auto li = b.beginLoop("ld", 0, tile, 1, /*par=*/16);
        b.beginBlock("load");
        auto addr = b.add(b.mul(b.iter(t), b.cst(double(tile))),
                          b.iter(li));
        b.write(bufA, b.iter(li), b.read(a, addr));
        b.write(bufB, b.iter(li), b.read(bv, addr));
        b.endBlock();
        b.endLoop();

        // Compute stage.
        auto ci = b.beginLoop("fma", 0, tile, 1, /*par=*/16);
        b.beginBlock("mac");
        auto va = b.read(bufA, b.iter(ci));
        auto vb = b.read(bufB, b.iter(ci));
        b.write(bufC, b.iter(ci), b.mac(va, b.cst(2.0), vb));
        b.endBlock();
        b.endLoop();

        // Store stage. The three stages of each tile overlap with
        // neighbouring tiles through CMMC multibuffering.
        auto si = b.beginLoop("st", 0, tile, 1, /*par=*/16);
        b.beginBlock("store");
        auto oaddr = b.add(b.mul(b.iter(t), b.cst(double(tile))),
                           b.iter(si));
        b.write(c, oaddr, b.read(bufC, b.iter(si)));
        b.endBlock();
        b.endLoop();
    }
    b.endLoop();

    // ------------------------------------------------------------------
    // 2. Compile: unroll -> dataflow lowering + CMMC -> partition ->
    //    merge -> place & route.
    // ------------------------------------------------------------------
    compiler::CompilerOptions opt;
    opt.spec = arch::PlasticineSpec::paper();
    auto compiled = compiler::compile(p, opt);
    std::printf("compiled: %s\n",
                compiled.lowering.graph.summary().c_str());
    std::printf("resources: %s\n", compiled.resources.str().c_str());
    std::printf("CMMC: %d tokens, %d credits, %d multibuffered, "
                "%d fifo-lowered tensors\n",
                compiled.lowering.stats.tokens,
                compiled.lowering.stats.credits,
                compiled.lowering.stats.multibufferedTensors,
                compiled.lowering.stats.fifoLoweredTensors);

    // ------------------------------------------------------------------
    // 3. Simulate with real data and compare against the sequential
    //    interpreter (CMMC's correctness contract).
    // ------------------------------------------------------------------
    std::vector<double> dataA(n), dataB(n);
    for (int64_t i = 0; i < n; ++i) {
        dataA[i] = static_cast<double>(i % 97);
        dataB[i] = static_cast<double>(i % 31);
    }

    sim::Simulator simulator(compiled.program, compiled.lowering.graph,
                             dram::DramSpec::hbm2());
    simulator.setDramTensor(a, dataA);
    simulator.setDramTensor(bv, dataB);
    auto result = simulator.run();

    ir::Interpreter interp(compiled.program);
    interp.setTensor(a, dataA);
    interp.setTensor(bv, dataB);
    auto ref = interp.run();

    int mismatches = 0;
    for (int64_t i = 0; i < n; ++i)
        if (result.tensors[c.index()][i] != ref.tensors[c.index()][i])
            ++mismatches;

    std::printf("simulated %llu cycles (%.2f us @1GHz), %.1f GB/s DRAM, "
                "%llu firings\n",
                static_cast<unsigned long long>(result.cycles),
                result.cycles / 1e3, result.dramAchievedBytesPerCycle,
                static_cast<unsigned long long>(result.totalFirings));
    std::printf("verification: %s\n",
                mismatches == 0 ? "PASS (matches sequential semantics)"
                                : "FAIL");
    return mismatches == 0 ? 0 : 1;
}
