/**
 * @file
 * PageRank from scratch against the public API: demonstrates the
 * data-dependent control features of §III-A2 — per-vertex dynamic
 * loop bounds read from the CSR offsets, indirect gathers through the
 * neighbor list, and a do-while convergence loop that terminates when
 * the rank delta drops below a threshold (the paper's iterative-
 * convergence pattern).
 *
 *   ./build/examples/pagerank [vertices]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "compiler/driver.h"
#include "ir/builder.h"
#include "sim/simulator.h"
#include "support/rng.h"

using namespace sara;
using namespace sara::ir;

int
main(int argc, char **argv)
{
    const int64_t V = argc > 1 ? std::atoll(argv[1]) : 128;
    Rng rng(7);

    // Synthetic CSR graph.
    std::vector<double> offs(V + 1), nbrs, invDeg(V, 0.0);
    for (int64_t v = 0; v < V; ++v) {
        offs[v] = static_cast<double>(nbrs.size());
        int64_t deg = rng.intIn(1, 8);
        for (int64_t e = 0; e < deg; ++e)
            nbrs.push_back(static_cast<double>(rng.index(V)));
    }
    offs[V] = static_cast<double>(nbrs.size());
    std::vector<double> outDeg(V, 0.0);
    for (double u : nbrs)
        outDeg[static_cast<int64_t>(u)] += 1.0;
    for (int64_t v = 0; v < V; ++v)
        invDeg[v] = outDeg[v] > 0 ? 1.0 / outDeg[v] : 0.0;
    const auto E = static_cast<int64_t>(nbrs.size());

    Program p;
    Builder b(p);
    auto dOffs = p.addTensor("offs", MemSpace::Dram, V + 1);
    auto dNbr = p.addTensor("nbr", MemSpace::Dram, E);
    auto dInv = p.addTensor("inv", MemSpace::Dram, V);
    auto dRank = p.addTensor("rank", MemSpace::Dram, V);

    auto offsb = p.addTensor("offsb", MemSpace::OnChip, V + 1);
    auto nbrb = p.addTensor("nbrb", MemSpace::OnChip, E);
    auto invb = p.addTensor("invb", MemSpace::OnChip, V);
    auto rk = p.addTensor("rk", MemSpace::OnChip, V);
    auto rkNew = p.addTensor("rkNew", MemSpace::OnChip, V);

    auto emitCopy = [&](TensorId src, TensorId dst, int64_t n,
                        const std::string &name) {
        auto l = b.beginLoop(name, 0, n, 1, 16);
        b.beginBlock(name + "_b");
        b.write(dst, b.iter(l), b.read(src, b.iter(l)));
        b.endBlock();
        b.endLoop();
    };
    emitCopy(dOffs, offsb, V + 1, "ldo");
    emitCopy(dNbr, nbrb, E, "ldn");
    emitCopy(dInv, invb, V, "ldi");
    {
        auto l = b.beginLoop("init", 0, V, 1, 16);
        b.beginBlock("init_b");
        b.write(rk, b.iter(l), b.cst(1.0 / V));
        b.endBlock();
        b.endLoop();
    }

    // Do-while convergence loop: iterate until the total |delta|
    // drops under the threshold (data-dependent termination — the
    // accelerator runs autonomously with no host intervention).
    auto W = b.beginWhile("converge");
    {
        auto v = b.beginLoop("v", 0, V, 1, /*par=*/4);
        b.beginBlock("bounds");
        auto start = b.read(offsb, b.iter(v));
        auto end = b.read(offsb, b.add(b.iter(v), b.cst(1.0)));
        b.endBlock();
        // Dynamic inner bounds (§III-A2a): min and max stream in.
        auto e = b.beginLoopDyn("e", Bound::dynamic(start),
                                Bound::dynamic(end), Bound(1));
        b.beginBlock("gather");
        auto nid = b.read(nbrb, b.iter(e)); // Indirect gather.
        auto contrib = b.mul(b.read(rk, nid), b.read(invb, nid));
        auto sum = b.reduce(OpKind::RedAdd, contrib, e);
        b.endBlock();
        b.endLoop();
        b.beginBlock("update");
        auto newRank =
            b.add(b.cst(0.15 / V), b.mul(b.cst(0.85), sum));
        b.write(rkNew, b.iter(v), newRank);
        auto delta =
            b.unary(OpKind::Abs, b.sub(newRank, b.read(rk, b.iter(v))));
        auto total = b.reduce(OpKind::RedAdd, delta, v);
        b.endBlock();
        b.endLoop();

        // Publish: rk <- rkNew, then decide whether to iterate again.
        auto c = b.beginLoop("pub", 0, V, 1, 16);
        b.beginBlock("pub_b");
        b.write(rk, b.iter(c), b.read(rkNew, b.iter(c)));
        b.endBlock();
        b.endLoop();
        b.beginBlock("decide");
        auto cont = b.binary(OpKind::CmpGt, total, b.cst(1e-3));
        b.endBlock();
        b.endWhile(cont);
    }
    emitCopy(rk, dRank, V, "str");

    compiler::CompilerOptions opt;
    opt.spec = arch::PlasticineSpec::paper();
    auto compiled = compiler::compile(p, opt);

    sim::Simulator simulator(compiled.program, compiled.lowering.graph,
                             dram::DramSpec::hbm2());
    simulator.setDramTensor(dOffs, offs);
    simulator.setDramTensor(dNbr, nbrs);
    simulator.setDramTensor(dInv, invDeg);
    auto r = simulator.run();

    double total = 0.0;
    for (int64_t v = 0; v < V; ++v)
        total += r.tensors[dRank.index()][v];
    std::printf("pagerank over %lld vertices / %lld edges: %llu cycles "
                "(%.1f us @1GHz)\n",
                static_cast<long long>(V), static_cast<long long>(E),
                static_cast<unsigned long long>(r.cycles),
                r.cycles / 1e3);
    std::printf("rank mass = %.6f (should be ~1.0), graph: %s\n", total,
                compiled.lowering.graph.summary().c_str());
    return total > 0.9 && total < 1.1 ? 0 : 1;
}
