/**
 * @file
 * Scaling study (the paper's headline result, §IV-A): compile the
 * single-batch mlp workload at increasing par factors and watch
 * performance scale across the 420 distributed units until on-chip
 * resources saturate.
 *
 *   ./build/examples/mlp_scaling [max_par]
 */

#include <cstdio>
#include <cstdlib>

#include "runtime/run.h"
#include "support/table.h"

using namespace sara;

int
main(int argc, char **argv)
{
    int maxPar = argc > 1 ? std::atoi(argv[1]) : 128;

    Table t({"par", "cycles", "speedup", "GFLOPS", "PCU", "PMU",
             "util"});
    double base = 0.0;
    for (int par = 1; par <= maxPar; par *= 2) {
        workloads::WorkloadConfig cfg;
        cfg.par = par;
        auto w = workloads::buildMlp(cfg);

        runtime::RunConfig rc;
        rc.compiler.spec = arch::PlasticineSpec::paper();
        rc.check = true; // Validate against the interpreter each run.
        auto r = runtime::runWorkload(w, rc);
        if (!r.correct) {
            std::fprintf(stderr, "verification failed at par %d\n", par);
            return 1;
        }
        if (base == 0.0)
            base = static_cast<double>(r.sim.cycles);
        t.addRow({std::to_string(par), std::to_string(r.sim.cycles),
                  Table::fmtX(base / r.sim.cycles),
                  Table::fmt(r.gflops(), 1),
                  std::to_string(r.compiled.resources.pcus),
                  std::to_string(r.compiled.resources.pmus),
                  Table::fmt(r.sim.avgComputeUtilization, 2)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nEach row is verified against the sequential "
                "interpreter; speedup comes from spatially pipelining "
                "the CFG (CMMC) and unrolling the layer loops.\n");
    return 0;
}
