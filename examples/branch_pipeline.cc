/**
 * @file
 * The paper's Fig. 4 scenario: an outer branch whose clauses contain
 * whole loops. Even iterations of the outer loop write a scratchpad;
 * odd iterations read it back out. Under CMMC the disabled clause
 * skips and forwards its tokens immediately, so the if and else
 * clauses overlap and the runtime approaches N*L/2 instead of N*L.
 *
 *   ./build/examples/branch_pipeline
 */

#include <cstdio>

#include "compiler/driver.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "sim/simulator.h"

using namespace sara;
using namespace sara::ir;

namespace {

/** Build Fig. 4: branched when `branched`, both-bodies otherwise. */
Program
build(bool branched, int64_t n, int64_t m)
{
    Program p;
    Builder b(p);
    auto mem = p.addTensor("mem", MemSpace::OnChip, m);
    auto out = p.addTensor("out", MemSpace::Dram, n * m);

    auto A = b.beginLoop("A", 0, n);
    b.beginBlock("cond");
    auto even = b.binary(OpKind::CmpEq, b.mod(b.iter(A), b.cst(2.0)),
                         b.cst(0.0));
    b.endBlock();

    auto writeBody = [&]() {
        auto D = b.beginLoop("D", 0, m, 1, 16);
        b.beginBlock("wr");
        b.write(mem, b.iter(D), b.add(b.iter(A), b.iter(D)));
        b.endBlock();
        b.endLoop();
    };
    auto readBody = [&]() {
        auto F = b.beginLoop("F", 0, m, 1, 16);
        b.beginBlock("rd");
        auto addr = b.add(b.mul(b.iter(A), b.cst(double(m))), b.iter(F));
        b.write(out, addr, b.read(mem, b.iter(F)));
        b.endBlock();
        b.endLoop();
    };

    if (branched) {
        b.beginBranch("C", even);
        writeBody();
        b.elseClause();
        readBody();
        b.endBranch();
    } else {
        writeBody();
        readBody();
    }
    b.endLoop();
    return p;
}

uint64_t
simulate(const Program &p)
{
    compiler::CompilerOptions opt;
    opt.spec = arch::PlasticineSpec::paper();
    auto compiled = compiler::compile(p, opt);
    sim::Simulator simulator(compiled.program, compiled.lowering.graph,
                             dram::DramSpec::hbm2());
    auto r = simulator.run();
    return r.cycles;
}

} // namespace

int
main()
{
    const int64_t n = 32, m = 256;
    uint64_t branched = simulate(build(true, n, m));
    uint64_t both = simulate(build(false, n, m));

    std::printf("Fig. 4 branch pipelining (N=%lld outer iterations, "
                "L=%lld-element loops):\n",
                static_cast<long long>(n), static_cast<long long>(m));
    std::printf("  branched (each clause on half the iterations): "
                "%llu cycles\n",
                static_cast<unsigned long long>(branched));
    std::printf("  both bodies every iteration:                   "
                "%llu cycles\n",
                static_cast<unsigned long long>(both));
    std::printf("  ratio %.2f (skipped clauses forward their CMMC "
                "tokens immediately, so if/else iterations overlap)\n",
                static_cast<double>(both) / branched);
    return branched < both ? 0 : 1;
}
