file(REMOVE_RECURSE
  "CMakeFiles/test_cmmc.dir/test_cmmc.cc.o"
  "CMakeFiles/test_cmmc.dir/test_cmmc.cc.o.d"
  "test_cmmc"
  "test_cmmc.pdb"
  "test_cmmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
