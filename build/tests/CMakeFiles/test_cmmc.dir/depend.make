# Empty dependencies file for test_cmmc.
# This may be replaced when dependencies are built.
