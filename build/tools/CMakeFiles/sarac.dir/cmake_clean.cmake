file(REMOVE_RECURSE
  "CMakeFiles/sarac.dir/sarac.cc.o"
  "CMakeFiles/sarac.dir/sarac.cc.o.d"
  "sarac"
  "sarac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
