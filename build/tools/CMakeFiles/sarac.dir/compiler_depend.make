# Empty compiler generated dependencies file for sarac.
# This may be replaced when dependencies are built.
