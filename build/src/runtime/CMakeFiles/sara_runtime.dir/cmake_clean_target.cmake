file(REMOVE_RECURSE
  "libsara_runtime.a"
)
