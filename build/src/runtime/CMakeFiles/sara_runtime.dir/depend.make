# Empty dependencies file for sara_runtime.
# This may be replaced when dependencies are built.
