file(REMOVE_RECURSE
  "CMakeFiles/sara_runtime.dir/run.cc.o"
  "CMakeFiles/sara_runtime.dir/run.cc.o.d"
  "libsara_runtime.a"
  "libsara_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
