# Empty dependencies file for sara_baseline.
# This may be replaced when dependencies are built.
