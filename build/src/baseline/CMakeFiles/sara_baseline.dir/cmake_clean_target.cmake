file(REMOVE_RECURSE
  "libsara_baseline.a"
)
