
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/gpu_model.cc" "src/baseline/CMakeFiles/sara_baseline.dir/gpu_model.cc.o" "gcc" "src/baseline/CMakeFiles/sara_baseline.dir/gpu_model.cc.o.d"
  "/root/repo/src/baseline/pc_workloads.cc" "src/baseline/CMakeFiles/sara_baseline.dir/pc_workloads.cc.o" "gcc" "src/baseline/CMakeFiles/sara_baseline.dir/pc_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/sara_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sara_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
