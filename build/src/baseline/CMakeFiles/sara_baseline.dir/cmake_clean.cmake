file(REMOVE_RECURSE
  "CMakeFiles/sara_baseline.dir/gpu_model.cc.o"
  "CMakeFiles/sara_baseline.dir/gpu_model.cc.o.d"
  "CMakeFiles/sara_baseline.dir/pc_workloads.cc.o"
  "CMakeFiles/sara_baseline.dir/pc_workloads.cc.o.d"
  "libsara_baseline.a"
  "libsara_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
