file(REMOVE_RECURSE
  "CMakeFiles/sara_ir.dir/affine.cc.o"
  "CMakeFiles/sara_ir.dir/affine.cc.o.d"
  "CMakeFiles/sara_ir.dir/builder.cc.o"
  "CMakeFiles/sara_ir.dir/builder.cc.o.d"
  "CMakeFiles/sara_ir.dir/interp.cc.o"
  "CMakeFiles/sara_ir.dir/interp.cc.o.d"
  "CMakeFiles/sara_ir.dir/op.cc.o"
  "CMakeFiles/sara_ir.dir/op.cc.o.d"
  "CMakeFiles/sara_ir.dir/program.cc.o"
  "CMakeFiles/sara_ir.dir/program.cc.o.d"
  "libsara_ir.a"
  "libsara_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
