file(REMOVE_RECURSE
  "libsara_ir.a"
)
