# Empty dependencies file for sara_ir.
# This may be replaced when dependencies are built.
