
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cc" "src/ir/CMakeFiles/sara_ir.dir/affine.cc.o" "gcc" "src/ir/CMakeFiles/sara_ir.dir/affine.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/sara_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/sara_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/ir/CMakeFiles/sara_ir.dir/interp.cc.o" "gcc" "src/ir/CMakeFiles/sara_ir.dir/interp.cc.o.d"
  "/root/repo/src/ir/op.cc" "src/ir/CMakeFiles/sara_ir.dir/op.cc.o" "gcc" "src/ir/CMakeFiles/sara_ir.dir/op.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/sara_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/sara_ir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sara_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
