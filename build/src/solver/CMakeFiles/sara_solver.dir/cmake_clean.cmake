file(REMOVE_RECURSE
  "CMakeFiles/sara_solver.dir/mip.cc.o"
  "CMakeFiles/sara_solver.dir/mip.cc.o.d"
  "libsara_solver.a"
  "libsara_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
