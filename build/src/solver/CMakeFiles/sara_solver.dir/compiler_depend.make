# Empty compiler generated dependencies file for sara_solver.
# This may be replaced when dependencies are built.
