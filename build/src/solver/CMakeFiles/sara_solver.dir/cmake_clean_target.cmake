file(REMOVE_RECURSE
  "libsara_solver.a"
)
