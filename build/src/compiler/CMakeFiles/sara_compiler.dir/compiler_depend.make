# Empty compiler generated dependencies file for sara_compiler.
# This may be replaced when dependencies are built.
