
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/sara_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/cmmc.cc" "src/compiler/CMakeFiles/sara_compiler.dir/cmmc.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/cmmc.cc.o.d"
  "/root/repo/src/compiler/driver.cc" "src/compiler/CMakeFiles/sara_compiler.dir/driver.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/driver.cc.o.d"
  "/root/repo/src/compiler/duplicate.cc" "src/compiler/CMakeFiles/sara_compiler.dir/duplicate.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/duplicate.cc.o.d"
  "/root/repo/src/compiler/lowering.cc" "src/compiler/CMakeFiles/sara_compiler.dir/lowering.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/lowering.cc.o.d"
  "/root/repo/src/compiler/merging.cc" "src/compiler/CMakeFiles/sara_compiler.dir/merging.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/merging.cc.o.d"
  "/root/repo/src/compiler/partition.cc" "src/compiler/CMakeFiles/sara_compiler.dir/partition.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/partition.cc.o.d"
  "/root/repo/src/compiler/pnr.cc" "src/compiler/CMakeFiles/sara_compiler.dir/pnr.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/pnr.cc.o.d"
  "/root/repo/src/compiler/retime.cc" "src/compiler/CMakeFiles/sara_compiler.dir/retime.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/retime.cc.o.d"
  "/root/repo/src/compiler/unroll.cc" "src/compiler/CMakeFiles/sara_compiler.dir/unroll.cc.o" "gcc" "src/compiler/CMakeFiles/sara_compiler.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/sara_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sara_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sara_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sara_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
