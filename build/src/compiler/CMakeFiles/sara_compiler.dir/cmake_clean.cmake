file(REMOVE_RECURSE
  "CMakeFiles/sara_compiler.dir/analysis.cc.o"
  "CMakeFiles/sara_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/sara_compiler.dir/cmmc.cc.o"
  "CMakeFiles/sara_compiler.dir/cmmc.cc.o.d"
  "CMakeFiles/sara_compiler.dir/driver.cc.o"
  "CMakeFiles/sara_compiler.dir/driver.cc.o.d"
  "CMakeFiles/sara_compiler.dir/duplicate.cc.o"
  "CMakeFiles/sara_compiler.dir/duplicate.cc.o.d"
  "CMakeFiles/sara_compiler.dir/lowering.cc.o"
  "CMakeFiles/sara_compiler.dir/lowering.cc.o.d"
  "CMakeFiles/sara_compiler.dir/merging.cc.o"
  "CMakeFiles/sara_compiler.dir/merging.cc.o.d"
  "CMakeFiles/sara_compiler.dir/partition.cc.o"
  "CMakeFiles/sara_compiler.dir/partition.cc.o.d"
  "CMakeFiles/sara_compiler.dir/pnr.cc.o"
  "CMakeFiles/sara_compiler.dir/pnr.cc.o.d"
  "CMakeFiles/sara_compiler.dir/retime.cc.o"
  "CMakeFiles/sara_compiler.dir/retime.cc.o.d"
  "CMakeFiles/sara_compiler.dir/unroll.cc.o"
  "CMakeFiles/sara_compiler.dir/unroll.cc.o.d"
  "libsara_compiler.a"
  "libsara_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
