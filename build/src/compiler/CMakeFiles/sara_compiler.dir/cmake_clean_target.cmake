file(REMOVE_RECURSE
  "libsara_compiler.a"
)
