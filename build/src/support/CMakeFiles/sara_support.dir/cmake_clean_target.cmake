file(REMOVE_RECURSE
  "libsara_support.a"
)
