# Empty dependencies file for sara_support.
# This may be replaced when dependencies are built.
