file(REMOVE_RECURSE
  "CMakeFiles/sara_support.dir/digraph.cc.o"
  "CMakeFiles/sara_support.dir/digraph.cc.o.d"
  "CMakeFiles/sara_support.dir/logging.cc.o"
  "CMakeFiles/sara_support.dir/logging.cc.o.d"
  "CMakeFiles/sara_support.dir/table.cc.o"
  "CMakeFiles/sara_support.dir/table.cc.o.d"
  "libsara_support.a"
  "libsara_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
