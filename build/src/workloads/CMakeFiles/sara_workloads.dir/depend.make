# Empty dependencies file for sara_workloads.
# This may be replaced when dependencies are built.
