
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/analytics.cc" "src/workloads/CMakeFiles/sara_workloads.dir/analytics.cc.o" "gcc" "src/workloads/CMakeFiles/sara_workloads.dir/analytics.cc.o.d"
  "/root/repo/src/workloads/dl.cc" "src/workloads/CMakeFiles/sara_workloads.dir/dl.cc.o" "gcc" "src/workloads/CMakeFiles/sara_workloads.dir/dl.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/sara_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/sara_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/streaming.cc" "src/workloads/CMakeFiles/sara_workloads.dir/streaming.cc.o" "gcc" "src/workloads/CMakeFiles/sara_workloads.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sara_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
