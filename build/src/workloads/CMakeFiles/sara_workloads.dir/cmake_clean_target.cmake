file(REMOVE_RECURSE
  "libsara_workloads.a"
)
