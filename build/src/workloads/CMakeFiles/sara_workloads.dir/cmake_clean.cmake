file(REMOVE_RECURSE
  "CMakeFiles/sara_workloads.dir/analytics.cc.o"
  "CMakeFiles/sara_workloads.dir/analytics.cc.o.d"
  "CMakeFiles/sara_workloads.dir/dl.cc.o"
  "CMakeFiles/sara_workloads.dir/dl.cc.o.d"
  "CMakeFiles/sara_workloads.dir/registry.cc.o"
  "CMakeFiles/sara_workloads.dir/registry.cc.o.d"
  "CMakeFiles/sara_workloads.dir/streaming.cc.o"
  "CMakeFiles/sara_workloads.dir/streaming.cc.o.d"
  "libsara_workloads.a"
  "libsara_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
