# Empty compiler generated dependencies file for sara_sim.
# This may be replaced when dependencies are built.
