file(REMOVE_RECURSE
  "CMakeFiles/sara_sim.dir/simulator.cc.o"
  "CMakeFiles/sara_sim.dir/simulator.cc.o.d"
  "libsara_sim.a"
  "libsara_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
