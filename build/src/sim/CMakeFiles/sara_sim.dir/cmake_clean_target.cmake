file(REMOVE_RECURSE
  "libsara_sim.a"
)
