file(REMOVE_RECURSE
  "libsara_arch.a"
)
