# Empty compiler generated dependencies file for sara_arch.
# This may be replaced when dependencies are built.
