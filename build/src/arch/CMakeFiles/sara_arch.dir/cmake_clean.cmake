file(REMOVE_RECURSE
  "CMakeFiles/sara_arch.dir/area.cc.o"
  "CMakeFiles/sara_arch.dir/area.cc.o.d"
  "CMakeFiles/sara_arch.dir/plasticine.cc.o"
  "CMakeFiles/sara_arch.dir/plasticine.cc.o.d"
  "libsara_arch.a"
  "libsara_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
