file(REMOVE_RECURSE
  "libsara_dfg.a"
)
