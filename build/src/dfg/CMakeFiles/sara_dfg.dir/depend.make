# Empty dependencies file for sara_dfg.
# This may be replaced when dependencies are built.
