file(REMOVE_RECURSE
  "CMakeFiles/sara_dfg.dir/vudfg.cc.o"
  "CMakeFiles/sara_dfg.dir/vudfg.cc.o.d"
  "libsara_dfg.a"
  "libsara_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
