file(REMOVE_RECURSE
  "libsara_dram.a"
)
