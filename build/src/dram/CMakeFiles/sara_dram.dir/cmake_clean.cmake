file(REMOVE_RECURSE
  "CMakeFiles/sara_dram.dir/dram.cc.o"
  "CMakeFiles/sara_dram.dir/dram.cc.o.d"
  "libsara_dram.a"
  "libsara_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sara_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
