# Empty dependencies file for sara_dram.
# This may be replaced when dependencies are built.
