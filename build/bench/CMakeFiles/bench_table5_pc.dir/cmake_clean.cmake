file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_pc.dir/bench_table5_pc.cc.o"
  "CMakeFiles/bench_table5_pc.dir/bench_table5_pc.cc.o.d"
  "bench_table5_pc"
  "bench_table5_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
