# Empty dependencies file for bench_table5_pc.
# This may be replaced when dependencies are built.
