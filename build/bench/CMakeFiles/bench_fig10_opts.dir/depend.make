# Empty dependencies file for bench_fig10_opts.
# This may be replaced when dependencies are built.
