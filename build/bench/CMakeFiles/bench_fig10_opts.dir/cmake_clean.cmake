file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_opts.dir/bench_fig10_opts.cc.o"
  "CMakeFiles/bench_fig10_opts.dir/bench_fig10_opts.cc.o.d"
  "bench_fig10_opts"
  "bench_fig10_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
