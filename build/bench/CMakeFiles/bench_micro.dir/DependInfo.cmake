
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/sara_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sara_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sara_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/sara_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sara_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/sara_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/sara_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sara_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sara_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sara_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
