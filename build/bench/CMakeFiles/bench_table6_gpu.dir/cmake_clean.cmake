file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_gpu.dir/bench_table6_gpu.cc.o"
  "CMakeFiles/bench_table6_gpu.dir/bench_table6_gpu.cc.o.d"
  "bench_table6_gpu"
  "bench_table6_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
