# Empty compiler generated dependencies file for branch_pipeline.
# This may be replaced when dependencies are built.
