file(REMOVE_RECURSE
  "CMakeFiles/branch_pipeline.dir/branch_pipeline.cc.o"
  "CMakeFiles/branch_pipeline.dir/branch_pipeline.cc.o.d"
  "branch_pipeline"
  "branch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
