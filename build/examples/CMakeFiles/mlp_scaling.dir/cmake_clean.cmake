file(REMOVE_RECURSE
  "CMakeFiles/mlp_scaling.dir/mlp_scaling.cc.o"
  "CMakeFiles/mlp_scaling.dir/mlp_scaling.cc.o.d"
  "mlp_scaling"
  "mlp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
