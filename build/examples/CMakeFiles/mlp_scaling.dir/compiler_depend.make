# Empty compiler generated dependencies file for mlp_scaling.
# This may be replaced when dependencies are built.
