#ifndef SARA_SERVE_SERVER_H
#define SARA_SERVE_SERVER_H

/**
 * @file
 * sarad — the resident compile-and-simulate service. Composes the
 * existing libraries into a long-running daemon:
 *
 *   - transport: newline-delimited JSON (src/serve/protocol) over a
 *     Unix-domain stream socket; one reader thread per connection,
 *     responses matched to requests by client-chosen id (a pipelined
 *     connection may see them out of order).
 *   - admission control: a bounded jobs::FairQueue. When the backlog
 *     hits the configured depth, requests are rejected immediately
 *     with a structured `rejected` response carrying a retry_after_ms
 *     hint derived from the observed service rate — the daemon never
 *     queues unboundedly and never hangs a client.
 *   - fairness: weighted stride scheduling across the per-request
 *     `tenant` field (jobs::FairQueue); equal-weight tenants at equal
 *     offered load complete within a hair of each other even at
 *     saturation.
 *   - dedup + warm caches: compiles go through an in-memory LRU of
 *     decoded CompileResults keyed by the artifact SHA-256 content
 *     key, then artifact::CachingCompiler (in-flight dedup + the
 *     on-disk artifact cache). A repeat request is served at memory
 *     speed without recompiling.
 *   - failure isolation: worker exceptions become structured `error`
 *     responses (HangError carries the full FailureReport JSON);
 *     TransientErrors are retried with linear backoff like the batch
 *     runner. A poisoned request can never take the daemon down.
 *   - crash-only serving: connections are bounded (overflow gets a
 *     structured `overloaded` line, never an unbounded reader thread);
 *     reader loops poll with deadlines — a slow-loris client that
 *     stalls mid-request-line, or an idle client past its timeout, is
 *     shed with a structured error. A watchdog thread enforces a
 *     per-request wall-clock deadline by cancelling the simulation
 *     (cooperative cancel flag polled per simulated cycle) and turns
 *     the resulting FailureReport (flight-recorder timeline included)
 *     into an error response — the worker thread and daemon survive.
 *     A per-workload circuit breaker trips after repeated poison
 *     failures and rejects further requests for that workload until a
 *     cool-down elapses (half-open: one probe request re-tests it).
 *     Socket fault injection (sock-torn-write, sock-drop) tears
 *     response writes to prove clients and daemon survive.
 *   - observability: the `stats` verb snapshots the global metrics
 *     registry plus per-tenant admission/latency statistics
 *     (p50/p99 from log-bucketed histograms) — a live endpoint, not a
 *     post-mortem report — plus connection, watchdog, breaker and
 *     artifact-cache (quarantine) sections.
 */

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "artifact/cache.h"
#include "jobs/fair.h"
#include "serve/protocol.h"

namespace sara::serve {

/** Log-bucketed latency histogram: bucket k counts samples in
 *  [2^k, 2^(k+1)) microseconds. Quantiles report the bucket upper
 *  bound — coarse, but monotone and allocation-free. */
class LatencyHisto
{
  public:
    void
    record(double ms)
    {
        double us = ms * 1e3;
        size_t b = 0;
        while (b + 1 < buckets_.size() && us >= double(2ULL << b))
            ++b;
        ++buckets_[b];
        ++count_;
        sumMs_ += ms;
    }

    uint64_t count() const { return count_; }
    double meanMs() const { return count_ ? sumMs_ / count_ : 0.0; }

    /** q in [0,1]; returns the upper bound (ms) of the bucket holding
     *  the q-quantile sample (0 when empty). */
    double
    quantileMs(double q) const
    {
        if (!count_)
            return 0.0;
        uint64_t rank = static_cast<uint64_t>(q * (count_ - 1)) + 1;
        uint64_t seen = 0;
        for (size_t b = 0; b < buckets_.size(); ++b) {
            seen += buckets_[b];
            if (seen >= rank)
                return double(2ULL << b) / 1e3;
        }
        return double(2ULL << (buckets_.size() - 1)) / 1e3;
    }

  private:
    std::array<uint64_t, 40> buckets_{};
    uint64_t count_ = 0;
    double sumMs_ = 0.0;
};

/** Daemon configuration. */
struct ServerOptions
{
    std::string socketPath = "sarad.sock";
    /** Worker threads; 0 = hardware concurrency. */
    int workers = 0;
    /** Admission bound: max queued (not yet executing) requests. */
    size_t queueDepth = 64;
    /** On-disk artifact cache directory; empty = in-memory LRU only. */
    std::string cacheDir;
    bool useDiskCache = false;
    /** Decoded-result LRU entries held in memory. */
    size_t memCacheEntries = 64;
    /** Total attempts for TransientError requests (1 = no retry). */
    int maxAttempts = 2;
    double retryBackoffMs = 2.0;
    /** Simulator cycle budget applied when a request doesn't set one. */
    uint64_t defaultMaxCycles = 0;
    /** Region-parallel event core: worker threads per simulation
     *  (1 = sequential). Parallel runs stay cycle-identical; requests
     *  whose graph or mode can't split fall back per-request and the
     *  stats verb reports the fallback share. The watchdog's
     *  cooperative cancel flag is polled each cycle by every region
     *  thread, so deadlines hold under parallel execution too. */
    int simThreads = 1;
    /** Per-tenant scheduling weights (absent tenants weigh 1.0). */
    std::map<std::string, double> tenantWeights;

    // --- Crash-only serving knobs ------------------------------------
    /** Concurrent connection bound; the overflow connection gets one
     *  structured `overloaded` response and is closed (no reader
     *  thread is ever spawned for it). */
    size_t maxConnections = 256;
    /** How long a partial request line may sit without progress before
     *  the connection is shed (slow-loris defense). 0 = no deadline. */
    double readDeadlineMs = 30000.0;
    /** Idle shed: connections with no outstanding requests and no
     *  received bytes for this long are closed. 0 = never. */
    double idleTimeoutMs = 0.0;
    /** Watchdog: wall-clock deadline per admitted request. A request
     *  still executing past it is cancelled (cooperative flag polled
     *  by the simulator each cycle) and answered with a structured
     *  error carrying the FailureReport. 0 = watchdog off. */
    double requestDeadlineMs = 0.0;
    /** Circuit breaker: consecutive failures of one workload that trip
     *  its breaker. 0 = breaker off. */
    int breakerThreshold = 8;
    /** How long a tripped breaker rejects before half-opening. */
    double breakerCooldownMs = 1000.0;
    /** Host-level fault injection (disk faults into the artifact
     *  cache, socket faults into response writes, compile faults into
     *  the compiler). Not owned; may be null. */
    const fault::FaultInjector *fault = nullptr;
};

/** The resident service. start() binds and spawns threads; wait()
 *  blocks until a shutdown request (or requestStop()) drains the
 *  daemon. Construction is cheap and throws nothing; start() fatal()s
 *  when the socket cannot be bound. */
class Server
{
  public:
    explicit Server(ServerOptions opt);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    void start();
    void wait();
    /** Idempotent; also triggered by the shutdown verb. */
    void requestStop();
    bool stopping() const { return stopping_.load(); }

    const std::string &socketPath() const { return opt_.socketPath; }
    int workers() const { return workers_; }

    /** The stats payload (a JSON object, not a full response line) —
     *  shared by the stats verb and tests. */
    std::string statsJson() const;

  private:
    struct Conn;
    struct Ticket
    {
        Request req;
        std::shared_ptr<Conn> conn;
        std::chrono::steady_clock::time_point enqueued;
    };
    struct TenantStats
    {
        uint64_t admitted = 0;
        uint64_t completed = 0;
        uint64_t rejected = 0;
        uint64_t errors = 0;
        LatencyHisto queueMs;
        LatencyHisto serviceMs;
        LatencyHisto totalMs;
    };

    /** One executing request, registered for the watchdog. */
    struct Inflight
    {
        std::atomic<bool> cancel{false};
        std::chrono::steady_clock::time_point started;
        std::string id;
        std::string workload;
    };
    /** Per-workload circuit breaker state. */
    struct Breaker
    {
        int consecutiveFailures = 0;
        bool open = false;
        bool probeInFlight = false; ///< Half-open: one request re-tests.
        std::chrono::steady_clock::time_point openedAt;
        uint64_t trips = 0;
        uint64_t rejected = 0;
    };

    void acceptLoop();
    void reapReaders();
    void readerLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void watchdogLoop();
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void execute(const Ticket &ticket);
    std::string executeCompileOrRun(const Request &req, double queueMs,
                                    double &serviceMs,
                                    const std::atomic<bool> *cancel);
    void sendLine(const std::shared_ptr<Conn> &conn,
                  const std::string &line);
    double retryAfterHintMs() const;
    /** Breaker admission check; fills `line` with the rejection when
     *  the workload's breaker is open. */
    bool breakerAllows(const Request &req, std::string &line);
    void breakerRecord(const std::string &workload, bool failed);

    ServerOptions opt_;
    int workers_ = 0;
    int listenFd_ = -1;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};

    jobs::FairQueue<Ticket> queue_;
    std::unique_ptr<artifact::ArtifactCache> cache_;
    std::unique_ptr<artifact::CachingCompiler> compiler_;

    // In-memory LRU of decoded compile results, keyed by content key.
    mutable std::mutex memMu_;
    struct MemEntry
    {
        std::shared_ptr<const compiler::CompileResult> result;
        uint64_t lastUse = 0;
    };
    std::map<std::string, MemEntry> mem_;
    uint64_t memTick_ = 0;
    std::shared_ptr<const compiler::CompileResult>
    memLookup(const std::string &key);
    void memStore(const std::string &key,
                  std::shared_ptr<const compiler::CompileResult> r);

    // Tenant statistics + service-rate EWMA for retry hints.
    mutable std::mutex statsMu_;
    std::map<std::string, TenantStats> tenants_;
    double ewmaServiceMs_ = 10.0;
    std::chrono::steady_clock::time_point epoch_;
    // Region-parallel simulation accounting (guarded by statsMu_):
    // how many Run requests actually split vs fell back, and the
    // aggregate barrier-wait ratio over the parallel ones.
    uint64_t parallelRuns_ = 0;
    uint64_t parallelFallbacks_ = 0;
    double barrierWaitSum_ = 0.0;

    // Watchdog registry of executing requests.
    mutable std::mutex inflightMu_;
    std::map<uint64_t, std::shared_ptr<Inflight>> inflight_;
    uint64_t inflightSeq_ = 0;
    std::atomic<bool> watchdogStop_{false};
    std::thread watchdogThread_;

    // Per-workload circuit breakers.
    mutable std::mutex breakerMu_;
    std::map<std::string, Breaker> breakers_;

    // Startup cache-recovery outcome (disk cache only).
    artifact::ArtifactCache::RecoveryStats recovery_;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;
    // Reader threads paired with their connection; finished readers
    // are reaped (joined + erased) by the accept loop, so the daemon
    // never accumulates dead threads across connection churn.
    mutable std::mutex connMu_;
    std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> readers_;
    uint64_t connSeq_ = 0;
};

} // namespace sara::serve

#endif // SARA_SERVE_SERVER_H
