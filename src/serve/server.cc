#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "fault/failure.h"
#include "runtime/run.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "workloads/workload.h"

namespace sara::serve {

namespace {

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

void
count(const char *name, uint64_t delta = 1)
{
    telemetry::Registry::global().add(name, delta);
}

} // namespace

/** One accepted connection: the fd plus a write lock so worker and
 *  reader threads interleave whole response lines, never bytes. */
struct Server::Conn
{
    int fd = -1;
    uint64_t id = 0;
    std::string site; ///< Injection site name ("conn-<id>").
    std::mutex writeMu;
    std::atomic<bool> open{true};
    /** Reader thread exited; the accept loop reaps (joins) it. */
    std::atomic<bool> readerDone{false};
    /** Admitted requests not yet answered — an idle check must not
     *  shed a client that is just waiting for its response. */
    std::atomic<int> outstanding{0};

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), queue_(opt_.queueDepth)
{
    workers_ = opt_.workers;
    if (workers_ <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers_ = hw == 0 ? 2 : static_cast<int>(hw);
    }
    for (const auto &[tenant, weight] : opt_.tenantWeights)
        queue_.setWeight(tenant, weight);
    epoch_ = std::chrono::steady_clock::now();
}

Server::~Server()
{
    requestStop();
    if (started_.load())
        wait();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
Server::start()
{
    SARA_ASSERT(!started_.load(), "serve: start() called twice");
    telemetry::Registry::global().setEnabled(true);

    if (opt_.useDiskCache) {
        cache_ = std::make_unique<artifact::ArtifactCache>(
            opt_.cacheDir);
        inform("sarad: artifact cache at ", cache_->dir());
        // Crash-only discipline: the recovery path is the startup
        // path. Sweep before any worker can read or write an entry.
        recovery_ = cache_->recover();
        if (opt_.fault)
            cache_->setFaultInjector(opt_.fault);
    }
    compiler_ =
        std::make_unique<artifact::CachingCompiler>(cache_.get());
    if (opt_.fault)
        compiler_->setFaultInjector(opt_.fault);

    if (opt_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        fatal("sarad: socket path too long: ", opt_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("sarad: socket(): ", std::strerror(errno));
    ::unlink(opt_.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("sarad: bind(", opt_.socketPath,
              "): ", std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("sarad: listen(): ", std::strerror(errno));

    started_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workerThreads_.reserve(workers_);
    for (int i = 0; i < workers_; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
    if (opt_.requestDeadlineMs > 0)
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    inform("sarad: serving on ", opt_.socketPath, " with ", workers_,
           " workers, queue depth ", opt_.queueDepth,
           ", connection bound ", opt_.maxConnections);
}

void
Server::requestStop()
{
    if (stopping_.exchange(true))
        return;
    queue_.stop();
}

void
Server::wait()
{
    SARA_ASSERT(started_.load(), "serve: wait() before start()");
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Workers drain the admitted backlog, then exit on the stopped
    // queue's nullopt. The watchdog stays alive through the drain so a
    // stuck request cannot wedge shutdown.
    for (auto &w : workerThreads_)
        if (w.joinable())
            w.join();
    watchdogStop_.store(true);
    if (watchdogThread_.joinable())
        watchdogThread_.join();
    // Unblock readers parked in poll()/recv() and collect them.
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (const auto &[c, t] : readers_)
            if (c->open.load())
                ::shutdown(c->fd, SHUT_RDWR);
    }
    for (;;) {
        std::pair<std::shared_ptr<Conn>, std::thread> r;
        {
            std::lock_guard<std::mutex> lock(connMu_);
            if (readers_.empty())
                break;
            r = std::move(readers_.back());
            readers_.pop_back();
        }
        if (r.second.joinable())
            r.second.join();
    }
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    started_.store(false);
    inform("sarad: drained and stopped");
}

void
Server::reapReaders()
{
    // Join and drop finished reader threads so connection churn never
    // accumulates dead threads. Joins happen outside the lock.
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (auto it = readers_.begin(); it != readers_.end();) {
            if (it->first->readerDone.load()) {
                done.push_back(std::move(it->second));
                it = readers_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &t : done)
        if (t.joinable())
            t.join();
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 100);
        reapReaders();
        if (n <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        size_t active = 0;
        {
            // Count live readers only: a disconnected client whose
            // thread has finished but is not yet reaped must not hold
            // a connection slot against new arrivals.
            std::lock_guard<std::mutex> lock(connMu_);
            for (const auto &[c, t] : readers_)
                if (!c->readerDone.load())
                    ++active;
        }
        if (opt_.maxConnections > 0 && active >= opt_.maxConnections) {
            // Bounded connections: answer with a structured shed and
            // close — never spawn an unbounded reader thread.
            std::string line =
                overloadedResponse(retryAfterHintMs()) + "\n";
            ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
            ::close(fd);
            count("serve.overloaded");
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(connMu_);
            conn->id = ++connSeq_;
            conn->site = "conn-" + std::to_string(conn->id);
            readers_.emplace_back(conn, std::thread([this, conn] {
                                      readerLoop(conn);
                                  }));
        }
        count("serve.connections");
    }
}

void
Server::sendLine(const std::shared_ptr<Conn> &conn,
                 const std::string &line)
{
    if (!conn->open.load())
        return;
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (opt_.fault && opt_.fault->sockDrop(conn->site)) {
        // Injected: the connection dies before the response line.
        count("serve.fault.sock_drop");
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->open.store(false);
        return;
    }
    std::string buf = line + "\n";
    if (opt_.fault && opt_.fault->sockTornWrite(conn->site)) {
        // Injected: the write tears mid-line (no newline ever
        // arrives) and the connection drops — the client must treat
        // the partial line as a dead connection, never parse it.
        count("serve.fault.sock_torn");
        size_t keep = std::max<size_t>(1, buf.size() / 2);
        ::send(conn->fd, buf.data(), keep, MSG_NOSIGNAL);
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->open.store(false);
        return;
    }
    size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::send(conn->fd, buf.data() + off,
                           buf.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            // Peer vanished mid-response; drop the rest. The request
            // side effects (cache stores) are already complete.
            conn->open.store(false);
            return;
        }
        off += static_cast<size_t>(n);
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn)
{
    constexpr size_t kMaxLine = 1 << 20;
    constexpr int kPollMs = 20;
    std::string pending;
    char buf[4096];
    auto lastBytes = std::chrono::steady_clock::now();
    auto partialSince = lastBytes;
    // On shutdown the reader exits but must NOT mark the connection
    // closed: workers are still draining the admitted backlog and
    // their responses flow through this connection.
    bool keepOpen = false;
    while (conn->open.load()) {
        if (stopping_.load()) {
            // Final drain: requests the client already sent (buffered
            // in the socket or in `pending`) still deserve structured
            // answers — the stopped queue turns them into rejects.
            // Only immediately-available bytes count; nobody waits.
            for (;;) {
                pollfd pfd{conn->fd, POLLIN, 0};
                if (::poll(&pfd, 1, 0) <= 0)
                    break;
                ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
                if (n <= 0)
                    break;
                pending.append(buf, static_cast<size_t>(n));
            }
            size_t start = 0;
            for (size_t nl; (nl = pending.find('\n', start)) !=
                            std::string::npos;
                 start = nl + 1) {
                std::string line = pending.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (!line.empty())
                    handleLine(conn, line);
            }
            keepOpen = true;
            break;
        }
        pollfd pfd{conn->fd, POLLIN, 0};
        int p = ::poll(&pfd, 1, kPollMs);
        if (p < 0)
            break;
        auto now = std::chrono::steady_clock::now();
        if (p == 0) {
            // Deadline tick. A stalled partial request line is a
            // slow-loris; a quiet connection with nothing in flight
            // may be shed as idle. Both get one structured line so
            // the client knows why it was cut.
            if (!pending.empty() && opt_.readDeadlineMs > 0 &&
                msBetween(partialSince, now) > opt_.readDeadlineMs) {
                count("serve.shed.slowloris");
                sendLine(conn,
                         errorResponse("", "read deadline exceeded: "
                                           "partial request line"));
                break;
            }
            if (pending.empty() && opt_.idleTimeoutMs > 0 &&
                conn->outstanding.load() == 0 &&
                msBetween(lastBytes, now) > opt_.idleTimeoutMs) {
                count("serve.shed.idle");
                sendLine(conn, errorResponse(
                                   "", "idle timeout: shedding "
                                       "connection"));
                break;
            }
            continue;
        }
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        if (pending.empty())
            partialSince = now;
        lastBytes = now;
        pending.append(buf, static_cast<size_t>(n));
        size_t start = 0;
        for (size_t nl; (nl = pending.find('\n', start)) !=
                        std::string::npos;
             start = nl + 1) {
            std::string line = pending.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(conn, line);
        }
        pending.erase(0, start);
        // The deadline covers the *current* partial line: every byte
        // of progress resets it, so only a genuinely stalled client
        // trips it.
        if (!pending.empty())
            partialSince = now;
        if (pending.size() > kMaxLine) {
            sendLine(conn, errorResponse(
                               "", "request line exceeds 1 MiB"));
            break;
        }
    }
    if (!keepOpen)
        conn->open.store(false);
    conn->readerDone.store(true);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    Request req;
    try {
        req = parseRequest(line);
    } catch (const std::exception &e) {
        count("serve.parse_errors");
        sendLine(conn, errorResponse("", e.what()));
        return;
    }

    switch (req.verb) {
    case Verb::Stats: {
        // Served inline on the reader thread: observability must not
        // queue behind the work it is observing.
        ResponseBuilder b(req.id, "ok");
        b.kv("verb", "stats").raw("stats", statsJson());
        sendLine(conn, b.str());
        return;
    }
    case Verb::Shutdown: {
        sendLine(conn,
                 ResponseBuilder(req.id, "ok")
                     .kv("verb", "shutdown")
                     .str());
        inform("sarad: shutdown requested by client");
        requestStop();
        return;
    }
    case Verb::Compile:
    case Verb::Run:
        break;
    }

    // Conservation invariant (asserted by the chaos harness): every
    // well-formed compile/run request is counted exactly once here and
    // lands in exactly one of admitted / rejected.
    count("serve.requests");

    std::string breakerLine;
    if (!breakerAllows(req, breakerLine)) {
        count("serve.rejected");
        count("serve.breaker.rejected");
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++tenants_[req.tenant].rejected;
        }
        sendLine(conn, breakerLine);
        return;
    }

    Ticket t{req, conn, std::chrono::steady_clock::now()};
    if (!queue_.tryPush(req.tenant, std::move(t))) {
        count("serve.rejected");
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++tenants_[req.tenant].rejected;
        }
        sendLine(conn, rejectedResponse(req.id, retryAfterHintMs()));
        return;
    }
    conn->outstanding.fetch_add(1);
    count("serve.admitted");
    std::lock_guard<std::mutex> lock(statsMu_);
    ++tenants_[req.tenant].admitted;
}

bool
Server::breakerAllows(const Request &req, std::string &line)
{
    if (opt_.breakerThreshold <= 0)
        return true;
    auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(breakerMu_);
    auto it = breakers_.find(req.workload);
    if (it == breakers_.end() || !it->second.open)
        return true;
    Breaker &b = it->second;
    double sinceOpen = msBetween(b.openedAt, now);
    if (sinceOpen >= opt_.breakerCooldownMs && !b.probeInFlight) {
        // Half-open: let exactly one probe through to re-test the
        // workload; everyone else keeps getting rejected until the
        // probe's outcome closes or re-trips the breaker.
        b.probeInFlight = true;
        return true;
    }
    ++b.rejected;
    double retryMs =
        std::max(1.0, opt_.breakerCooldownMs - sinceOpen);
    line = breakerResponse(req.id, req.workload, retryMs);
    return false;
}

void
Server::breakerRecord(const std::string &workload, bool failed)
{
    if (opt_.breakerThreshold <= 0)
        return;
    std::lock_guard<std::mutex> lock(breakerMu_);
    Breaker &b = breakers_[workload];
    if (!failed) {
        b.consecutiveFailures = 0;
        if (b.open)
            inform("sarad: circuit breaker for '", workload,
                   "' closed (probe succeeded)");
        b.open = false;
        b.probeInFlight = false;
        return;
    }
    ++b.consecutiveFailures;
    if (b.open) {
        // The half-open probe failed: stay open, restart cool-down.
        b.openedAt = std::chrono::steady_clock::now();
        b.probeInFlight = false;
        return;
    }
    if (b.consecutiveFailures >= opt_.breakerThreshold) {
        b.open = true;
        b.probeInFlight = false;
        b.openedAt = std::chrono::steady_clock::now();
        ++b.trips;
        count("serve.breaker.tripped");
        warn("sarad: circuit breaker tripped for workload '", workload,
             "' after ", b.consecutiveFailures,
             " consecutive failures; cooling down ",
             opt_.breakerCooldownMs, " ms");
    }
}

double
Server::retryAfterHintMs() const
{
    // A full queue drains in ~depth/workers service times; suggest a
    // fraction of that so retries spread instead of thundering.
    std::lock_guard<std::mutex> lock(statsMu_);
    double drainMs = ewmaServiceMs_ *
                     static_cast<double>(opt_.queueDepth) /
                     std::max(1, workers_);
    return std::max(1.0, drainMs / 4.0);
}

void
Server::workerLoop()
{
    while (true) {
        std::optional<Ticket> t = queue_.pop();
        if (!t)
            return;
        execute(*t);
    }
}

void
Server::watchdogLoop()
{
    // Wall-clock deadline enforcement: scan the inflight registry and
    // raise the cancel flag on any request executing past the
    // deadline. The simulator polls the flag each simulated cycle and
    // surfaces the cancellation as a classified FailureReport — the
    // worker thread survives, the daemon keeps serving.
    const auto tick = std::chrono::milliseconds(
        std::max(1, static_cast<int>(opt_.requestDeadlineMs / 8)));
    while (!watchdogStop_.load()) {
        std::this_thread::sleep_for(
            std::min<std::chrono::milliseconds>(
                tick, std::chrono::milliseconds(50)));
        auto now = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(inflightMu_);
        for (auto &[seq, fl] : inflight_) {
            if (fl->cancel.load())
                continue;
            if (msBetween(fl->started, now) > opt_.requestDeadlineMs) {
                fl->cancel.store(true);
                count("serve.watchdog.cancelled");
                warn("sarad: watchdog cancelling request '", fl->id,
                     "' (", fl->workload, "): past ",
                     opt_.requestDeadlineMs, " ms deadline");
            }
        }
    }
}

std::shared_ptr<const compiler::CompileResult>
Server::memLookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(memMu_);
    auto it = mem_.find(key);
    if (it == mem_.end()) {
        count("serve.memcache.miss");
        return nullptr;
    }
    it->second.lastUse = ++memTick_;
    count("serve.memcache.hit");
    return it->second.result;
}

void
Server::memStore(const std::string &key,
                 std::shared_ptr<const compiler::CompileResult> r)
{
    std::lock_guard<std::mutex> lock(memMu_);
    mem_[key] = MemEntry{std::move(r), ++memTick_};
    while (mem_.size() > opt_.memCacheEntries) {
        auto lru = mem_.begin();
        for (auto it = mem_.begin(); it != mem_.end(); ++it)
            if (it->second.lastUse < lru->second.lastUse)
                lru = it;
        mem_.erase(lru);
        count("serve.memcache.evict");
    }
}

std::string
Server::executeCompileOrRun(const Request &req, double queueMs,
                            double &serviceMs,
                            const std::atomic<bool> *cancel)
{
    auto t0 = std::chrono::steady_clock::now();
    workloads::WorkloadConfig cfg;
    cfg.par = req.par;
    cfg.scale = req.scale;
    workloads::Workload w = workloads::buildByName(req.workload, cfg);

    compiler::CompilerOptions copt; // Server-wide defaults.
    std::string key = artifact::contentKey(w.program, copt);

    bool fromCache = false, deduped = false;
    std::shared_ptr<const compiler::CompileResult> compiled =
        memLookup(key);
    if (compiled) {
        fromCache = true;
    } else {
        // Disk probe + in-flight dedup + compile, with the batch
        // runner's transient-retry semantics.
        for (int attempt = 1;; ++attempt) {
            try {
                auto c = compiler_->compile(w.program, copt);
                fromCache = c.fromCache;
                deduped = c.deduped;
                compiled = std::make_shared<compiler::CompileResult>(
                    std::move(c.result));
                break;
            } catch (const TransientError &e) {
                if (attempt >= opt_.maxAttempts)
                    throw;
                count("serve.retried");
                warn("sarad: transient failure for ", req.workload,
                     " (attempt ", attempt, "/", opt_.maxAttempts,
                     "): ", e.what());
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        opt_.retryBackoffMs * attempt));
            }
        }
        memStore(key, compiled);
    }

    ResponseBuilder b(req.id, "ok");
    b.kv("verb", verbName(req.verb))
        .kv("tenant", req.tenant)
        .kv("workload", req.workload)
        .kv("key", key)
        .kv("from_cache", fromCache)
        .kv("deduped", deduped);

    if (req.verb == Verb::Run) {
        runtime::RunConfig rc;
        rc.compiler = copt;
        rc.check = req.check;
        rc.sim.useNoc = req.noc;
        rc.sim.hangDiagnosis = true;
        // Every region thread of the parallel core polls this flag
        // each cycle, so the watchdog deadline holds at any
        // --sim-threads setting.
        rc.sim.cancel = cancel;
        rc.sim.simThreads = opt_.simThreads;
        if (req.maxCycles)
            rc.sim.maxCycles = req.maxCycles;
        else if (opt_.defaultMaxCycles)
            rc.sim.maxCycles = opt_.defaultMaxCycles;
        rc.preCompiled = compiled.get();
        runtime::RunOutcome r = runtime::runWorkload(w, rc);
        b.kv("cycles", r.sim.cycles)
            .kv("time_us", r.timeUs())
            .kv("gflops", r.gflops())
            .kv("dram_gbs", r.dramGBs())
            .kv("sim_threads", r.sim.simThreads)
            .kv("barrier_wait_ratio", r.sim.barrierWaitRatio);
        if (r.sim.parallelFallback)
            b.kv("fallback_reason", r.sim.fallbackReason);
        if (r.checked)
            b.kv("correct", r.correct);
        if (opt_.simThreads > 1) {
            std::lock_guard<std::mutex> lock(statsMu_);
            if (r.sim.parallelFallback) {
                ++parallelFallbacks_;
            } else {
                ++parallelRuns_;
                barrierWaitSum_ += r.sim.barrierWaitRatio;
            }
        }
    }

    serviceMs = msBetween(t0, std::chrono::steady_clock::now());
    b.kv("queue_ms", queueMs).kv("service_ms", serviceMs);
    return b.str();
}

void
Server::execute(const Ticket &ticket)
{
    auto popped = std::chrono::steady_clock::now();
    double queueMs = msBetween(ticket.enqueued, popped);
    double serviceMs = 0.0;
    std::string response;
    bool failed = false;

    // Register with the watchdog for the whole execution.
    std::shared_ptr<Inflight> fl;
    uint64_t flSeq = 0;
    if (opt_.requestDeadlineMs > 0) {
        fl = std::make_shared<Inflight>();
        fl->started = popped;
        fl->id = ticket.req.id;
        fl->workload = ticket.req.workload;
        std::lock_guard<std::mutex> lock(inflightMu_);
        flSeq = ++inflightSeq_;
        inflight_.emplace(flSeq, fl);
    }

    try {
        response = executeCompileOrRun(ticket.req, queueMs, serviceMs,
                                       fl ? &fl->cancel : nullptr);
    } catch (const fault::HangError &e) {
        // Structured escalation: the classified FailureReport rides
        // inside the error response; the daemon keeps serving. A
        // watchdog cancellation surfaces here too, flagged on the
        // report so clients can tell a deadline kill from a hang.
        failed = true;
        const char *msg = e.report().cancelled
                              ? "request deadline exceeded: cancelled "
                                "by watchdog (see report)"
                              : "simulation hang: see report";
        response = ResponseBuilder(ticket.req.id, "error")
                       .kv("error", msg)
                       .raw("failure_report", e.report().json())
                       .str();
    } catch (const std::exception &e) {
        failed = true;
        response = errorResponse(ticket.req.id, e.what());
    } catch (...) {
        failed = true;
        response =
            errorResponse(ticket.req.id, "unknown internal error");
    }

    if (fl) {
        std::lock_guard<std::mutex> lock(inflightMu_);
        inflight_.erase(flSeq);
    }
    breakerRecord(ticket.req.workload, failed);

    if (failed)
        count("serve.errors");
    else
        count("serve.completed");

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        TenantStats &ts = tenants_[ticket.req.tenant];
        if (failed) {
            ++ts.errors;
        } else {
            ++ts.completed;
            ts.queueMs.record(queueMs);
            ts.serviceMs.record(serviceMs);
            ts.totalMs.record(queueMs + serviceMs);
            ewmaServiceMs_ =
                0.9 * ewmaServiceMs_ + 0.1 * std::max(0.01, serviceMs);
        }
    }
    sendLine(ticket.conn, response);
    ticket.conn->outstanding.fetch_sub(1);
}

std::string
Server::statsJson() const
{
    auto &reg = telemetry::Registry::global();
    json::Writer j;
    j.beginObject();
    j.kv("uptime_ms",
         msBetween(epoch_, std::chrono::steady_clock::now()));
    j.kv("workers", workers_);
    j.kv("queue_depth", static_cast<uint64_t>(queue_.depth()));
    j.kv("queue_limit", static_cast<uint64_t>(queue_.maxDepth()));

    j.key("connections").beginObject();
    {
        size_t active = 0;
        {
            std::lock_guard<std::mutex> lock(connMu_);
            for (const auto &[c, t] : readers_)
                if (!c->readerDone.load())
                    ++active;
        }
        j.kv("active", static_cast<uint64_t>(active));
        j.kv("limit", static_cast<uint64_t>(opt_.maxConnections));
        j.kv("read_deadline_ms", opt_.readDeadlineMs);
        j.kv("idle_timeout_ms", opt_.idleTimeoutMs);
    }
    j.endObject();

    j.key("watchdog").beginObject();
    {
        j.kv("enabled", opt_.requestDeadlineMs > 0);
        j.kv("request_deadline_ms", opt_.requestDeadlineMs);
        size_t executing;
        {
            std::lock_guard<std::mutex> lock(inflightMu_);
            executing = inflight_.size();
        }
        j.kv("executing", static_cast<uint64_t>(executing));
    }
    j.endObject();

    j.key("parallel_sim").beginObject();
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        j.kv("sim_threads", opt_.simThreads);
        j.kv("parallel_runs", parallelRuns_);
        j.kv("fallback_runs", parallelFallbacks_);
        j.kv("mean_barrier_wait_ratio",
             parallelRuns_ ? barrierWaitSum_ /
                                 static_cast<double>(parallelRuns_)
                           : 0.0);
    }
    j.endObject();

    j.key("breakers").beginObject();
    {
        std::lock_guard<std::mutex> lock(breakerMu_);
        for (const auto &[workload, b] : breakers_) {
            j.key(workload).beginObject();
            j.kv("state", b.open ? "open" : "closed");
            j.kv("consecutive_failures",
                 static_cast<uint64_t>(b.consecutiveFailures));
            j.kv("trips", b.trips);
            j.kv("rejected", b.rejected);
            j.endObject();
        }
    }
    j.endObject();

    if (cache_) {
        j.key("cache").beginObject();
        j.kv("dir", cache_->dir());
        j.kv("quarantined",
             static_cast<uint64_t>(cache_->quarantinedCount()));
        j.key("recovery").beginObject();
        j.kv("scanned", static_cast<uint64_t>(recovery_.scanned));
        j.kv("ok", static_cast<uint64_t>(recovery_.ok));
        j.kv("quarantined",
             static_cast<uint64_t>(recovery_.quarantined));
        j.kv("tmp_removed",
             static_cast<uint64_t>(recovery_.tmpRemoved));
        j.endObject();
        j.endObject();
    }

    j.key("counters").beginObject();
    for (const auto &[name, v] : reg.counterSnapshot())
        j.kv(name, v);
    j.endObject();
    j.key("gauges").beginObject();
    for (const auto &[name, v] : reg.gaugeSnapshot())
        j.kv(name, v);
    j.endObject();

    j.key("tenants").beginObject();
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        for (const auto &[tenant, ts] : tenants_) {
            j.key(tenant).beginObject();
            j.kv("admitted", ts.admitted);
            j.kv("completed", ts.completed);
            j.kv("rejected", ts.rejected);
            j.kv("errors", ts.errors);
            j.kv("queued", static_cast<uint64_t>(queue_.depth(tenant)));
            j.kv("queue_ms_p50", ts.queueMs.quantileMs(0.50));
            j.kv("queue_ms_p99", ts.queueMs.quantileMs(0.99));
            j.kv("service_ms_p50", ts.serviceMs.quantileMs(0.50));
            j.kv("service_ms_p99", ts.serviceMs.quantileMs(0.99));
            j.kv("total_ms_p50", ts.totalMs.quantileMs(0.50));
            j.kv("total_ms_p99", ts.totalMs.quantileMs(0.99));
            j.kv("mean_service_ms", ts.serviceMs.meanMs());
            j.endObject();
        }
    }
    j.endObject();
    j.endObject();
    return j.str();
}

} // namespace sara::serve
