#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "fault/failure.h"
#include "runtime/run.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "workloads/workload.h"

namespace sara::serve {

namespace {

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

void
count(const char *name, uint64_t delta = 1)
{
    telemetry::Registry::global().add(name, delta);
}

} // namespace

/** One accepted connection: the fd plus a write lock so worker and
 *  reader threads interleave whole response lines, never bytes. */
struct Server::Conn
{
    int fd = -1;
    std::mutex writeMu;
    std::atomic<bool> open{true};

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), queue_(opt_.queueDepth)
{
    workers_ = opt_.workers;
    if (workers_ <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers_ = hw == 0 ? 2 : static_cast<int>(hw);
    }
    for (const auto &[tenant, weight] : opt_.tenantWeights)
        queue_.setWeight(tenant, weight);
    epoch_ = std::chrono::steady_clock::now();
}

Server::~Server()
{
    requestStop();
    if (started_.load())
        wait();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
Server::start()
{
    SARA_ASSERT(!started_.load(), "serve: start() called twice");
    telemetry::Registry::global().setEnabled(true);

    if (opt_.useDiskCache) {
        cache_ = std::make_unique<artifact::ArtifactCache>(
            opt_.cacheDir);
        inform("sarad: artifact cache at ", cache_->dir());
    }
    compiler_ =
        std::make_unique<artifact::CachingCompiler>(cache_.get());

    if (opt_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        fatal("sarad: socket path too long: ", opt_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("sarad: socket(): ", std::strerror(errno));
    ::unlink(opt_.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("sarad: bind(", opt_.socketPath,
              "): ", std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("sarad: listen(): ", std::strerror(errno));

    started_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workerThreads_.reserve(workers_);
    for (int i = 0; i < workers_; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });
    inform("sarad: serving on ", opt_.socketPath, " with ", workers_,
           " workers, queue depth ", opt_.queueDepth);
}

void
Server::requestStop()
{
    if (stopping_.exchange(true))
        return;
    queue_.stop();
}

void
Server::wait()
{
    SARA_ASSERT(started_.load(), "serve: wait() before start()");
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Workers drain the admitted backlog, then exit on the stopped
    // queue's nullopt.
    for (auto &w : workerThreads_)
        if (w.joinable())
            w.join();
    // Unblock readers parked in recv() and collect them.
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (const auto &c : conns_)
            if (c->open.load())
                ::shutdown(c->fd, SHUT_RDWR);
    }
    for (auto &r : readerThreads_)
        if (r.joinable())
            r.join();
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    started_.store(false);
    inform("sarad: drained and stopped");
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 100);
        if (n <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(connMu_);
        conns_.push_back(conn);
        readerThreads_.emplace_back(
            [this, conn] { readerLoop(conn); });
        count("serve.connections");
    }
}

void
Server::sendLine(const std::shared_ptr<Conn> &conn,
                 const std::string &line)
{
    if (!conn->open.load())
        return;
    std::lock_guard<std::mutex> lock(conn->writeMu);
    std::string buf = line + "\n";
    size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::send(conn->fd, buf.data() + off,
                           buf.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            // Peer vanished mid-response; drop the rest. The request
            // side effects (cache stores) are already complete.
            conn->open.store(false);
            return;
        }
        off += static_cast<size_t>(n);
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn)
{
    constexpr size_t kMaxLine = 1 << 20;
    std::string pending;
    char buf[4096];
    while (conn->open.load()) {
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        pending.append(buf, static_cast<size_t>(n));
        size_t start = 0;
        for (size_t nl; (nl = pending.find('\n', start)) !=
                        std::string::npos;
             start = nl + 1) {
            std::string line = pending.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(conn, line);
        }
        pending.erase(0, start);
        if (pending.size() > kMaxLine) {
            sendLine(conn, errorResponse(
                               "", "request line exceeds 1 MiB"));
            break;
        }
    }
    conn->open.store(false);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    Request req;
    try {
        req = parseRequest(line);
    } catch (const std::exception &e) {
        count("serve.parse_errors");
        sendLine(conn, errorResponse("", e.what()));
        return;
    }

    switch (req.verb) {
    case Verb::Stats: {
        // Served inline on the reader thread: observability must not
        // queue behind the work it is observing.
        ResponseBuilder b(req.id, "ok");
        b.kv("verb", "stats").raw("stats", statsJson());
        sendLine(conn, b.str());
        return;
    }
    case Verb::Shutdown: {
        sendLine(conn,
                 ResponseBuilder(req.id, "ok")
                     .kv("verb", "shutdown")
                     .str());
        inform("sarad: shutdown requested by client");
        requestStop();
        return;
    }
    case Verb::Compile:
    case Verb::Run:
        break;
    }

    Ticket t{req, conn, std::chrono::steady_clock::now()};
    if (!queue_.tryPush(req.tenant, std::move(t))) {
        count("serve.rejected");
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++tenants_[req.tenant].rejected;
        }
        sendLine(conn, rejectedResponse(req.id, retryAfterHintMs()));
        return;
    }
    count("serve.admitted");
    std::lock_guard<std::mutex> lock(statsMu_);
    ++tenants_[req.tenant].admitted;
}

double
Server::retryAfterHintMs() const
{
    // A full queue drains in ~depth/workers service times; suggest a
    // fraction of that so retries spread instead of thundering.
    std::lock_guard<std::mutex> lock(statsMu_);
    double drainMs = ewmaServiceMs_ *
                     static_cast<double>(opt_.queueDepth) /
                     std::max(1, workers_);
    return std::max(1.0, drainMs / 4.0);
}

void
Server::workerLoop()
{
    while (true) {
        std::optional<Ticket> t = queue_.pop();
        if (!t)
            return;
        execute(*t);
    }
}

std::shared_ptr<const compiler::CompileResult>
Server::memLookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(memMu_);
    auto it = mem_.find(key);
    if (it == mem_.end()) {
        count("serve.memcache.miss");
        return nullptr;
    }
    it->second.lastUse = ++memTick_;
    count("serve.memcache.hit");
    return it->second.result;
}

void
Server::memStore(const std::string &key,
                 std::shared_ptr<const compiler::CompileResult> r)
{
    std::lock_guard<std::mutex> lock(memMu_);
    mem_[key] = MemEntry{std::move(r), ++memTick_};
    while (mem_.size() > opt_.memCacheEntries) {
        auto lru = mem_.begin();
        for (auto it = mem_.begin(); it != mem_.end(); ++it)
            if (it->second.lastUse < lru->second.lastUse)
                lru = it;
        mem_.erase(lru);
        count("serve.memcache.evict");
    }
}

std::string
Server::executeCompileOrRun(const Request &req, double queueMs,
                            double &serviceMs)
{
    auto t0 = std::chrono::steady_clock::now();
    workloads::WorkloadConfig cfg;
    cfg.par = req.par;
    cfg.scale = req.scale;
    workloads::Workload w = workloads::buildByName(req.workload, cfg);

    compiler::CompilerOptions copt; // Server-wide defaults.
    std::string key = artifact::contentKey(w.program, copt);

    bool fromCache = false, deduped = false;
    std::shared_ptr<const compiler::CompileResult> compiled =
        memLookup(key);
    if (compiled) {
        fromCache = true;
    } else {
        // Disk probe + in-flight dedup + compile, with the batch
        // runner's transient-retry semantics.
        for (int attempt = 1;; ++attempt) {
            try {
                auto c = compiler_->compile(w.program, copt);
                fromCache = c.fromCache;
                deduped = c.deduped;
                compiled = std::make_shared<compiler::CompileResult>(
                    std::move(c.result));
                break;
            } catch (const TransientError &e) {
                if (attempt >= opt_.maxAttempts)
                    throw;
                count("serve.retried");
                warn("sarad: transient failure for ", req.workload,
                     " (attempt ", attempt, "/", opt_.maxAttempts,
                     "): ", e.what());
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        opt_.retryBackoffMs * attempt));
            }
        }
        memStore(key, compiled);
    }

    ResponseBuilder b(req.id, "ok");
    b.kv("verb", verbName(req.verb))
        .kv("tenant", req.tenant)
        .kv("workload", req.workload)
        .kv("key", key)
        .kv("from_cache", fromCache)
        .kv("deduped", deduped);

    if (req.verb == Verb::Run) {
        runtime::RunConfig rc;
        rc.compiler = copt;
        rc.check = req.check;
        rc.sim.useNoc = req.noc;
        rc.sim.hangDiagnosis = true;
        if (req.maxCycles)
            rc.sim.maxCycles = req.maxCycles;
        else if (opt_.defaultMaxCycles)
            rc.sim.maxCycles = opt_.defaultMaxCycles;
        rc.preCompiled = compiled.get();
        runtime::RunOutcome r = runtime::runWorkload(w, rc);
        b.kv("cycles", r.sim.cycles)
            .kv("time_us", r.timeUs())
            .kv("gflops", r.gflops())
            .kv("dram_gbs", r.dramGBs());
        if (r.checked)
            b.kv("correct", r.correct);
    }

    serviceMs = msBetween(t0, std::chrono::steady_clock::now());
    b.kv("queue_ms", queueMs).kv("service_ms", serviceMs);
    return b.str();
}

void
Server::execute(const Ticket &ticket)
{
    auto popped = std::chrono::steady_clock::now();
    double queueMs = msBetween(ticket.enqueued, popped);
    double serviceMs = 0.0;
    std::string response;
    bool failed = false;
    try {
        response =
            executeCompileOrRun(ticket.req, queueMs, serviceMs);
    } catch (const fault::HangError &e) {
        // Structured escalation: the classified FailureReport rides
        // inside the error response; the daemon keeps serving.
        failed = true;
        response = ResponseBuilder(ticket.req.id, "error")
                       .kv("error", "simulation hang: see report")
                       .raw("failure_report", e.report().json())
                       .str();
    } catch (const std::exception &e) {
        failed = true;
        response = errorResponse(ticket.req.id, e.what());
    } catch (...) {
        failed = true;
        response =
            errorResponse(ticket.req.id, "unknown internal error");
    }

    if (failed)
        count("serve.errors");
    else
        count("serve.completed");

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        TenantStats &ts = tenants_[ticket.req.tenant];
        if (failed) {
            ++ts.errors;
        } else {
            ++ts.completed;
            ts.queueMs.record(queueMs);
            ts.serviceMs.record(serviceMs);
            ts.totalMs.record(queueMs + serviceMs);
            ewmaServiceMs_ =
                0.9 * ewmaServiceMs_ + 0.1 * std::max(0.01, serviceMs);
        }
    }
    sendLine(ticket.conn, response);
}

std::string
Server::statsJson() const
{
    auto &reg = telemetry::Registry::global();
    json::Writer j;
    j.beginObject();
    j.kv("uptime_ms",
         msBetween(epoch_, std::chrono::steady_clock::now()));
    j.kv("workers", workers_);
    j.kv("queue_depth", static_cast<uint64_t>(queue_.depth()));
    j.kv("queue_limit", static_cast<uint64_t>(queue_.maxDepth()));

    j.key("counters").beginObject();
    for (const auto &[name, v] : reg.counterSnapshot())
        j.kv(name, v);
    j.endObject();
    j.key("gauges").beginObject();
    for (const auto &[name, v] : reg.gaugeSnapshot())
        j.kv(name, v);
    j.endObject();

    j.key("tenants").beginObject();
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        for (const auto &[tenant, ts] : tenants_) {
            j.key(tenant).beginObject();
            j.kv("admitted", ts.admitted);
            j.kv("completed", ts.completed);
            j.kv("rejected", ts.rejected);
            j.kv("errors", ts.errors);
            j.kv("queued", static_cast<uint64_t>(queue_.depth(tenant)));
            j.kv("queue_ms_p50", ts.queueMs.quantileMs(0.50));
            j.kv("queue_ms_p99", ts.queueMs.quantileMs(0.99));
            j.kv("service_ms_p50", ts.serviceMs.quantileMs(0.50));
            j.kv("service_ms_p99", ts.serviceMs.quantileMs(0.99));
            j.kv("total_ms_p50", ts.totalMs.quantileMs(0.50));
            j.kv("total_ms_p99", ts.totalMs.quantileMs(0.99));
            j.kv("mean_service_ms", ts.serviceMs.meanMs());
            j.endObject();
        }
    }
    j.endObject();
    j.endObject();
    return j.str();
}

} // namespace sara::serve
