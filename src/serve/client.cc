#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/logging.h"

namespace sara::serve {

namespace {

int
connectTo(const std::string &socketPath)
{
    if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        fatal("serve client: socket path too long: ", socketPath);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve client: socket(): ", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    return fd;
}

} // namespace

Client::Client(const std::string &socketPath)
{
    fd_ = connectTo(socketPath);
    if (fd_ < 0)
        fatal("serve client: connect(", socketPath,
              "): ", std::strerror(errno));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::send(const Request &req)
{
    sendLine(req.str());
}

void
Client::sendLine(const std::string &line)
{
    std::string buf = line + "\n";
    size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::send(fd_, buf.data() + off, buf.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            fatal("serve client: send(): ", std::strerror(errno));
        off += static_cast<size_t>(n);
    }
}

std::optional<json::Value>
Client::recv()
{
    for (;;) {
        size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (line.empty())
                continue;
            return json::parse(line);
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0)
            return std::nullopt;
        pending_.append(buf, static_cast<size_t>(n));
    }
}

json::Value
Client::call(const Request &req)
{
    send(req);
    auto resp = recv();
    if (!resp)
        fatal("serve client: daemon closed the connection");
    return std::move(*resp);
}

bool
waitForServer(const std::string &socketPath, int timeoutMs)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int fd = connectTo(socketPath);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace sara::serve
