#include "serve/protocol.h"

#include "support/logging.h"

namespace sara::serve {

const char *
verbName(Verb v)
{
    switch (v) {
    case Verb::Compile:
        return "compile";
    case Verb::Run:
        return "run";
    case Verb::Stats:
        return "stats";
    case Verb::Shutdown:
        return "shutdown";
    }
    return "?";
}

std::string
Request::str() const
{
    json::Writer w;
    w.beginObject();
    w.kv("schema", kRequestSchema);
    w.kv("id", id);
    w.kv("verb", verbName(verb));
    w.kv("tenant", tenant);
    if (verb == Verb::Compile || verb == Verb::Run) {
        w.kv("workload", workload);
        w.kv("par", par);
        w.kv("scale", scale);
        w.kv("noc", noc);
        w.kv("check", check);
        if (maxCycles)
            w.kv("max_cycles", maxCycles);
    }
    w.endObject();
    return w.str();
}

namespace {

int
intField(const json::Value &v, const std::string &key, int fallback,
         int lo, int hi)
{
    const json::Value *f = v.find(key);
    if (!f)
        return fallback;
    if (!f->isNumber())
        fatal("request field '", key, "' must be a number");
    int n = static_cast<int>(f->num);
    if (n < lo || n > hi)
        fatal("request field '", key, "' out of range [", lo, ", ", hi,
              "]");
    return n;
}

bool
boolField(const json::Value &v, const std::string &key, bool fallback)
{
    const json::Value *f = v.find(key);
    if (!f)
        return fallback;
    if (f->kind != json::Value::Kind::Bool)
        fatal("request field '", key, "' must be a boolean");
    return f->boolean;
}

std::string
stringField(const json::Value &v, const std::string &key,
            const std::string &fallback)
{
    const json::Value *f = v.find(key);
    if (!f)
        return fallback;
    if (!f->isString())
        fatal("request field '", key, "' must be a string");
    return f->str;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    json::Value v = json::parse(line);
    if (!v.isObject())
        fatal("request must be a JSON object");
    std::string schema = stringField(v, "schema", "");
    if (schema != kRequestSchema)
        fatal("unsupported request schema '", schema, "' (expected ",
              kRequestSchema, ")");

    Request r;
    r.id = stringField(v, "id", "");
    r.tenant = stringField(v, "tenant", "default");
    if (r.tenant.empty())
        fatal("request field 'tenant' must be non-empty");

    std::string verb = stringField(v, "verb", "");
    if (verb == "compile")
        r.verb = Verb::Compile;
    else if (verb == "run")
        r.verb = Verb::Run;
    else if (verb == "stats")
        r.verb = Verb::Stats;
    else if (verb == "shutdown")
        r.verb = Verb::Shutdown;
    else
        fatal("unknown verb '", verb,
              "' (expected compile|run|stats|shutdown)");

    if (r.verb == Verb::Compile || r.verb == Verb::Run) {
        r.workload = stringField(v, "workload", "");
        if (r.workload.empty())
            fatal("verb '", verb, "' requires a 'workload' field");
        r.par = intField(v, "par", 16, 1, 4096);
        r.scale = intField(v, "scale", 1, 1, 1024);
        r.noc = boolField(v, "noc", false);
        r.check = boolField(v, "check", false);
        const json::Value *mc = v.find("max_cycles");
        if (mc) {
            if (!mc->isNumber() || mc->num < 0)
                fatal("request field 'max_cycles' must be a "
                      "non-negative number");
            r.maxCycles = static_cast<uint64_t>(mc->num);
        }
    }
    return r;
}

ResponseBuilder::ResponseBuilder(const std::string &id,
                                 const std::string &status)
{
    w_.beginObject();
    w_.kv("schema", kResponseSchema);
    w_.kv("id", id);
    w_.kv("status", status);
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, const std::string &v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, const char *v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, double v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, uint64_t v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, int v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::kv(const std::string &key, bool v)
{
    w_.kv(key, v);
    return *this;
}

ResponseBuilder &
ResponseBuilder::raw(const std::string &key, const std::string &json)
{
    raws_.emplace_back(key, json);
    return *this;
}

std::string
ResponseBuilder::str()
{
    if (!closed_) {
        w_.endObject();
        closed_ = true;
    }
    std::string out = w_.str();
    // Splice pre-serialized payloads before the closing brace. The
    // base object always carries schema/id/status, so the leading
    // comma is always valid.
    for (const auto &[key, json] : raws_) {
        out.pop_back();
        out += ",\"" + json::escape(key) + "\":" + json + "}";
    }
    return out;
}

std::string
errorResponse(const std::string &id, const std::string &msg)
{
    return ResponseBuilder(id, "error").kv("error", msg).str();
}

std::string
rejectedResponse(const std::string &id, double retryAfterMs)
{
    return ResponseBuilder(id, "rejected")
        .kv("error", "queue full")
        .kv("retry_after_ms", retryAfterMs)
        .str();
}

std::string
overloadedResponse(double retryAfterMs)
{
    return ResponseBuilder("", "overloaded")
        .kv("error", "connection limit reached")
        .kv("retry_after_ms", retryAfterMs)
        .str();
}

std::string
breakerResponse(const std::string &id, const std::string &workload,
                double retryAfterMs)
{
    return ResponseBuilder(id, "rejected")
        .kv("error", "circuit breaker open")
        .kv("workload", workload)
        .kv("retry_after_ms", retryAfterMs)
        .str();
}

} // namespace sara::serve
