#ifndef SARA_SERVE_CLIENT_H
#define SARA_SERVE_CLIENT_H

/**
 * @file
 * Minimal sarad client: connects to the daemon's Unix-domain socket,
 * writes request lines, reads response lines. Used by the load
 * generator (bench/bench_serve), the serve tests, and the CI smoke
 * job. Supports pipelining: send() any number of requests, then
 * recv() responses and match them by id (the daemon replies in
 * completion order, not submission order).
 */

#include <optional>
#include <string>

#include "serve/protocol.h"
#include "support/json.h"

namespace sara::serve {

class Client
{
  public:
    /** Connect to a listening sarad; fatal()s when the socket cannot
     *  be reached. */
    explicit Client(const std::string &socketPath);
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Queue one request line on the socket (non-blocking semantics
     *  are the kernel's; a full socket buffer blocks briefly). */
    void send(const Request &req);
    void sendLine(const std::string &line);

    /** Read the next response line; nullopt on EOF (daemon closed). */
    std::optional<json::Value> recv();

    /** send + recv for a single outstanding request. */
    json::Value call(const Request &req);

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string pending_;
};

/** Poll until `socketPath` accepts a connection (daemon startup
 *  rendezvous); false when `timeoutMs` elapses first. */
bool waitForServer(const std::string &socketPath, int timeoutMs);

} // namespace sara::serve

#endif // SARA_SERVE_CLIENT_H
