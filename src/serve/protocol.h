#ifndef SARA_SERVE_PROTOCOL_H
#define SARA_SERVE_PROTOCOL_H

/**
 * @file
 * Wire protocol of the sarad service: newline-delimited JSON objects
 * over a Unix-domain stream socket, one request or response per line.
 *
 * Request (schema "sara-request/v1"):
 *
 *   {"schema":"sara-request/v1","id":"r1","verb":"run",
 *    "tenant":"team-a","workload":"ms","par":8,"scale":1,
 *    "noc":false,"check":false,"max_cycles":0}
 *
 *   verb      compile | run | stats | shutdown
 *   id        client-chosen correlation token, echoed verbatim in the
 *             response (responses on a pipelined connection may
 *             complete out of order)
 *   tenant    fair-scheduling bucket (default "default")
 *   workload  built-in workload name (compile/run only)
 *
 * Response (schema "sara-response/v1"):
 *
 *   status    ok | error | rejected | overloaded
 *   error     message (status != ok)
 *   retry_after_ms   backpressure hint (rejected/overloaded only)
 *   queue_ms / service_ms   per-request latency split (ok only)
 *   compile/run payload: artifact key, from_cache, deduped, and for
 *   run additionally cycles / gflops / time_us.
 *
 * Parsing is strict: unknown verbs, missing workloads, or malformed
 * JSON produce an `error` response on the offending line; the
 * connection (and the daemon) stay up.
 */

#include <cstdint>
#include <string>

#include "support/json.h"

namespace sara::serve {

inline constexpr const char *kRequestSchema = "sara-request/v1";
inline constexpr const char *kResponseSchema = "sara-response/v1";

enum class Verb : uint8_t { Compile, Run, Stats, Shutdown };

const char *verbName(Verb v);

/** One parsed request line. */
struct Request
{
    std::string id;
    Verb verb = Verb::Stats;
    std::string tenant = "default";
    std::string workload;
    int par = 16;
    int scale = 1;
    bool noc = false;
    bool check = false;
    uint64_t maxCycles = 0; ///< 0 = server default.

    /** Serialize to a single request line (no trailing newline). */
    std::string str() const;
};

/**
 * Parse one request line. Throws FatalError with a client-facing
 * message on malformed JSON, schema mismatch, unknown verbs, or
 * out-of-range numeric fields.
 */
Request parseRequest(const std::string &line);

/** Response assembly helpers (each returns a complete line, no '\n').
 *  `payload` hooks let the caller append verb-specific fields. */
class ResponseBuilder
{
  public:
    explicit ResponseBuilder(const std::string &id,
                             const std::string &status);

    ResponseBuilder &kv(const std::string &key, const std::string &v);
    ResponseBuilder &kv(const std::string &key, const char *v);
    ResponseBuilder &kv(const std::string &key, double v);
    ResponseBuilder &kv(const std::string &key, uint64_t v);
    ResponseBuilder &kv(const std::string &key, int v);
    ResponseBuilder &kv(const std::string &key, bool v);
    /** Append a pre-serialized JSON value under `key` (spliced in at
     *  str() time, after the writer's own fields). */
    ResponseBuilder &raw(const std::string &key, const std::string &json);

    /** Finish and return the response line. */
    std::string str();

  private:
    json::Writer w_;
    std::vector<std::pair<std::string, std::string>> raws_;
    bool closed_ = false;
};

/** Shorthand for an error response. */
std::string errorResponse(const std::string &id, const std::string &msg);

/** Shorthand for an admission reject with a backpressure hint. */
std::string rejectedResponse(const std::string &id, double retryAfterMs);

/** Connection-level shed: the daemon is at its connection bound. Sent
 *  once on the overflowing socket (before any request arrives, hence
 *  no id) and the connection is closed. */
std::string overloadedResponse(double retryAfterMs);

/** Circuit-breaker reject: `workload` has produced repeated poison
 *  failures and its breaker is open for another `retryAfterMs`. */
std::string breakerResponse(const std::string &id,
                            const std::string &workload,
                            double retryAfterMs);

} // namespace sara::serve

#endif // SARA_SERVE_PROTOCOL_H
