#include "dfg/vudfg.h"

#include <map>
#include <sstream>

#include "support/logging.h"

namespace sara::dfg {

VuId
Vudfg::addUnit(VuKind kind, const std::string &name)
{
    VUnit u;
    u.id = VuId(units_.size());
    u.kind = kind;
    u.name = name.empty() ? ("vu" + std::to_string(u.id.v)) : name;
    units_.push_back(std::move(u));
    return units_.back().id;
}

StreamId
Vudfg::addStream(StreamKind kind, VuId src, VuId dst,
                 const std::string &name)
{
    Stream s;
    s.id = StreamId(streams_.size());
    s.kind = kind;
    s.src = src;
    s.dst = dst;
    s.name = name.empty() ? ("s" + std::to_string(s.id.v)) : name;
    streams_.push_back(s);
    return streams_.back().id;
}

std::vector<StreamId>
Vudfg::inStreams(VuId id) const
{
    std::vector<StreamId> out;
    for (const auto &s : streams_)
        if (s.dst == id)
            out.push_back(s.id);
    return out;
}

std::vector<StreamId>
Vudfg::outStreams(VuId id) const
{
    std::vector<StreamId> out;
    for (const auto &s : streams_)
        if (s.src == id)
            out.push_back(s.id);
    return out;
}

void
Vudfg::validate() const
{
    for (const auto &u : units_) {
        const int n = u.chainSize();
        // Vectorization only on the innermost counter.
        for (int k = 0; k + 1 < n; ++k)
            SARA_ASSERT(u.counters[k].vec == 1,
                        u.name, ": outer counter ", k, " vectorized");
        // LOp operand indices must be backward references.
        for (size_t i = 0; i < u.lops.size(); ++i) {
            const LOp &op = u.lops[i];
            for (int operand : {op.a, op.b, op.c}) {
                SARA_ASSERT(operand < static_cast<int>(i),
                            u.name, ": lop ", i, " forward operand");
            }
            if (op.counter >= 0)
                SARA_ASSERT(op.counter < n,
                            u.name, ": lop counter level out of range");
            if (op.input >= 0)
                SARA_ASSERT(op.input < static_cast<int>(u.inputs.size()),
                            u.name, ": StreamIn input index out of range");
        }
        // Binding levels must be within [0, n].
        for (const auto &in : u.inputs) {
            SARA_ASSERT(in.level >= 0 && in.level <= n,
                        u.name, ": input level out of range");
            const Stream &s = stream(in.stream);
            SARA_ASSERT(s.dst == u.id, u.name, ": foreign input binding");
            SARA_ASSERT(in.level == s.popLevel,
                        u.name, ": binding level != stream popLevel");
        }
        for (size_t oi = 0; oi < u.outputs.size(); ++oi) {
            const auto &out = u.outputs[oi];
            SARA_ASSERT(out.level >= 0 && out.level <= n,
                        u.name, ": output level out of range");
            const Stream &s = stream(out.stream);
            SARA_ASSERT(s.src == u.id, u.name, ": foreign output binding");
            SARA_ASSERT(out.level == s.pushLevel,
                        u.name, ": binding level != stream pushLevel");
            // Response outputs of memory engines are fed by the memory
            // application itself, not by a local op.
            bool isResp = u.kind != VuKind::Compute &&
                          static_cast<int>(oi) == u.respOutput;
            if (s.kind == StreamKind::Data && !isResp)
                SARA_ASSERT(out.lop >= 0 &&
                                out.lop < static_cast<int>(u.lops.size()),
                            u.name, ": data output without source lop");
        }
        if (u.kind == VuKind::MemPort) {
            SARA_ASSERT(u.memUnit.valid() &&
                            unit(u.memUnit).kind == VuKind::Memory,
                        u.name, ": MemPort without owning VMU");
            SARA_ASSERT(u.addrLop >= 0 || u.addrInput >= 0,
                        u.name, ": MemPort without address source");
            if (u.dir == AccessDir::Write)
                SARA_ASSERT(u.dataInput >= 0,
                            u.name, ": write port without data input");
        }
        if (u.kind == VuKind::Memory) {
            SARA_ASSERT(u.bufferSize > 0, u.name, ": VMU without storage");
            SARA_ASSERT(u.bufferDepth >= 1, u.name, ": bad multibuffer");
        }
    }
    // Every stream must be bound exactly once on each side.
    std::vector<int> srcBound(streams_.size(), 0), dstBound(streams_.size(), 0);
    for (const auto &u : units_) {
        for (const auto &in : u.inputs)
            ++dstBound[in.stream.index()];
        for (const auto &out : u.outputs)
            ++srcBound[out.stream.index()];
    }
    for (const auto &s : streams_) {
        SARA_ASSERT(srcBound[s.id.index()] == 1,
                    "stream ", s.name, " has ", srcBound[s.id.index()],
                    " source bindings");
        SARA_ASSERT(dstBound[s.id.index()] == 1,
                    "stream ", s.name, " has ", dstBound[s.id.index()],
                    " destination bindings");
    }
}

std::string
Vudfg::summary() const
{
    std::map<VuKind, int> counts;
    for (const auto &u : units_)
        ++counts[u.kind];
    std::ostringstream os;
    os << "VUDFG: " << units_.size() << " units (";
    os << counts[VuKind::Compute] << " VCU, " << counts[VuKind::Memory]
       << " VMU, " << counts[VuKind::MemPort] << " port, "
       << counts[VuKind::Ag] << " AG), " << streams_.size() << " streams";
    return os.str();
}

namespace {

const char *
kindName(VuKind k)
{
    switch (k) {
      case VuKind::Compute: return "VCU";
      case VuKind::Memory: return "VMU";
      case VuKind::MemPort: return "PORT";
      case VuKind::Ag: return "AG";
    }
    return "?";
}

} // namespace

const char *
linkDirName(LinkDir d)
{
    switch (d) {
      case LinkDir::East: return "E";
      case LinkDir::West: return "W";
      case LinkDir::North: return "N";
      case LinkDir::South: return "S";
    }
    return "?";
}

std::string
Vudfg::str() const
{
    std::ostringstream os;
    os << summary() << "\n";
    for (const auto &u : units_) {
        os << kindName(u.kind) << " " << u.name << " [";
        for (size_t k = 0; k < u.counters.size(); ++k) {
            const auto &c = u.counters[k];
            if (k)
                os << ",";
            if (c.isWhile)
                os << "while";
            else if (c.maxInput >= 0)
                os << "dyn";
            else
                os << c.min << ":" << c.max << ":" << c.step;
            if (c.vec > 1)
                os << "x" << c.vec;
        }
        os << "]";
        if (u.kind == VuKind::Memory) {
            os << " size=" << u.bufferSize << " depth=" << u.bufferDepth;
            if (u.numShards > 1)
                os << " shard=" << u.shardIndex << "/" << u.numShards;
        }
        os << " lops=" << u.lops.size() << "\n";
        for (const auto &in : u.inputs) {
            const Stream &s = stream(in.stream);
            os << "  <- " << s.name << " from " << unit(s.src).name
               << " role=" << static_cast<int>(in.role)
               << " pop@" << in.level
               << (s.initTokens ? (" init=" + std::to_string(s.initTokens))
                                : "")
               << "\n";
        }
        for (const auto &out : u.outputs) {
            const Stream &s = stream(out.stream);
            os << "  -> " << s.name << " to " << unit(s.dst).name
               << " push@" << out.level << "\n";
        }
    }
    return os.str();
}

} // namespace sara::dfg
