#ifndef SARA_DFG_VUDFG_H
#define SARA_DFG_VUDFG_H

/**
 * @file
 * The Virtual Unit Dataflow Graph (VUDFG) — SARA's two-level
 * hierarchical dataflow IR (paper §III). The top level is a graph of
 * virtual units (VUs) connected by streams; each VU's inner level is a
 * small local dataflow of lowered ops (LOps) plus a chained counter
 * stack mirroring the hyperblock's enclosing loops.
 *
 * Execution semantics (shared by the simulator):
 *
 *  - A unit owns a counter chain c0 (outermost) .. c(n-1) (innermost).
 *    A "round of level k" is one full sweep of counters k..n-1 for
 *    fixed values of c0..c(k-1). Level n denotes a single firing.
 *  - A stream edge pushes when the source counter at `pushLevel` wraps
 *    (pushLevel == n: every firing) and pops at the destination when
 *    its counter at `popLevel` wraps. Data streams must be non-empty
 *    for the consumer to fire; token streams are pure synchronization
 *    (CMMC tokens and credits; credits are modeled as initTokens).
 *  - Branch predication: a predicate binding at level k conditions
 *    rounds of level k. When false, the round is skipped: inputs with
 *    popLevel == k are popped, token outputs with pushLevel == k are
 *    forwarded immediately (paper §III-A2b), and data outputs with
 *    pushLevel == k re-push the most recent value (sequential
 *    "last value" semantics).
 *  - Do-while: a While counter pops a condition value after each of
 *    its iterations and wraps when the condition is false.
 *
 * Memory units (VMUs) hold multibuffered storage; their request and
 * response engines are modeled as MemPort units colocated with the VMU
 * (the paper maps them into the same physical memory unit in the
 * common case). DRAM accesses go through Ag units bound to the DRAM
 * interface.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/id.h"
#include "ir/op.h"

namespace sara::dfg {

using VuId = ir::Id<struct VuTag>;
using StreamId = ir::Id<struct StreamTag>;

/** Stream payload classes. */
enum class StreamKind : uint8_t {
    Data,  ///< Carries (vectors of) values.
    Token, ///< Pure synchronization pulse (CMMC token / credit).
};

/** Direction of a directed mesh link (X-Y dimension-order routes only
 *  ever turn once, from a horizontal run into a vertical run). */
enum class LinkDir : uint8_t { East, West, North, South };

/** One directed link of the static network: the channel leaving the
 *  switch at cell (x, y) towards `dir`. AG fringe columns sit at
 *  x = -1 and x = cols, so x may be negative. */
struct RouteLink
{
    int16_t x = 0;
    int16_t y = 0;
    LinkDir dir = LinkDir::East;

    bool operator==(const RouteLink &o) const
    {
        return x == o.x && y == o.y && dir == o.dir;
    }
    bool operator<(const RouteLink &o) const
    {
        if (x != o.x)
            return x < o.x;
        if (y != o.y)
            return y < o.y;
        return dir < o.dir;
    }
};

const char *linkDirName(LinkDir d);

/** A stream edge between two virtual units. */
struct Stream
{
    StreamId id;
    std::string name;
    StreamKind kind = StreamKind::Data;
    VuId src, dst;
    int pushLevel = 0;  ///< Source counter level (src chain size = per firing).
    int popLevel = 0;   ///< Destination counter level.
    int initTokens = 0; ///< Pre-filled credits (backward LCD edges).
    int vec = 1;        ///< Lanes per element (data streams).
    int depth = 8;      ///< FIFO capacity in elements (hardware b_d).
    int latency = 1;    ///< Network latency in cycles (set by PnR).
    int srcLop = -1;    ///< Local op at src whose value is pushed (data).
    /** Physical dimension-order route (set by PnR): the directed links
     *  crossed from src cell to dst cell, in traversal order. Empty for
     *  intra-cell streams and for co-located endpoints; the cycle-level
     *  NoC model falls back to the scalar `latency` for those. */
    std::vector<RouteLink> route;
};

/** One counter in a unit's chain. */
struct Counter
{
    // Constant bounds; ignored for a dimension fed by a bound stream.
    int64_t min = 0, step = 1, max = 1;
    /** Input-binding indices configuring dynamic bounds (-1 = constant). */
    int minInput = -1, stepInput = -1, maxInput = -1;
    /** Do-while level: trips until the condition input delivers false. */
    bool isWhile = false;
    int whileCondInput = -1;
    /** SIMD vectorization (innermost counter only). */
    int vec = 1;

    /** Constant trip count (counts rounds for while as unknown). */
    std::optional<int64_t>
    constTrips() const
    {
        if (isWhile || minInput >= 0 || stepInput >= 0 || maxInput >= 0)
            return std::nullopt;
        if (step <= 0)
            return std::nullopt;
        int64_t t = (max - min + step - 1) / step;
        return t < 0 ? 0 : t;
    }
};

/** How a unit consumes one of its input streams. */
enum class InputRole : uint8_t {
    Operand,   ///< Per-firing data operand (LOp StreamIn reads it).
    Bound,     ///< Loop bound for a counter (peeked at round start).
    Predicate, ///< Branch predicate conditioning rounds at `level`.
    WhileCond, ///< Do-while continue condition for a While counter.
    Gate,      ///< CMMC token: must be non-empty; popped at `level`.
};

/** An input stream binding at the destination unit. */
struct InputBinding
{
    StreamId stream;
    InputRole role = InputRole::Operand;
    /** popLevel: counter whose wrap pops the element (chainSize = firing). */
    int level = 0;
    /** Predicate polarity: fire on value != 0 (then) or == 0 (else). */
    bool expectTrue = true;
};

/** An output stream binding at the source unit. */
struct OutputBinding
{
    StreamId stream;
    /** pushLevel: counter whose wrap pushes (chainSize = per firing). */
    int level = 0;
    /** Local op whose value is sent; -1 for token streams. */
    int lop = -1;
};

/** A lowered op inside a unit's local dataflow. */
struct LOp
{
    ir::OpKind kind = ir::OpKind::Const;
    int a = -1, b = -1, c = -1; ///< Local operand indices.
    double cval = 0.0;          ///< Const literal.
    int counter = -1;           ///< Iter: counter level; Red*: reset level.
    int input = -1;             ///< StreamIn: index into inputs[].

    /** Marker kind reused: Const with input >= 0 means StreamIn. */
    bool isStreamIn() const { return input >= 0; }
};

/** Unit kinds at the VUDFG level. */
enum class VuKind : uint8_t {
    Compute, ///< VCU: maps to a PCU.
    Memory,  ///< VMU storage: maps to a PMU.
    MemPort, ///< Request/response engine colocated with a VMU.
    Ag,      ///< DRAM address generator / interface engine.
};

/** Direction of a memory port or AG. */
enum class AccessDir : uint8_t { Read, Write };

/** Physical unit classes a VU may be assigned to (arch spec mirrors). */
enum class PuType : uint8_t { Pcu, Pmu, AgIf, None };

/**
 * A virtual unit: one engine of the spatially pipelined program plus
 * its role-specific payload.
 */
struct VUnit
{
    VuId id;
    std::string name;
    VuKind kind = VuKind::Compute;

    /** Counter chain, outermost first. Empty = fires exactly once. */
    std::vector<Counter> counters;

    /** Local dataflow ops (topologically ordered; operands precede). */
    std::vector<LOp> lops;

    std::vector<InputBinding> inputs;
    std::vector<OutputBinding> outputs;

    // --- Memory (VMU storage) ---
    ir::TensorId tensor;     ///< Logical tensor (VMU / MemPort / Ag).
    int64_t bufferSize = 0;  ///< Elements per buffer copy (VMU).
    int bufferDepth = 1;     ///< Multibuffer depth (VMU).
    /** Block sharding: this VMU holds logical addresses in
     *  [shardIndex * shardInterleave, (shardIndex+1) * shardInterleave)
     *  (the last shard absorbs the remainder). */
    int shardIndex = 0;
    int numShards = 1;
    int64_t shardInterleave = 1;

    // --- MemPort / Ag ---
    VuId memUnit;            ///< Owning VMU (MemPort only).
    AccessDir dir = AccessDir::Read;
    /** Local op computing the address (-1: address comes via Operand
     *  input tagged addrInput). */
    int addrLop = -1;
    int addrInput = -1;      ///< InputBinding index carrying addresses.
    int dataInput = -1;      ///< Write: InputBinding carrying store data.
    /** Read: OutputBinding index for response data; Write: for acks. */
    int respOutput = -1;
    /** Dynamic bank-address mode: requests may target any shard of the
     *  group; modeled with windowed bank-conflict timing. */
    bool dynamicBank = false;
    /** Multibuffer rotation: advance this port's buffer pointer when
     *  the counter at this level wraps (-1: never; depth-1 VMUs). */
    int rotateLevel = -1;

    // --- Mapping results ---
    PuType assigned = PuType::None; ///< Virtual-to-physical class.
    int placeX = -1, placeY = -1;   ///< Grid placement (PnR).
    int mergedInto = -1;            ///< Physical group id after merging.

    /** Per-firing SIMD width = innermost counter vec. */
    int
    vec() const
    {
        return counters.empty() ? 1 : counters.back().vec;
    }

    int chainSize() const { return static_cast<int>(counters.size()); }
};

/** The whole graph. */
class Vudfg
{
  public:
    VuId addUnit(VuKind kind, const std::string &name);
    StreamId addStream(StreamKind kind, VuId src, VuId dst,
                       const std::string &name);

    VUnit &unit(VuId id) { return units_[id.index()]; }
    const VUnit &unit(VuId id) const { return units_[id.index()]; }
    Stream &stream(StreamId id) { return streams_[id.index()]; }
    const Stream &stream(StreamId id) const { return streams_[id.index()]; }

    size_t numUnits() const { return units_.size(); }
    size_t numStreams() const { return streams_.size(); }
    std::vector<VUnit> &units() { return units_; }
    const std::vector<VUnit> &units() const { return units_; }
    std::vector<Stream> &streams() { return streams_; }
    const std::vector<Stream> &streams() const { return streams_; }

    /** Streams into / out of a unit (by scanning; cached by simulator). */
    std::vector<StreamId> inStreams(VuId id) const;
    std::vector<StreamId> outStreams(VuId id) const;

    /** Structural validation; panics with a reason on failure. */
    void validate() const;

    /** Resource summary: units by kind. */
    std::string summary() const;

    /** Full textual dump. */
    std::string str() const;

  private:
    std::vector<VUnit> units_;
    std::vector<Stream> streams_;
};

} // namespace sara::dfg

#endif // SARA_DFG_VUDFG_H
