#ifndef SARA_GRAPH_MODELS_H
#define SARA_GRAPH_MODELS_H

/**
 * @file
 * The shipped example models, built with GraphBuilder. Each one also
 * exists as a JSON document under examples/ (kept byte-for-byte
 * equivalent by test_graph's builder-vs-JSON check) and is registered
 * in the workload registry as `mlp_graph`, `transformer_cell`, and
 * `resnet_block`, so the graph frontend flows through every consumer
 * of buildByName: sarac, sarad, fault injection, and the benches.
 */

#include "graph/graph.h"
#include "graph/lower.h"

namespace sara::graph {

/** 3-layer perceptron with a softmax head: batch [4, 64] ->
 *  matmul(64)/relu -> matmul(32)/relu -> matmul(16) -> softmax. */
LayerGraph mlpGraph();

/** One transformer cell: tokens [6, 16] -> self-attention ->
 *  +residual -> matmul(32)/gelu -> matmul(16) -> +residual. */
LayerGraph transformerCellGraph();

/** One residual conv block: image [4, 8, 8] -> conv(4,3x3,pad 1)/relu
 *  -> conv(4,3x3,pad 1) -> +skip -> relu -> global pool (reduce x2). */
LayerGraph resnetBlockGraph();

/** Registry adapters (workload names mlp_graph / transformer_cell /
 *  resnet_block): lower the example graphs at the given config. */
workloads::Workload buildMlpGraph(const workloads::WorkloadConfig &cfg);
workloads::Workload
buildTransformerCell(const workloads::WorkloadConfig &cfg);
workloads::Workload
buildResnetBlock(const workloads::WorkloadConfig &cfg);

} // namespace sara::graph

#endif // SARA_GRAPH_MODELS_H
