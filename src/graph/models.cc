#include "graph/models.h"

namespace sara::graph {

LayerGraph
mlpGraph()
{
    GraphBuilder b("mlp_graph");
    b.input("x", {4, 64});
    b.matmul("fc1", "x", 64);
    b.relu("act1", "fc1");
    b.matmul("fc2", "act1", 32);
    b.relu("act2", "fc2");
    b.matmul("fc3", "act2", 16);
    b.softmax("probs", "fc3");
    b.output("probs");
    return b.build();
}

LayerGraph
transformerCellGraph()
{
    GraphBuilder b("transformer_cell");
    b.input("x", {6, 16});
    b.attention("attn", "x");
    b.add("res1", "attn", "x");
    b.matmul("ff1", "res1", 32);
    b.gelu("act", "ff1");
    b.matmul("ff2", "act", 16);
    b.add("res2", "ff2", "res1");
    b.output("res2");
    return b.build();
}

LayerGraph
resnetBlockGraph()
{
    GraphBuilder b("resnet_block");
    b.input("x", {4, 8, 8});
    b.conv("conv1", "x", 4, 3, 1);
    b.relu("act1", "conv1");
    b.conv("conv2", "act1", 4, 3, 1);
    b.add("skip", "conv2", "x");
    b.relu("act2", "skip");
    b.reduce("pool_w", RedOp::Add, "act2");
    b.reduce("pool_h", RedOp::Add, "pool_w");
    b.output("pool_h");
    return b.build();
}

namespace {

workloads::Workload
lowerFor(LayerGraph g, const workloads::WorkloadConfig &cfg)
{
    LowerOptions o;
    o.par = cfg.par;
    o.scale = cfg.scale;
    o.seed = cfg.seed;
    return lowerGraph(g, o).workload;
}

} // namespace

workloads::Workload
buildMlpGraph(const workloads::WorkloadConfig &cfg)
{
    return lowerFor(mlpGraph(), cfg);
}

workloads::Workload
buildTransformerCell(const workloads::WorkloadConfig &cfg)
{
    return lowerFor(transformerCellGraph(), cfg);
}

workloads::Workload
buildResnetBlock(const workloads::WorkloadConfig &cfg)
{
    return lowerFor(resnetBlockGraph(), cfg);
}

} // namespace sara::graph
