#include "graph/graph.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace sara::graph {

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Input: return "input";
      case NodeKind::Matmul: return "matmul";
      case NodeKind::Conv: return "conv";
      case NodeKind::Elementwise: return "elementwise";
      case NodeKind::Reduce: return "reduce";
      case NodeKind::Softmax: return "softmax";
      case NodeKind::Attention: return "attention";
    }
    return "?";
}

const char *
ewOpName(EwOp op)
{
    switch (op) {
      case EwOp::Add: return "add";
      case EwOp::Mul: return "mul";
      case EwOp::Relu: return "relu";
      case EwOp::Gelu: return "gelu";
    }
    return "?";
}

const char *
redOpName(RedOp op)
{
    switch (op) {
      case RedOp::Add: return "add";
      case RedOp::Max: return "max";
    }
    return "?";
}

int64_t
Shape::elems() const
{
    int64_t n = 1;
    for (int64_t d : dims)
        n *= d;
    return dims.empty() ? 0 : n;
}

std::string
Shape::str() const
{
    std::string s = "[";
    for (size_t i = 0; i < dims.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(dims[i]);
    }
    return s + "]";
}

const Node *
LayerGraph::find(const std::string &name) const
{
    for (const auto &n : nodes)
        if (n.name == name)
            return &n;
    return nullptr;
}

std::string
LayerGraph::summary() const
{
    std::map<std::string, int> byKind;
    int layers = 0;
    for (const auto &n : nodes) {
        if (!n.isCompute())
            continue;
        ++layers;
        ++byKind[nodeKindName(n.kind)];
    }
    std::string s = name + ": " + std::to_string(layers) + " layers (";
    bool first = true;
    for (const auto &[kind, count] : byKind) {
        if (!first)
            s += ", ";
        first = false;
        s += std::to_string(count) + " " + kind;
    }
    return s + ")";
}

namespace {

/** Diagnostic prefix: "file:line:col: node 'x'" when the node carries
 *  a JSON source location, "graph 'g': node 'x'" for builder graphs. */
std::string
where(const LayerGraph &g, const Node &n)
{
    if (n.loc.valid())
        return (g.source.empty() ? std::string("<graph>") : g.source) +
               ":" + std::to_string(n.loc.line) + ":" +
               std::to_string(n.loc.col) + ": node '" + n.name + "'";
    return "graph '" + g.name + "': node '" + n.name + "'";
}

/** Per-kind shape inference + parameter checks. Inputs are already
 *  shape-checked (positive dims) by the front doors. */
void
inferShape(const LayerGraph &g, Node &n,
           const std::vector<const Node *> &ins)
{
    auto fail = [&](const std::string &msg) {
        fatal(where(g, n), " (", nodeKindName(n.kind), "): ", msg);
    };
    switch (n.kind) {
      case NodeKind::Input:
        break;
      case NodeKind::Matmul: {
        const Shape &x = ins[0]->shape;
        if (x.rank() != 1 && x.rank() != 2)
            fail("input must be rank 1 or 2, got " + x.str());
        if (n.features <= 0)
            fail("'features' must be positive, got " +
                 std::to_string(n.features));
        if (x.rank() == 1)
            n.shape.dims = {n.features};
        else
            n.shape.dims = {x.dims[0], n.features};
        break;
      }
      case NodeKind::Conv: {
        const Shape &x = ins[0]->shape;
        if (x.rank() != 3)
            fail("input must be rank 3 [C, H, W], got " + x.str());
        if (n.channels <= 0)
            fail("'channels' must be positive");
        if (n.kernel <= 0 || n.pad < 0)
            fail("'kernel' must be positive and 'pad' non-negative");
        int64_t ho = x.dims[1] + 2 * n.pad - n.kernel + 1;
        int64_t wo = x.dims[2] + 2 * n.pad - n.kernel + 1;
        if (ho <= 0 || wo <= 0)
            fail("kernel " + std::to_string(n.kernel) + " with pad " +
                 std::to_string(n.pad) + " does not fit input " +
                 x.str());
        n.shape.dims = {n.channels, ho, wo};
        break;
      }
      case NodeKind::Elementwise: {
        bool binary = n.ewOp == EwOp::Add || n.ewOp == EwOp::Mul;
        if (binary != (ins.size() == 2))
            fail(std::string("'") + ewOpName(n.ewOp) + "' takes " +
                 (binary ? "two inputs" : "one input") + ", got " +
                 std::to_string(ins.size()));
        if (binary && !(ins[0]->shape == ins[1]->shape))
            fail("input shapes " + ins[0]->shape.str() + " ('" +
                 ins[0]->name + "') and " + ins[1]->shape.str() +
                 " ('" + ins[1]->name + "') differ");
        n.shape = ins[0]->shape;
        break;
      }
      case NodeKind::Reduce: {
        const Shape &x = ins[0]->shape;
        if (x.rank() < 1)
            fail("input must have rank >= 1");
        n.shape.dims.assign(x.dims.begin(), x.dims.end() - 1);
        if (n.shape.dims.empty())
            n.shape.dims = {1};
        break;
      }
      case NodeKind::Softmax: {
        if (ins[0]->shape.rank() < 1)
            fail("input must have rank >= 1");
        n.shape = ins[0]->shape;
        break;
      }
      case NodeKind::Attention: {
        const Shape &x = ins[0]->shape;
        if (x.rank() != 2)
            fail("input must be rank 2 [T, D], got " + x.str());
        n.shape = x;
        break;
      }
    }
}

} // namespace

std::vector<size_t>
validate(LayerGraph &g)
{
    if (g.name.empty())
        fatal("graph has no name");
    if (g.nodes.empty())
        fatal("graph '", g.name, "' has no nodes");
    if (g.outputs.empty())
        fatal("graph '", g.name, "' declares no outputs");

    // Names are unique and references resolve.
    std::map<std::string, size_t> byName;
    for (size_t i = 0; i < g.nodes.size(); ++i) {
        const Node &n = g.nodes[i];
        if (n.name.empty())
            fatal("graph '", g.name, "': node ", i, " has no name");
        if (!byName.emplace(n.name, i).second)
            fatal(where(g, n), ": duplicate node name");
        if (n.par < 0)
            fatal(where(g, n), ": 'par' must be non-negative");
        if (n.kind == NodeKind::Input) {
            if (!n.inputs.empty())
                fatal(where(g, n), ": inputs cannot have producers");
            if (n.shape.dims.empty())
                fatal(where(g, n), ": input declares no shape");
            for (int64_t d : n.shape.dims)
                if (d <= 0)
                    fatal(where(g, n), ": shape ", n.shape.str(),
                          " has a non-positive dimension");
        } else if (n.inputs.empty()) {
            fatal(where(g, n), ": compute node has no inputs");
        }
    }
    for (const Node &n : g.nodes)
        for (const std::string &in : n.inputs)
            if (!byName.count(in))
                fatal(where(g, n), ": unknown input '", in, "'");
    for (const std::string &out : g.outputs)
        if (!byName.count(out))
            fatal("graph '", g.name, "': unknown output '", out, "'");

    // Kahn topological sort, declaration order as the tie-break; any
    // leftover node sits on a cycle.
    std::vector<int> pending(g.nodes.size(), 0);
    std::vector<std::vector<size_t>> consumers(g.nodes.size());
    for (size_t i = 0; i < g.nodes.size(); ++i) {
        pending[i] = static_cast<int>(g.nodes[i].inputs.size());
        for (const std::string &in : g.nodes[i].inputs)
            consumers[byName[in]].push_back(i);
    }
    std::vector<size_t> order, ready;
    for (size_t i = 0; i < g.nodes.size(); ++i)
        if (pending[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        // Lowest declaration index first: deterministic lowering.
        auto it = std::min_element(ready.begin(), ready.end());
        size_t i = *it;
        ready.erase(it);
        order.push_back(i);
        for (size_t c : consumers[i])
            if (--pending[c] == 0)
                ready.push_back(c);
    }
    if (order.size() != g.nodes.size()) {
        for (size_t i = 0; i < g.nodes.size(); ++i)
            if (pending[i] > 0)
                fatal(where(g, g.nodes[i]),
                      ": graph contains a cycle through this node");
    }

    // Shape inference in topological order.
    for (size_t i : order) {
        Node &n = g.nodes[i];
        std::vector<const Node *> ins;
        for (const std::string &in : n.inputs)
            ins.push_back(&g.nodes[byName[in]]);
        inferShape(g, n, ins);
    }
    return order;
}

// ---------------------------------------------------------------------------
// GraphBuilder
// ---------------------------------------------------------------------------

GraphBuilder::GraphBuilder(std::string name)
{
    g_.name = std::move(name);
}

Node &
GraphBuilder::addNode(const std::string &name, NodeKind kind,
                      std::vector<std::string> inputs)
{
    Node n;
    n.name = name;
    n.kind = kind;
    n.inputs = std::move(inputs);
    g_.nodes.push_back(std::move(n));
    return g_.nodes.back();
}

GraphBuilder &
GraphBuilder::input(const std::string &name, std::vector<int64_t> shape)
{
    addNode(name, NodeKind::Input, {}).shape.dims = std::move(shape);
    return *this;
}

GraphBuilder &
GraphBuilder::matmul(const std::string &name, const std::string &in,
                     int64_t features, int par)
{
    Node &n = addNode(name, NodeKind::Matmul, {in});
    n.features = features;
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::conv(const std::string &name, const std::string &in,
                   int64_t channels, int64_t kernel, int64_t pad, int par)
{
    Node &n = addNode(name, NodeKind::Conv, {in});
    n.channels = channels;
    n.kernel = kernel;
    n.pad = pad;
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::elementwise(const std::string &name, EwOp op,
                          const std::string &a, const std::string &b,
                          int par)
{
    std::vector<std::string> ins = {a};
    if (!b.empty())
        ins.push_back(b);
    Node &n = addNode(name, NodeKind::Elementwise, std::move(ins));
    n.ewOp = op;
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::relu(const std::string &name, const std::string &in, int par)
{
    return elementwise(name, EwOp::Relu, in, "", par);
}

GraphBuilder &
GraphBuilder::gelu(const std::string &name, const std::string &in, int par)
{
    return elementwise(name, EwOp::Gelu, in, "", par);
}

GraphBuilder &
GraphBuilder::add(const std::string &name, const std::string &a,
                  const std::string &b, int par)
{
    return elementwise(name, EwOp::Add, a, b, par);
}

GraphBuilder &
GraphBuilder::reduce(const std::string &name, RedOp op,
                     const std::string &in, int par)
{
    Node &n = addNode(name, NodeKind::Reduce, {in});
    n.redOp = op;
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::softmax(const std::string &name, const std::string &in,
                      int par)
{
    Node &n = addNode(name, NodeKind::Softmax, {in});
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::attention(const std::string &name, const std::string &in,
                        int par)
{
    Node &n = addNode(name, NodeKind::Attention, {in});
    n.par = par;
    return *this;
}

GraphBuilder &
GraphBuilder::output(const std::string &name)
{
    g_.outputs.push_back(name);
    return *this;
}

LayerGraph
GraphBuilder::build()
{
    validate(g_);
    return std::move(g_);
}

} // namespace sara::graph
