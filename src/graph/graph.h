#ifndef SARA_GRAPH_GRAPH_H
#define SARA_GRAPH_GRAPH_H

/**
 * @file
 * The NN layer-graph frontend: a model is a small DAG of coarse layer
 * nodes (matmul, conv, elementwise, reduce, softmax, attention) over
 * logically-shaped tensors. Graphs come from two front doors — a JSON
 * document (parsed with the strict parser in support/json) or the
 * GraphBuilder C++ API — and lower automatically into SARA IR (see
 * graph/lower.h): every layer becomes a tiled loop nest with the
 * standard inner-vectorize/outer-unroll par split, inter-layer
 * activations stream through on-chip buffers the compiler
 * FIFO-lowers, and weights/inputs get DRAM staging loops.
 *
 * Validation is strict and source-located: shape/type mismatches and
 * cycles are rejected with `file:line:col: node 'x': ...` diagnostics
 * when the graph came from JSON.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace sara::graph {

/** Layer kinds. Input is the implicit source kind for declared graph
 *  inputs; the other six are the compute vocabulary of sara-graph/v1. */
enum class NodeKind : uint8_t {
    Input,
    Matmul,
    Conv,
    Elementwise,
    Reduce,
    Softmax,
    Attention,
};

const char *nodeKindName(NodeKind k);

/** Elementwise micro-ops: add/mul are binary, relu/gelu unary. */
enum class EwOp : uint8_t { Add, Mul, Relu, Gelu };

/** Reduction micro-ops (over the last axis). */
enum class RedOp : uint8_t { Add, Max };

const char *ewOpName(EwOp op);
const char *redOpName(RedOp op);

/** A logical tensor shape (row-major; lowering flattens to 1-D). */
struct Shape
{
    std::vector<int64_t> dims;

    int64_t elems() const;
    size_t rank() const { return dims.size(); }
    std::string str() const; ///< "[4, 8, 8]"
    bool operator==(const Shape &o) const { return dims == o.dims; }
};

/** Source location of a node in its JSON document (builder graphs
 *  leave it invalid and diagnostics fall back to the graph name). */
struct SrcLoc
{
    int line = 0;
    int col = 0;
    bool valid() const { return line > 0; }
};

/** One layer node. Parameter fields are kind-specific. */
struct Node
{
    std::string name;
    NodeKind kind = NodeKind::Input;
    std::vector<std::string> inputs; ///< Producer node names.

    Shape shape;        ///< Input: declared. Others: inferred (validate).
    int64_t features = 0;    ///< Matmul: output features N.
    int64_t channels = 0;    ///< Conv: output channels K.
    int64_t kernel = 3;      ///< Conv: square kernel size.
    int64_t pad = 1;         ///< Conv: symmetric zero padding.
    EwOp ewOp = EwOp::Relu;  ///< Elementwise micro-op.
    RedOp redOp = RedOp::Add; ///< Reduce micro-op.
    int par = 0;             ///< Par-factor hint; 0 = inherit global.

    SrcLoc loc;

    bool isCompute() const { return kind != NodeKind::Input; }
};

/** A whole model graph. */
struct LayerGraph
{
    std::string name;
    std::string source; ///< Diagnostic prefix ("mlp.graph.json" or "").
    std::vector<Node> nodes; ///< Declaration order; inputs included.
    std::vector<std::string> outputs; ///< Names of nodes stored to DRAM.

    const Node *find(const std::string &name) const;
    /** "mlp: 6 layers (3 matmul, 2 elementwise, 1 softmax)" */
    std::string summary() const;
};

/**
 * Validate `g` and infer every node's shape in place: names unique,
 * input references resolve, the graph is acyclic, per-kind shape and
 * parameter rules hold, and every declared output exists. Returns the
 * node indices in a deterministic topological order (Kahn's algorithm,
 * declaration order as the tie-break). fatal()s with a source-located
 * diagnostic on the first violation.
 */
std::vector<size_t> validate(LayerGraph &g);

/**
 * Fluent construction API, mirroring the JSON vocabulary:
 *
 *   GraphBuilder b("mlp");
 *   b.input("x", {4, 64});
 *   b.matmul("fc1", "x", 64).relu("act1", "fc1");
 *   b.output("act1");
 *   LayerGraph g = b.build();   // validates
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(std::string name);

    GraphBuilder &input(const std::string &name,
                        std::vector<int64_t> shape);
    GraphBuilder &matmul(const std::string &name, const std::string &in,
                         int64_t features, int par = 0);
    GraphBuilder &conv(const std::string &name, const std::string &in,
                       int64_t channels, int64_t kernel = 3,
                       int64_t pad = 1, int par = 0);
    GraphBuilder &elementwise(const std::string &name, EwOp op,
                              const std::string &a,
                              const std::string &b = "", int par = 0);
    GraphBuilder &relu(const std::string &name, const std::string &in,
                       int par = 0);
    GraphBuilder &gelu(const std::string &name, const std::string &in,
                       int par = 0);
    GraphBuilder &add(const std::string &name, const std::string &a,
                      const std::string &b, int par = 0);
    GraphBuilder &reduce(const std::string &name, RedOp op,
                         const std::string &in, int par = 0);
    GraphBuilder &softmax(const std::string &name, const std::string &in,
                          int par = 0);
    GraphBuilder &attention(const std::string &name,
                            const std::string &in, int par = 0);
    GraphBuilder &output(const std::string &name);

    /** Validate and hand the graph over. */
    LayerGraph build();

  private:
    Node &addNode(const std::string &name, NodeKind kind,
                  std::vector<std::string> inputs);

    LayerGraph g_;
};

/**
 * Parse a sara-graph/v1 JSON document. `source` seeds diagnostics
 * (usually the file name). fatal()s on malformed JSON (parser
 * line:column), schema violations, and anything validate() rejects.
 */
LayerGraph parseGraphJson(const std::string &text,
                          const std::string &source = "<graph>");

/** Read and parse a graph file. fatal()s if unreadable. */
LayerGraph loadGraphFile(const std::string &path);

} // namespace sara::graph

#endif // SARA_GRAPH_GRAPH_H
