/**
 * @file
 * JSON front door of the graph frontend (schema sara-graph/v1, see
 * schemas/sara-graph.v1.json):
 *
 *   { "schema": "sara-graph/v1", "name": "mlp",
 *     "inputs": [ { "name": "x", "shape": [4, 64] } ],
 *     "nodes": [
 *       { "name": "fc1", "kind": "matmul", "input": "x",
 *         "features": 64, "par": 32 },
 *       { "name": "act1", "kind": "elementwise", "op": "relu",
 *         "input": "fc1" } ],
 *     "outputs": [ "act1" ] }
 *
 * Unary nodes take "input"; binary elementwise (add/mul) takes
 * "inputs": [a, b]. Every schema violation is reported with the
 * offending value's line:column (the strict parser records byte
 * offsets), so a shape typo in a 40-line model file points at the
 * line, not at "somewhere in the graph".
 */

#include <cstdio>

#include "graph/graph.h"
#include "support/json.h"
#include "support/logging.h"

namespace sara::graph {

namespace {

struct Loader
{
    const std::string &text;
    std::string source;

    [[noreturn]] void
    fail(const json::Value &v, const std::string &msg) const
    {
        auto [line, col] = json::lineCol(text, v.offset);
        fatal(source, ":", line, ":", col, ": ", msg);
    }

    SrcLoc
    loc(const json::Value &v) const
    {
        auto [line, col] = json::lineCol(text, v.offset);
        return SrcLoc{line, col};
    }

    std::string
    str(const json::Value &obj, const std::string &key) const
    {
        const json::Value *v = obj.find(key);
        if (!v)
            fail(obj, "missing \"" + key + "\"");
        if (!v->isString())
            fail(*v, "\"" + key + "\" must be a string");
        return v->str;
    }

    int64_t
    integer(const json::Value &v, const std::string &key) const
    {
        if (!v.isNumber() || v.num != static_cast<int64_t>(v.num))
            fail(v, "\"" + key + "\" must be an integer");
        return static_cast<int64_t>(v.num);
    }

    std::vector<int64_t>
    shape(const json::Value &obj) const
    {
        const json::Value *v = obj.find("shape");
        if (!v)
            fail(obj, "missing \"shape\"");
        if (!v->isArray() || v->arr.empty())
            fail(*v, "\"shape\" must be a non-empty array");
        std::vector<int64_t> dims;
        for (const auto &d : v->arr) {
            int64_t dim = integer(d, "shape");
            if (dim <= 0)
                fail(d, "shape dimensions must be positive");
            dims.push_back(dim);
        }
        return dims;
    }

    /** "input": "x" (unary) or "inputs": ["a", "b"]. */
    std::vector<std::string>
    nodeInputs(const json::Value &obj) const
    {
        const json::Value *one = obj.find("input");
        const json::Value *many = obj.find("inputs");
        if (one && many)
            fail(obj, "give either \"input\" or \"inputs\", not both");
        if (one) {
            if (!one->isString())
                fail(*one, "\"input\" must be a node name");
            return {one->str};
        }
        if (!many)
            fail(obj, "missing \"input\" (or \"inputs\")");
        if (!many->isArray() || many->arr.empty())
            fail(*many, "\"inputs\" must be a non-empty array");
        std::vector<std::string> names;
        for (const auto &v : many->arr) {
            if (!v.isString())
                fail(v, "\"inputs\" entries must be node names");
            names.push_back(v.str);
        }
        return names;
    }

    void
    allowKeys(const json::Value &obj,
              std::initializer_list<const char *> keys) const
    {
        for (const auto &[k, v] : obj.obj) {
            bool ok = false;
            for (const char *allowed : keys)
                ok = ok || k == allowed;
            if (!ok)
                fail(v, "unknown key \"" + k + "\"");
        }
    }

    Node
    parseNode(const json::Value &v) const
    {
        if (!v.isObject())
            fail(v, "node must be an object");
        Node n;
        n.loc = loc(v);
        n.name = str(v, "name");
        std::string kind = str(v, "kind");
        n.inputs = nodeInputs(v);

        if (const json::Value *par = v.find("par")) {
            n.par = static_cast<int>(integer(*par, "par"));
            if (n.par <= 0)
                fail(*par, "\"par\" must be positive");
        }

        if (kind == "matmul") {
            n.kind = NodeKind::Matmul;
            allowKeys(v, {"name", "kind", "input", "inputs", "par",
                          "features"});
            const json::Value *f = v.find("features");
            if (!f)
                fail(v, "matmul needs \"features\"");
            n.features = integer(*f, "features");
        } else if (kind == "conv") {
            n.kind = NodeKind::Conv;
            allowKeys(v, {"name", "kind", "input", "inputs", "par",
                          "channels", "kernel", "pad"});
            const json::Value *c = v.find("channels");
            if (!c)
                fail(v, "conv needs \"channels\"");
            n.channels = integer(*c, "channels");
            if (const json::Value *k = v.find("kernel"))
                n.kernel = integer(*k, "kernel");
            if (const json::Value *p = v.find("pad"))
                n.pad = integer(*p, "pad");
        } else if (kind == "elementwise") {
            n.kind = NodeKind::Elementwise;
            allowKeys(v, {"name", "kind", "input", "inputs", "par",
                          "op"});
            std::string op = str(v, "op");
            if (op == "add")
                n.ewOp = EwOp::Add;
            else if (op == "mul")
                n.ewOp = EwOp::Mul;
            else if (op == "relu")
                n.ewOp = EwOp::Relu;
            else if (op == "gelu")
                n.ewOp = EwOp::Gelu;
            else
                fail(*v.find("op"), "unknown elementwise op \"" + op +
                                        "\" (add, mul, relu, gelu)");
        } else if (kind == "reduce") {
            n.kind = NodeKind::Reduce;
            allowKeys(v, {"name", "kind", "input", "inputs", "par",
                          "op"});
            std::string op = str(v, "op");
            if (op == "add")
                n.redOp = RedOp::Add;
            else if (op == "max")
                n.redOp = RedOp::Max;
            else
                fail(*v.find("op"),
                     "unknown reduce op \"" + op + "\" (add, max)");
        } else if (kind == "softmax") {
            n.kind = NodeKind::Softmax;
            allowKeys(v, {"name", "kind", "input", "inputs", "par"});
        } else if (kind == "attention") {
            n.kind = NodeKind::Attention;
            allowKeys(v, {"name", "kind", "input", "inputs", "par"});
        } else {
            fail(*v.find("kind"),
                 "unknown node kind \"" + kind +
                     "\" (matmul, conv, elementwise, reduce, softmax, "
                     "attention)");
        }
        return n;
    }
};

} // namespace

LayerGraph
parseGraphJson(const std::string &text, const std::string &source)
{
    json::Value doc = json::parse(text);
    Loader ld{text, source};
    if (!doc.isObject())
        ld.fail(doc, "graph document must be an object");
    ld.allowKeys(doc, {"schema", "name", "inputs", "nodes", "outputs"});

    std::string schema = ld.str(doc, "schema");
    if (schema != "sara-graph/v1")
        ld.fail(*doc.find("schema"),
                "unsupported schema \"" + schema +
                    "\" (want sara-graph/v1)");

    LayerGraph g;
    g.source = source;
    g.name = ld.str(doc, "name");

    const json::Value *inputs = doc.find("inputs");
    if (!inputs || !inputs->isArray())
        ld.fail(doc, "missing \"inputs\" array");
    for (const auto &v : inputs->arr) {
        if (!v.isObject())
            ld.fail(v, "input must be an object");
        ld.allowKeys(v, {"name", "shape"});
        Node n;
        n.loc = ld.loc(v);
        n.kind = NodeKind::Input;
        n.name = ld.str(v, "name");
        n.shape.dims = ld.shape(v);
        g.nodes.push_back(std::move(n));
    }

    const json::Value *nodes = doc.find("nodes");
    if (!nodes || !nodes->isArray())
        ld.fail(doc, "missing \"nodes\" array");
    for (const auto &v : nodes->arr)
        g.nodes.push_back(ld.parseNode(v));

    const json::Value *outputs = doc.find("outputs");
    if (!outputs || !outputs->isArray())
        ld.fail(doc, "missing \"outputs\" array");
    for (const auto &v : outputs->arr) {
        if (!v.isString())
            ld.fail(v, "outputs must be node names");
        g.outputs.push_back(v.str);
    }

    validate(g);
    return g;
}

LayerGraph
loadGraphFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open graph file ", path);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // Diagnostics use the basename: stable across build dirs.
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return parseGraphJson(text, base);
}

} // namespace sara::graph
