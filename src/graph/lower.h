#ifndef SARA_GRAPH_LOWER_H
#define SARA_GRAPH_LOWER_H

/**
 * @file
 * Lowering from a validated LayerGraph to SARA IR. Each layer becomes
 * a tiled loop nest built with ir::Builder, parallelized with the
 * standard §IV-A split (innermost vectorization up to the lane width,
 * remaining factor as outer spatial unroll — workloads/common.h), with
 * a per-layer par choice: node hint > global default, overridable per
 * sweep point through LowerOptions::parOverride.
 *
 * Data movement follows the hand-built workloads: graph inputs and
 * generated weights get DRAM tensors plus bulk staging loops into
 * on-chip buffers; activations between layers live in on-chip buffers
 * written by the producer nest and read by the consumer nest — the
 * compiler FIFO-lowers or multibuffers them into inter-layer streams;
 * declared graph outputs get DRAM store loops.
 */

#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace sara::graph {

struct LowerOptions
{
    /** Default par factor for layers without a hint. */
    int par = 16;
    /** Problem-size multiplier: scales the leading (batch) dimension
     *  of every graph input. */
    int scale = 1;
    /** Seed for the generated weights and input data. */
    uint64_t seed = 42;
    /** Per-layer par override (sweeps); wins over the node hint. */
    std::map<std::string, int> parOverride;
};

/** How one layer was lowered (reported by `sarac --graph` and the
 *  bench_graph per-layer sweep). */
struct LoweredLayer
{
    std::string name;
    std::string kind;
    Shape in;   ///< First input's shape (empty for graph inputs).
    Shape out;
    int par = 1;
    workloads::ParSplit split;
};

struct LowerResult
{
    workloads::Workload workload;
    std::vector<LoweredLayer> layers; ///< Compute nodes, topo order.
};

/**
 * Lower `g` into a runnable workload. The graph is re-validated after
 * applying scale/par overrides, so callers can hand over graphs built
 * at different option sets. fatal()s with source-located diagnostics
 * on invalid graphs.
 */
LowerResult lowerGraph(const LayerGraph &g, const LowerOptions &opt);

} // namespace sara::graph

#endif // SARA_GRAPH_LOWER_H
