/**
 * @file
 * LayerGraph -> SARA IR lowering. Every compute node becomes one loop
 * nest; on-chip activation buffers connect producer and consumer nests
 * (the compiler FIFO-lowers or multibuffers them into inter-layer
 * streams). The emitted patterns are the ones the hand-built workloads
 * established:
 *
 *   matmul     dense dot-product nest (dl.cc emitDense): output
 *              features unrolled by the outer par, the K-dim reduction
 *              vectorized by the inner par.
 *   conv       zero-padded buffer + im2col + GEMM (dl.cc snet),
 *              generalized to any square kernel/pad.
 *   ew         one flat vectorized map loop; gelu is the sigmoid
 *              approximation x * sigmoid(1.702 x) (all ALU ops exist
 *              in the ISA; no erf needed).
 *   reduce     row loop (outer par) over a vectorized reduction of the
 *              last axis.
 *   softmax    three sibling reductions per row: RedMax, then
 *              exp-subtract-accumulate (RedAdd) into a scratch buffer,
 *              then the divide — the cross-loop reduction reads follow
 *              the kmeans argmin pattern (analytics.cc).
 *   attention  single-head: three projection GEMMs, a QK^T score nest
 *              scaled by 1/sqrt(D), row softmax, and the PV output
 *              GEMM.
 *
 * Weights are generated here (seeded, in topological node order, so a
 * graph lowers byte-identically across runs) and staged DRAM ->
 * on-chip immediately before their consuming nest; graph inputs are
 * staged up front and declared outputs stored back to DRAM at the end.
 */

#include <algorithm>
#include <cmath>

#include "graph/lower.h"
#include "support/logging.h"
#include "support/rng.h"

namespace sara::graph {

namespace {

using namespace ir;
using workloads::ParSplit;
using workloads::emitLoad;
using workloads::emitStore;
using workloads::randomData;
using workloads::splitPar;

/** Loop par factors never exceed the trip count. */
int
clampPar(int par, int64_t trip)
{
    return static_cast<int>(std::min<int64_t>(std::max(par, 1), trip));
}

struct Lowerer
{
    const LayerGraph &g;
    const LowerOptions &opt;
    workloads::Workload &w;
    Builder b;
    Rng rng;
    /** Node name -> its on-chip activation buffer. */
    std::map<std::string, TensorId> buf;

    Lowerer(const LayerGraph &graph, const LowerOptions &options,
            workloads::Workload &out)
        : g(graph), opt(options), w(out), b(out.program), rng(options.seed)
    {
    }

    Program &p() { return w.program; }

    int
    layerPar(const Node &n) const
    {
        auto it = opt.parOverride.find(n.name);
        if (it != opt.parOverride.end())
            return std::max(1, it->second);
        return n.par > 0 ? n.par : std::max(1, opt.par);
    }

    /** DRAM weight tensor + staged on-chip copy, data generated now
     *  (call order == topo order => deterministic artifacts). */
    TensorId
    stageWeights(const std::string &name, int64_t n, double lo, double hi,
                 int loadPar)
    {
        TensorId d = p().addTensor("d" + name, MemSpace::Dram, n);
        TensorId on = p().addTensor(name, MemSpace::OnChip, n);
        w.dramInputs[d.v] = randomData(rng, n, lo, hi);
        emitLoad(b, d, on, n, 0, loadPar, "ld_" + name);
        return on;
    }

    // --- Per-kind nest emitters -----------------------------------

    /** y[m, o] = sum_i wt[o*K + i] * x[m*K + i]; wt is [N, K]. */
    void
    emitMatmul(TensorId xb, TensorId wt, TensorId yb, int64_t M,
               int64_t K, int64_t N, ParSplit par, const std::string &nm)
    {
        CtrlId m{};
        bool hasM = M > 1;
        if (hasM)
            m = b.beginLoop(nm + "_m", 0, M);
        auto o = b.beginLoop(nm + "_o", 0, N, 1, clampPar(par.outer, N));
        auto i = b.beginLoop(nm + "_i", 0, K, 1, clampPar(par.inner, K));
        b.beginBlock(nm + "_mac");
        auto wv = b.read(wt, b.add(b.affine(b.iter(o), K, 0), b.iter(i)));
        OpId xaddr = hasM
                         ? b.add(b.affine(b.iter(m), K, 0), b.iter(i))
                         : b.iter(i);
        auto sum = b.reduce(OpKind::RedAdd, b.mul(wv, b.read(xb, xaddr)),
                            i);
        b.endBlock();
        b.endLoop();
        b.beginBlock(nm + "_wb");
        OpId yaddr = hasM
                         ? b.add(b.affine(b.iter(m), N, 0), b.iter(o))
                         : b.iter(o);
        b.write(yb, yaddr, sum);
        b.endBlock();
        b.endLoop();
        if (hasM)
            b.endLoop();
    }

    /** Flat elementwise map over n elements. */
    void
    emitEw(const Node &n, TensorId a, TensorId bb, TensorId yb,
           int64_t elems, int par, const std::string &nm)
    {
        auto l = b.beginLoop(nm, 0, elems, 1, clampPar(par, elems));
        b.beginBlock(nm + "_b");
        auto av = b.read(a, b.iter(l));
        OpId yv;
        switch (n.ewOp) {
          case EwOp::Add:
            yv = b.add(av, b.read(bb, b.iter(l)));
            break;
          case EwOp::Mul:
            yv = b.mul(av, b.read(bb, b.iter(l)));
            break;
          case EwOp::Relu:
            yv = b.unary(OpKind::Relu, av);
            break;
          case EwOp::Gelu:
            // x * sigmoid(1.702 x): the tanh-free GELU approximation.
            yv = b.mul(av, b.unary(OpKind::Sigmoid,
                                   b.mul(av, b.cst(1.702))));
            break;
        }
        b.write(yb, b.iter(l), yv);
        b.endBlock();
        b.endLoop();
    }

    /** y[p] = reduce_j x[p*L + j] over the last axis. */
    void
    emitReduce(RedOp op, TensorId xb, TensorId yb, int64_t P, int64_t L,
               ParSplit par, const std::string &nm)
    {
        OpKind kind = op == RedOp::Add ? OpKind::RedAdd : OpKind::RedMax;
        auto pl = b.beginLoop(nm + "_p", 0, P, 1, clampPar(par.outer, P));
        auto j = b.beginLoop(nm + "_j", 0, L, 1, clampPar(par.inner, L));
        b.beginBlock(nm + "_red");
        auto xv = b.read(xb, b.add(b.affine(b.iter(pl), L, 0), b.iter(j)));
        auto s = b.reduce(kind, xv, j);
        b.endBlock();
        b.endLoop();
        b.beginBlock(nm + "_wb");
        b.write(yb, b.iter(pl), s);
        b.endBlock();
        b.endLoop();
    }

    /** Row softmax over the last axis; eb is an elems-sized scratch
     *  holding the shifted exponentials between the two passes. */
    void
    emitSoftmax(TensorId xb, TensorId eb, TensorId yb, int64_t P,
                int64_t L, ParSplit par, const std::string &nm)
    {
        int inner = clampPar(par.inner, L);
        auto pl = b.beginLoop(nm + "_p", 0, P, 1, clampPar(par.outer, P));
        // Pass 1: row max (numerical stability).
        auto j1 = b.beginLoop(nm + "_max", 0, L, 1, inner);
        b.beginBlock(nm + "_max_b");
        auto mx = b.reduce(
            OpKind::RedMax,
            b.read(xb, b.add(b.affine(b.iter(pl), L, 0), b.iter(j1))),
            j1);
        b.endBlock();
        b.endLoop();
        // Pass 2: e = exp(x - max), stash to scratch, accumulate sum.
        auto j2 = b.beginLoop(nm + "_exp", 0, L, 1, inner);
        b.beginBlock(nm + "_exp_b");
        auto addr2 = b.add(b.affine(b.iter(pl), L, 0), b.iter(j2));
        auto e = b.unary(OpKind::Exp, b.sub(b.read(xb, addr2), mx));
        b.write(eb, addr2, e);
        auto sum = b.reduce(OpKind::RedAdd, e, j2);
        b.endBlock();
        b.endLoop();
        // Pass 3: normalize.
        auto j3 = b.beginLoop(nm + "_div", 0, L, 1, inner);
        b.beginBlock(nm + "_div_b");
        auto addr3 = b.add(b.affine(b.iter(pl), L, 0), b.iter(j3));
        b.write(yb, addr3, b.div(b.read(eb, addr3), sum));
        b.endBlock();
        b.endLoop();
        b.endLoop();
    }

    /** Padded-copy + im2col + GEMM convolution (snet generalized). */
    void
    emitConv(const Node &n, TensorId xb, TensorId yb, const Shape &in,
             ParSplit par, int loadPar)
    {
        const std::string &nm = n.name;
        const int64_t C = in.dims[0], H = in.dims[1], W = in.dims[2];
        const int64_t K = n.channels, k = n.kernel, pad = n.pad;
        const int64_t Hp = H + 2 * pad, Wp = W + 2 * pad;
        const int64_t Ho = Hp - k + 1, Wo = Wp - k + 1;
        const int64_t patch = C * k * k;

        TensorId wt = stageWeights("w_" + nm, K * patch, -0.3, 0.3,
                                   loadPar);

        TensorId pb = xb;
        if (pad > 0) {
            pb = p().addTensor(nm + "_pad", MemSpace::OnChip,
                               C * Hp * Wp);
            // Zero-fill, then copy the interior.
            auto z = b.beginLoop(nm + "_zero", 0, C * Hp * Wp, 1,
                                 clampPar(16, C * Hp * Wp));
            b.beginBlock(nm + "_zero_b");
            b.write(pb, b.iter(z), b.cst(0.0));
            b.endBlock();
            b.endLoop();

            auto c = b.beginLoop(nm + "_pc", 0, C);
            auto y = b.beginLoop(nm + "_py", 0, H);
            auto x = b.beginLoop(nm + "_px", 0, W, 1, clampPar(16, W));
            b.beginBlock(nm + "_pcopy");
            auto src = b.add(b.affine(b.iter(c), H * W, 0),
                             b.add(b.affine(b.iter(y), W, 0), b.iter(x)));
            auto dst = b.add(
                b.affine(b.iter(c), Hp * Wp, 0),
                b.add(b.affine(b.iter(y), Wp, pad * Wp),
                      b.affine(b.iter(x), 1, pad)));
            b.write(pb, dst, b.read(xb, src));
            b.endBlock();
            b.endLoop();
            b.endLoop();
            b.endLoop();
        }

        // im2col: colb[(y*Wo + x)*patch + c*k*k + dy*k + dx] =
        //         pb[c*Hp*Wp + (y+dy)*Wp + (x+dx)]
        TensorId colb = p().addTensor(nm + "_col", MemSpace::OnChip,
                                      Ho * Wo * patch);
        {
            auto y = b.beginLoop(nm + "_cy", 0, Ho);
            auto x = b.beginLoop(nm + "_cx", 0, Wo);
            auto c = b.beginLoop(nm + "_cc", 0, C);
            auto dy = b.beginLoop(nm + "_cdy", 0, k);
            auto dx = b.beginLoop(nm + "_cdx", 0, k, 1,
                                  clampPar(static_cast<int>(std::min<int64_t>(k, 16)), k));
            b.beginBlock(nm + "_col_b");
            auto src = b.add(
                b.add(b.affine(b.iter(c), Hp * Wp, 0),
                      b.mul(b.add(b.iter(y), b.iter(dy)),
                            b.cst(double(Wp)))),
                b.add(b.iter(x), b.iter(dx)));
            auto dst = b.add(
                b.add(b.mul(b.add(b.affine(b.iter(y), Wo, 0), b.iter(x)),
                            b.cst(double(patch))),
                      b.add(b.affine(b.iter(c), k * k, 0),
                            b.affine(b.iter(dy), k, 0))),
                b.iter(dx));
            b.write(colb, dst, b.read(pb, src));
            b.endBlock();
            b.endLoop();
            b.endLoop();
            b.endLoop();
            b.endLoop();
            b.endLoop();
        }

        // GEMM: y[ko, pp] = sum_q wt[ko*patch + q] * colb[pp*patch + q].
        {
            auto ko = b.beginLoop(nm + "_gk", 0, K, 1,
                                  clampPar(par.outer, K));
            auto pp = b.beginLoop(nm + "_gp", 0, Ho * Wo);
            auto q = b.beginLoop(nm + "_gq", 0, patch, 1,
                                 clampPar(par.inner, patch));
            b.beginBlock(nm + "_gemm");
            auto wv = b.read(wt, b.add(b.affine(b.iter(ko), patch, 0),
                                       b.iter(q)));
            auto cv = b.read(colb, b.add(b.affine(b.iter(pp), patch, 0),
                                         b.iter(q)));
            auto acc = b.reduce(OpKind::RedAdd, b.mul(wv, cv), q);
            b.endBlock();
            b.endLoop();
            b.beginBlock(nm + "_gwb");
            b.write(yb, b.add(b.affine(b.iter(ko), Ho * Wo, 0),
                              b.iter(pp)),
                    acc);
            b.endBlock();
            b.endLoop();
            b.endLoop();
        }
    }

    /** Single-head self-attention over x [T, D]. */
    void
    emitAttention(const Node &n, TensorId xb, TensorId yb,
                  const Shape &in, ParSplit par, int loadPar)
    {
        const std::string &nm = n.name;
        const int64_t T = in.dims[0], D = in.dims[1];

        TensorId wq = stageWeights("wq_" + nm, D * D, -0.3, 0.3, loadPar);
        TensorId wk = stageWeights("wk_" + nm, D * D, -0.3, 0.3, loadPar);
        TensorId wv = stageWeights("wv_" + nm, D * D, -0.3, 0.3, loadPar);

        TensorId qb = p().addTensor(nm + "_q", MemSpace::OnChip, T * D);
        TensorId kb = p().addTensor(nm + "_k", MemSpace::OnChip, T * D);
        TensorId vb = p().addTensor(nm + "_v", MemSpace::OnChip, T * D);
        TensorId sb = p().addTensor(nm + "_s", MemSpace::OnChip, T * T);
        TensorId eb = p().addTensor(nm + "_e", MemSpace::OnChip, T * T);
        TensorId pb = p().addTensor(nm + "_p", MemSpace::OnChip, T * T);

        emitMatmul(xb, wq, qb, T, D, D, par, nm + "_q");
        emitMatmul(xb, wk, kb, T, D, D, par, nm + "_k");
        emitMatmul(xb, wv, vb, T, D, D, par, nm + "_v");

        // Scores: sb[t, u] = (q[t] . k[u]) / sqrt(D).
        const double invSqrtD = 1.0 / std::sqrt(double(D));
        {
            auto t = b.beginLoop(nm + "_st", 0, T, 1,
                                 clampPar(par.outer, T));
            auto u = b.beginLoop(nm + "_su", 0, T);
            auto d = b.beginLoop(nm + "_sd", 0, D, 1,
                                 clampPar(par.inner, D));
            b.beginBlock(nm + "_dot");
            auto qv = b.read(qb, b.add(b.affine(b.iter(t), D, 0),
                                       b.iter(d)));
            auto kv = b.read(kb, b.add(b.affine(b.iter(u), D, 0),
                                       b.iter(d)));
            auto dot = b.reduce(OpKind::RedAdd, b.mul(qv, kv), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(nm + "_scale");
            b.write(sb, b.add(b.affine(b.iter(t), T, 0), b.iter(u)),
                    b.mul(dot, b.cst(invSqrtD)));
            b.endBlock();
            b.endLoop();
            b.endLoop();
        }

        emitSoftmax(sb, eb, pb, T, T, par, nm + "_sm");

        // Output: y[t, d] = sum_u p[t, u] * v[u, d].
        {
            auto t = b.beginLoop(nm + "_ot", 0, T, 1,
                                 clampPar(par.outer, T));
            auto d = b.beginLoop(nm + "_od", 0, D);
            auto u = b.beginLoop(nm + "_ou", 0, T, 1,
                                 clampPar(par.inner, T));
            b.beginBlock(nm + "_omac");
            auto pv = b.read(pb, b.add(b.affine(b.iter(t), T, 0),
                                       b.iter(u)));
            auto vv = b.read(vb, b.add(b.affine(b.iter(u), D, 0),
                                       b.iter(d)));
            auto acc = b.reduce(OpKind::RedAdd, b.mul(pv, vv), u);
            b.endBlock();
            b.endLoop();
            b.beginBlock(nm + "_owb");
            b.write(yb, b.add(b.affine(b.iter(t), D, 0), b.iter(d)),
                    acc);
            b.endBlock();
            b.endLoop();
            b.endLoop();
        }
    }
};

/** Nominal FLOP count of one lowered layer. */
double
layerFlops(const Node &n, const Shape &in, const Shape &out)
{
    switch (n.kind) {
      case NodeKind::Input:
        return 0.0;
      case NodeKind::Matmul: {
        double m = in.rank() == 2 ? double(in.dims[0]) : 1.0;
        return 2.0 * m * double(in.dims.back()) * double(n.features);
      }
      case NodeKind::Conv: {
        double patch = double(in.dims[0]) * n.kernel * n.kernel;
        return 2.0 * double(out.elems()) * patch;
      }
      case NodeKind::Elementwise:
        return double(out.elems()) *
               (n.ewOp == EwOp::Gelu ? 3.0 : 1.0);
      case NodeKind::Reduce:
        return double(in.elems());
      case NodeKind::Softmax:
        return 4.0 * double(in.elems());
      case NodeKind::Attention: {
        double t = double(in.dims[0]), d = double(in.dims[1]);
        return 6.0 * t * d * d   // Q/K/V projections.
               + 2.0 * t * t * d // Scores.
               + 4.0 * t * t     // Softmax.
               + 2.0 * t * t * d; // P x V.
      }
    }
    return 0.0;
}

} // namespace

LowerResult
lowerGraph(const LayerGraph &gIn, const LowerOptions &opt)
{
    // Work on a copy: scaling and par overrides are per-lowering.
    LayerGraph g = gIn;
    for (Node &n : g.nodes)
        if (n.kind == NodeKind::Input && !n.shape.dims.empty())
            n.shape.dims[0] *= std::max(1, opt.scale);
    for (const auto &[name, par] : opt.parOverride) {
        if (!g.find(name))
            fatal("graph '", g.name, "': par override for unknown node '",
                  name, "'");
        if (par <= 0)
            fatal("graph '", g.name, "': par override for '", name,
                  "' must be positive");
    }
    std::vector<size_t> order = validate(g);

    LowerResult r;
    r.workload.name = g.name;
    r.workload.computeBound = true;
    Lowerer lw(g, opt, r.workload);
    const int loadPar =
        std::max(16, std::min(std::max(1, opt.par), 32));

    // On-chip activation buffer per node, declared up front so consumer
    // nests can reference producers regardless of emission order.
    for (const Node &n : g.nodes)
        lw.buf[n.name] = lw.p().addTensor(n.name, MemSpace::OnChip,
                                          n.shape.elems());

    for (size_t idx : order) {
        const Node &n = g.nodes[idx];
        if (n.kind == NodeKind::Input) {
            int64_t elems = n.shape.elems();
            TensorId d = lw.p().addTensor("d_" + n.name, MemSpace::Dram,
                                          elems);
            r.workload.dramInputs[d.v] =
                randomData(lw.rng, elems, -1.0, 1.0);
            emitLoad(lw.b, d, lw.buf[n.name], elems, 0, loadPar,
                     "ld_" + n.name);
            continue;
        }

        const Shape &in0 = g.find(n.inputs[0])->shape;
        int par = lw.layerPar(n);
        ParSplit split = splitPar(par);
        TensorId xb = lw.buf[n.inputs[0]];
        TensorId yb = lw.buf[n.name];

        switch (n.kind) {
          case NodeKind::Input:
            break;
          case NodeKind::Matmul: {
            int64_t M = in0.rank() == 2 ? in0.dims[0] : 1;
            int64_t K = in0.dims.back();
            TensorId wt = lw.stageWeights("w_" + n.name, n.features * K,
                                          -0.5, 0.5, loadPar);
            lw.emitMatmul(xb, wt, yb, M, K, n.features, split, n.name);
            break;
          }
          case NodeKind::Conv:
            lw.emitConv(n, xb, yb, in0, split, loadPar);
            break;
          case NodeKind::Elementwise: {
            TensorId bb = n.inputs.size() > 1 ? lw.buf[n.inputs[1]]
                                              : TensorId{};
            lw.emitEw(n, xb, bb, yb, n.shape.elems(), par, n.name);
            break;
          }
          case NodeKind::Reduce: {
            int64_t L = in0.dims.back();
            lw.emitReduce(n.redOp, xb, yb, in0.elems() / L, L, split,
                          n.name);
            break;
          }
          case NodeKind::Softmax: {
            int64_t L = in0.dims.back();
            TensorId eb = lw.p().addTensor(n.name + "_e",
                                           MemSpace::OnChip,
                                           in0.elems());
            lw.emitSoftmax(xb, eb, yb, in0.elems() / L, L, split,
                           n.name);
            break;
          }
          case NodeKind::Attention:
            lw.emitAttention(n, xb, yb, in0, split, loadPar);
            break;
        }

        r.workload.nominalFlops += layerFlops(n, in0, n.shape);
        LoweredLayer ll;
        ll.name = n.name;
        ll.kind = nodeKindName(n.kind);
        ll.in = in0;
        ll.out = n.shape;
        ll.par = par;
        ll.split = split;
        r.layers.push_back(std::move(ll));
    }

    // Declared outputs go back to DRAM.
    for (const std::string &out : g.outputs) {
        const Node *n = g.find(out);
        int64_t elems = n->shape.elems();
        TensorId d = lw.p().addTensor("dout_" + out, MemSpace::Dram,
                                      elems);
        emitStore(lw.b, lw.buf[out], d, elems, 0, loadPar, "st_" + out);
        r.workload.elements += double(elems);
    }
    return r;
}

} // namespace sara::graph
