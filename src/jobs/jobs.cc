#include "jobs/jobs.h"

#include <atomic>
#include <chrono>

#include "support/logging.h"
#include "support/telemetry.h"

namespace sara::jobs {

namespace {

double
msSince(std::chrono::steady_clock::time_point epoch)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

} // namespace

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 2 : static_cast<int>(hw);
    }
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void(int)> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        SARA_ASSERT(!shutdown_, "ThreadPool: submit after shutdown");
        queue_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop(int index)
{
    while (true) {
        std::function<void(int)> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // Shutdown with nothing left to do.
            task = std::move(queue_.front());
            queue_.pop();
            ++active_;
        }
        task(index);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idleCv_.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Batch runner
// ---------------------------------------------------------------------------

int
BatchReport::succeeded() const
{
    int n = 0;
    for (const auto &o : outcomes)
        n += o.status == JobOutcome::Status::Ok;
    return n;
}

int
BatchReport::failed() const
{
    int n = 0;
    for (const auto &o : outcomes)
        n += o.status == JobOutcome::Status::Failed;
    return n;
}

int
BatchReport::cancelled() const
{
    int n = 0;
    for (const auto &o : outcomes)
        n += o.status == JobOutcome::Status::Cancelled;
    return n;
}

std::string
BatchReport::firstError() const
{
    for (const auto &o : outcomes)
        if (o.status == JobOutcome::Status::Failed)
            return o.name + ": " + o.error;
    return "";
}

BatchReport
runBatch(std::vector<Job> jobs, const BatchOptions &options)
{
    BatchReport report;
    report.outcomes.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        report.outcomes[i].name = jobs[i].name;
    if (jobs.empty())
        return report;

    int threads = options.threads;
    if (threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 2 : static_cast<int>(hw);
    }
    threads = std::min<int>(threads, static_cast<int>(jobs.size()));

    auto epoch = std::chrono::steady_clock::now();
    std::atomic<bool> cancelled{false};

    {
        ThreadPool pool(threads);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i](int worker) {
                JobOutcome &out = report.outcomes[i];
                if (cancelled.load(std::memory_order_relaxed)) {
                    out.status = JobOutcome::Status::Cancelled;
                    return;
                }
                out.worker = worker;
                out.startMs = msSince(epoch);
                try {
                    for (int attempt = 1;; ++attempt) {
                        try {
                            jobs[i].fn();
                            break;
                        } catch (const TransientError &e) {
                            // Only transient failures are retried, and
                            // never past the attempt budget or into a
                            // cancelled batch.
                            if (attempt >= options.maxAttempts ||
                                cancelled.load(
                                    std::memory_order_relaxed))
                                throw;
                            ++out.retries;
                            telemetry::Registry::global().add(
                                "jobs.retried");
                            warn("job ", jobs[i].name,
                                 " transient failure (attempt ",
                                 attempt, "/", options.maxAttempts,
                                 "): ", e.what());
                            std::this_thread::sleep_for(
                                std::chrono::duration<double,
                                                      std::milli>(
                                    options.retryBackoffMs * attempt));
                        }
                    }
                    out.status = JobOutcome::Status::Ok;
                } catch (const std::exception &e) {
                    out.status = JobOutcome::Status::Failed;
                    out.error = e.what();
                    if (options.cancelOnError)
                        cancelled.store(true,
                                        std::memory_order_relaxed);
                    warn("job ", jobs[i].name, " failed: ", e.what());
                } catch (...) {
                    out.status = JobOutcome::Status::Failed;
                    out.error = "unknown exception";
                    if (options.cancelOnError)
                        cancelled.store(true,
                                        std::memory_order_relaxed);
                }
                out.durMs = msSince(epoch) - out.startMs;
            });
        }
        pool.drain();
    }

    report.wallMs = msSince(epoch);
    report.threads = threads;

    auto &reg = telemetry::Registry::global();
    reg.add("jobs.completed", report.succeeded());
    reg.add("jobs.failed", report.failed());
    reg.add("jobs.cancelled", report.cancelled());

    if (!options.traceFile.empty()) {
        telemetry::ChromeTraceWriter w(options.traceFile);
        if (w.ok()) {
            w.processName(0, "batch jobs (wall clock)");
            for (int t = 0; t < threads; ++t)
                w.threadName(0, t, "worker " + std::to_string(t));
            for (const auto &o : report.outcomes) {
                if (o.worker < 0)
                    continue;
                w.complete(0, o.worker, o.name, o.startMs * 1e3,
                           o.durMs * 1e3);
            }
            w.close();
            inform("wrote batch trace to ", options.traceFile);
        }
    }
    return report;
}

BatchReport
forEachIndex(size_t n, const std::string &prefix,
             const std::function<void(size_t)> &fn,
             const BatchOptions &options)
{
    std::vector<Job> jobs;
    jobs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        jobs.push_back(
            {prefix + "#" + std::to_string(i), [&fn, i] { fn(i); }});
    return runBatch(std::move(jobs), options);
}

} // namespace sara::jobs
