#ifndef SARA_JOBS_FAIR_H
#define SARA_JOBS_FAIR_H

/**
 * @file
 * Bounded, tenant-aware fair queue — the admission-control and
 * scheduling core of the sarad service (src/serve), kept here next to
 * the thread pool because it is a general scheduling primitive, not a
 * protocol detail.
 *
 * Semantics:
 *  - Admission control: the queue holds at most `maxDepth` items
 *    across all tenants. tryPush() never blocks; it returns false when
 *    the queue is saturated and the caller turns that into a
 *    structured reject-with-retry-after response.
 *  - Weighted fairness: each tenant owns a FIFO sub-queue and a
 *    stride-scheduling pass value. pop() always serves the non-empty
 *    tenant with the smallest pass, then advances that tenant's pass
 *    by 1/weight. Two tenants at equal weight offering equal load are
 *    served alternately; a weight-2 tenant is served twice as often.
 *    A tenant going idle and returning re-joins at the current global
 *    virtual time, so sleeping never banks credit.
 *  - Tenant churn: a tenant whose sub-queue empties and that carries
 *    no explicit weight is garbage-collected on pop(), so a stream of
 *    one-shot tenants (chaos clients, per-request tenant ids) cannot
 *    grow the tenant map without bound. Explicitly-weighted tenants
 *    persist — their configuration must survive idle periods.
 *  - pop() blocks until an item is available or stop() is called;
 *    after stop() the remaining items drain in fair order and pop()
 *    then returns nullopt forever.
 *
 * Thread-safe; every operation takes the internal lock. The tenant
 * count is expected to be small (tens), so pop()'s min-pass scan is a
 * linear walk rather than a heap.
 */

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace sara::jobs {

template <typename T>
class FairQueue
{
  public:
    explicit FairQueue(size_t maxDepth) : maxDepth_(maxDepth) {}

    /** Set a tenant's scheduling weight (default 1.0; must be > 0).
     *  Takes effect from the tenant's next pop. */
    void
    setWeight(const std::string &tenant, double weight)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (weight > 0.0) {
            Tenant &t = tenants_[tenant];
            t.stride = 1.0 / weight;
            t.pinned = true; // Survives idle GC.
        }
    }

    /** Enqueue under `tenant`; false when the queue is saturated. */
    bool
    tryPush(const std::string &tenant, T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopped_ || depth_ >= maxDepth_)
                return false;
            Tenant &t = tenants_[tenant];
            // Re-joining tenants start at the current virtual time:
            // idle periods earn no scheduling credit.
            if (t.items.empty() && t.pass < virtual_)
                t.pass = virtual_;
            t.items.push_back(std::move(item));
            ++depth_;
        }
        cv_.notify_one();
        return true;
    }

    /** Dequeue the next item in weighted-fair order. Blocks while the
     *  queue is empty; returns nullopt once stopped and drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return depth_ > 0 || stopped_; });
        if (depth_ == 0)
            return std::nullopt;
        Tenant *best = nullptr;
        for (auto &[name, t] : tenants_) {
            (void)name;
            if (t.items.empty())
                continue;
            if (!best || t.pass < best->pass)
                best = &t;
        }
        T item = std::move(best->items.front());
        best->items.pop_front();
        virtual_ = best->pass;
        best->pass += best->stride;
        --depth_;
        // Tenant-churn GC: drop drained default-weight tenants. Their
        // pass state is re-derivable (a re-joining tenant starts at
        // the current virtual time anyway), so nothing is lost, and a
        // stream of unique tenant names stays O(active), not O(ever
        // seen). The `best` pointer dies here; erase by iterator walk.
        if (best->items.empty() && !best->pinned) {
            for (auto it = tenants_.begin(); it != tenants_.end(); ++it)
                if (&it->second == best) {
                    tenants_.erase(it);
                    break;
                }
        }
        return item;
    }

    /** Wake all blocked pops; they drain the backlog, then nullopt. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stopped_ = true;
        }
        cv_.notify_all();
    }

    bool
    stopped() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stopped_;
    }

    size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return depth_;
    }

    size_t
    depth(const std::string &tenant) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tenants_.find(tenant);
        return it == tenants_.end() ? 0 : it->second.items.size();
    }

    size_t maxDepth() const { return maxDepth_; }

    /** Tenants currently tracked (active + pinned): the churn-GC
     *  bound, exposed for tests and stats. */
    size_t
    tenantCount() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tenants_.size();
    }

  private:
    struct Tenant
    {
        std::deque<T> items;
        double pass = 0.0;
        double stride = 1.0;
        /** Explicitly configured (setWeight): exempt from churn GC. */
        bool pinned = false;
    };

    const size_t maxDepth_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, Tenant> tenants_;
    size_t depth_ = 0;
    double virtual_ = 0.0;
    bool stopped_ = false;
};

} // namespace sara::jobs

#endif // SARA_JOBS_FAIR_H
