#ifndef SARA_JOBS_JOBS_H
#define SARA_JOBS_JOBS_H

/**
 * @file
 * Parallel batch job runner: executes whole workload suites —
 * compile (cache-aware via artifact::CachingCompiler) and simulate —
 * with bounded concurrency on a thread pool.
 *
 * Semantics:
 *  - Bounded concurrency: at most `threads` jobs run at once (default
 *    = hardware concurrency, capped by the job count).
 *  - Cancellation on first fatal error: when a job throws and
 *    `cancelOnError` is set, jobs that have not started yet are marked
 *    cancelled and never run; jobs already running drain normally.
 *    runBatch never returns with work still in flight — the pool is
 *    drained before the report is built, so side effects of cancelled
 *    batches (cache stores, report files) are always complete, never
 *    torn.
 *  - Bounded retry: jobs failing with support::TransientError are
 *    retried up to `maxAttempts` times with linear backoff; any other
 *    exception fails the job immediately.
 *  - Per-job telemetry: each outcome records queue->start->end wall
 *    clock relative to the batch epoch plus the worker that ran it;
 *    the batch can emit a Chrome trace (one lane per worker) and bumps
 *    jobs.* counters in the global metrics registry.
 *
 * Results preserve submission order regardless of completion order, so
 * batch output (reports, BENCH_*.json rows) stays deterministic.
 */

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace sara::jobs {

/** One schedulable unit of work. `fn` reports failure by throwing. */
struct Job
{
    std::string name;
    std::function<void()> fn;
};

/** What happened to one job. */
struct JobOutcome
{
    std::string name;
    enum class Status { Ok, Failed, Cancelled } status = Status::Ok;
    std::string error;    ///< Exception text when Failed.
    double startMs = 0.0; ///< Relative to the batch epoch.
    double durMs = 0.0;
    int worker = -1;      ///< Pool thread that ran it (-1: never ran).
    int retries = 0;      ///< Transient-failure retries consumed.

    bool ok() const { return status == Status::Ok; }
};

/** Batch configuration. */
struct BatchOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    int threads = 0;
    /** Stop launching new jobs after the first failure. */
    bool cancelOnError = true;
    /** Total attempts per job (1 = no retry). Only failures thrown as
     *  support::TransientError are retried. */
    int maxAttempts = 1;
    /** Backoff before retry k is `retryBackoffMs * k` milliseconds. */
    double retryBackoffMs = 2.0;
    /** When non-empty, write a Chrome trace of the batch schedule
     *  (one lane per worker) here. */
    std::string traceFile;
};

/** Batch summary. `outcomes[i]` corresponds to `jobs[i]`. */
struct BatchReport
{
    std::vector<JobOutcome> outcomes;
    double wallMs = 0.0;
    int threads = 0;

    int succeeded() const;
    int failed() const;
    int cancelled() const;
    bool allOk() const { return failed() == 0 && cancelled() == 0; }
    /** First failure message (empty when none). */
    std::string firstError() const;
};

/**
 * Run `jobs` on a bounded pool and block until the batch drains.
 * Never throws on job failure — failures land in the report.
 */
BatchReport runBatch(std::vector<Job> jobs,
                     const BatchOptions &options = {});

/**
 * Convenience: run `fn(i)` for i in [0, n) with bounded concurrency,
 * naming jobs `prefix#i`. Ordering guarantees match runBatch.
 */
BatchReport forEachIndex(size_t n, const std::string &prefix,
                         const std::function<void(size_t)> &fn,
                         const BatchOptions &options = {});

/**
 * A reusable fixed-size worker pool. runBatch is built on top; the
 * pool is exposed for callers with streaming workloads.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task. The task receives the worker index. */
    void submit(std::function<void(int)> task);

    /** Block until every submitted task has finished. */
    void drain();

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;      ///< Queue not empty / shutdown.
    std::condition_variable idleCv_;  ///< All work drained.
    std::queue<std::function<void(int)>> queue_;
    int active_ = 0;
    bool shutdown_ = false;
};

} // namespace sara::jobs

#endif // SARA_JOBS_JOBS_H
