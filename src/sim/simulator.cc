#include "sim/simulator.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>

#include "ir/interp.h"
#include "support/hostprof.h"

namespace sara::sim {

using dfg::AccessDir;
using dfg::InputRole;
using dfg::StreamKind;
using dfg::VuKind;

namespace {

double
reduceIdentity(ir::OpKind kind)
{
    switch (kind) {
      case ir::OpKind::RedAdd: return 0.0;
      case ir::OpKind::RedMul: return 1.0;
      case ir::OpKind::RedMin:
        return std::numeric_limits<double>::infinity();
      case ir::OpKind::RedMax:
        return -std::numeric_limits<double>::infinity();
      default: panic("not a reduce op");
    }
}

double
reduceCombine(ir::OpKind kind, double acc, double v)
{
    switch (kind) {
      case ir::OpKind::RedAdd: return acc + v;
      case ir::OpKind::RedMul: return acc * v;
      case ir::OpKind::RedMin: return std::fmin(acc, v);
      case ir::OpKind::RedMax: return std::fmax(acc, v);
      default: panic("not a reduce op");
    }
}

bool
isArith(ir::OpKind kind)
{
    switch (kind) {
      case ir::OpKind::Const:
      case ir::OpKind::Iter:
        return false;
      default:
        return true;
    }
}

} // namespace

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::InputData: return "input-data";
      case StallCause::CmmcToken: return "cmmc-token";
      case StallCause::Credit: return "credit";
      case StallCause::DramLatency: return "dram-latency";
      case StallCause::BankConflict: return "bank-conflict";
      case StallCause::BusContention: return "bus-contention";
      case StallCause::Network: return "network";
    }
    return "?";
}

const char *
wakeClassName(WakeClass cls)
{
    switch (cls) {
      case WakeClass::FifoData: return "fifo-data";
      case WakeClass::FifoSpace: return "fifo-space";
      case WakeClass::NocInject: return "noc-inject";
      case WakeClass::Dram: return "dram";
    }
    return "?";
}

/** Per-tensor sharded storage group (all VMUs holding one tensor). */
struct Simulator::MemGroup
{
    ir::TensorId tensor;
    std::vector<dfg::VuId> shards; ///< Ordered by shardIndex.
    int64_t interleave = 1;
    int numShards = 1;

    struct ShardState
    {
        std::vector<std::vector<double>> buffers; ///< [depth][size]
        int lastWriteBuf = 0;
        uint64_t readBusFree = 0;
        uint64_t writeBusFree = 0;
    };
    std::vector<ShardState> state;
};

/**
 * One execution region: a partition of the fabric driven by its own
 * calendar queue on its own host thread. Region 0 aliases the
 * Simulator's members (sched_, pool_, flight_) so the sequential core
 * — always exactly one region — runs unchanged; parallel regions own
 * their storage. Wakeup accounting and end-of-cycle arbitration
 * staging are per region because they are written from region threads.
 */
struct Simulator::Region
{
    Simulator *sim = nullptr;
    int id = 0;
    Scheduler *sched = nullptr;
    ElementPool *pool = nullptr;
    telemetry::FlightRecorder *flight = nullptr;

    // Wakeup accounting (merged into SimResult::wakeups at assembly).
    uint64_t wakeups = 0;
    uint64_t spuriousWakeups = 0;
    std::array<uint64_t, kNumWakeClasses> wakeupsByClass{};
    std::array<uint64_t, kNumWakeClasses> spuriousByClass{};

    // End-of-cycle arbitration staging (see resolveArbitration).
    std::vector<Engine *> arbDram;
    std::vector<Engine *> arbBus;
    bool arbArmed = false;

    // Parallel-only owned storage (region 0 points at the members).
    std::unique_ptr<Scheduler> ownedSched;
    std::unique_ptr<ElementPool> ownedPool;
    std::unique_ptr<telemetry::FlightRecorder> ownedFlight;

    // Thread bookkeeping for the quantum loop.
    std::string error;
    bool failed = false;
    double barrierWaitSec = 0.0;
};

/** Runtime state of one executing virtual unit. */
struct Simulator::Engine
{
    /** What structural resource the engine is parked on right now —
     *  the wait-for-graph edge source (blockReason is the human
     *  label, this is the machine-readable form). */
    enum class WaitKind : uint8_t {
        None,        ///< Running (or finished).
        StreamData,  ///< Consumer waiting for data/token on waitStream.
        StreamSpace, ///< Producer waiting for credit on waitStream.
        NetInject,   ///< Producer waiting for a NoC first-hop slot.
        DramWindow,  ///< AG at the outstanding-request limit.
        DramDrain,   ///< Store AG draining writes before a CMMC ack.
    };

    const dfg::VUnit *u = nullptr;
    int n = 0;   ///< Counter chain size.
    int vec = 1; ///< Innermost SIMD width.

    // Binding index tables per level 0..n (indices into u->inputs /
    // u->outputs). WhileCond bindings and the MemPort response output
    // are excluded from the generic tables.
    std::vector<std::vector<int>> inputsAt;
    std::vector<std::vector<int>> predsAt;
    std::vector<std::vector<int>> gatesAt;
    std::vector<std::vector<int>> outputsAt;
    std::vector<int> operandBindings; ///< All Operand-role inputs.
    std::vector<int> whileCondOf;     ///< Per level: binding idx or -1.

    // Runtime counter state.
    std::vector<int64_t> val, curMin, curStep, curMax;
    int activeLanes = 1;

    // Datapath lane values and reduction accumulators [lop * vec + lane].
    std::vector<double> lv;
    std::vector<double> redAcc;

    // Memory / AG state.
    int bufPtr = 0;
    int outstanding = 0;
    CondVar agCv;
    Simulator *sim = nullptr; ///< For global DRAM telemetry.
    Region *region = nullptr; ///< Execution region (scheduler et al).

    // Canonical end-of-cycle arbitration (Simulator::resolveArbitration):
    // same-cycle DRAM accesses and PMU port-bus grants are staged here
    // and resolved in unit-id order, so simulated timing depends only
    // on the dependency graph — never on the event interleave.
    CondVar arbCv;
    uint64_t arbResultAt = 0;    ///< Bus grant cycle / max DRAM completeAt.
    uint64_t *busSlot = nullptr; ///< Staged &readBusFree / &writeBusFree.
    uint64_t busExtra = 0;       ///< Bank-conflict cycles riding the grant.
    std::vector<std::pair<uint64_t, uint32_t>> stagedBursts; ///< addr,bytes

    /** The NoC link wait list this engine was just woken from (null
     *  outside a wake). Under targeted wakeups, any park back on the
     *  same list before the next suspension goes to the notify
     *  *cursor*: a broadcast would have cleared the list, so this
     *  engine's re-park lands after the same-cycle racers that beat
     *  its resume but ahead of the still-parked waiters (see
     *  CondVar::notifyOne). Cleared at every suspension point (the
     *  resume-chain ends there). */
    CondVar *grantWake = nullptr;

    // Stats and diagnostics.
    UnitStats stats;
    uint64_t flops = 0;
    int arithLops = 0;
    const char *blockReason = "not started";
    std::string blockDetail;
    WaitKind waitKind = WaitKind::None;
    int32_t waitStream = -1; ///< StreamId index for Stream*/NetInject.
    bool finished = false;
    std::string error;

    Task task;

    void
    parkOn(WaitKind kind, int32_t stream, const char *why,
           const std::string &detail)
    {
        waitKind = kind;
        waitStream = stream;
        blockReason = why;
        blockDetail = detail;
        if (region)
            region->flight->record(telemetry::FlightKind::Park,
                                   region->sched->now(), u->id.v, stream);
    }

    void
    unpark()
    {
        waitKind = WaitKind::None;
        waitStream = -1;
        blockReason = "";
    }
};

Simulator::Simulator(const ir::Program &program, const dfg::Vudfg &graph,
                     dram::DramSpec dramSpec, SimOptions options)
    : p_(program), g_(graph), opt_(options), dram_(std::move(dramSpec))
{
    buildState();
}

Simulator::~Simulator() = default;

void
Simulator::buildState()
{
    g_.validate();
    flight_.reset(opt_.flightDepth);

    // Single execution region aliasing the sequential members; the
    // partitioner replaces this layout when a parallel run is viable.
    regions_.clear();
    auto r0 = std::make_unique<Region>();
    r0->sim = this;
    r0->id = 0;
    r0->sched = &sched_;
    r0->pool = &pool_;
    r0->flight = &flight_;
    regions_.push_back(std::move(r0));

    if (opt_.useNoc) {
        noc_ = std::make_unique<noc::NocModel>(sched_, opt_.noc);
        noc_->setFaultInjector(opt_.fault);
        noc_->setTargetedWakeups(opt_.targetedWakeups);
        noc_->setFlightRecorder(flight_.enabled() ? &flight_ : nullptr);
        for (size_t i = 0; i < g_.numStreams(); ++i)
            noc_->registerStream(g_.stream(dfg::StreamId(i)));
    }

    fifos_.resize(g_.numStreams());
    for (size_t i = 0; i < g_.numStreams(); ++i)
        fifos_[i].init(sched_, g_.stream(dfg::StreamId(i)), noc_.get(),
                       opt_.fault, &pool_,
                       flight_.enabled() ? &flight_ : nullptr);

    // Memory groups.
    for (const auto &u : g_.units()) {
        if (u.kind != VuKind::Memory)
            continue;
        auto &grp = groups_[u.tensor.v];
        grp.tensor = u.tensor;
        grp.interleave = u.shardInterleave;
        grp.numShards = u.numShards;
        grp.shards.push_back(u.id);
    }
    for (auto &[tid, grp] : groups_) {
        std::sort(grp.shards.begin(), grp.shards.end(),
                  [&](dfg::VuId a, dfg::VuId b) {
                      return g_.unit(a).shardIndex < g_.unit(b).shardIndex;
                  });
        SARA_ASSERT(static_cast<int>(grp.shards.size()) == grp.numShards,
                    "tensor ", tid, " group has ", grp.shards.size(),
                    " shards, expected ", grp.numShards);
        grp.state.resize(grp.shards.size());
        for (size_t s = 0; s < grp.shards.size(); ++s) {
            const auto &vmu = g_.unit(grp.shards[s]);
            grp.state[s].buffers.assign(
                vmu.bufferDepth,
                std::vector<double>(vmu.bufferSize, 0.0));
        }
    }

    // DRAM backing store.
    dramData_.resize(p_.numTensors());
    for (size_t t = 0; t < p_.numTensors(); ++t) {
        const auto &tensor = p_.tensor(ir::TensorId(t));
        if (tensor.space == ir::MemSpace::Dram)
            dramData_[t].assign(tensor.size, 0.0);
    }

    // Engines.
    engines_.resize(g_.numUnits());
    for (const auto &u : g_.units()) {
        if (u.kind == VuKind::Memory)
            continue;
        auto e = std::make_unique<Engine>();
        e->u = &u;
        e->n = u.chainSize();
        e->vec = u.vec();
        e->inputsAt.resize(e->n + 1);
        e->predsAt.resize(e->n + 1);
        e->gatesAt.resize(e->n + 1);
        e->outputsAt.resize(e->n + 1);
        e->whileCondOf.assign(e->n + 1, -1);
        for (size_t i = 0; i < u.inputs.size(); ++i) {
            const auto &in = u.inputs[i];
            if (in.role == InputRole::WhileCond) {
                SARA_ASSERT(in.level >= 1, "while cond at level 0");
                e->whileCondOf[in.level - 1] = static_cast<int>(i);
                continue;
            }
            e->inputsAt[in.level].push_back(static_cast<int>(i));
            if (in.role == InputRole::Predicate)
                e->predsAt[in.level].push_back(static_cast<int>(i));
            if (in.role == InputRole::Gate)
                e->gatesAt[in.level].push_back(static_cast<int>(i));
            if (in.role == InputRole::Operand)
                e->operandBindings.push_back(static_cast<int>(i));
        }
        for (size_t i = 0; i < u.outputs.size(); ++i) {
            if (u.kind != VuKind::Compute &&
                static_cast<int>(i) == u.respOutput)
                continue; // Pushed directly by apply.
            e->outputsAt[u.outputs[i].level].push_back(static_cast<int>(i));
        }
        e->val.assign(e->n, 0);
        e->curMin.assign(e->n, 0);
        e->curStep.assign(e->n, 1);
        e->curMax.assign(e->n, 0);
        e->lv.assign(u.lops.size() * e->vec, 0.0);
        e->redAcc.assign(u.lops.size() * e->vec, 0.0);
        for (const auto &lop : u.lops) {
            if (ir::isReduceOp(lop.kind) || (!lop.isStreamIn() &&
                                             isArith(lop.kind)))
                ++e->arithLops;
        }
        e->agCv.bind(sched_);
        e->arbCv.bind(sched_);
        e->sim = this;
        e->region = regions_[0].get();
        engines_[u.id.index()] = std::move(e);
    }
}

void
Simulator::setDramTensor(ir::TensorId id, std::vector<double> data)
{
    SARA_ASSERT(p_.tensor(id).space == ir::MemSpace::Dram,
                "setDramTensor on on-chip tensor ", p_.tensor(id).name);
    SARA_ASSERT(data.size() == static_cast<size_t>(p_.tensor(id).size),
                "tensor size mismatch");
    dramData_[id.index()] = std::move(data);
}

std::pair<size_t, int64_t>
Simulator::locate(const MemGroup &grp, int64_t logical) const
{
    // Block partitioning: shard s holds [s*interleave, (s+1)*interleave).
    if (grp.numShards == 1)
        return {0, logical};
    int64_t shard = std::min<int64_t>(logical / grp.interleave,
                                      grp.numShards - 1);
    return {static_cast<size_t>(shard), logical - shard * grp.interleave};
}

// ---------------------------------------------------------------------------
// Engine coroutines
// ---------------------------------------------------------------------------

Task
Simulator::awaitNonEmpty(Engine &e, FifoState &f, StallCause cause,
                         const char *why)
{
    Scheduler &rs = *e.region->sched;
    while (f.empty()) {
        e.parkOn(Engine::WaitKind::StreamData, f.spec().id.v, why,
                 f.spec().name);
        uint64_t blockedAt = rs.now();
        e.grantWake = nullptr;
        co_await f.dataCv.wait();
        f.dataCv.wakeLanded();
        noteWake(e, WakeClass::FifoData, f.empty());
        e.stats.stallCycles[static_cast<int>(cause)] +=
            rs.now() - blockedAt;
    }
    e.unpark();
}

Task
Simulator::awaitSpace(Engine &e, FifoState &f, StallCause cause,
                      const char *why)
{
    // Two independent admission gates, each with its own attribution:
    // the end-to-end credit window (consumer backpressure -> `cause`,
    // normally Credit) and, on NoC runs, the first-hop link buffer
    // (network contention -> Network). Both are re-checked after every
    // wakeup; the cycles blocked on each gate are disjoint.
    Scheduler &rs = *e.region->sched;
    while (true) {
        if (!f.hasSpace()) {
            if (f.isCut()) {
                // The local credit view of a cross-region stream is
                // full. The sequential core returns credits the same
                // cycle the consumer pops; waiting a whole quantum
                // here would diverge from it — abort the speculative
                // parallel attempt instead (the run falls back to the
                // sequential core) and park until teardown.
                f.noteCutConflict();
                e.parkOn(Engine::WaitKind::StreamSpace, f.spec().id.v,
                         why, f.spec().name);
                e.grantWake = nullptr;
                co_await f.spaceCv.wait(); // Never notified.
                co_return;
            }
            e.parkOn(Engine::WaitKind::StreamSpace, f.spec().id.v, why,
                     f.spec().name);
            uint64_t blockedAt = rs.now();
            e.grantWake = nullptr;
            co_await f.spaceCv.wait();
            f.spaceCv.wakeLanded();
            noteWake(e, WakeClass::FifoSpace, !f.hasSpace());
            e.stats.stallCycles[static_cast<int>(cause)] +=
                rs.now() - blockedAt;
            continue;
        }
        if (!f.canInject()) {
            e.parkOn(Engine::WaitKind::NetInject, f.spec().id.v,
                     "link busy", f.spec().name);
            uint64_t blockedAt = rs.now();
            // An engine that was just woken off this link's wait list
            // re-parks at the notify cursor — the slot its broadcast
            // re-park would occupy (after same-cycle racers, before
            // the surviving waiters): see CondVar::notifyOne and
            // Engine::grantWake.
            sim::CondVar &icv = f.injectCv();
            bool atCursor = opt_.targetedWakeups && e.grantWake == &icv;
            e.grantWake = nullptr;
            co_await icv.wait(atCursor);
            icv.wakeLanded();
            e.grantWake = &icv;
            noteWake(e, WakeClass::NocInject,
                     !f.hasSpace() || !f.canInject());
            e.stats.stallCycles[static_cast<int>(
                StallCause::Network)] += rs.now() - blockedAt;
            continue;
        }
        break;
    }
    e.unpark();
}

Task
Simulator::runUnit(Engine &e)
{
    try {
        co_await runLevel(e, 0);
        e.finished = true;
        e.stats.doneAt = e.region->sched->now();
    } catch (const std::exception &ex) {
        e.error = ex.what();
        e.finished = false;
    }
}

Task
Simulator::runLevel(Engine &e, int k)
{
    const auto &u = *e.u;

    // Resolve dynamic bounds before reading predicates: bound streams
    // are produced unconditionally relative to this loop.
    if (k < e.n) {
        const auto &c = u.counters[k];
        e.curMin[k] = c.min;
        e.curStep[k] = c.step;
        e.curMax[k] = c.max;
        auto resolve = [&](int bindingIdx, int64_t &slot) -> Task {
            auto &f = fifos_[u.inputs[bindingIdx].stream.index()];
            co_await awaitNonEmpty(e, f, StallCause::InputData,
                                   "loop bound");
            slot = std::llround(f.front()[0]);
        };
        if (c.minInput >= 0)
            co_await resolve(c.minInput, e.curMin[k]);
        if (c.stepInput >= 0)
            co_await resolve(c.stepInput, e.curStep[k]);
        if (c.maxInput >= 0)
            co_await resolve(c.maxInput, e.curMax[k]);
    }

    // Branch predicates conditioning rounds of level k. All are read
    // (they are produced unconditionally); any mismatch skips the round.
    bool enabled = true;
    for (int bi : e.predsAt[k]) {
        auto &f = fifos_[u.inputs[bi].stream.index()];
        co_await awaitNonEmpty(e, f, StallCause::InputData,
                               "branch predicate");
        bool v = f.front()[0] != 0.0;
        if (v != u.inputs[bi].expectTrue)
            enabled = false;
    }
    if (!enabled) {
        co_await skipRound(e, k);
        co_return;
    }

    // CMMC gate tokens for this level must be present before the round
    // may proceed (popped at wrap).
    for (int bi : e.gatesAt[k]) {
        auto &f = fifos_[u.inputs[bi].stream.index()];
        co_await awaitNonEmpty(e, f, StallCause::CmmcToken, "CMMC token");
    }

    if (k == e.n) {
        co_await fireOnce(e);
        co_return;
    }

    // Reduction accumulators over this loop reset at round entry.
    for (size_t i = 0; i < u.lops.size(); ++i) {
        const auto &lop = u.lops[i];
        if (ir::isReduceOp(lop.kind) && lop.counter == k) {
            for (int l = 0; l < e.vec; ++l)
                e.redAcc[i * e.vec + l] = reduceIdentity(lop.kind);
        }
    }

    const auto &c = u.counters[k];
    if (c.isWhile) {
        SARA_ASSERT(e.whileCondOf[k] >= 0,
                    u.name, ": while counter without condition input");
        auto &condFifo =
            fifos_[u.inputs[e.whileCondOf[k]].stream.index()];
        uint64_t round = 0;
        while (true) {
            e.val[k] = static_cast<int64_t>(round);
            co_await runLevel(e, k + 1);
            co_await awaitNonEmpty(e, condFifo, StallCause::InputData,
                                   "while condition");
            bool cont = condFifo.front()[0] != 0.0;
            condFifo.pop();
            if (++round > opt_.maxWhileRounds)
                fatal(u.name, ": do-while exceeded ", opt_.maxWhileRounds,
                      " rounds");
            if (!cont)
                break;
        }
    } else {
        int64_t stepMul = (k == e.n - 1) ? c.vec : 1;
        for (int64_t v = e.curMin[k]; v < e.curMax[k];
             v += e.curStep[k] * stepMul) {
            e.val[k] = v;
            if (k == e.n - 1) {
                int64_t remaining =
                    (e.curMax[k] - v + e.curStep[k] - 1) / e.curStep[k];
                e.activeLanes = static_cast<int>(
                    std::min<int64_t>(c.vec, remaining));
            }
            co_await runLevel(e, k + 1);
        }
    }

    co_await wrapActions(e, k);
}

Task
Simulator::fireOnce(Engine &e)
{
    const auto &u = *e.u;

    // All operand inputs must be readable (front is read per firing
    // regardless of pop level).
    for (int bi : e.operandBindings) {
        auto &f = fifos_[u.inputs[bi].stream.index()];
        co_await awaitNonEmpty(e, f, StallCause::InputData, "operand");
    }

    evalLops(e);

    uint64_t extraCycles = 0;
    if (u.kind == VuKind::MemPort)
        co_await applyMemPort(e, extraCycles);
    else if (u.kind == VuKind::Ag)
        co_await applyAg(e);

    co_await wrapActions(e, e.n);

    Scheduler &rs = *e.region->sched;
    if (e.stats.firings == 0)
        e.stats.firstFire = rs.now();
    e.stats.lastFire = rs.now();
    ++e.stats.firings;
    // Lane serialization from bank conflicts is accounted as a stall,
    // not useful occupancy: the firing itself is one busy cycle.
    e.stats.busyCycles += 1;
    e.stats.stallCycles[static_cast<int>(StallCause::BankConflict)] +=
        extraCycles;
    e.region->flight->record(telemetry::FlightKind::Fire, rs.now(),
                             e.u->id.v,
                             static_cast<int32_t>(1 + extraCycles));
    if (!opt_.traceFile.empty())
        recordFiring(e, rs.now(), 1 + extraCycles, false);
    e.flops += static_cast<uint64_t>(e.arithLops) * e.activeLanes;
    e.grantWake = nullptr;
    co_await rs.delay(1 + extraCycles);
}

Task
Simulator::skipRound(Engine &e, int k)
{
    const auto &u = *e.u;
    // Wait for this level's gate tokens so forwarding preserves order.
    for (int bi : e.gatesAt[k]) {
        auto &f = fifos_[u.inputs[bi].stream.index()];
        co_await awaitNonEmpty(e, f, StallCause::CmmcToken,
                               "CMMC token (skip)");
    }
    co_await wrapActions(e, k);
    // A read engine skipped at firing granularity still owes its
    // consumer one response element per firing (the consumer, skipped
    // under the same predicate, pops and discards it).
    if (k == e.n && u.respOutput >= 0 && u.dir == AccessDir::Read &&
        (u.kind == VuKind::MemPort || u.kind == VuKind::Ag)) {
        auto &f = fifos_[u.outputs[u.respOutput].stream.index()];
        co_await awaitSpace(e, f, StallCause::Credit,
                            "skip response space");
        f.push(e.region->pool->acquireZeroed(
            static_cast<size_t>(std::max(1, e.activeLanes))));
    }
    Scheduler &rs = *e.region->sched;
    ++e.stats.skips;
    e.stats.busyCycles += 1;
    e.region->flight->record(telemetry::FlightKind::Skip, rs.now(),
                             e.u->id.v);
    if (!opt_.traceFile.empty())
        recordFiring(e, rs.now(), 1, true);
    e.grantWake = nullptr;
    co_await rs.delay(1);
}

Task
Simulator::wrapActions(Engine &e, int k)
{
    const auto &u = *e.u;

    // A store AG's wrap-level tokens are CMMC acknowledgements: they
    // must only fire once every issued write has reached DRAM.
    if (u.kind == VuKind::Ag && u.dir == AccessDir::Write && k < e.n &&
        !e.outputsAt[k].empty()) {
        while (e.outstanding > 0) {
            e.parkOn(Engine::WaitKind::DramDrain, -1,
                     "DRAM write drain", u.name);
            uint64_t blockedAt = e.region->sched->now();
            e.grantWake = nullptr;
            co_await e.agCv.wait();
            e.agCv.wakeLanded();
            noteWake(e, WakeClass::Dram, e.outstanding > 0);
            e.stats.stallCycles[static_cast<int>(
                StallCause::DramLatency)] +=
                e.region->sched->now() - blockedAt;
        }
        e.unpark();
    }

    for (int oi : e.outputsAt[k]) {
        const auto &ob = u.outputs[oi];
        auto &f = fifos_[ob.stream.index()];
        co_await awaitSpace(e, f, StallCause::Credit, "output space");
        if (f.spec().kind == StreamKind::Token) {
            f.push(Element{});
        } else if (k == e.n) {
            f.push(perFiringElement(e, ob));
        } else {
            Element one = e.region->pool->acquire(1);
            one[0] = combinedOutputValue(e, ob);
            f.push(std::move(one));
        }
    }

    for (int bi : e.inputsAt[k]) {
        auto &f = fifos_[u.inputs[bi].stream.index()];
        // Zero-trip and skipped rounds reach the wrap without any
        // firing having awaited round-rate operands; the element is
        // owed (rates are balanced) but may still be in flight.
        co_await awaitNonEmpty(e, f, StallCause::InputData, "wrap pop");
        f.pop();
    }

    if (u.kind == VuKind::MemPort && u.rotateLevel == k) {
        const auto &vmu = g_.unit(u.memUnit);
        e.bufPtr = (e.bufPtr + 1) % vmu.bufferDepth;
    }
}

// ---------------------------------------------------------------------------
// Datapath evaluation and memory application
// ---------------------------------------------------------------------------

void
Simulator::evalLops(Engine &e)
{
    telemetry::ScopedPhase phase(telemetry::HostPhase::FirePath);
    const auto &u = *e.u;
    const int vec = e.vec;
    const int lanes = e.activeLanes;
    double args[3];

    for (size_t i = 0; i < u.lops.size(); ++i) {
        const auto &lop = u.lops[i];
        double *out = &e.lv[i * vec];
        if (lop.isStreamIn()) {
            const auto &in = u.inputs[lop.input];
            const auto &elem = fifos_[in.stream.index()].front();
            if (elem.size() == 1) {
                for (int l = 0; l < lanes; ++l)
                    out[l] = elem[0];
            } else {
                SARA_ASSERT(elem.size() >= static_cast<size_t>(lanes),
                            u.name, ": stream element lanes ",
                            elem.size(), " < active ", lanes);
                for (int l = 0; l < lanes; ++l)
                    out[l] = elem[l];
            }
            continue;
        }
        switch (lop.kind) {
          case ir::OpKind::Const:
            for (int l = 0; l < lanes; ++l)
                out[l] = lop.cval;
            break;
          case ir::OpKind::Iter: {
            int64_t base = e.val[lop.counter];
            if (lop.counter == e.n - 1 && vec > 1) {
                int64_t step = e.curStep[lop.counter];
                for (int l = 0; l < lanes; ++l)
                    out[l] = static_cast<double>(base + l * step);
            } else {
                for (int l = 0; l < lanes; ++l)
                    out[l] = static_cast<double>(base);
            }
            break;
          }
          case ir::OpKind::RedAdd:
          case ir::OpKind::RedMin:
          case ir::OpKind::RedMax:
          case ir::OpKind::RedMul: {
            double *acc = &e.redAcc[i * vec];
            const double *src = &e.lv[lop.a * vec];
            for (int l = 0; l < lanes; ++l) {
                acc[l] = reduceCombine(lop.kind, acc[l], src[l]);
                out[l] = acc[l];
            }
            break;
          }
          default:
            for (int l = 0; l < lanes; ++l) {
                args[0] = lop.a >= 0 ? e.lv[lop.a * vec + l] : 0.0;
                args[1] = lop.b >= 0 ? e.lv[lop.b * vec + l] : 0.0;
                args[2] = lop.c >= 0 ? e.lv[lop.c * vec + l] : 0.0;
                out[l] = ir::evalScalar(lop.kind, args);
            }
            break;
        }
    }
}

double
Simulator::combinedOutputValue(Engine &e, const dfg::OutputBinding &ob)
{
    const auto &u = *e.u;
    const auto &lop = u.lops[ob.lop];
    const int vec = e.vec;
    if (ir::isReduceOp(lop.kind)) {
        double acc = e.redAcc[ob.lop * vec];
        for (int l = 1; l < vec; ++l)
            acc = reduceCombine(lop.kind, acc, e.redAcc[ob.lop * vec + l]);
        return acc;
    }
    int lane = std::max(0, e.activeLanes - 1);
    return e.lv[ob.lop * vec + lane];
}

Element
Simulator::perFiringElement(Engine &e, const dfg::OutputBinding &ob)
{
    Element elem =
        e.region->pool->acquire(static_cast<size_t>(e.activeLanes));
    for (int l = 0; l < e.activeLanes; ++l)
        elem[l] = e.lv[ob.lop * e.vec + l];
    return elem;
}

Task
Simulator::applyMemPort(Engine &e, uint64_t &extraCycles)
{
    const auto &u = *e.u;
    auto it = groups_.find(u.tensor.v);
    SARA_ASSERT(it != groups_.end(), u.name, ": no memory group");
    MemGroup &grp = it->second;
    const int lanes = e.activeLanes;
    // Every port firing moves one element per active lane.
    e.stats.bytesMoved += static_cast<uint64_t>(lanes) * 4;

    // Address lanes come from the local datapath or an input stream.
    int64_t addrs[64];
    SARA_ASSERT(lanes <= 64, "lane count too large");
    if (u.addrLop >= 0) {
        for (int l = 0; l < lanes; ++l)
            addrs[l] = std::llround(e.lv[u.addrLop * e.vec + l]);
    } else {
        const auto &elem =
            fifos_[u.inputs[u.addrInput].stream.index()].front();
        for (int l = 0; l < lanes; ++l)
            addrs[l] = std::llround(elem.size() == 1 ? elem[0] : elem[l]);
    }

    // Timing: vector accesses with unit stride are conflict-free;
    // otherwise lanes colliding on a bank (static sharding) or a shard
    // (dynamic banking) serialize.
    const auto &pmuBanks = 16; // Matches arch::PmuSpec::banks.
    bool contiguous = true;
    for (int l = 1; l < lanes; ++l)
        if (addrs[l] != addrs[l - 1] + 1)
            contiguous = false;
    if (!contiguous && lanes > 1) {
        int counts[64] = {0};
        int maxCount = 1;
        for (int l = 0; l < lanes; ++l) {
            int bank = static_cast<int>(
                ((addrs[l] % pmuBanks) + pmuBanks) % pmuBanks);
            maxCount = std::max(maxCount, ++counts[bank]);
        }
        extraCycles = static_cast<uint64_t>(maxCount - 1);
    }

    // Port-bus contention: a PMU applies one read and one write vector
    // per cycle (static ports only; dynamic groups pay conflicts).
    // Same-cycle requests from sibling ports are granted by the
    // end-of-cycle arbiter in unit-id order — a deterministic hardware
    // arbiter — so the grant sequence is independent of the host event
    // interleave (the property the region-parallel core relies on).
    if (!u.dynamicBank) {
        Scheduler &rs = *e.region->sched;
        auto &ss = grp.state[u.shardIndex];
        e.busSlot = (u.dir == AccessDir::Read) ? &ss.readBusFree
                                               : &ss.writeBusFree;
        e.busExtra = extraCycles;
        e.blockReason = "PMU bus";
        e.blockDetail = u.name;
        e.grantWake = nullptr;
        uint64_t blockedAt = rs.now();
        e.region->arbBus.push_back(&e);
        armArbiter(*e.region);
        co_await e.arbCv.wait();
        e.arbCv.wakeLanded();
        if (e.arbResultAt > rs.now())
            co_await rs.delay(e.arbResultAt - rs.now());
        e.stats.stallCycles[static_cast<int>(StallCause::BusContention)] +=
            rs.now() - blockedAt;
        e.blockReason = "";
    }

    if (u.dir == AccessDir::Read) {
        Element out =
            e.region->pool->acquire(static_cast<size_t>(lanes));
        for (int l = 0; l < lanes; ++l) {
            auto [shard, offset] = locate(grp, addrs[l]);
            if (!u.dynamicBank)
                SARA_ASSERT(static_cast<int>(shard) == u.shardIndex,
                            u.name, ": static port touched shard ", shard,
                            " (expected ", u.shardIndex, ") addr ",
                            addrs[l]);
            auto &ss = grp.state[shard];
            const auto &vmu = g_.unit(grp.shards[shard]);
            int buf = e.bufPtr % vmu.bufferDepth;
            SARA_ASSERT(offset >= 0 && offset < vmu.bufferSize,
                        u.name, ": shard offset OOB ", offset);
            out[l] = ss.buffers[buf][offset];
        }
        SARA_ASSERT(u.respOutput >= 0, u.name, ": read port w/o output");
        auto &f = fifos_[u.outputs[u.respOutput].stream.index()];
        co_await awaitSpace(e, f, StallCause::Credit,
                            "read response space");
        f.push(std::move(out));
    } else {
        SARA_ASSERT(u.dataInput >= 0, u.name, ": write port w/o data");
        const auto &data =
            fifos_[u.inputs[u.dataInput].stream.index()].front();
        for (int l = 0; l < lanes; ++l) {
            auto [shard, offset] = locate(grp, addrs[l]);
            if (!u.dynamicBank)
                SARA_ASSERT(static_cast<int>(shard) == u.shardIndex,
                            u.name, ": static port touched shard ", shard,
                            " (expected ", u.shardIndex, ") addr ",
                            addrs[l]);
            auto &ss = grp.state[shard];
            const auto &vmu = g_.unit(grp.shards[shard]);
            int buf = e.bufPtr % vmu.bufferDepth;
            SARA_ASSERT(offset >= 0 && offset < vmu.bufferSize,
                        u.name, ": shard offset OOB ", offset);
            ss.buffers[buf][offset] =
                data.size() == 1 ? data[0] : data[l];
            ss.lastWriteBuf = buf;
        }
    }
}

Task
Simulator::applyAg(Engine &e)
{
    const auto &u = *e.u;
    Scheduler &rs = *e.region->sched;
    while (e.outstanding >= opt_.agOutstanding) {
        e.parkOn(Engine::WaitKind::DramWindow, -1,
                 "DRAM outstanding limit", u.name);
        uint64_t blockedAt = rs.now();
        e.grantWake = nullptr;
        co_await e.agCv.wait();
        e.agCv.wakeLanded();
        noteWake(e, WakeClass::Dram,
                 e.outstanding >= opt_.agOutstanding);
        e.stats.stallCycles[static_cast<int>(StallCause::DramLatency)] +=
            rs.now() - blockedAt;
    }
    e.unpark();

    const int lanes = e.activeLanes;
    int64_t addrs[64];
    SARA_ASSERT(lanes <= 64, "lane count too large");
    if (u.addrLop >= 0) {
        for (int l = 0; l < lanes; ++l)
            addrs[l] = std::llround(e.lv[u.addrLop * e.vec + l]);
    } else {
        const auto &elem =
            fifos_[u.inputs[u.addrInput].stream.index()].front();
        for (int l = 0; l < lanes; ++l)
            addrs[l] = std::llround(elem.size() == 1 ? elem[0] : elem[l]);
    }

    auto &data = dramData_[u.tensor.index()];
    const uint64_t tensorBase =
        static_cast<uint64_t>(u.tensor.index()) << 24; // Distinct regions.

    // Coalesce consecutive addresses into bursts, then hand them to
    // the end-of-cycle DRAM arbiter: same-cycle accesses from
    // different AGs hit the channel model in unit-id order regardless
    // of the host event interleave. The engine suspends and resumes
    // within the same cycle, so timing matches an AG that issued its
    // request combinationally and got the arbitrated completion back.
    e.stagedBursts.clear();
    int runStart = 0;
    for (int l = 1; l <= lanes; ++l) {
        if (l == lanes || addrs[l] != addrs[l - 1] + 1) {
            uint32_t bytes = static_cast<uint32_t>(l - runStart) * 4;
            e.stagedBursts.emplace_back(
                tensorBase + static_cast<uint64_t>(addrs[runStart]) * 4,
                bytes);
            e.stats.bytesMoved += bytes;
            runStart = l;
        }
    }
    e.blockReason = "DRAM arbitration";
    e.blockDetail = u.name;
    e.grantWake = nullptr;
    e.region->arbDram.push_back(&e);
    armArbiter(*e.region);
    co_await e.arbCv.wait();
    e.arbCv.wakeLanded();
    e.blockReason = "";
    uint64_t maxComplete = e.arbResultAt;

    // Injected DRAM faults: a timeout drops this access's completion
    // (and, for reads, the response element) forever; a tail spike
    // just stretches the completion time.
    bool timedOut = false;
    if (opt_.fault) {
        if (opt_.fault->dramTimeout(u.name, rs.now()))
            timedOut = true;
        else
            maxComplete +=
                opt_.fault->dramTailLatency(u.name, rs.now());
    }

    if (u.dir == AccessDir::Read) {
        Element out =
            e.region->pool->acquire(static_cast<size_t>(lanes));
        for (int l = 0; l < lanes; ++l) {
            SARA_ASSERT(addrs[l] >= 0 &&
                            addrs[l] < static_cast<int64_t>(data.size()),
                        u.name, ": DRAM read OOB addr ", addrs[l]);
            out[l] = data[addrs[l]];
        }
        SARA_ASSERT(u.respOutput >= 0, u.name, ": load AG w/o output");
        auto &f = fifos_[u.outputs[u.respOutput].stream.index()];
        if (timedOut) {
            // The missing element surfaces on the response stream, so
            // log the injection under that resource too — that is the
            // site the starved consumer's wait will name.
            opt_.fault->note(fault::FaultKind::DramTimeout,
                             f.spec().name, rs.now());
        } else {
            co_await awaitSpace(e, f, StallCause::Credit,
                                "DRAM response space");
            uint64_t extra = maxComplete > rs.now()
                                 ? maxComplete - rs.now()
                                 : 0;
            f.pushWithDelay(std::move(out), extra);
        }
    } else {
        SARA_ASSERT(u.dataInput >= 0, u.name, ": store AG w/o data");
        const auto &elem =
            fifos_[u.inputs[u.dataInput].stream.index()].front();
        for (int l = 0; l < lanes; ++l) {
            SARA_ASSERT(addrs[l] >= 0 &&
                            addrs[l] < static_cast<int64_t>(data.size()),
                        u.name, ": DRAM write OOB addr ", addrs[l]);
            data[addrs[l]] = elem.size() == 1 ? elem[0] : elem[l];
        }
    }

    // Track completion for the outstanding window / write drain. A
    // timed-out access never completes: its outstanding slot leaks,
    // eventually wedging the window or the write drain — exactly the
    // hang a lost DRAM response causes in hardware.
    ++e.outstanding;
    ++dramOutstanding_;
    if (!timedOut) {
        rs.scheduleFnAt(
            [](void *arg) {
                auto *eng = static_cast<Engine *>(arg);
                --eng->outstanding;
                --eng->sim->dramOutstanding_;
                eng->sim->sampleDram();
                // The AG engine is the CV's only possible waiter. A
                // drain waiter (wants outstanding == 0) would treat
                // every intermediate completion as spurious, so
                // targeted mode notifies it only on the last one; a
                // window waiter is unblocked by any completion.
                if (!eng->agCv.hasWaiters())
                    return;
                if (!eng->sim->opt_.targetedWakeups ||
                    eng->waitKind != Engine::WaitKind::DramDrain ||
                    eng->outstanding == 0)
                    eng->agCv.notifyOne();
            },
            &e, std::max(maxComplete, rs.now()));
    }
    sampleDram();
}

void
Simulator::armArbiter(Region &r)
{
    if (!r.arbArmed) {
        r.arbArmed = true;
        r.sched->atCycleEnd(&Simulator::arbTrampoline, &r);
    }
}

void
Simulator::arbTrampoline(void *arg)
{
    auto *r = static_cast<Region *>(arg);
    r->sim->resolveArbitration(*r);
}

void
Simulator::resolveArbitration(Region &r)
{
    r.arbArmed = false;
    // Each engine stages at most one request per cycle and unit ids
    // are unique, so unit-id order is a total order. Engines resumed
    // by these notifies may stage *new* same-cycle requests (a granted
    // push can wake a consumer that fires this very cycle); those land
    // in a fresh end-of-cycle round via armArbiter — the scheduler
    // repeats the phase until the cycle is quiescent.
    auto byId = [](const Engine *a, const Engine *b) {
        return a->u->id.v < b->u->id.v;
    };
    std::sort(r.arbBus.begin(), r.arbBus.end(), byId);
    std::sort(r.arbDram.begin(), r.arbDram.end(), byId);
    const uint64_t now = r.sched->now();
    for (Engine *e : r.arbBus) {
        uint64_t grant = std::max(now, *e->busSlot);
        *e->busSlot = grant + 1 + e->busExtra;
        e->busSlot = nullptr;
        e->arbResultAt = grant;
        e->arbCv.notifyOne();
    }
    r.arbBus.clear();
    if (!r.arbDram.empty()) {
        // The DRAM model is shared state, but every AG is pinned to
        // region 0 by the partitioner, so only region 0's thread ever
        // reaches this branch.
        telemetry::ScopedPhase phase(telemetry::HostPhase::Dram);
        for (Engine *e : r.arbDram) {
            uint64_t maxComplete = now;
            for (const auto &[addr, bytes] : e->stagedBursts)
                maxComplete = std::max(
                    maxComplete, dram_.access(addr, bytes, now).completeAt);
            e->arbResultAt = maxComplete;
            e->arbCv.notifyOne();
        }
        r.arbDram.clear();
    }
}

void
Simulator::sampleDram()
{
    uint64_t now = sched_.now();
    dramOutstandingSeries_.sample(now,
                                  static_cast<double>(dramOutstanding_));
    dramBytesSeries_.sample(
        now, static_cast<double>(dram_.bytesTransferred()));
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

SimResult
Simulator::run()
{
    // Parallel eligibility. The region-parallel core only covers the
    // fixed-latency model with no injection and no tracing; anything
    // else runs on the sequential core (the contract either way is
    // the sequential outcome, so this is a performance decision, not
    // a behavioral one).
    if (opt_.simThreads > 1) {
        const char *reason = nullptr;
        if (noc_)
            reason = "noc";
        else if (opt_.fault)
            reason = "fault-injection";
        else if (!opt_.traceFile.empty())
            reason = "trace";
        if (!reason) {
            // Speculative attempts: snapshot the only input state the
            // engines mutate in place (DRAM tensor images) so a
            // mid-flight abort can rebuild a pristine simulator. A
            // cut-conflict abort names the streams that filled their
            // credit windows; their endpoints are pinned together and
            // the partition retried — regions shrink toward the
            // conflict-free cut set (worst case: one region left,
            // i.e. the sequential core).
            constexpr int kMaxAttempts = 16;
            for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
                fallback_ = false;
                fallbackReason_.clear();
                if (!partitionRegions(opt_.simThreads)) {
                    fallback_ = true;
                    fallbackReason_ = "indivisible-graph";
                    break;
                }
                auto dramSnapshot = dramData_;
                SimResult result;
                if (tryRunParallel(result))
                    return result;
                bool conflict = fallbackReason_ == "cut-conflict";
                if (conflict) {
                    // Pin the conflicted streams — and the near-miss
                    // ones whose producer view brushed the window
                    // ceiling, which would conflict an attempt later.
                    for (FifoState *f : cutFifos_)
                        if (f->cutConflicted() ||
                            (f->capacity() != UINT64_MAX &&
                             f->highWater() + 1 >= f->capacity()))
                            colocate_.emplace_back(
                                f->spec().src.index(),
                                f->spec().dst.index());
                }
                rebuildRuntimeState(std::move(dramSnapshot));
                // Non-conflict aborts (engine error, hang, budget)
                // replay sequentially: the sequential core reproduces
                // the outcome through the canonical reporting paths.
                if (!conflict || attempt + 1 == kMaxAttempts)
                    break;
            }
        } else {
            fallback_ = true;
            fallbackReason_ = reason;
        }
    }

    for (auto &e : engines_) {
        if (!e)
            continue;
        e->task = runUnit(*e);
        sched_.scheduleAt(e->task.handle(), 0);
    }

    uint64_t end;
    {
        // The drain loop is attributed to the Scheduler bucket; inner
        // markers (fire path, NoC arbitration, DRAM model, CV waits)
        // re-attribute their own synchronous slices.
        telemetry::ScopedPhase phase(telemetry::HostPhase::Scheduler);
        end = sched_.run(opt_.maxCycles, opt_.cancel);
    }

    if (sched_.cancelled())
        reportCancelled();
    if (sched_.budgetExceeded())
        reportBudgetExceeded();

    bool allDone = true;
    for (auto &e : engines_) {
        if (!e)
            continue;
        if (!e->error.empty())
            panic("engine ", e->u->name, " failed: ", e->error);
        if (!e->finished)
            allDone = false;
    }
    if (!allDone)
        reportHang();

    return assembleResult(end);
}

SimResult
Simulator::assembleResult(uint64_t end)
{
    SimResult result;
    result.cycles = end;
    result.unitStats.resize(g_.numUnits());
    uint64_t busySum = 0;
    int computeUnits = 0;
    for (auto &e : engines_) {
        if (!e)
            continue;
        result.unitStats[e->u->id.index()] = e->stats;
        result.totalFirings += e->stats.firings;
        result.flops += e->flops;
        for (int c = 0; c < kNumStallCauses; ++c)
            result.stallTotals[c] += e->stats.stallCycles[c];
        if (e->u->kind == VuKind::Compute) {
            busySum += e->stats.busyCycles;
            ++computeUnits;
        }
    }
    if (computeUnits > 0 && end > 0)
        result.avgComputeUtilization =
            static_cast<double>(busySum) /
            (static_cast<double>(computeUnits) * end);
    result.fifoStats.reserve(fifos_.size());
    for (const auto &f : fifos_) {
        FifoStats fs;
        fs.name = f.spec().name;
        fs.pushes = f.pushes();
        fs.pops = f.pops();
        fs.highWater = f.highWater();
        fs.capacity = f.capacity();
        result.fifoStats.push_back(std::move(fs));
    }
    result.dramOutstanding = dramOutstandingSeries_;
    result.dramBytesSeries = dramBytesSeries_;
    for (const auto &r : regions_) {
        result.hostEvents += r->sched->eventsExecuted();
        result.wakeups += r->wakeups;
        result.spuriousWakeups += r->spuriousWakeups;
        for (int c = 0; c < kNumWakeClasses; ++c) {
            result.wakeupsByClass[c] += r->wakeupsByClass[c];
            result.spuriousByClass[c] += r->spuriousByClass[c];
        }
    }
    result.simThreads = static_cast<int>(regions_.size());
    result.simRegions = static_cast<int>(regions_.size());
    result.parallelFallback = fallback_;
    result.fallbackReason = fallbackReason_;
    if (noc_)
        result.noc = noc_->stats();
    buildCounters(result);
    if (!opt_.traceFile.empty())
        writeTrace();
    result.dramBytes = dram_.bytesTransferred();
    result.dramRequests = dram_.requests();
    result.dramRowHits = dram_.rowHits();
    result.dramAchievedBytesPerCycle = dram_.achievedBytesPerCycle(end);
    collectTensors(result);
    debug("simulation done: ", end, " cycles, ", result.totalFirings,
          " firings, ", result.dramRequests, " DRAM requests");
    return result;
}

bool
Simulator::partitionRegions(int threads)
{
    // Cluster units that must share a thread (union-find):
    //   - every AG, with each other: they arbitrate for the one DRAM
    //     channel model and share the outstanding-window telemetry;
    //   - each tensor's memory group: the VMU shards' buffers and bus
    //     slots are touched by every port of that tensor;
    //   - endpoints of streams too short to cut (latency < 2; in
    //     practice only same-physical-unit streams — PnR stamps every
    //     inter-unit stream with at least the network minimum).
    const size_t n = g_.numUnits();
    std::vector<int> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

    int agRoot = -1;
    for (const auto &u : g_.units()) {
        if (u.kind != VuKind::Ag)
            continue;
        if (agRoot < 0)
            agRoot = u.id.index();
        else
            unite(agRoot, u.id.index());
    }
    std::unordered_map<int32_t, int> tensorRoot;
    for (const auto &u : g_.units()) {
        if (u.kind != VuKind::Memory && u.kind != VuKind::MemPort)
            continue;
        auto [it, fresh] = tensorRoot.try_emplace(u.tensor.v,
                                                  u.id.index());
        if (!fresh)
            unite(it->second, u.id.index());
    }
    for (size_t i = 0; i < g_.numStreams(); ++i) {
        const auto &s = g_.stream(dfg::StreamId(i));
        // Too short to cut, or an endpoint without an engine to own
        // the cut protocol: keep both ends on one thread.
        if (s.latency < 2 || !engines_[s.src.index()] ||
            !engines_[s.dst.index()])
            unite(s.src.index(), s.dst.index());
    }
    // Pins learned from earlier speculative attempts: streams that
    // filled their credit window need same-cycle credit return.
    for (const auto &[a, b] : colocate_)
        unite(a, b);

    // Enumerate clusters with engine-count weights (the per-quantum
    // work a region does scales with its live engines).
    std::unordered_map<int, int> clusterOf; // root -> cluster index
    std::vector<int> weight;
    std::vector<int> unitCluster(n);
    for (size_t i = 0; i < n; ++i) {
        int root = find(static_cast<int>(i));
        auto [it, fresh] =
            clusterOf.try_emplace(root, static_cast<int>(weight.size()));
        if (fresh)
            weight.push_back(0);
        unitCluster[i] = it->second;
        if (engines_[i])
            ++weight[it->second];
    }
    const int clusters = static_cast<int>(weight.size());
    const int r = std::min(threads, clusters);
    if (r < 2)
        return false;

    // Greedy LPT packing into r bins, heaviest cluster first.
    std::vector<int> order(clusters);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return weight[a] != weight[b] ? weight[a] > weight[b] : a < b;
    });
    std::vector<int> binOf(clusters, 0);
    std::vector<int> load(r, 0);
    for (int c : order) {
        int best = 0;
        for (int b = 1; b < r; ++b)
            if (load[b] < load[best])
                best = b;
        binOf[c] = best;
        load[best] += weight[c];
    }
    // The AG cluster must land in region 0: the DRAM model and its
    // telemetry are Simulator members driven from the calling thread.
    if (agRoot >= 0) {
        int agBin = binOf[clusterOf[find(agRoot)]];
        if (agBin != 0)
            for (int c = 0; c < clusters; ++c) {
                if (binOf[c] == agBin)
                    binOf[c] = 0;
                else if (binOf[c] == 0)
                    binOf[c] = agBin;
            }
    }

    // Materialize regions 1..r-1 (region 0 — built by buildState —
    // keeps aliasing the sequential members) and move engines over.
    for (int b = 1; b < r; ++b) {
        auto reg = std::make_unique<Region>();
        reg->sim = this;
        reg->id = b;
        reg->ownedSched = std::make_unique<Scheduler>();
        reg->ownedPool = std::make_unique<ElementPool>();
        reg->ownedFlight =
            std::make_unique<telemetry::FlightRecorder>(opt_.flightDepth);
        reg->sched = reg->ownedSched.get();
        reg->pool = reg->ownedPool.get();
        reg->flight = reg->ownedFlight.get();
        regions_.push_back(std::move(reg));
    }
    for (auto &e : engines_) {
        if (!e)
            continue;
        Region &reg = *regions_[binOf[unitCluster[e->u->id.index()]]];
        e->region = &reg;
        e->agCv.bind(*reg.sched);
        e->arbCv.bind(*reg.sched);
    }

    // Re-home streams: same-region streams move onto that region's
    // plumbing wholesale; straddling streams split into cut mode.
    // cutFifos_ stays in StreamId order — the serial barrier phase
    // iterates it, so the handoff order is deterministic.
    quantum_ = UINT64_MAX;
    for (size_t i = 0; i < g_.numStreams(); ++i) {
        auto &f = fifos_[i];
        const auto &s = f.spec();
        Engine *se = engines_[s.src.index()].get();
        Engine *de = engines_[s.dst.index()].get();
        if (!se && !de)
            continue; // No engine drives either end.
        Region &src = se ? *se->region : *de->region;
        Region &dst = de ? *de->region : src;
        if (&src == &dst) {
            if (src.id != 0)
                f.rebind(*src.sched, src.pool,
                         src.flight->enabled() ? src.flight : nullptr);
            continue;
        }
        f.makeCut(*src.sched, *dst.sched, dst.pool,
                  dst.flight->enabled() ? dst.flight : nullptr,
                  &cutConflict_);
        cutFifos_.push_back(&f);
        quantum_ = std::min(quantum_,
                            static_cast<uint64_t>(s.latency));
    }
    // Disconnected regions (no cut streams) still need a finite
    // barrier cadence so Done/hang detection runs.
    if (quantum_ == UINT64_MAX)
        quantum_ = 1u << 16;
    if (opt_.maxQuantum > 0)
        quantum_ = std::min(quantum_, opt_.maxQuantum);
    SARA_ASSERT(quantum_ >= 1, "degenerate barrier quantum");
    return true;
}

bool
Simulator::tryRunParallel(SimResult &result)
{
    const int r = static_cast<int>(regions_.size());
    for (auto &e : engines_) {
        if (!e)
            continue;
        e->task = runUnit(*e);
        e->region->sched->scheduleAt(e->task.handle(), 0);
    }

    enum class Outcome { Running, Done, Abort, Cancelled };
    Outcome outcome = Outcome::Running;
    uint64_t windowEnd = quantum_; // First window: [0, Q).
    uint64_t end = 0;
    uint64_t quanta = 0;

    // Serial phase, run by exactly one thread while the rest are held
    // at the barrier: hand cut-stream mailboxes over, decide whether
    // to continue, and open the next window. Everything it reads was
    // written before the owning thread arrived; everything it writes
    // is read after release — the barrier orders both.
    auto serial = [&]() noexcept {
        ++quanta;
        if (opt_.cancel &&
            opt_.cancel->load(std::memory_order_relaxed)) {
            outcome = Outcome::Cancelled;
            return;
        }
        for (const auto &reg : regions_) {
            if (reg->failed) {
                fallbackReason_ = "engine-error";
                outcome = Outcome::Abort;
                return;
            }
        }
        if (cutConflict_.load(std::memory_order_relaxed)) {
            fallbackReason_ = "cut-conflict";
            outcome = Outcome::Abort;
            return;
        }
        for (auto &e : engines_) {
            if (e && !e->error.empty()) {
                fallbackReason_ = "engine-error";
                outcome = Outcome::Abort;
                return;
            }
        }
        for (FifoState *f : cutFifos_)
            f->applyCutBoundary();
        uint64_t next = UINT64_MAX;
        uint64_t maxNow = 0;
        for (const auto &reg : regions_) {
            next = std::min(next, reg->sched->peekNextAt());
            maxNow = std::max(maxNow, reg->sched->now());
        }
        if (next == UINT64_MAX) {
            bool allDone = true;
            for (auto &e : engines_)
                if (e && !e->finished)
                    allDone = false;
            if (!allDone) {
                fallbackReason_ = "hang";
                outcome = Outcome::Abort;
            } else {
                end = maxNow;
                outcome = Outcome::Done;
            }
            return;
        }
        if (next > opt_.maxCycles) {
            fallbackReason_ = "budget";
            outcome = Outcome::Abort;
            return;
        }
        windowEnd = std::min(next + quantum_, opt_.maxCycles + 1);
    };
    std::barrier bar(r, serial);

    auto worker = [&](Region *reg) {
        try {
            while (outcome == Outcome::Running) {
                reg->sched->runUntil(windowEnd, opt_.cancel);
                auto t0 = std::chrono::steady_clock::now();
                bar.arrive_and_wait();
                reg->barrierWaitSec +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
        } catch (const std::exception &ex) {
            reg->error = ex.what();
            reg->failed = true;
            // Keep the barrier protocol alive so siblings can drain.
            while (outcome == Outcome::Running)
                bar.arrive_and_wait();
        }
    };

    auto wallStart = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(r - 1);
    for (int b = 1; b < r; ++b)
        threads.emplace_back(worker, regions_[b].get());
    {
        telemetry::ScopedPhase phase(telemetry::HostPhase::Scheduler);
        worker(regions_[0].get());
    }
    for (auto &t : threads)
        t.join();
    double wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wallStart)
                         .count();

    if (outcome == Outcome::Cancelled) {
        mergeRegionFlight();
        reportCancelled(); // Throws: the watchdog verdict is final —
                           // a sequential re-run can't beat a blown
                           // deadline.
    }
    if (outcome != Outcome::Done) {
        fallback_ = true;
        return false;
    }

    result = assembleResult(end);
    result.quanta = quanta;
    double waitSum = 0.0;
    for (const auto &reg : regions_)
        waitSum += reg->barrierWaitSec;
    if (wallSec > 0.0)
        result.barrierWaitRatio = waitSum / (r * wallSec);
    return true;
}

void
Simulator::rebuildRuntimeState(std::vector<std::vector<double>> initialDram)
{
    // Destroy in dependency order: engine frames and fifo elements
    // reference region pools and schedulers.
    engines_.clear();
    fifos_.clear();
    cutFifos_.clear();
    groups_.clear();
    dramData_.clear();
    regions_.clear();
    pool_ = ElementPool{};
    sched_ = Scheduler{};
    auto spec = dram_.spec();
    dram_ = dram::DramModel(std::move(spec));
    dramOutstanding_ = 0;
    dramOutstandingSeries_.clear();
    dramBytesSeries_.clear();
    cutConflict_.store(false, std::memory_order_relaxed);
    quantum_ = 0;
    buildState();
    dramData_ = std::move(initialDram);
}

void
Simulator::mergeRegionFlight()
{
    if (!flight_.enabled())
        return;
    struct Tagged
    {
        telemetry::FlightEvent ev;
        int region;
        size_t idx;
    };
    std::vector<Tagged> all;
    for (const auto &reg : regions_) {
        auto evs = reg->flight->events();
        for (size_t i = 0; i < evs.size(); ++i)
            all.push_back(Tagged{evs[i], reg->id, i});
    }
    std::sort(all.begin(), all.end(), [](const Tagged &a,
                                         const Tagged &b) {
        if (a.ev.at != b.ev.at)
            return a.ev.at < b.ev.at;
        if (a.region != b.region)
            return a.region < b.region;
        return a.idx < b.idx;
    });
    // Region 0's ring IS flight_: events were copied out above, so
    // the reset is safe. Re-recording replays the merged order; the
    // ring again retains the newest flightDepth entries.
    flight_.reset(opt_.flightDepth);
    for (const auto &t : all)
        flight_.record(t.ev.kind, t.ev.at, t.ev.a, t.ev.b);
}

void
Simulator::collectTensors(SimResult &result)
{
    result.tensors.resize(p_.numTensors());
    for (size_t t = 0; t < p_.numTensors(); ++t) {
        const auto &tensor = p_.tensor(ir::TensorId(t));
        if (tensor.space == ir::MemSpace::Dram) {
            result.tensors[t] = dramData_[t];
            continue;
        }
        auto it = groups_.find(static_cast<int32_t>(t));
        if (it == groups_.end())
            continue; // Optimized away (e.g. FIFO-lowered).
        const MemGroup &grp = it->second;
        std::vector<double> out(tensor.size, 0.0);
        for (int64_t a = 0; a < tensor.size; ++a) {
            auto [shard, offset] = locate(grp, a);
            const auto &ss = grp.state[shard];
            if (offset < static_cast<int64_t>(
                             ss.buffers[ss.lastWriteBuf].size()))
                out[a] = ss.buffers[ss.lastWriteBuf][offset];
        }
        result.tensors[t] = std::move(out);
    }
}

void
Simulator::recordFiring(const Engine &e, uint64_t start, uint64_t dur,
                        bool skip)
{
    // Per-region activity: cumulative firings per 4x4 fabric region
    // (fringe AGs clamp into the border regions), differentiated into
    // firings/cycle counter tracks at trace-write time.
    int cols = std::max(1, opt_.fabricCols);
    int rows = std::max(1, opt_.fabricRows);
    int rx = std::clamp(e.u->placeX, 0, cols - 1) * 4 / cols;
    int ry = std::clamp(e.u->placeY, 0, rows - 1) * 4 / rows;
    size_t region = static_cast<size_t>(ry * 4 + rx);
    ++regionFirings_[region];
    regionSeries_[region].sample(
        start, static_cast<double>(regionFirings_[region]));

    // Cap the buffer so accidental tracing of a huge run stays sane.
    if (trace_.size() >= (1u << 22))
        return;
    trace_.push_back({e.u->id.v, start, static_cast<uint32_t>(dur),
                      skip});
}

void
Simulator::noteWake(Engine &e, WakeClass cls, bool spurious)
{
    Region &r = *e.region;
    ++r.wakeups;
    ++r.wakeupsByClass[static_cast<int>(cls)];
    if (spurious) {
        ++r.spuriousWakeups;
        ++r.spuriousByClass[static_cast<int>(cls)];
    }
    r.flight->record(telemetry::FlightKind::Wake, r.sched->now(),
                     e.u->id.v, spurious ? 1 : 0);
}

void
Simulator::buildCounters(SimResult &result) const
{
    telemetry::CounterFile &cf = result.counters;

    for (const auto &e : engines_) {
        if (!e)
            continue;
        const auto &u = *e->u;
        telemetry::CounterBlock &b = cf.block(u.name);
        b.kind = u.kind == VuKind::Compute   ? "pcu"
                 : u.kind == VuKind::MemPort ? "pmu"
                                             : "ag";
        b.x = u.placeX;
        b.y = u.placeY;
        b.set("firings", e->stats.firings);
        b.set("skips", e->stats.skips);
        b.set("busy", e->stats.busyCycles);
        for (int c = 0; c < kNumStallCauses; ++c)
            b.set(std::string("stall.") +
                      stallCauseName(static_cast<StallCause>(c)),
                  e->stats.stallCycles[c]);
        b.set("idle", result.cycles > e->stats.doneAt
                          ? result.cycles - e->stats.doneAt
                          : 0);
        b.set("bytes", e->stats.bytesMoved);
        b.set("occ_peak", 0);
    }

    // FIFO-occupancy high-water per unit: the max over every stream
    // incident to the unit (storage VMUs have no engine and no block).
    for (const auto &f : fifos_) {
        const auto &s = f.spec();
        for (dfg::VuId vid : {s.src, s.dst}) {
            if (!vid.valid())
                continue;
            telemetry::CounterBlock *b =
                cf.findMutable(g_.unit(vid).name);
            if (b && f.highWater() > b->get("occ_peak"))
                b->set("occ_peak", f.highWater());
        }
    }

    // Router cells: aggregate the per-link NoC telemetry per (x, y).
    // linkUse is sorted by (x, y, dir), so blocks come out in
    // deterministic cell order.
    if (result.noc.enabled) {
        for (const auto &lu : result.noc.linkUse) {
            char id[32];
            std::snprintf(id, sizeof id, "router(%d,%d)", lu.link.x,
                          lu.link.y);
            telemetry::CounterBlock &b = cf.block(id);
            b.kind = "router";
            b.x = lu.link.x;
            b.y = lu.link.y;
            b.add("links", 1);
            b.add("streams", static_cast<uint64_t>(lu.streams));
            b.add("traversals", lu.traversals);
            b.add("wait_cycles", lu.waitCycles);
            if (lu.queueHighWater > b.get("queue_peak"))
                b.set("queue_peak", lu.queueHighWater);
        }
    }
}

void
Simulator::buildTimeline(fault::FailureReport &fr) const
{
    auto unitName = [&](int32_t id) -> std::string {
        if (id < 0 || static_cast<size_t>(id) >= g_.numUnits())
            return "?";
        return g_.unit(dfg::VuId(id)).name;
    };
    auto streamName = [&](int32_t id) -> std::string {
        if (id < 0 || static_cast<size_t>(id) >= g_.numStreams())
            return "?";
        return g_.stream(dfg::StreamId(id)).name;
    };

    for (const auto &ev : flight_.events()) {
        fault::TimelineEvent te;
        te.cycle = ev.at;
        te.kind = telemetry::flightKindName(ev.kind);
        switch (ev.kind) {
          case telemetry::FlightKind::Fire:
            te.detail = unitName(ev.a) + " (" + std::to_string(ev.b) +
                        " cyc)";
            break;
          case telemetry::FlightKind::Skip:
            te.detail = unitName(ev.a);
            break;
          case telemetry::FlightKind::Park:
            te.detail = unitName(ev.a) +
                        (ev.b >= 0 ? " on " + streamName(ev.b)
                                   : " on dram");
            break;
          case telemetry::FlightKind::Wake:
            te.detail = unitName(ev.a) + (ev.b ? " (spurious)" : "");
            break;
          case telemetry::FlightKind::LinkGrant:
            te.detail = streamName(ev.a) + " @ " +
                        (noc_ ? noc_->linkSite(ev.b) : "?");
            break;
          case telemetry::FlightKind::Deliver:
            te.detail = streamName(ev.a);
            break;
        }
        fr.timeline.push_back(std::move(te));
    }
    fr.timelineDropped = flight_.totalRecorded() > flight_.size()
                             ? flight_.totalRecorded() - flight_.size()
                             : 0;
}

void
Simulator::writeTrace(const fault::FailureReport *failure) const
{
    // One unified timeline: compile phases (pid 0, wall-clock µs),
    // engine firings (pid 1, one thread lane per unit, 1 cycle = 1 µs),
    // and DRAM counter tracks (pid 1).
    telemetry::ChromeTraceWriter w(opt_.traceFile);
    if (!w.ok())
        return;

    constexpr int kCompilePid = 0, kSimPid = 1;
    if (opt_.compileSpans && !opt_.compileSpans->empty()) {
        w.processName(kCompilePid, "compile (wall clock)");
        for (const auto &span : *opt_.compileSpans) {
            w.complete(kCompilePid, span.depth, span.name,
                       span.startMs * 1e3, span.durMs * 1e3);
        }
    }

    w.processName(kSimPid, "simulation (cycles)");
    for (const auto &e : engines_) {
        if (!e)
            continue;
        w.threadName(kSimPid, e->u->id.v, e->u->name);
    }
    for (const auto &ev : trace_) {
        const auto &u = g_.unit(dfg::VuId(ev.unit));
        w.complete(kSimPid, ev.unit,
                   ev.skip ? u.name + " (skip)" : u.name,
                   static_cast<double>(ev.start),
                   static_cast<double>(ev.dur));
    }
    for (const auto &[t, v] : dramOutstandingSeries_.samples())
        w.counter(kSimPid, "dram-outstanding", static_cast<double>(t),
                  "requests", v);
    // Differentiate the cumulative byte counter into a bandwidth track.
    uint64_t prevT = 0;
    double prevBytes = 0.0;
    for (const auto &[t, v] : dramBytesSeries_.samples()) {
        if (t > prevT)
            w.counter(kSimPid, "dram-bandwidth", static_cast<double>(t),
                      "bytes/cycle",
                      (v - prevBytes) / static_cast<double>(t - prevT));
        prevT = t;
        prevBytes = v;
    }
    // Per-region fabric activity: cumulative firings per 4x4 region,
    // differentiated into firings/cycle tracks.
    for (int i = 0; i < 16; ++i) {
        if (regionSeries_[i].empty())
            continue;
        char name[32];
        std::snprintf(name, sizeof name, "region(%d,%d)", i % 4, i / 4);
        uint64_t rPrevT = 0;
        double rPrev = 0.0;
        for (const auto &[t, v] : regionSeries_[i].samples()) {
            if (t > rPrevT)
                w.counter(kSimPid, name, static_cast<double>(t),
                          "firings/cycle",
                          (v - rPrev) / static_cast<double>(t - rPrevT));
            rPrevT = t;
            rPrev = v;
        }
    }
    if (noc_) {
        // Link-load tracks: flits inside the network and links with a
        // queued flit, sampled on every inject/deliver transition.
        noc::NocStats ns = noc_->stats();
        for (const auto &[t, v] : ns.load.samples())
            w.counter(kSimPid, "noc-link-load", static_cast<double>(t),
                      "flits", v);
        for (const auto &[t, v] : ns.busyLinks.samples())
            w.counter(kSimPid, "noc-busy-links", static_cast<double>(t),
                      "links", v);
    }
    if (failure) {
        // Failure annotation: one classification marker plus an
        // instant on each blocked engine's lane at the hang cycle.
        w.instant(kSimPid, 0,
                  std::string("HANG: ") +
                      fault::hangClassName(failure->cls),
                  static_cast<double>(failure->atCycle));
        for (const auto &e : engines_) {
            if (!e || e->finished)
                continue;
            w.instant(kSimPid, e->u->id.v,
                      "blocked: " + std::string(e->blockReason) + " [" +
                          e->blockDetail + "]",
                      static_cast<double>(failure->atCycle));
        }
    }

    size_t events = w.eventsWritten();
    w.close();
    inform("wrote ", events, " trace events to ", opt_.traceFile);
}

std::vector<fault::WaitNode>
Simulator::buildWaitGraph() const
{
    // Map engine VuId -> index in the blocked list for provider edges.
    std::vector<int> blockedIdx(g_.numUnits(), -1);
    std::vector<const Engine *> blocked;
    for (const auto &e : engines_) {
        if (!e || e->finished)
            continue;
        blockedIdx[e->u->id.index()] = static_cast<int>(blocked.size());
        blocked.push_back(e.get());
    }

    std::vector<fault::WaitNode> nodes;
    nodes.reserve(blocked.size());
    for (const Engine *e : blocked) {
        fault::WaitNode n;
        n.unit = e->u->name;
        for (int c = 0; c < kNumStallCauses; ++c) {
            if (e->stats.stallCycles[c] > 0)
                n.stalls.emplace_back(
                    stallCauseName(static_cast<StallCause>(c)),
                    e->stats.stallCycles[c]);
        }

        dfg::VuId provider;
        switch (e->waitKind) {
          case Engine::WaitKind::StreamData: {
            const auto &s = g_.stream(dfg::StreamId(e->waitStream));
            n.wants = s.kind == StreamKind::Token ? "token" : "data";
            n.resource = s.name;
            provider = s.src;
            break;
          }
          case Engine::WaitKind::StreamSpace: {
            const auto &s = g_.stream(dfg::StreamId(e->waitStream));
            n.wants = "credit";
            n.resource = s.name;
            provider = s.dst; // Credits come back when the dst pops.
            break;
          }
          case Engine::WaitKind::NetInject: {
            const auto &s = g_.stream(dfg::StreamId(e->waitStream));
            n.wants = "link-slot";
            n.resource = noc_ ? noc_->firstLinkSite(s.id) : s.name;
            provider = s.dst; // The link drains toward the consumer.
            break;
          }
          case Engine::WaitKind::DramWindow:
            n.wants = "dram-response";
            n.resource = e->u->name;
            break;
          case Engine::WaitKind::DramDrain:
            n.wants = "dram-drain";
            n.resource = e->u->name;
            break;
          case Engine::WaitKind::None:
            n.wants = *e->blockReason ? e->blockReason : "unknown";
            n.resource = e->blockDetail;
            break;
        }
        if (provider.valid()) {
            size_t pi = provider.index();
            if (blockedIdx[pi] >= 0)
                n.provider = blockedIdx[pi];
            else if (engines_[pi] && engines_[pi]->finished)
                n.providerFinished = true;
            // Storage VMUs have no engine: external provider (-1).
        }
        nodes.push_back(std::move(n));
    }
    return nodes;
}

void
Simulator::reportHang()
{
    if (!opt_.hangDiagnosis) {
        // Flat escalation: flush the timeline first (the trace leading
        // up to a hang is the evidence needed to diagnose it), then
        // panic with every blocked engine and its stall histogram so
        // the hang is attributable even without diagnosis.
        if (!opt_.traceFile.empty())
            writeTrace();
        std::string report = "simulation deadlock; blocked engines:";
        for (const auto &e : engines_) {
            if (!e || e->finished)
                continue;
            report += "\n  " + e->u->name + ": waiting on " +
                      std::string(e->blockReason) + " [" +
                      e->blockDetail + "]";
            if (e->stats.stallTotal() > 0) {
                report += "; stalls:";
                for (int c = 0; c < kNumStallCauses; ++c) {
                    if (e->stats.stallCycles[c] == 0)
                        continue;
                    report += std::string(" ") +
                              stallCauseName(static_cast<StallCause>(c)) +
                              "=" +
                              std::to_string(e->stats.stallCycles[c]);
                }
            }
        }
        panic(report);
    }

    fault::FailureReport fr =
        fault::classify(buildWaitGraph(), opt_.fault, sched_.now());
    buildTimeline(fr);
    if (!opt_.traceFile.empty())
        writeTrace(&fr);
    // Same logging contract as panic(); the throw carries structure.
    detail::logMessage(LogLevel::Error, "panic", fr.str());
    throw fault::HangError(std::move(fr));
}

void
Simulator::reportBudgetExceeded()
{
    // The cycle budget is a livelock tripwire: events were still
    // firing when the budget ran out, so the run was spinning rather
    // than quiescing. Escalate through the same classified-failure
    // surface as a drained-queue hang (exit 4); with diagnosis the
    // wait-for graph over the unfinished engines is classified — no
    // cycle closes over a spinning engine, so a true livelock lands
    // in starvation-livelock, while a budget blown by an injected
    // permanent fault is still pinned on the injection site.
    if (!opt_.hangDiagnosis) {
        if (!opt_.traceFile.empty())
            writeTrace();
        panic("simulation exceeded ", opt_.maxCycles,
              " cycles; livelock or runaway workload");
    }
    fault::FailureReport fr =
        fault::classify(buildWaitGraph(), opt_.fault, sched_.now());
    fr.budgetExceeded = true;
    fr.budget = opt_.maxCycles;
    if (fr.cls == fault::HangClass::Deadlock) {
        // A wait-for cycle in a mid-flight snapshot is transient (the
        // wanted data may simply still be in the network): with events
        // pending the run is live by definition, so a budget overrun
        // is a livelock, never a deadlock. Injected-fault attribution
        // stands — a permanent fault can burn the budget.
        fr.cls = fault::HangClass::Starvation;
        fr.cycle.clear();
    }
    buildTimeline(fr);
    if (!opt_.traceFile.empty())
        writeTrace(&fr);
    detail::logMessage(LogLevel::Error, "panic", fr.str());
    throw fault::HangError(std::move(fr));
}

void
Simulator::reportCancelled()
{
    // An external watchdog pulled the plug mid-flight. Like a budget
    // overrun the snapshot is transient, so a wait-for cycle proves
    // nothing — classify for the evidence (blocked set, injections,
    // timeline), force starvation over deadlock, and mark the report
    // cancelled so the caller can tell a watchdog kill from an
    // organic hang.
    fault::FailureReport fr =
        fault::classify(buildWaitGraph(), opt_.fault, sched_.now());
    fr.cancelled = true;
    if (fr.cls == fault::HangClass::Deadlock) {
        fr.cls = fault::HangClass::Starvation;
        fr.cycle.clear();
    }
    buildTimeline(fr);
    if (!opt_.traceFile.empty())
        writeTrace(&fr);
    detail::logMessage(LogLevel::Error, "panic", fr.str());
    throw fault::HangError(std::move(fr));
}

} // namespace sara::sim
