#ifndef SARA_SIM_FIFO_H
#define SARA_SIM_FIFO_H

/**
 * @file
 * Runtime state of a stream: a latency-modeled, capacity-limited FIFO.
 * Pushes enter an in-flight queue and are delivered after the stream's
 * network latency; capacity accounting covers in-flight elements so
 * back-pressure matches a credit-based hardware flow control.
 * Token streams carry empty payloads and are effectively unbounded
 * (credits bound their occupancy by construction).
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "dfg/vudfg.h"
#include "fault/fault.h"
#include "noc/noc.h"
#include "sim/task.h"
#include "support/flight.h"
#include "support/logging.h"

namespace sara::sim {

/** One data element: the active-lane values of a vectorized firing. */
using Element = std::vector<double>;

/**
 * Recycler for Element lane buffers. The fire path allocates one
 * Element per pushed firing and frees it at the consumer's pop; with
 * a pool the freed buffer's heap allocation is reused instead
 * (steady-state simulation becomes allocation-free on this path).
 * acquire() does not zero the reused buffer — callers overwrite every
 * lane; acquireZeroed() is for skip/default elements.
 */
class ElementPool
{
  public:
    Element
    acquire(size_t lanes)
    {
        if (free_.empty())
            return Element(lanes);
        Element e = std::move(free_.back());
        free_.pop_back();
        e.resize(lanes);
        return e;
    }

    Element
    acquireZeroed(size_t lanes)
    {
        if (free_.empty())
            return Element(lanes, 0.0);
        Element e = std::move(free_.back());
        free_.pop_back();
        e.assign(lanes, 0.0);
        return e;
    }

    void
    release(Element &&e)
    {
        if (e.capacity() > 0 && free_.size() < kMaxFree)
            free_.push_back(std::move(e));
    }

    size_t pooled() const { return free_.size(); }

  private:
    static constexpr size_t kMaxFree = 1024;
    std::vector<Element> free_;
};

/** Runtime FIFO backing one dfg::Stream. */
class FifoState
{
  public:
    /** With a NoC model attached (and a routed stream), in-flight
     *  elements traverse the cycle-level network instead of the fixed
     *  `latency`-cycle delay; the credit window is unchanged. An
     *  injector (may be null) enables the fifo-leak fault model; a
     *  pool (may be null, shared across streams) recycles popped
     *  Element buffers back to the fire path. A flight recorder (may
     *  be null) logs each delivery for failure timelines. */
    void
    init(Scheduler &sched, const dfg::Stream &spec,
         noc::NocModel *noc = nullptr,
         const fault::FaultInjector *inj = nullptr,
         ElementPool *pool = nullptr,
         telemetry::FlightRecorder *flight = nullptr)
    {
        sched_ = &sched;
        spec_ = &spec;
        inj_ = inj;
        pool_ = pool;
        flight_ = flight;
        noc_ = noc && noc->participates(spec.id) ? noc : nullptr;
        isToken_ = spec.kind == dfg::StreamKind::Token;
        latency_ = static_cast<uint64_t>(spec.latency);
        // In-flight elements occupy per-hop network registers, not the
        // destination FIFO: a fully pipelined link sustains one element
        // per cycle, so the credit window is depth + latency.
        capacity_ = isToken_
                        ? UINT64_MAX
                        : static_cast<uint64_t>(spec.depth) + latency_;
        dataCv.bind(sched);
        spaceCv.bind(sched);
        // Pre-filled credits (CMMC backward edges).
        for (int i = 0; i < spec.initTokens; ++i)
            stored_.emplace_back();
        noteOccupancy();
    }

    /** Re-point the host-side plumbing (scheduler, element pool,
     *  flight recorder) without touching stream state — used when the
     *  region partitioner moves a stream whose endpoints share a
     *  region onto that region's scheduler. CVs are re-bound; stored
     *  elements, credits, and counters are untouched. */
    void
    rebind(Scheduler &sched, ElementPool *pool,
           telemetry::FlightRecorder *flight)
    {
        sched_ = &sched;
        pool_ = pool;
        flight_ = flight;
        dataCv.bind(sched);
        spaceCv.bind(sched);
    }

    /**
     * Switch to *cut* mode: the producer and consumer endpoints live
     * in different regions running on different threads. The stream
     * splits into two thread-local halves plus a mailbox:
     *   - producer side: push() stages {element, deliverAt} into the
     *     mailbox and tracks occupancy in a local credit view
     *     (`cutOcc_`) that learns about consumer pops only at quantum
     *     boundaries — a conservative over-estimate;
     *   - consumer side: stored_/dataCv/pop() exactly as today; pops
     *     bank credits into `cutCredits_` instead of notifying;
     *   - applyCutBoundary() (serial barrier phase) applies banked
     *     credits and schedules staged deliveries on the consumer's
     *     scheduler. Stream latency >= the barrier quantum, so every
     *     staged delivery lands at or after the next quantum start.
     * A producer that finds its local credit view full would have to
     * wait for a credit the sequential core returns same-cycle — it
     * flags `conflict` instead and the run falls back to the
     * sequential core (see Simulator::tryRunParallel).
     */
    void
    makeCut(Scheduler &prodSched, Scheduler &consSched,
            ElementPool *consPool, telemetry::FlightRecorder *consFlight,
            std::atomic<bool> *conflict)
    {
        cut_ = true;
        prodSched_ = &prodSched;
        sched_ = &consSched; // Deliveries execute consumer-side.
        pool_ = consPool;
        flight_ = consFlight;
        conflict_ = conflict;
        spaceCv.bind(prodSched);
        dataCv.bind(consSched);
        cutOcc_ = stored_.size() + inflight_.size(); // Init credits.
    }

    bool isCut() const { return cut_; }

    /** Producer side of a cut stream is out of local credits: the
     *  parallel attempt has diverged from the sequential core. The
     *  per-stream flag survives until the rebuild so the partitioner
     *  can learn which cut to avoid on the next attempt. */
    void
    noteCutConflict()
    {
        cutConflicted_ = true;
        conflict_->store(true, std::memory_order_relaxed);
    }

    /** This stream's producer hit the conflict (read after the region
     *  threads joined). */
    bool cutConflicted() const { return cutConflicted_; }

    /** Serial barrier phase: apply banked credits to the producer's
     *  view and hand staged elements to the consumer's scheduler.
     *  Caller iterates cut streams in StreamId order, keeping the
     *  handoff deterministic. */
    void
    applyCutBoundary()
    {
        SARA_ASSERT(cutCredits_ <= cutOcc_, "credit underflow on ",
                    spec_->name);
        cutOcc_ -= cutCredits_;
        cutCredits_ = 0;
        for (auto &st : cutStaged_) {
            inflight_.push_back(std::move(st.elem));
            scheduleDelivery(st.deliverAt);
        }
        cutStaged_.clear();
    }

    const dfg::Stream &spec() const { return *spec_; }

    bool empty() const { return stored_.empty(); }
    size_t
    occupancy() const
    {
        return cut_ ? cutOcc_ : stored_.size() + inflight_.size();
    }
    bool hasSpace() const { return occupancy() < capacity_; }

    /** True when the stream rides the cycle-level network. */
    bool onNoc() const { return noc_ != nullptr; }

    /** NoC admission: the first-hop link buffer can take a flit.
     *  Always true for fixed-latency streams. A producer blocked here
     *  (with credit space available) is stalled on the *network*. */
    bool canInject() const
    {
        return !noc_ || noc_->canAccept(spec_->id);
    }

    /** Wait list for `canInject` (only valid when `onNoc()`). */
    CondVar &injectCv() { return noc_->acceptCv(spec_->id); }

    /** Push now; delivered after the stream latency (or the network
     *  transit time when a NoC is attached), in order. */
    void
    push(Element v)
    {
        SARA_ASSERT(hasSpace(), "push to full fifo ", spec_->name);
        SARA_ASSERT(canInject(), "push to blocked link ", spec_->name);
        ++pushes_;
        if (cut_) {
            stageCut(std::move(v), prodSched_->now() + latency_);
            return;
        }
        inflight_.push_back(std::move(v));
        noteOccupancy();
        if (noc_)
            noc_->inject(spec_->id, deliverTrampoline, this);
        else
            scheduleDelivery(sched_->now() + latency_);
    }

    /** Push with an explicit extra delay (DRAM responses). */
    void
    pushWithDelay(Element v, uint64_t extraDelay)
    {
        SARA_ASSERT(hasSpace(), "push to full fifo ", spec_->name);
        ++pushes_;
        if (cut_) {
            stageCut(std::move(v),
                     prodSched_->now() + latency_ + extraDelay);
            return;
        }
        inflight_.push_back(std::move(v));
        noteOccupancy();
        if (noc_)
            noc_->injectAt(spec_->id, sched_->now() + extraDelay,
                           deliverTrampoline, this);
        else
            scheduleDelivery(sched_->now() + latency_ + extraDelay);
    }

    const Element &
    front() const
    {
        SARA_ASSERT(!stored_.empty(), "front of empty fifo ", spec_->name);
        return stored_.front();
    }

    void
    pop()
    {
        SARA_ASSERT(!stored_.empty(), "pop of empty fifo ", spec_->name);
        if (pool_)
            pool_->release(std::move(stored_.front()));
        stored_.pop_front();
        ++pops_;
        // Cut mode: the credit travels back through the mailbox at the
        // next quantum boundary instead of returning same-cycle (no
        // producer is ever parked on spaceCv — that case aborts the
        // parallel attempt before it can wait).
        if (cut_) {
            ++cutCredits_;
            return;
        }
        // Injected credit leak: the freed slot's credit is lost in
        // transit, permanently shrinking the window (floor 1 so the
        // stream stays usable; a window of 0 would wedge instantly and
        // that failure mode is stuck-credit's job).
        if (inj_ && capacity_ != UINT64_MAX && capacity_ > 1 &&
            inj_->fifoLeak(spec_->name, sched_->now()))
            --capacity_;
        // A stream has exactly one producer engine, so spaceCv holds at
        // most one waiter: notifyOne is equivalent to a broadcast, and
        // the hasWaiters guard keeps waiter-free pops (the common case)
        // off the scheduler entirely.
        if (spaceCv.hasWaiters())
            spaceCv.notifyOne();
    }

    uint64_t pushes() const { return pushes_; }
    uint64_t pops() const { return pops_; }
    /** Max occupancy ever reached (stored + in flight). */
    uint64_t highWater() const { return highWater_; }
    /** Credit-window capacity (UINT64_MAX for token streams). */
    uint64_t capacity() const { return capacity_; }

    /** Waiters: consumers park on dataCv, producers on spaceCv. */
    CondVar dataCv, spaceCv;

  private:
    void
    noteOccupancy()
    {
        uint64_t occ = occupancy();
        if (occ > highWater_)
            highWater_ = occ;
    }

    /** Producer-side staging for a cut stream. Only the local credit
     *  view is touched — consumer state (stored_, inflight_) belongs
     *  to the other thread until the barrier. The high-water mark is
     *  the producer's view: >= the true occupancy (credits arrive
     *  late), still <= capacity (hasSpace gates the push). */
    void
    stageCut(Element v, uint64_t deliverAt)
    {
        cutStaged_.push_back(CutStaged{std::move(v), deliverAt});
        ++cutOcc_;
        if (cutOcc_ > highWater_)
            highWater_ = cutOcc_;
    }

    void
    scheduleDelivery(uint64_t at)
    {
        // Deliveries must stay in push order even when extra delays
        // differ (in-order response streams).
        at = std::max(at, lastDeliverAt_);
        lastDeliverAt_ = at;
        sched_->scheduleFnAt(
            [](void *p) { static_cast<FifoState *>(p)->deliverOne(); },
            this, at);
    }

    void
    deliverOne()
    {
        SARA_ASSERT(!inflight_.empty(), "delivery with nothing in flight");
        stored_.push_back(std::move(inflight_.front()));
        inflight_.pop_front();
        if (flight_)
            flight_->record(telemetry::FlightKind::Deliver,
                            sched_->now(), spec_->id.v);
        // Single consumer engine per stream: see pop().
        if (dataCv.hasWaiters())
            dataCv.notifyOne();
    }

    /** NoC ejection callback (per-stream order is guaranteed). */
    static void
    deliverTrampoline(void *p)
    {
        static_cast<FifoState *>(p)->deliverOne();
    }

    Scheduler *sched_ = nullptr;
    const dfg::Stream *spec_ = nullptr;
    const fault::FaultInjector *inj_ = nullptr;
    noc::NocModel *noc_ = nullptr;
    ElementPool *pool_ = nullptr;
    telemetry::FlightRecorder *flight_ = nullptr;
    // Cut-mode state. Thread ownership: cutStaged_/cutOcc_ are
    // producer-side, cutCredits_ is consumer-side; applyCutBoundary
    // touches both but only runs in the serial barrier phase.
    struct CutStaged
    {
        Element elem;
        uint64_t deliverAt;
    };
    bool cut_ = false;
    bool cutConflicted_ = false;
    Scheduler *prodSched_ = nullptr;
    std::atomic<bool> *conflict_ = nullptr;
    std::deque<CutStaged> cutStaged_;
    uint64_t cutOcc_ = 0;
    uint64_t cutCredits_ = 0;
    std::deque<Element> stored_;
    std::deque<Element> inflight_;
    uint64_t capacity_ = 0;
    uint64_t latency_ = 1;
    uint64_t lastDeliverAt_ = 0;
    uint64_t pushes_ = 0, pops_ = 0;
    uint64_t highWater_ = 0;
    bool isToken_ = false;
};

} // namespace sara::sim

#endif // SARA_SIM_FIFO_H
