#ifndef SARA_SIM_TASK_H
#define SARA_SIM_TASK_H

/**
 * @file
 * Minimal coroutine runtime for the discrete-event simulator. Each
 * virtual unit executes as a Task coroutine; awaiting a condition
 * parks the coroutine on a wait list, and the scheduler resumes it
 * when the condition may have changed (spurious wakeups are allowed —
 * awaiters re-check their predicate in a loop).
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <utility>
#include <vector>

#include "support/hostprof.h"
#include "support/logging.h"

namespace sara::sim {

/**
 * A coroutine task supporting nested co_await of child tasks
 * (symmetric transfer back to the parent at completion).
 */
class Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }
            void await_resume() noexcept {}
        };
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
    Task(Task &&other) noexcept : h_(std::exchange(other.h_, {})) {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h_ = std::exchange(other.h_, {});
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(h_); }
    bool done() const { return !h_ || h_.done(); }
    std::coroutine_handle<promise_type> handle() const { return h_; }

    /** Rethrow an exception captured inside the coroutine, if any. */
    void
    rethrowIfFailed() const
    {
        if (h_ && h_.promise().exception)
            std::rethrow_exception(h_.promise().exception);
    }

    /** Awaiter used when a parent task co_awaits a child task. */
    struct ChildAwaiter
    {
        std::coroutine_handle<promise_type> child;
        bool await_ready() const noexcept { return !child || child.done(); }
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }
        void
        await_resume()
        {
            if (child.promise().exception)
                std::rethrow_exception(child.promise().exception);
        }
    };
    ChildAwaiter operator co_await() const { return ChildAwaiter{h_}; }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }
    std::coroutine_handle<promise_type> h_;
};

/**
 * Discrete-event scheduler: a two-level calendar queue of coroutine
 * resumptions. Same-cycle events run in insertion order.
 *
 * Nearly every event in a dataflow simulation lands at `now + 0` or
 * `now + 1` (wakeups, firing delays, link grants); only DRAM responses
 * and fault windows reach hundreds of cycles out. The queue therefore
 * keeps a wheel of `kWheelCycles` per-cycle FIFO buckets for events
 * within the near window (O(1) push, no comparisons) and spills the
 * far tail into a small binary-heap overflow.
 *
 * Determinism contract: events execute in exact `(at, seq)` order,
 * where `seq` is the global scheduling order — identical to a single
 * time-ordered binary heap (asserted by the property tests in
 * tests/test_sched.cc). The wheel only accepts an event for cycle T
 * once `T - now < kWheelCycles`, so every overflow entry for T was
 * scheduled strictly before any wheel entry for T (smaller seq);
 * draining the overflow heap first and then the bucket FIFO replays
 * the exact heap order.
 */
class Scheduler
{
  public:
    /** Raw callback event: fn(arg) runs at its scheduled time. */
    using EventFn = void (*)(void *);

    /** Near-window size (cycles) of the calendar wheel. Power of two. */
    static constexpr uint64_t kWheelCycles = 64;

    uint64_t now() const { return now_; }

    /** Schedule a callback at absolute time `at`. */
    void
    scheduleFnAt(EventFn fn, void *arg, uint64_t at)
    {
        SARA_ASSERT(at >= now_, "scheduling into the past");
        ++pending_;
        if (at - now_ < kWheelCycles) {
            buckets_[at & kWheelMask].push_back(Event{at, seq_++, fn, arg});
            ++pendingNear_;
        } else {
            overflow_.push(Event{at, seq_++, fn, arg});
        }
    }

    /** Schedule `h` to resume at absolute time `at`. */
    void
    scheduleAt(std::coroutine_handle<> h, uint64_t at)
    {
        scheduleFnAt(
            [](void *p) {
                std::coroutine_handle<>::from_address(p).resume();
            },
            h.address(), at);
    }

    void
    scheduleAfter(std::coroutine_handle<> h, uint64_t delay)
    {
        scheduleAt(h, now_ + delay);
    }

    /**
     * Register `fn(arg)` to run at the *end* of the current cycle —
     * after every normal event scheduled for `now()` has executed (the
     * end-of-cycle phase repeats if handlers schedule further
     * same-cycle events). The simulator's same-cycle arbiters (DRAM
     * channel order, PMU port-bus grants) live here: requests staged
     * during the cycle are resolved in one deterministic pass whose
     * order does not depend on the event interleave — the property
     * that lets region-parallel execution stay cycle-identical to the
     * sequential core.
     */
    void
    atCycleEnd(EventFn fn, void *arg)
    {
        eoc_.push_back(Event{now_, 0, fn, arg});
    }

    /**
     * Run until no events remain, or until the next event would lie
     * past `maxCycles` — then stop with `budgetExceeded()` set so the
     * caller can escalate through its hang-diagnosis path. A non-null
     * `cancel` flag is polled once per simulated cycle (relaxed load:
     * the exact stop cycle may trail the store by one poll, which is
     * fine for a wall-clock watchdog); when it goes true the run stops
     * with `cancelled()` set. Returns the final time.
     */
    uint64_t
    run(uint64_t maxCycles = UINT64_MAX,
        const std::atomic<bool> *cancel = nullptr)
    {
        budgetExceeded_ = false;
        cancelled_ = false;
        while (pending_ > 0 || !eoc_.empty()) {
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                cancelled_ = true;
                break;
            }
            // End-of-cycle phase: once the current cycle's normal
            // events drain, run the registered arbiters (they may
            // schedule fresh same-cycle events, re-entering the drain).
            if (!eoc_.empty() &&
                (pending_ == 0 || nextEventAt() > now_)) {
                runEndOfCycle();
                continue;
            }
            uint64_t next = nextEventAt();
            if (next > maxCycles) {
                budgetExceeded_ = true;
                break;
            }
            now_ = next;
            drainCycle();
        }
        return now_;
    }

    /**
     * Quantum-bounded drain for region-parallel execution: run events
     * strictly before `endExclusive`, leaving later events pending.
     * End-of-cycle handlers for an executed cycle always run before
     * returning, so no arbitration straddles a quantum boundary. The
     * cancel flag is polled once per executed cycle — every region
     * thread of a parallel run honours the watchdog's cooperative
     * cancel. Returns false when cancelled.
     */
    bool
    runUntil(uint64_t endExclusive,
             const std::atomic<bool> *cancel = nullptr)
    {
        while (pending_ > 0 || !eoc_.empty()) {
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                cancelled_ = true;
                return false;
            }
            if (!eoc_.empty() &&
                (pending_ == 0 || nextEventAt() > now_)) {
                runEndOfCycle();
                continue;
            }
            uint64_t next = nextEventAt();
            if (next >= endExclusive)
                return true;
            now_ = next;
            drainCycle();
        }
        return true;
    }

    /** Earliest pending event time, or UINT64_MAX when idle. Only
     *  meaningful between runUntil() quanta (end-of-cycle handlers
     *  never remain pending across a quantum boundary). */
    uint64_t
    peekNextAt() const
    {
        SARA_ASSERT(eoc_.empty(), "peek with end-of-cycle work pending");
        return pending_ > 0 ? nextEventAt() : UINT64_MAX;
    }

    bool idle() const { return pending_ == 0; }

    /** The last run() stopped because the next event would overrun the
     *  cycle budget (the budget-cycle event itself still executes). */
    bool budgetExceeded() const { return budgetExceeded_; }

    /** The last run() stopped because its cancel flag went true. */
    bool cancelled() const { return cancelled_; }

    /** Events executed since construction (host-throughput metric). */
    uint64_t eventsExecuted() const { return executed_; }

    /** Awaitable suspending the current task for `cycles`. */
    auto
    delay(uint64_t cycles)
    {
        struct Awaiter
        {
            Scheduler &sched;
            uint64_t cycles;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                sched.scheduleAfter(h, cycles);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, cycles};
    }

  private:
    struct Event
    {
        uint64_t at;
        uint64_t seq;
        EventFn fn;
        void *arg;
        bool
        operator>(const Event &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    static constexpr uint64_t kWheelMask = kWheelCycles - 1;
    static_assert((kWheelCycles & kWheelMask) == 0,
                  "wheel size must be a power of two");

    /** Execute every event scheduled for `now_` (called with now_
     *  freshly advanced to the earliest pending time). */
    void
    drainCycle()
    {
        // Overflow entries for this cycle carry strictly smaller seq
        // than any bucket entry (see class comment): heap first,
        // bucket FIFO second. An overflow event scheduling at `now`
        // lands in the bucket (distance 0), so this loop terminates.
        while (!overflow_.empty() && overflow_.top().at == now_) {
            Event e = overflow_.top();
            overflow_.pop();
            --pending_;
            ++executed_;
            e.fn(e.arg);
        }
        // Index-based: executing an event may append same-cycle
        // events to this very bucket (reallocating it).
        auto &bucket = buckets_[now_ & kWheelMask];
        for (size_t i = 0; i < bucket.size(); ++i) {
            Event e = bucket[i];
            --pending_;
            --pendingNear_;
            ++executed_;
            e.fn(e.arg);
        }
        bucket.clear(); // Keeps capacity: steady state is alloc-free.
    }

    /** Run the registered end-of-cycle handlers (index-based: a
     *  handler may register further handlers for this same cycle). */
    void
    runEndOfCycle()
    {
        for (size_t i = 0; i < eoc_.size(); ++i) {
            Event e = eoc_[i];
            ++executed_;
            e.fn(e.arg);
        }
        eoc_.clear();
    }

    /** Earliest pending event time (caller guarantees pending_ > 0). */
    uint64_t
    nextEventAt() const
    {
        uint64_t next =
            overflow_.empty() ? UINT64_MAX : overflow_.top().at;
        if (pendingNear_ > 0) {
            for (uint64_t t = now_; t - now_ < kWheelCycles; ++t) {
                if (!buckets_[t & kWheelMask].empty()) {
                    next = std::min(next, t);
                    break;
                }
            }
        }
        SARA_ASSERT(next != UINT64_MAX, "pending events but none found");
        return next;
    }

    std::array<std::vector<Event>, kWheelCycles> buckets_;
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        overflow_;
    /** End-of-cycle handlers for the current cycle (atCycleEnd). */
    std::vector<Event> eoc_;
    uint64_t now_ = 0;
    uint64_t seq_ = 0;
    uint64_t pending_ = 0;     ///< Events in wheel + overflow.
    uint64_t pendingNear_ = 0; ///< Events in the wheel only.
    uint64_t executed_ = 0;
    bool budgetExceeded_ = false;
    bool cancelled_ = false;
};

/**
 * A wait list: tasks park here until notified, then re-check their
 * condition (level-triggered use: `while (!cond) co_await cv.wait()`).
 *
 * Wakeup policies: notifyAll() broadcasts (every waiter resumes and
 * re-checks), notifyOne() wakes only the front (FIFO) waiter and
 * opens an insertion cursor so that same-cycle racers and the woken
 * waiter's own re-park (`wait(atCursor = true)`) land in exactly the
 * wait-list order a broadcast would have rebuilt; see notifyOne().
 */
class CondVar
{
  public:
    explicit CondVar(Scheduler &sched) { bind(sched); }
    CondVar() = default;

    void
    bind(Scheduler &sched)
    {
        sched_ = &sched;
        // Reserve once: park/notify cycles on the hot path then never
        // reallocate (wait lists hold a handful of engines at most).
        waiters_.reserve(4);
    }

    auto
    wait(bool atCursor = false)
    {
        struct Awaiter
        {
            CondVar &cv;
            bool atCursor;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                cv.park(h, atCursor);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, atCursor};
    }

    /** Wake all waiters (they resume at the current time). */
    void
    notifyAll()
    {
        telemetry::ScopedPhase phase(telemetry::HostPhase::CvWait);
        for (auto h : waiters_)
            sched_->scheduleAfter(h, 0);
        waiters_.clear();
        wakeInFlight_ = false;
    }

    /**
     * Wake the longest-parked waiter only.
     *
     * A broadcast empties the wait list, so until the woken waiters
     * resume, any engine parking "fresh" lands *ahead* of every old
     * waiter that will spuriously re-park behind it. To stay
     * cycle-identical with that emergent order, notifyOne opens an
     * insertion cursor at the list front: parks that execute while the
     * wake is still in flight slot in before the surviving waiters,
     * and the woken engine's own immediate re-park (wait with
     * atCursor, see Engine::grantWake) lands right after them —
     * exactly where its broadcast re-park would have gone. The woken
     * waiter's resume closes the window via wakeLanded().
     */
    void
    notifyOne()
    {
        if (waiters_.empty())
            return;
        telemetry::ScopedPhase phase(telemetry::HostPhase::CvWait);
        sched_->scheduleAfter(waiters_.front(), 0);
        waiters_.erase(waiters_.begin());
        wakeInFlight_ = true;
        cursor_ = 0;
    }

    /** The waiter woken by notifyOne resumed; stop front-slotting
     *  fresh parks (call on every resume from wait()). */
    void wakeLanded() { wakeInFlight_ = false; }

    bool hasWaiters() const { return !waiters_.empty(); }

  private:
    void
    park(std::coroutine_handle<> h, bool atCursor)
    {
        telemetry::ScopedPhase phase(telemetry::HostPhase::CvWait);
        size_t pos = atCursor || wakeInFlight_
                         ? std::min(cursor_, waiters_.size())
                         : waiters_.size();
        waiters_.insert(waiters_.begin() + static_cast<ptrdiff_t>(pos),
                        h);
        if (wakeInFlight_ && !atCursor)
            ++cursor_; // Fresh racers stack up in arrival order.
    }

    Scheduler *sched_ = nullptr;
    std::vector<std::coroutine_handle<>> waiters_;
    /** True between notifyOne() and the woken waiter's resume. */
    bool wakeInFlight_ = false;
    /** Front-insertion point while a wake is in flight. */
    size_t cursor_ = 0;
};

} // namespace sara::sim

#endif // SARA_SIM_TASK_H
