#ifndef SARA_SIM_TASK_H
#define SARA_SIM_TASK_H

/**
 * @file
 * Minimal coroutine runtime for the discrete-event simulator. Each
 * virtual unit executes as a Task coroutine; awaiting a condition
 * parks the coroutine on a wait list, and the scheduler resumes it
 * when the condition may have changed (spurious wakeups are allowed —
 * awaiters re-check their predicate in a loop).
 */

#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <utility>
#include <vector>

#include "support/logging.h"

namespace sara::sim {

/**
 * A coroutine task supporting nested co_await of child tasks
 * (symmetric transfer back to the parent at completion).
 */
class Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }
            void await_resume() noexcept {}
        };
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
    Task(Task &&other) noexcept : h_(std::exchange(other.h_, {})) {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h_ = std::exchange(other.h_, {});
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(h_); }
    bool done() const { return !h_ || h_.done(); }
    std::coroutine_handle<promise_type> handle() const { return h_; }

    /** Rethrow an exception captured inside the coroutine, if any. */
    void
    rethrowIfFailed() const
    {
        if (h_ && h_.promise().exception)
            std::rethrow_exception(h_.promise().exception);
    }

    /** Awaiter used when a parent task co_awaits a child task. */
    struct ChildAwaiter
    {
        std::coroutine_handle<promise_type> child;
        bool await_ready() const noexcept { return !child || child.done(); }
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }
        void
        await_resume()
        {
            if (child.promise().exception)
                std::rethrow_exception(child.promise().exception);
        }
    };
    ChildAwaiter operator co_await() const { return ChildAwaiter{h_}; }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }
    std::coroutine_handle<promise_type> h_;
};

/**
 * Discrete-event scheduler: a time-ordered queue of coroutine
 * resumptions. Same-cycle events run in insertion order.
 */
class Scheduler
{
  public:
    /** Raw callback event: fn(arg) runs at its scheduled time. */
    using EventFn = void (*)(void *);

    uint64_t now() const { return now_; }

    /** Schedule a callback at absolute time `at`. */
    void
    scheduleFnAt(EventFn fn, void *arg, uint64_t at)
    {
        SARA_ASSERT(at >= now_, "scheduling into the past");
        queue_.push(Event{at, seq_++, fn, arg});
    }

    /** Schedule `h` to resume at absolute time `at`. */
    void
    scheduleAt(std::coroutine_handle<> h, uint64_t at)
    {
        scheduleFnAt(
            [](void *p) {
                std::coroutine_handle<>::from_address(p).resume();
            },
            h.address(), at);
    }

    void
    scheduleAfter(std::coroutine_handle<> h, uint64_t delay)
    {
        scheduleAt(h, now_ + delay);
    }

    /** Run until no events remain. Returns final time. */
    uint64_t
    run(uint64_t maxCycles = UINT64_MAX)
    {
        while (!queue_.empty()) {
            Event e = queue_.top();
            queue_.pop();
            SARA_ASSERT(e.at >= now_, "time went backwards");
            now_ = e.at;
            if (now_ > maxCycles)
                fatal("simulation exceeded ", maxCycles,
                      " cycles; livelock or runaway workload");
            e.fn(e.arg);
        }
        return now_;
    }

    bool idle() const { return queue_.empty(); }

    /** Awaitable suspending the current task for `cycles`. */
    auto
    delay(uint64_t cycles)
    {
        struct Awaiter
        {
            Scheduler &sched;
            uint64_t cycles;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                sched.scheduleAfter(h, cycles);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, cycles};
    }

  private:
    struct Event
    {
        uint64_t at;
        uint64_t seq;
        EventFn fn;
        void *arg;
        bool
        operator>(const Event &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    uint64_t now_ = 0;
    uint64_t seq_ = 0;
};

/**
 * A wait list: tasks park here until notified, then re-check their
 * condition (level-triggered use: `while (!cond) co_await cv.wait()`).
 */
class CondVar
{
  public:
    explicit CondVar(Scheduler &sched) : sched_(&sched) {}
    CondVar() = default;

    void bind(Scheduler &sched) { sched_ = &sched; }

    auto
    wait()
    {
        struct Awaiter
        {
            CondVar &cv;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                cv.waiters_.push_back(h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Wake all waiters (they resume at the current time). */
    void
    notifyAll()
    {
        for (auto h : waiters_)
            sched_->scheduleAfter(h, 0);
        waiters_.clear();
    }

    bool hasWaiters() const { return !waiters_.empty(); }

  private:
    Scheduler *sched_ = nullptr;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace sara::sim

#endif // SARA_SIM_TASK_H
