#ifndef SARA_SIM_SIMULATOR_H
#define SARA_SIM_SIMULATOR_H

/**
 * @file
 * Cycle-level, functionally-exact simulator for compiled VUDFGs.
 *
 * Every virtual unit executes as a coroutine engine:
 *   - Counters open "rounds" level by level; a round at level k first
 *     resolves dynamic bounds, then reads the branch predicates bound
 *     at that level.
 *   - If any predicate mismatches, the round is *skipped*: the engine
 *     waits for its level-k CMMC gate tokens (order preservation),
 *     pops level-k inputs, re-pushes level-k outputs (tokens are
 *     forwarded — paper §III-A2b — and data re-sends the most recent
 *     value, matching sequential "last write" semantics), and consumes
 *     a single cycle. Deeper streams connect units under the same
 *     clause, which all skip together.
 *   - Otherwise the engine iterates the counter; at the innermost
 *     level each firing evaluates the local dataflow over the SIMD
 *     lanes, applies memory effects (MemPort/AG), pushes per-firing
 *     outputs and consumes >= 1 cycle (bank conflicts and port-bus
 *     contention add cycles).
 *   - When counter k wraps, level-k outputs push (reductions combine
 *     across lanes) and level-k inputs pop.
 *
 * Deadlocks (CMMC bugs, mis-leveled streams) are detected when the
 * event queue drains with unfinished engines; the report lists every
 * blocked engine and what it waits on.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfg/vudfg.h"
#include "dram/dram.h"
#include "ir/program.h"
#include "sim/fifo.h"
#include "sim/task.h"

namespace sara::sim {

/** Simulation knobs. */
struct SimOptions
{
    uint64_t maxCycles = 4'000'000'000ULL;
    /** Cap on do-while rounds (safety valve). */
    uint64_t maxWhileRounds = 1'000'000;
    /** Max outstanding DRAM requests per AG. */
    int agOutstanding = 64;
    /** When non-empty, write a Chrome-trace (chrome://tracing /
     *  Perfetto) JSON timeline of every engine firing here. */
    std::string traceFile;
};

/** Per-unit activity counters. */
struct UnitStats
{
    uint64_t firings = 0;
    uint64_t skips = 0;
    uint64_t busyCycles = 0;
    uint64_t firstFire = 0; ///< Cycle of the first firing.
    uint64_t lastFire = 0;  ///< Cycle of the last firing.
};

/** Simulation outcome and metrics. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t totalFirings = 0;
    uint64_t flops = 0; ///< Arithmetic lop-lane executions.
    // DRAM
    uint64_t dramBytes = 0;
    uint64_t dramRequests = 0;
    uint64_t dramRowHits = 0;
    double dramAchievedBytesPerCycle = 0.0;
    // Per-unit stats (indexed by VuId).
    std::vector<UnitStats> unitStats;
    double avgComputeUtilization = 0.0;
    /** Final memory contents per tensor id (reconstructed across
     *  shards; on-chip tensors read from the most recently written
     *  multibuffer copy). */
    std::vector<std::vector<double>> tensors;
};

/** Executes one compiled VUDFG against a DRAM model. */
class Simulator
{
  public:
    Simulator(const ir::Program &program, const dfg::Vudfg &graph,
              dram::DramSpec dramSpec, SimOptions options = {});
    ~Simulator();

    /** Pre-set DRAM tensor contents (defaults to zeros). */
    void setDramTensor(ir::TensorId id, std::vector<double> data);

    /** Run to completion; panics with a diagnosis on deadlock. */
    SimResult run();

  private:
    struct Engine;
    struct MemGroup;

    // Engine coroutines.
    Task runUnit(Engine &e);
    Task runLevel(Engine &e, int k);
    Task fireOnce(Engine &e);
    Task wrapActions(Engine &e, int k);
    Task skipRound(Engine &e, int k);
    Task awaitNonEmpty(Engine &e, FifoState &f, const char *why);
    Task awaitSpace(Engine &e, FifoState &f, const char *why);

    // Firing helpers.
    void evalLops(Engine &e);
    Task applyMemPort(Engine &e, uint64_t &extraCycles);
    Task applyAg(Engine &e);
    double combinedOutputValue(Engine &e, const dfg::OutputBinding &ob);
    Element perFiringElement(Engine &e, const dfg::OutputBinding &ob);

    // Memory addressing.
    std::pair<size_t, int64_t> locate(const MemGroup &g,
                                      int64_t logical) const;

    void buildState();
    [[noreturn]] void reportDeadlock();
    void collectTensors(SimResult &result);
    void recordFiring(const Engine &e, uint64_t start, uint64_t dur,
                      bool skip);
    void writeTrace() const;

    const ir::Program &p_;
    const dfg::Vudfg &g_;
    SimOptions opt_;
    Scheduler sched_;
    dram::DramModel dram_;

    struct TraceEvent
    {
        int32_t unit;
        uint64_t start;
        uint32_t dur;
        bool skip;
    };
    std::vector<TraceEvent> trace_;

    std::vector<FifoState> fifos_;
    std::vector<std::unique_ptr<Engine>> engines_;
    std::unordered_map<int32_t, MemGroup> groups_; ///< tensor id -> group.
    std::vector<std::vector<double>> dramData_;    ///< tensor id -> data.
};

} // namespace sara::sim

#endif // SARA_SIM_SIMULATOR_H
