#ifndef SARA_SIM_SIMULATOR_H
#define SARA_SIM_SIMULATOR_H

/**
 * @file
 * Cycle-level, functionally-exact simulator for compiled VUDFGs.
 *
 * Every virtual unit executes as a coroutine engine:
 *   - Counters open "rounds" level by level; a round at level k first
 *     resolves dynamic bounds, then reads the branch predicates bound
 *     at that level.
 *   - If any predicate mismatches, the round is *skipped*: the engine
 *     waits for its level-k CMMC gate tokens (order preservation),
 *     pops level-k inputs, re-pushes level-k outputs (tokens are
 *     forwarded — paper §III-A2b — and data re-sends the most recent
 *     value, matching sequential "last write" semantics), and consumes
 *     a single cycle. Deeper streams connect units under the same
 *     clause, which all skip together.
 *   - Otherwise the engine iterates the counter; at the innermost
 *     level each firing evaluates the local dataflow over the SIMD
 *     lanes, applies memory effects (MemPort/AG), pushes per-firing
 *     outputs and consumes >= 1 cycle (bank conflicts and port-bus
 *     contention add cycles).
 *   - When counter k wraps, level-k outputs push (reductions combine
 *     across lanes) and level-k inputs pop.
 *
 * Deadlocks (CMMC bugs, mis-leveled streams) are detected when the
 * event queue drains with unfinished engines; the report lists every
 * blocked engine, what it waits on, and its stall-cause histogram.
 * With SimOptions::hangDiagnosis the flat panic is replaced by a
 * wait-for-graph classification (true deadlock vs starvation vs
 * injected fault) thrown as a structured fault::HangError.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfg/vudfg.h"
#include "dram/dram.h"
#include "fault/failure.h"
#include "ir/program.h"
#include "noc/noc.h"
#include "sim/fifo.h"
#include "sim/task.h"
#include "support/counters.h"
#include "support/flight.h"
#include "support/telemetry.h"

namespace sara::sim {

/** Simulation knobs. */
struct SimOptions
{
    uint64_t maxCycles = 4'000'000'000ULL;
    /** Cap on do-while rounds (safety valve). */
    uint64_t maxWhileRounds = 1'000'000;
    /** Max outstanding DRAM requests per AG. */
    int agOutstanding = 64;
    /** Route streams through the cycle-level NoC model (src/noc)
     *  instead of the fixed per-stream latency stamped by PnR. Off by
     *  default: the legacy fixed-latency model stays the baseline. */
    bool useNoc = false;
    /** Network parameters for `useNoc` (filled from the chip's
     *  arch::NetSpec by the runtime layer). */
    noc::NocSpec noc;
    /** When non-empty, write a Chrome-trace (chrome://tracing /
     *  Perfetto) JSON timeline of every engine firing here. The trace
     *  is also flushed on deadlock, so the evidence survives the
     *  panic. */
    std::string traceFile;
    /** Compile-phase spans to merge into the trace timeline (one
     *  unified file per run); may be null. Not owned — must outlive
     *  the simulator. */
    const std::vector<telemetry::Span> *compileSpans = nullptr;
    /** Fault injector driving the seeded fault models (NoC flit
     *  delay/duplication, stuck link credits, DRAM timeouts and tail
     *  spikes, FIFO credit leaks). Null — the default — compiles every
     *  injection point down to a pointer check: runs without an
     *  injector are cycle-identical to builds without the subsystem.
     *  Not owned; must outlive the simulator. */
    const fault::FaultInjector *fault = nullptr;
    /** On a hang, build the wait-for graph over tokens, credits, FIFO
     *  slots and NoC link reservations, classify deadlock vs
     *  starvation vs injected fault, and throw a structured
     *  fault::HangError instead of the flat deadlock panic. */
    bool hangDiagnosis = false;
    /** Targeted wakeups: notifyOne on single-waiter FIFO/NoC condition
     *  variables and predicate-gated AG-drain notifies, instead of
     *  broadcast notifyAll. Cycle-identical either way (asserted by
     *  the CycleIdentity goldens); the broadcast baseline is kept so
     *  the perf harness can A/B the spurious-wakeup ratio. */
    bool targetedWakeups = true;
    /** Core-grid dimensions for the per-unit counter file and the
     *  `--counters` heatmap (filled from arch::PlasticineSpec by the
     *  runtime layer; fringe AGs sit at x = -1 / x = fabricCols). */
    int fabricRows = 20;
    int fabricCols = 20;
    /** Flight-recorder depth: how many recent scheduler/wakeup/link
     *  events the ring buffer retains for the failure-report timeline.
     *  0 disables recording. */
    size_t flightDepth = 256;
    /** External cancellation flag, polled once per simulated cycle.
     *  When it goes true the run stops and throws a HangError whose
     *  FailureReport carries `cancelled` (the daemon watchdog uses
     *  this to cancel a request that blew its wall-clock deadline
     *  without killing the worker thread). Not owned; may be null.
     *  Region-parallel runs poll it on every region thread. */
    const std::atomic<bool> *cancel = nullptr;
    /** Region-parallel execution: partition the fabric into up to this
     *  many regions, each driven by its own calendar queue on its own
     *  host thread, synchronized by a conservative time-quantum
     *  barrier (quantum = min cross-region stream latency). 1 — the
     *  default — is the sequential core. Parallel runs are
     *  cycle-identical to sequential by construction; runs that cannot
     *  honor that contract up front (NoC model, fault injection,
     *  tracing, indivisible graphs) fall back to the sequential core,
     *  as do runs whose speculation hits a cross-region credit
     *  conflict mid-flight (SimResult::parallelFallback). */
    int simThreads = 1;
    /** Testing hook: cap the barrier quantum (0 = derived from the
     *  minimum cut-stream latency). A cap of 1 barriers every cycle —
     *  the worst case the determinism argument must still survive. */
    uint64_t maxQuantum = 0;
};

/**
 * Why an engine spent a blocked cycle (paper Fig. 9-11 cycle
 * accounting). Every cycle an engine is neither firing nor finished
 * is attributed to exactly one cause.
 */
enum class StallCause : uint8_t {
    InputData,     ///< Operand/bound/predicate data not yet arrived.
    CmmcToken,     ///< Waiting on a CMMC order/gate token.
    Credit,        ///< Downstream FIFO full (backpressure).
    DramLatency,   ///< DRAM outstanding window full or write drain.
    BankConflict,  ///< Serialized lanes colliding on a PMU bank.
    BusContention, ///< PMU read/write port bus busy.
    Network,       ///< NoC first-hop link buffer full (contention).
};
inline constexpr int kNumStallCauses = 7;

const char *stallCauseName(StallCause cause);

/**
 * Condition-variable classes for wakeup accounting: every coroutine
 * wakeup (and its spurious subset) is attributed to the kind of CV it
 * landed on, so the run report can show *which* wait sites pay the
 * thundering-herd cost — the per-class breakdown behind the aggregate
 * SimResult::wakeups / spuriousWakeups.
 */
enum class WakeClass : uint8_t {
    FifoData,  ///< Consumer-side data/token arrival (FifoState::dataCv).
    FifoSpace, ///< Producer-side credit return (FifoState::spaceCv).
    NocInject, ///< NoC first-hop link-slot grant (injectCv).
    Dram,      ///< AG outstanding-window / write-drain completion.
};
inline constexpr int kNumWakeClasses = 4;

const char *wakeClassName(WakeClass cls);

/** Per-unit activity counters. */
struct UnitStats
{
    uint64_t firings = 0;
    uint64_t skips = 0;
    uint64_t busyCycles = 0;
    /** DRAM/PMU bytes this unit moved (AG bursts, MemPort lanes). */
    uint64_t bytesMoved = 0;
    uint64_t firstFire = 0; ///< Cycle of the first firing.
    uint64_t lastFire = 0;  ///< Cycle of the last firing.
    uint64_t doneAt = 0;    ///< Cycle the engine finished all rounds.
    /** Blocked cycles by cause; busyCycles + sum(stallCycles) ==
     *  doneAt, and doneAt + idle-after-done == total cycles. */
    std::array<uint64_t, kNumStallCauses> stallCycles{};

    uint64_t
    stallTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t c : stallCycles)
            sum += c;
        return sum;
    }
};

/** Per-stream FIFO pressure statistics. */
struct FifoStats
{
    std::string name;
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t highWater = 0; ///< Max occupancy incl. in-flight elements.
    uint64_t capacity = 0;  ///< depth + latency credit window.
};

/** Simulation outcome and metrics. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t totalFirings = 0;
    uint64_t flops = 0; ///< Arithmetic lop-lane executions.
    // DRAM
    uint64_t dramBytes = 0;
    uint64_t dramRequests = 0;
    uint64_t dramRowHits = 0;
    double dramAchievedBytesPerCycle = 0.0;
    // Per-unit stats (indexed by VuId).
    std::vector<UnitStats> unitStats;
    double avgComputeUtilization = 0.0;
    /** Aggregate blocked cycles by cause across all engines. */
    std::array<uint64_t, kNumStallCauses> stallTotals{};
    /** Per-stream pressure (indexed by StreamId). */
    std::vector<FifoStats> fifoStats;
    /** Sampled DRAM telemetry: outstanding requests across all AGs,
     *  and cumulative bytes transferred (both vs. cycle). */
    telemetry::TimeSeries dramOutstanding;
    telemetry::TimeSeries dramBytesSeries;
    /** Network statistics (enabled=false on fixed-latency runs). */
    noc::NocStats noc;
    /** Final memory contents per tensor id (reconstructed across
     *  shards; on-chip tensors read from the most recently written
     *  multibuffer copy). */
    std::vector<std::vector<double>> tensors;
    /** Host-side event-core counters (wall-clock throughput metrics,
     *  not simulated time): scheduler events executed, coroutine
     *  wakeups, and the subset of wakeups whose predicate was still
     *  false on resume (spurious — the thundering-herd cost). */
    uint64_t hostEvents = 0;
    uint64_t wakeups = 0;
    uint64_t spuriousWakeups = 0;
    /** Wakeups (and the spurious subset) broken down by CV class —
     *  sums over the classes equal the aggregates above. */
    std::array<uint64_t, kNumWakeClasses> wakeupsByClass{};
    std::array<uint64_t, kNumWakeClasses> spuriousByClass{};
    /** Per-unit performance-counter dump (engines + router cells).
     *  Per-cause stall sums over all blocks reconcile exactly with
     *  `stallTotals` (asserted in tests/test_counters.cc). */
    telemetry::CounterFile counters;
    /** Region-parallel execution metrics (sequential runs: threads =
     *  regions = 1, quanta = 0). `simThreads` is the *effective*
     *  thread count — it can be lower than requested when the graph
     *  yields fewer clusters, and 1 after a fallback. */
    int simThreads = 1;
    int simRegions = 1;
    /** Barrier quanta executed by the parallel core. */
    uint64_t quanta = 0;
    /** Fraction of region-thread wall time spent at the quantum
     *  barrier (sync overhead; 0 for sequential runs). */
    double barrierWaitRatio = 0.0;
    /** A parallel run was requested but the sequential core ran —
     *  either ineligible up front (NoC / fault injection / tracing /
     *  indivisible graph) or a cross-region credit conflict aborted
     *  the speculative attempt. */
    bool parallelFallback = false;
    std::string fallbackReason;
};

/** Executes one compiled VUDFG against a DRAM model. */
class Simulator
{
  public:
    Simulator(const ir::Program &program, const dfg::Vudfg &graph,
              dram::DramSpec dramSpec, SimOptions options = {});
    ~Simulator();

    /** Pre-set DRAM tensor contents (defaults to zeros). */
    void setDramTensor(ir::TensorId id, std::vector<double> data);

    /** Run to completion; panics with a diagnosis on deadlock. */
    SimResult run();

  private:
    struct Engine;
    struct MemGroup;
    struct Region;

    // Engine coroutines.
    Task runUnit(Engine &e);
    Task runLevel(Engine &e, int k);
    Task fireOnce(Engine &e);
    Task wrapActions(Engine &e, int k);
    Task skipRound(Engine &e, int k);
    Task awaitNonEmpty(Engine &e, FifoState &f, StallCause cause,
                       const char *why);
    Task awaitSpace(Engine &e, FifoState &f, StallCause cause,
                    const char *why);

    // Firing helpers.
    void evalLops(Engine &e);
    Task applyMemPort(Engine &e, uint64_t &extraCycles);
    Task applyAg(Engine &e);
    double combinedOutputValue(Engine &e, const dfg::OutputBinding &ob);
    Element perFiringElement(Engine &e, const dfg::OutputBinding &ob);

    // Memory addressing.
    std::pair<size_t, int64_t> locate(const MemGroup &g,
                                      int64_t logical) const;

    // Canonical end-of-cycle arbitration: same-cycle DRAM accesses and
    // PMU port-bus requests are staged during the cycle and resolved
    // in unit-id order once the cycle's events drain (a deterministic
    // hardware arbiter). Simulated timing therefore depends only on
    // the dependency graph, never on host event order — the invariant
    // the region-parallel core needs for cycle identity. Staging is
    // per-region; DRAM requests only ever stage in the region holding
    // every AG (the partitioner co-locates them with the DRAM model).
    static void armArbiter(Region &r);
    static void arbTrampoline(void *arg);
    void resolveArbitration(Region &r);

    // Region-parallel execution (SimOptions::simThreads > 1).
    /** Cluster units (co-locating AGs + DRAM, each memory group, and
     *  latency-1 couples), pack clusters into <= `threads` regions,
     *  split cut streams into mailbox mode, and derive the barrier
     *  quantum. False when the graph yields < 2 clusters — the caller
     *  falls back to the sequential core. */
    bool partitionRegions(int threads);
    /** Run the quantum-barrier loop across region threads. True: run
     *  completed (or was cancelled — that throws from inside).
     *  False: the attempt aborted (credit conflict, engine fault,
     *  hang, budget) — the caller rebuilds pristine state and re-runs
     *  on the sequential core, which reproduces the outcome
     *  bit-identically through the battle-tested reporting paths. */
    bool tryRunParallel(SimResult &result);
    /** Tear down all runtime state (engines, fifos, schedulers,
     *  regions, DRAM timing) and rebuild it as freshly constructed,
     *  restoring the caller-provided initial DRAM tensor images. Used
     *  both between speculative attempts (with new `colocate_` pins
     *  learned from the conflict) and before the sequential retry. */
    void rebuildRuntimeState(std::vector<std::vector<double>> initialDram);
    /** Merge per-region flight rings into flight_ ordered by
     *  (cycle, region, ring index) — the (at, seq) merge that keeps
     *  FailureReport timelines ordered under --sim-threads > 1. */
    void mergeRegionFlight();
    /** Shared tail of run(): assemble the SimResult from engine /
     *  fifo / DRAM / region state. */
    SimResult assembleResult(uint64_t end);

    void buildState();
    [[noreturn]] void reportHang();
    [[noreturn]] void reportBudgetExceeded();
    [[noreturn]] void reportCancelled();
    std::vector<fault::WaitNode> buildWaitGraph() const;
    void collectTensors(SimResult &result);
    /** Per-wakeup bookkeeping: aggregate + per-class tallies and a
     *  flight-recorder Wake event. */
    void noteWake(Engine &e, WakeClass cls, bool spurious);
    /** Assemble the per-unit CounterFile (engine blocks from
     *  UnitStats, router blocks from the NoC link stats). */
    void buildCounters(SimResult &result) const;
    /** Format the flight-recorder ring into `fr.timeline`. */
    void buildTimeline(fault::FailureReport &fr) const;
    void recordFiring(const Engine &e, uint64_t start, uint64_t dur,
                      bool skip);
    void sampleDram();
    void writeTrace(const fault::FailureReport *failure = nullptr) const;

    const ir::Program &p_;
    const dfg::Vudfg &g_;
    SimOptions opt_;
    Scheduler sched_;
    dram::DramModel dram_;
    std::unique_ptr<noc::NocModel> noc_; ///< Non-null when useNoc.

    /** DRAM requests in flight across every AG (telemetry; only the
     *  AG region's thread touches it). */
    int dramOutstanding_ = 0;
    /** Execution regions. Always at least one: region 0 aliases the
     *  members below (sched_, pool_, flight_) so the sequential core
     *  runs exactly as before; parallel regions 1..R-1 own their
     *  scheduler / pool / flight ring. Wakeup and arbitration staging
     *  state lives per region (see Region). */
    std::vector<std::unique_ptr<Region>> regions_;
    /** Streams whose endpoints straddle regions, StreamId order. */
    std::vector<FifoState *> cutFifos_;
    /** Unit pairs the partitioner must co-locate, learned from cut
     *  conflicts: a stream that filled its credit window once will
     *  exert backpressure again, and backpressure needs the
     *  sequential core's same-cycle credit return. */
    std::vector<std::pair<int32_t, int32_t>> colocate_;
    /** Conservative barrier quantum (min cut-stream latency). */
    uint64_t quantum_ = 0;
    /** A producer ran out of local credits on a cut stream: the
     *  speculative parallel attempt has diverged — abort and fall
     *  back (set from region threads, read at the barrier). */
    std::atomic<bool> cutConflict_{false};
    /** Sequential-fallback bookkeeping for SimResult. */
    bool fallback_ = false;
    std::string fallbackReason_;
    /** Last-N scheduler/wakeup/link events for failure timelines. */
    telemetry::FlightRecorder flight_{0};
    /** Cumulative firings per fabric region (4x4 region grid), sampled
     *  on every firing for the Chrome-trace counter tracks. Only
     *  populated when tracing (same gate as trace_). */
    std::array<telemetry::TimeSeries, 16> regionSeries_;
    std::array<uint64_t, 16> regionFirings_{};
    /** Recycled Element lane buffers for the fire path. */
    ElementPool pool_;
    telemetry::TimeSeries dramOutstandingSeries_{4096, 8};
    telemetry::TimeSeries dramBytesSeries_{4096, 8};

    struct TraceEvent
    {
        int32_t unit;
        uint64_t start;
        uint32_t dur;
        bool skip;
    };
    std::vector<TraceEvent> trace_;

    std::vector<FifoState> fifos_;
    std::vector<std::unique_ptr<Engine>> engines_;
    std::unordered_map<int32_t, MemGroup> groups_; ///< tensor id -> group.
    std::vector<std::vector<double>> dramData_;    ///< tensor id -> data.
};

} // namespace sara::sim

#endif // SARA_SIM_SIMULATOR_H
