/**
 * @file
 * Deep-learning workloads (paper Table IV): single-batch mlp, an LSTM
 * cell unrolled over time, and snet — a SqueezeNet-style conv layer
 * lowered im2col + GEMM, the standard RDA mapping.
 */

#include <algorithm>

#include "workloads/common.h"

namespace sara::workloads {

namespace {

/**
 * One dense layer: out[o] = act(sum_i w[o*in+i] * x[i] + b[o]).
 * Weights live on-chip (wbuf), loaded earlier. The o-loop carries the
 * outer par; the dot product vectorizes.
 */
void
emitDense(Builder &b, TensorId wbuf, TensorId bbuf, TensorId xbuf,
          TensorId ybuf, int64_t inDim, int64_t outDim, ParSplit par,
          OpKind act, const std::string &name)
{
    auto o = b.beginLoop(name + "_o", 0, outDim, 1, par.outer);
    auto i = b.beginLoop(name + "_i", 0, inDim, 1, par.inner);
    b.beginBlock(name + "_mac");
    auto w = b.read(wbuf, b.add(b.mul(b.iter(o), b.cst(double(inDim))),
                                b.iter(i)));
    auto x = b.read(xbuf, b.iter(i));
    auto sum = b.reduce(OpKind::RedAdd, b.mul(w, x), i);
    b.endBlock();
    b.endLoop();
    b.beginBlock(name + "_act");
    auto biased = b.add(sum, b.read(bbuf, b.iter(o)));
    b.write(ybuf, b.iter(o), b.unary(act, biased));
    b.endBlock();
    b.endLoop();
}

} // namespace

Workload
buildMlp(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "mlp";
    w.computeBound = true;
    Rng rng(cfg.seed);

    // A stream of single-sample inferences over resident weights: the
    // paper's "single-batch mlp" scalability subject (no trivial
    // data-level parallelism inside one inference; samples pipeline
    // through the layers via hierarchical pipelining).
    const int64_t in = 128;
    const int64_t h1 = 128;
    const int64_t h2 = 64;
    const int64_t out = 32;
    const int64_t samples = 16 * cfg.scale;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dW1 = p.addTensor("dW1", MemSpace::Dram, in * h1);
    auto dW2 = p.addTensor("dW2", MemSpace::Dram, h1 * h2);
    auto dW3 = p.addTensor("dW3", MemSpace::Dram, h2 * out);
    auto dB = p.addTensor("dB", MemSpace::Dram, h1 + h2 + out);
    auto dX = p.addTensor("dX", MemSpace::Dram, samples * in);
    auto dY = p.addTensor("dY", MemSpace::Dram, samples * out);

    auto w1 = p.addTensor("w1", MemSpace::OnChip, in * h1);
    auto w2 = p.addTensor("w2", MemSpace::OnChip, h1 * h2);
    auto w3 = p.addTensor("w3", MemSpace::OnChip, h2 * out);
    auto b1 = p.addTensor("b1", MemSpace::OnChip, h1);
    auto b2 = p.addTensor("b2", MemSpace::OnChip, h2);
    auto b3 = p.addTensor("b3", MemSpace::OnChip, out);
    auto xb = p.addTensor("xb", MemSpace::OnChip, in);
    auto h1b = p.addTensor("h1b", MemSpace::OnChip, h1);
    auto h2b = p.addTensor("h2b", MemSpace::OnChip, h2);
    auto yb = p.addTensor("yb", MemSpace::OnChip, out);

    emitLoad(b, dW1, w1, in * h1, 0, loadPar, "ldw1");
    emitLoad(b, dW2, w2, h1 * h2, 0, loadPar, "ldw2");
    emitLoad(b, dW3, w3, h2 * out, 0, loadPar, "ldw3");
    emitLoad(b, dB, b1, h1, 0, loadPar, "ldb1");
    emitLoad(b, dB, b2, h2, h1, loadPar, "ldb2");
    emitLoad(b, dB, b3, out, h1 + h2, loadPar, "ldb3");

    auto sLoop = b.beginLoop("sample", 0, samples);
    {
        // Stream this sample's activations in.
        auto l = b.beginLoop("ldx", 0, in, 1, 16);
        b.beginBlock("ldx_b");
        auto addr = b.add(b.mul(b.iter(sLoop), b.cst(double(in))),
                          b.iter(l));
        b.write(xb, b.iter(l), b.read(dX, addr));
        b.endBlock();
        b.endLoop();

        emitDense(b, w1, b1, xb, h1b, in, h1, par, OpKind::Relu, "l1");
        emitDense(b, w2, b2, h1b, h2b, h1, h2, par, OpKind::Relu, "l2");
        emitDense(b, w3, b3, h2b, yb, h2, out,
                  splitPar(std::min<int>(cfg.par, 32)), OpKind::Tanh,
                  "l3");

        auto st = b.beginLoop("sty", 0, out, 1, 16);
        b.beginBlock("sty_b");
        auto yaddr = b.add(b.mul(b.iter(sLoop), b.cst(double(out))),
                           b.iter(st));
        b.write(dY, yaddr, b.read(yb, b.iter(st)));
        b.endBlock();
        b.endLoop();
    }
    b.endLoop();

    w.dramInputs[dW1.v] = randomData(rng, in * h1, -0.5, 0.5);
    w.dramInputs[dW2.v] = randomData(rng, h1 * h2, -0.5, 0.5);
    w.dramInputs[dW3.v] = randomData(rng, h2 * out, -0.5, 0.5);
    w.dramInputs[dB.v] = randomData(rng, h1 + h2 + out, -0.1, 0.1);
    w.dramInputs[dX.v] = randomData(rng, samples * in, -1.0, 1.0);

    w.nominalFlops = 2.0 * samples *
                     (double(in) * h1 + double(h1) * h2 +
                      double(h2) * out);
    w.elements = static_cast<double>(samples * out);
    return w;
}

Workload
buildLstm(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "lstm";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t hidden = 64 * cfg.scale;
    const int64_t in = 64 * cfg.scale;
    const int64_t cat = in + hidden;
    const int64_t steps = 4;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    // Four gate weight matrices, concatenated rows: [i; f; g; o].
    auto dW = p.addTensor("dW", MemSpace::Dram, 4 * hidden * cat);
    auto dX = p.addTensor("dX", MemSpace::Dram, steps * in);
    auto dH = p.addTensor("dH", MemSpace::Dram, hidden);

    auto wb = p.addTensor("wb", MemSpace::OnChip, 4 * hidden * cat);
    auto xb = p.addTensor("xb", MemSpace::OnChip, steps * in);
    auto catb = p.addTensor("catb", MemSpace::OnChip, cat);
    auto hb = p.addTensor("hb", MemSpace::OnChip, hidden);
    auto cb = p.addTensor("cb", MemSpace::OnChip, hidden);

    emitLoad(b, dW, wb, 4 * hidden * cat, 0, loadPar, "ldw");
    emitLoad(b, dX, xb, steps * in, 0, loadPar, "ldx");

    auto t = b.beginLoop("t", 0, steps);
    {
        // Build [x_t ; h_{t-1}].
        auto j = b.beginLoop("cat_j", 0, cat, 1, 1);
        b.beginBlock("cat_b");
        auto isX = b.binary(OpKind::CmpLt, b.iter(j), b.cst(double(in)));
        auto xa = b.add(b.mul(b.iter(t), b.cst(double(in))),
                        b.binary(OpKind::Min, b.iter(j),
                                 b.cst(double(in - 1))));
        auto ha = b.binary(OpKind::Max,
                           b.sub(b.iter(j), b.cst(double(in))),
                           b.cst(0.0));
        auto xv = b.read(xb, xa);
        auto hv = b.read(hb, ha);
        b.write(catb, b.iter(j), b.select(isX, xv, hv));
        b.endBlock();
        b.endLoop();

        // Gates + state update per output element.
        auto o = b.beginLoop("o", 0, hidden, 1, par.outer);
        auto jj = b.beginLoop("jj", 0, cat, 1, par.inner);
        b.beginBlock("gates");
        auto cv = b.read(catb, b.iter(jj));
        auto base = b.mul(b.iter(o), b.cst(double(cat)));
        auto stride = b.cst(double(hidden * cat));
        auto wi = b.read(wb, b.add(base, b.iter(jj)));
        auto wf = b.read(wb, b.add(b.add(base, stride), b.iter(jj)));
        auto wg = b.read(
            wb, b.add(b.add(base, b.mul(stride, b.cst(2.0))), b.iter(jj)));
        auto wo = b.read(
            wb, b.add(b.add(base, b.mul(stride, b.cst(3.0))), b.iter(jj)));
        auto si = b.reduce(OpKind::RedAdd, b.mul(wi, cv), jj);
        auto sf = b.reduce(OpKind::RedAdd, b.mul(wf, cv), jj);
        auto sg = b.reduce(OpKind::RedAdd, b.mul(wg, cv), jj);
        auto so = b.reduce(OpKind::RedAdd, b.mul(wo, cv), jj);
        b.endBlock();
        b.endLoop();
        b.beginBlock("update");
        auto ig = b.unary(OpKind::Sigmoid, si);
        auto fg = b.unary(OpKind::Sigmoid, sf);
        auto gg = b.unary(OpKind::Tanh, sg);
        auto og = b.unary(OpKind::Sigmoid, so);
        auto cOld = b.read(cb, b.iter(o));
        auto cNew = b.mac(ig, gg, b.mul(fg, cOld));
        b.write(cb, b.iter(o), cNew);
        b.write(hb, b.iter(o), b.mul(og, b.unary(OpKind::Tanh, cNew)));
        b.endBlock();
        b.endLoop();
    }
    b.endLoop();
    emitStore(b, hb, dH, hidden, 0, loadPar, "sth");

    w.dramInputs[dW.v] = randomData(rng, 4 * hidden * cat, -0.3, 0.3);
    w.dramInputs[dX.v] = randomData(rng, steps * in, -1.0, 1.0);
    w.nominalFlops = 2.0 * steps * 4.0 * double(hidden) * cat;
    w.elements = static_cast<double>(steps * hidden);
    return w;
}

Workload
buildSnet(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "snet";
    w.computeBound = true;
    Rng rng(cfg.seed);

    // One fire-style 3x3 conv stage, im2col + GEMM lowering.
    const int64_t C = 8, K = 8 * cfg.scale;
    const int64_t H = 10, W = 10;
    const int64_t Hp = H + 2, Wp = W + 2; // Padded input.
    const int64_t patch = C * 9;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dIn = p.addTensor("dIn", MemSpace::Dram, C * Hp * Wp);
    auto dWt = p.addTensor("dWt", MemSpace::Dram, K * patch);
    auto dOut = p.addTensor("dOut", MemSpace::Dram, K * H * W);

    auto inb = p.addTensor("inb", MemSpace::OnChip, C * Hp * Wp);
    auto wtb = p.addTensor("wtb", MemSpace::OnChip, K * patch);
    auto colb = p.addTensor("colb", MemSpace::OnChip, H * W * patch);
    auto outb = p.addTensor("outb", MemSpace::OnChip, K * H * W);

    emitLoad(b, dIn, inb, C * Hp * Wp, 0, loadPar, "ldin");
    emitLoad(b, dWt, wtb, K * patch, 0, loadPar, "ldwt");

    // im2col: colb[(y*W + x)*patch + (c*9 + dy*3 + dx)] =
    //         inb[c*Hp*Wp + (y+dy)*Wp + (x+dx)]   (all-affine).
    {
        auto y = b.beginLoop("cy", 0, H);
        auto x = b.beginLoop("cx", 0, W);
        auto c = b.beginLoop("cc", 0, C);
        auto dy = b.beginLoop("cdy", 0, 3);
        auto dx = b.beginLoop("cdx", 0, 3, 1, 3);
        b.beginBlock("col_b");
        auto src = b.add(
            b.add(b.mul(b.iter(c), b.cst(double(Hp * Wp))),
                  b.mul(b.add(b.iter(y), b.iter(dy)),
                        b.cst(double(Wp)))),
            b.add(b.iter(x), b.iter(dx)));
        auto dst = b.add(
            b.add(b.mul(b.add(b.mul(b.iter(y), b.cst(double(W))),
                              b.iter(x)),
                        b.cst(double(patch))),
                  b.add(b.mul(b.iter(c), b.cst(9.0)),
                        b.mul(b.iter(dy), b.cst(3.0)))),
            b.iter(dx));
        b.write(colb, dst, b.read(inb, src));
        b.endBlock();
        b.endLoop();
        b.endLoop();
        b.endLoop();
        b.endLoop();
        b.endLoop();
    }

    // GEMM: out[k, p] = relu(sum_q wt[k*patch+q] * col[p*patch+q]).
    {
        auto k = b.beginLoop("gk", 0, K, 1, par.outer);
        auto pp = b.beginLoop("gp", 0, H * W);
        auto q = b.beginLoop("gq", 0, patch, 1, par.inner);
        b.beginBlock("gemm");
        auto wt = b.read(wtb, b.add(b.mul(b.iter(k),
                                          b.cst(double(patch))),
                                    b.iter(q)));
        auto cv = b.read(colb, b.add(b.mul(b.iter(pp),
                                           b.cst(double(patch))),
                                     b.iter(q)));
        auto acc = b.reduce(OpKind::RedAdd, b.mul(wt, cv), q);
        b.endBlock();
        b.endLoop();
        b.beginBlock("relu");
        auto addr = b.add(b.mul(b.iter(k), b.cst(double(H * W))),
                          b.iter(pp));
        b.write(outb, addr, b.unary(OpKind::Relu, acc));
        b.endBlock();
        b.endLoop();
        b.endLoop();
    }
    emitStore(b, outb, dOut, K * H * W, 0, loadPar, "stout");

    w.dramInputs[dIn.v] = randomData(rng, C * Hp * Wp, -1.0, 1.0);
    w.dramInputs[dWt.v] = randomData(rng, K * patch, -0.3, 0.3);
    w.nominalFlops = 2.0 * double(K) * H * W * patch;
    w.elements = static_cast<double>(K * H * W);
    return w;
}

} // namespace sara::workloads
