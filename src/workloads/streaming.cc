/**
 * @file
 * Graph and streaming workloads (paper Table IV / Table VI): PageRank
 * over a synthetic CSR graph (dynamic bounds + gathers), Black-Scholes
 * (deep arithmetic pipeline — exercises compute partitioning), odd-even
 * transposition sort (ping-pong buffers), random-forest inference
 * (chained data-dependent gathers -> request/response stratification),
 * and a streaming windowed-sum filter (ms).
 */

#include <cmath>

#include <algorithm>

#include "workloads/common.h"

namespace sara::workloads {

Workload
buildPr(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "pr";
    w.computeBound = false; // Bandwidth/gather bound.
    Rng rng(cfg.seed);

    const int64_t V = 192 * cfg.scale;
    const int64_t maxDeg = 12;
    const int iters = 2;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    // Synthetic CSR graph (preferential-attachment-ish degrees).
    std::vector<double> offs(V + 1), nbrs;
    for (int64_t v = 0; v < V; ++v) {
        offs[v] = static_cast<double>(nbrs.size());
        int64_t deg = rng.intIn(1, maxDeg);
        for (int64_t e = 0; e < deg; ++e) {
            // Bias toward low ids (hubs).
            int64_t u = rng.intIn(0, V - 1);
            u = std::min(u, rng.intIn(0, V - 1));
            nbrs.push_back(static_cast<double>(u));
        }
    }
    offs[V] = static_cast<double>(nbrs.size());
    const int64_t E = static_cast<int64_t>(nbrs.size());
    std::vector<double> outDeg(V, 0.0);
    for (double u : nbrs)
        outDeg[static_cast<int64_t>(u)] += 1.0;
    std::vector<double> invDeg(V);
    for (int64_t v = 0; v < V; ++v)
        invDeg[v] = outDeg[v] > 0 ? 1.0 / outDeg[v] : 0.0;

    Program &p = w.program;
    Builder b(p);
    auto dOffs = p.addTensor("dOffs", MemSpace::Dram, V + 1);
    auto dNbr = p.addTensor("dNbr", MemSpace::Dram, E);
    auto dInv = p.addTensor("dInv", MemSpace::Dram, V);
    auto dRank = p.addTensor("dRank", MemSpace::Dram, V);

    auto offsb = p.addTensor("offsb", MemSpace::OnChip, V + 1);
    auto nbrb = p.addTensor("nbrb", MemSpace::OnChip, E);
    auto invb = p.addTensor("invb", MemSpace::OnChip, V);
    auto rankA = p.addTensor("rankA", MemSpace::OnChip, V);
    auto rankB = p.addTensor("rankB", MemSpace::OnChip, V);

    emitLoad(b, dOffs, offsb, V + 1, 0, loadPar, "ldo");
    emitLoad(b, dNbr, nbrb, E, 0, loadPar, "ldn");
    emitLoad(b, dInv, invb, V, 0, loadPar, "ldi");
    // Initial rank = 1/V.
    {
        auto l = b.beginLoop("init", 0, V, 1, 16);
        b.beginBlock("init_b");
        b.write(rankA, b.iter(l), b.cst(1.0 / V));
        b.endBlock();
        b.endLoop();
    }

    TensorId src = rankA, dst = rankB;
    for (int it = 0; it < iters; ++it) {
        std::string tag = "pr" + std::to_string(it);
        auto v = b.beginLoop(tag + "_v", 0, V, 1, par.outer);
        b.beginBlock(tag + "_bounds");
        auto start = b.read(offsb, b.iter(v));
        auto end = b.read(offsb, b.add(b.iter(v), b.cst(1.0)));
        b.endBlock();
        auto e = b.beginLoopDyn(tag + "_e", Bound::dynamic(start),
                                Bound::dynamic(end), Bound(1));
        b.beginBlock(tag + "_gather");
        auto nid = b.read(nbrb, b.iter(e));
        auto contrib = b.mul(b.read(src, nid), b.read(invb, nid));
        auto sum = b.reduce(OpKind::RedAdd, contrib, e);
        b.endBlock();
        b.endLoop();
        b.beginBlock(tag + "_wr");
        b.write(dst, b.iter(v),
                b.add(b.cst(0.15 / V), b.mul(b.cst(0.85), sum)));
        b.endBlock();
        b.endLoop();
        std::swap(src, dst);
    }
    emitStore(b, src, dRank, V, 0, loadPar, "str");

    w.dramInputs[dOffs.v] = offs;
    w.dramInputs[dNbr.v] = nbrs;
    w.dramInputs[dInv.v] = invDeg;
    w.nominalFlops = double(iters) * (2.0 * E + 3.0 * V);
    w.elements = static_cast<double>(E * iters);
    return w;
}

Workload
buildBs(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "bs";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 512 * cfg.scale;
    ParSplit par = splitPar(cfg.par);

    Program &p = w.program;
    Builder b(p);
    auto dS = p.addTensor("dS", MemSpace::Dram, N);
    auto dK = p.addTensor("dK", MemSpace::Dram, N);
    auto dT = p.addTensor("dT", MemSpace::Dram, N);
    auto dCall = p.addTensor("dCall", MemSpace::Dram, N);
    auto dPut = p.addTensor("dPut", MemSpace::Dram, N);

    // Fully streaming: one deep hyperblock per option, parallelized
    // across lanes and spatial clones. The ~30-op datapath overflows a
    // single PCU and must be partitioned (paper §III-B1).
    const double r = 0.02, sigma = 0.25;
    auto i = b.beginLoop("opt", 0, N, 1, cfg.par);
    b.beginBlock("bs_b");
    auto S = b.read(dS, b.iter(i));
    auto K = b.read(dK, b.iter(i));
    auto T = b.read(dT, b.iter(i));
    auto sqrtT = b.unary(OpKind::Sqrt, T);
    auto sigSqrtT = b.mul(b.cst(sigma), sqrtT);
    auto lnSK = b.unary(OpKind::Log, b.div(S, K));
    auto num = b.add(lnSK,
                     b.mul(b.cst(r + 0.5 * sigma * sigma), T));
    auto d1 = b.div(num, sigSqrtT);
    auto d2 = b.sub(d1, sigSqrtT);
    // Logistic approximation of the normal CDF:
    // N(x) ~= sigmoid(1.702 x).
    auto nd1 = b.unary(OpKind::Sigmoid, b.mul(d1, b.cst(1.702)));
    auto nd2 = b.unary(OpKind::Sigmoid, b.mul(d2, b.cst(1.702)));
    auto nmd1 = b.sub(b.cst(1.0), nd1);
    auto nmd2 = b.sub(b.cst(1.0), nd2);
    auto disc = b.unary(OpKind::Exp, b.mul(b.cst(-r), T));
    auto Kdisc = b.mul(K, disc);
    auto call = b.sub(b.mul(S, nd1), b.mul(Kdisc, nd2));
    auto put = b.sub(b.mul(Kdisc, nmd2), b.mul(S, nmd1));
    b.write(dCall, b.iter(i), call);
    b.write(dPut, b.iter(i), put);
    b.endBlock();
    b.endLoop();
    (void)par;

    w.dramInputs[dS.v] = randomData(rng, N, 20.0, 120.0);
    w.dramInputs[dK.v] = randomData(rng, N, 20.0, 120.0);
    w.dramInputs[dT.v] = randomData(rng, N, 0.1, 2.0);
    w.nominalFlops = 30.0 * N;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildSort(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "sort";
    w.computeBound = false;
    Rng rng(cfg.seed);

    const int64_t N = 64 * cfg.scale;
    ParSplit par = splitPar(std::min(cfg.par, 16));
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dIn = p.addTensor("dIn", MemSpace::Dram, N);
    auto dOut = p.addTensor("dOut", MemSpace::Dram, N);
    auto A = p.addTensor("bufA", MemSpace::OnChip, N);
    auto B = p.addTensor("bufB", MemSpace::OnChip, N);

    emitLoad(b, dIn, A, N, 0, loadPar, "ldin");

    // Odd-even transposition sort: N statically emitted ping-pong
    // passes. dst[i] = min/max of its pair in src.
    TensorId src = A, dst = B;
    for (int64_t pass = 0; pass < N; ++pass) {
        int64_t parity = pass % 2;
        std::string tag = "p" + std::to_string(pass);
        auto i = b.beginLoop(tag, 0, N, 1, par.inner);
        b.beginBlock(tag + "_b");
        // pairBase = parity + 2*floor((i - parity) / 2), clamped.
        auto shifted = b.sub(b.iter(i), b.cst(double(parity)));
        auto half = b.unary(OpKind::Floor,
                            b.div(shifted, b.cst(2.0)));
        auto pairBase = b.add(b.mul(half, b.cst(2.0)),
                              b.cst(double(parity)));
        auto lo = b.binary(OpKind::Max, pairBase, b.cst(0.0));
        auto hi = b.binary(OpKind::Min, b.add(pairBase, b.cst(1.0)),
                           b.cst(double(N - 1)));
        auto va = b.read(src, lo);
        auto vb = b.read(src, hi);
        auto isLo = b.binary(OpKind::CmpEq, b.iter(i), lo);
        auto inPair =
            b.binary(OpKind::And,
                     b.binary(OpKind::CmpGe, b.iter(i), b.cst(0.0)),
                     b.binary(OpKind::CmpNe, lo, hi));
        auto mn = b.binary(OpKind::Min, va, vb);
        auto mx = b.binary(OpKind::Max, va, vb);
        auto swapped = b.select(isLo, mn, mx);
        auto self = b.read(src, b.iter(i));
        b.write(dst, b.iter(i), b.select(inPair, swapped, self));
        b.endBlock();
        b.endLoop();
        std::swap(src, dst);
    }
    emitStore(b, src, dOut, N, 0, loadPar, "stout");

    w.dramInputs[dIn.v] = randomInts(rng, N, 0, 999);
    w.nominalFlops = 4.0 * double(N) * N;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildRf(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "rf";
    w.computeBound = false; // Gather/BW bound at scale (Fig. 9a).
    Rng rng(cfg.seed);

    const int64_t N = 256 * cfg.scale; // Samples.
    const int64_t T = 8;              // Trees.
    const int64_t depth = 4;
    const int64_t nodes = 31; // Complete binary tree, 4 levels + leaves.
    const int64_t F = 8;      // Features.
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dXrf", MemSpace::Dram, N * F);
    auto dFeat = p.addTensor("dFeat", MemSpace::Dram, T * nodes);
    auto dThr = p.addTensor("dThr", MemSpace::Dram, T * nodes);
    auto dVal = p.addTensor("dVal", MemSpace::Dram, T * nodes);
    auto dOut = p.addTensor("dOutRf", MemSpace::Dram, N);

    auto featb = p.addTensor("featb", MemSpace::OnChip, T * nodes);
    auto thrb = p.addTensor("thrb", MemSpace::OnChip, T * nodes);
    auto valb = p.addTensor("valb", MemSpace::OnChip, T * nodes);
    auto outb = p.addTensor("outrf", MemSpace::OnChip, N);

    emitLoad(b, dFeat, featb, T * nodes, 0, loadPar, "ldf");
    emitLoad(b, dThr, thrb, T * nodes, 0, loadPar, "ldt");
    emitLoad(b, dVal, valb, T * nodes, 0, loadPar, "ldv");

    auto s = b.beginLoop("s", 0, N, 1, par.outer);
    auto t = b.beginLoop("t", 0, T);
    b.beginBlock("walk");
    // Chained data-dependent gathers: node index evolves per level.
    OpId node = b.cst(0.0);
    auto tbase = b.mul(b.iter(t), b.cst(double(nodes)));
    for (int64_t d = 0; d < depth; ++d) {
        auto naddr = b.add(tbase, node);
        auto feat = b.read(featb, naddr);
        auto thr = b.read(thrb, naddr);
        // Feature vectors stream from DRAM: rf is bandwidth-bound at
        // scale (paper Fig. 9a).
        auto xv = b.read(dX, b.add(b.mul(b.iter(s), b.cst(double(F))),
                                   feat));
        auto goRight = b.binary(OpKind::CmpGt, xv, thr);
        node = b.add(b.add(b.mul(node, b.cst(2.0)), b.cst(1.0)),
                     goRight);
    }
    auto leaf = b.read(valb, b.add(tbase, node));
    auto vote = b.reduce(OpKind::RedAdd, leaf, t);
    b.endBlock();
    b.endLoop();
    b.beginBlock("pred");
    b.write(outb, b.iter(s), b.div(vote, b.cst(double(T))));
    b.endBlock();
    b.endLoop();
    emitStore(b, outb, dOut, N, 0, loadPar, "stp");

    w.dramInputs[dX.v] = randomData(rng, N * F, 0.0, 1.0);
    w.dramInputs[dFeat.v] = randomInts(rng, T * nodes, 0, F - 1);
    w.dramInputs[dThr.v] = randomData(rng, T * nodes, 0.2, 0.8);
    w.dramInputs[dVal.v] = randomData(rng, T * nodes, 0.0, 1.0);
    w.nominalFlops = double(N) * T * depth * 4.0;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildMs(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "ms";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 512 * cfg.scale;
    const int64_t window = 16;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dIn = p.addTensor("dInMs", MemSpace::Dram, N + window);
    auto dOut = p.addTensor("dOutMs", MemSpace::Dram, N);
    auto inb = p.addTensor("inms", MemSpace::OnChip, N + window);
    auto outb = p.addTensor("outms", MemSpace::OnChip, N);

    emitLoad(b, dIn, inb, N + window, 0, loadPar, "ldin");

    // Windowed moving average: out[i] = mean(in[i .. i+w)).
    auto i = b.beginLoop("w_i", 0, N, 1, par.outer);
    auto j = b.beginLoop("w_j", 0, window, 1, par.inner);
    b.beginBlock("win");
    auto v = b.read(inb, b.add(b.iter(i), b.iter(j)));
    auto sum = b.reduce(OpKind::RedAdd, v, j);
    b.endBlock();
    b.endLoop();
    b.beginBlock("wr");
    b.write(outb, b.iter(i), b.div(sum, b.cst(double(window))));
    b.endBlock();
    b.endLoop();
    emitStore(b, outb, dOut, N, 0, loadPar, "stout");

    w.dramInputs[dIn.v] = randomData(rng, N + window, -1.0, 1.0);
    w.nominalFlops = double(N) * window + N;
    w.elements = static_cast<double>(N);
    return w;
}

} // namespace sara::workloads
