#ifndef SARA_WORKLOADS_WORKLOAD_H
#define SARA_WORKLOADS_WORKLOAD_H

/**
 * @file
 * The benchmark suite (paper Table IV): deep-learning (mlp, lstm,
 * snet), graph processing (pr), streaming (ms, bs, sort), decision
 * forests (rf), and the vanilla-Plasticine-comparison set (kmeans,
 * gda, logreg, sgd). Every workload is built as an IR program with a
 * tunable parallelization factor, plus the DRAM inputs it consumes and
 * metadata the benchmark harness and GPU model need.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.h"

namespace sara::workloads {

/** Build-time knobs. */
struct WorkloadConfig
{
    /** Primary parallelization factor (split across the kernel's
     *  loops the way §IV-A describes: innermost vectorization first,
     *  then outer unrolling). */
    int par = 16;
    /** Problem-size multiplier (1 = default sizes, sized so that
     *  cycle-level simulation takes seconds, per §IV-a methodology). */
    int scale = 1;
    uint64_t seed = 42;
};

/** A constructed benchmark. */
struct Workload
{
    std::string name;
    ir::Program program;
    std::map<int32_t, std::vector<double>> dramInputs;

    /** Table IV characterization. */
    bool computeBound = true;
    /** Nominal FLOP count (for GFLOPS/throughput reporting). */
    double nominalFlops = 0.0;
    /** Elements processed (for throughput-per-element metrics). */
    double elements = 0.0;
};

Workload buildMlp(const WorkloadConfig &cfg);
Workload buildLstm(const WorkloadConfig &cfg);
Workload buildSnet(const WorkloadConfig &cfg);
Workload buildPr(const WorkloadConfig &cfg);
Workload buildBs(const WorkloadConfig &cfg);
Workload buildSort(const WorkloadConfig &cfg);
Workload buildRf(const WorkloadConfig &cfg);
Workload buildMs(const WorkloadConfig &cfg);
Workload buildKmeans(const WorkloadConfig &cfg);
Workload buildGda(const WorkloadConfig &cfg);
Workload buildLogreg(const WorkloadConfig &cfg);
Workload buildSgd(const WorkloadConfig &cfg);

/** Lookup by name (hand-built suite + graph-frontend models);
 *  fatal() on unknown names, listing the valid ones. */
Workload buildByName(const std::string &name, const WorkloadConfig &cfg);

/** The hand-built Table IV suite names in the canonical order (the
 *  set golden bench rows and the paper-figure sweeps are keyed to). */
std::vector<std::string> workloadNames();

/** The layer-graph frontend example models (src/graph/models.h). */
std::vector<std::string> graphWorkloadNames();

/** Suite + graph models: everything buildByName accepts. */
std::vector<std::string> allWorkloadNames();

} // namespace sara::workloads

#endif // SARA_WORKLOADS_WORKLOAD_H
