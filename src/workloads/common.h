#ifndef SARA_WORKLOADS_COMMON_H
#define SARA_WORKLOADS_COMMON_H

/**
 * @file
 * Shared helpers for workload builders: par-factor splitting (inner
 * vectorization first, then outer unrolling — §IV-A), synthetic data
 * generation, and bulk load/store loop emission.
 */

#include "ir/builder.h"
#include "support/rng.h"
#include "workloads/workload.h"

namespace sara::workloads {

using namespace ir;

/** Split a par factor into (outer unroll, inner vec <= lanes). */
struct ParSplit
{
    int outer = 1;
    int inner = 1;
};

inline ParSplit
splitPar(int par, int lanes = 16)
{
    ParSplit s;
    s.inner = std::min(par, lanes);
    s.outer = std::max(1, par / s.inner);
    return s;
}

/** Uniform random values in [lo, hi). */
inline std::vector<double>
randomData(Rng &rng, int64_t n, double lo = 0.0, double hi = 1.0)
{
    std::vector<double> v(n);
    for (int64_t i = 0; i < n; ++i)
        v[i] = rng.realIn(lo, hi);
    return v;
}

/** Random small non-negative integers (exact under fp reassociation). */
inline std::vector<double>
randomInts(Rng &rng, int64_t n, int64_t lo, int64_t hi)
{
    std::vector<double> v(n);
    for (int64_t i = 0; i < n; ++i)
        v[i] = static_cast<double>(rng.intIn(lo, hi));
    return v;
}

/**
 * Emit a bulk DRAM -> on-chip load loop: buf[i] = src[i + offset]
 * for i in [0, n), vectorized by `vec`.
 */
inline void
emitLoad(Builder &b, TensorId src, TensorId buf, int64_t n,
         int64_t offset = 0, int par = 16, const std::string &name = "ld")
{
    auto l = b.beginLoop(name, 0, n, 1,
                         static_cast<int>(std::min<int64_t>(par, n)));
    b.beginBlock(name + "_b");
    OpId addr = offset ? b.add(b.iter(l), b.cst(double(offset)))
                       : b.iter(l);
    b.write(buf, b.iter(l), b.read(src, addr));
    b.endBlock();
    b.endLoop();
}

/** Emit a bulk on-chip -> DRAM store loop. */
inline void
emitStore(Builder &b, TensorId buf, TensorId dst, int64_t n,
          int64_t offset = 0, int par = 16,
          const std::string &name = "st")
{
    auto l = b.beginLoop(name, 0, n, 1,
                         static_cast<int>(std::min<int64_t>(par, n)));
    b.beginBlock(name + "_b");
    OpId addr = offset ? b.add(b.iter(l), b.cst(double(offset)))
                       : b.iter(l);
    b.write(dst, addr, b.read(buf, b.iter(l)));
    b.endBlock();
    b.endLoop();
}

} // namespace sara::workloads

#endif // SARA_WORKLOADS_COMMON_H
