/**
 * @file
 * Analytics workloads used for the vanilla-Plasticine comparison
 * (paper Table V): kmeans, gda, logreg, sgd. kmeans/gda are heavily
 * compute-bound; logreg/sgd saturate off-chip bandwidth earlier.
 */

#include <algorithm>

#include "workloads/common.h"

namespace sara::workloads {

Workload
buildKmeans(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "kmeans";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 128 * cfg.scale, D = 8, K = 4;
    const int iters = 2;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    // Transposed staging (x[d*N+n]) for the update phase's n-vectors.
    auto dXT = p.addTensor("dXT", MemSpace::Dram, N * D);
    auto dC = p.addTensor("dC", MemSpace::Dram, K * D);
    auto dOut = p.addTensor("dOut", MemSpace::Dram, K * D);

    auto xb = p.addTensor("xb", MemSpace::OnChip, N * D);
    auto xtb = p.addTensor("xtb", MemSpace::OnChip, N * D);
    auto cb = p.addTensor("cb", MemSpace::OnChip, K * D);
    auto bestb = p.addTensor("bestb", MemSpace::OnChip, N);

    emitLoad(b, dX, xb, N * D, 0, loadPar, "ldx");
    emitLoad(b, dXT, xtb, N * D, 0, loadPar, "ldxt");
    emitLoad(b, dC, cb, K * D, 0, loadPar, "ldc");

    for (int it = 0; it < iters; ++it) {
        std::string tag = "it" + std::to_string(it);
        auto distb = p.addTensor("dist_" + tag, MemSpace::OnChip, K);

        // Assignment: per point, distance to each centroid, argmin.
        auto n = b.beginLoop(tag + "_n", 0, N, 1, par.outer);
        {
            auto k = b.beginLoop(tag + "_k", 0, K);
            auto d = b.beginLoop(tag + "_d", 0, D, 1,
                                 std::min<int>(par.inner, 8));
            b.beginBlock(tag + "_dist");
            auto xv = b.read(xb, b.add(b.mul(b.iter(n), b.cst(double(D))),
                                       b.iter(d)));
            auto cv = b.read(cb, b.add(b.mul(b.iter(k), b.cst(double(D))),
                                       b.iter(d)));
            auto diff = b.sub(xv, cv);
            auto dist = b.reduce(OpKind::RedAdd, b.mul(diff, diff), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_wd");
            b.write(distb, b.iter(k), dist);
            auto minD = b.reduce(OpKind::RedMin, dist, k);
            b.endBlock();
            b.endLoop();

            // Second pass over k: argmin by equality match.
            auto k2 = b.beginLoop(tag + "_k2", 0, K);
            b.beginBlock(tag + "_arg");
            auto dv = b.read(distb, b.iter(k2));
            auto isMin = b.binary(OpKind::CmpEq, dv, minD);
            auto cand = b.select(isMin, b.iter(k2), b.cst(-1.0));
            auto bestk = b.reduce(OpKind::RedMax, cand, k2);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_wb");
            b.write(bestb, b.iter(n), bestk);
            b.endBlock();
        }
        b.endLoop();

        // Update: new centroid = mean of assigned points.
        auto k = b.beginLoop(tag + "_uk", 0, K);
        auto d = b.beginLoop(tag + "_ud", 0, D, 1, par.outer > 1 ? 2 : 1);
        {
            auto nn = b.beginLoop(tag + "_un", 0, N, 1, par.inner);
            b.beginBlock(tag + "_acc");
            auto bv = b.read(bestb, b.iter(nn));
            auto mine = b.binary(OpKind::CmpEq, bv, b.iter(k));
            auto xv = b.read(xtb, b.add(b.mul(b.iter(d),
                                              b.cst(double(N))),
                                        b.iter(nn)));
            auto sum = b.reduce(OpKind::RedAdd,
                                b.select(mine, xv, b.cst(0.0)), nn);
            auto cnt = b.reduce(OpKind::RedAdd,
                                b.select(mine, b.cst(1.0), b.cst(0.0)),
                                nn);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_upd");
            auto denom = b.binary(OpKind::Max, cnt, b.cst(1.0));
            b.write(cb, b.add(b.mul(b.iter(k), b.cst(double(D))),
                              b.iter(d)),
                    b.div(sum, denom));
            b.endBlock();
        }
        b.endLoop();
        b.endLoop();
    }
    emitStore(b, cb, dOut, K * D, 0, loadPar, "stc");

    auto xdata = randomData(rng, N * D, 0.0, 4.0);
    std::vector<double> xt(N * D);
    for (int64_t nn = 0; nn < N; ++nn)
        for (int64_t dd = 0; dd < D; ++dd)
            xt[dd * N + nn] = xdata[nn * D + dd];
    w.dramInputs[dX.v] = std::move(xdata);
    w.dramInputs[dXT.v] = std::move(xt);
    w.dramInputs[dC.v] = randomData(rng, K * D, 0.0, 4.0);
    w.nominalFlops = double(iters) * (3.0 * N * K * D + 2.0 * K * D * N);
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildGda(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "gda";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 128 * cfg.scale, D = 12;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    // x is staged feature-major (x[d*N + n]) so the vectorized n-loop
    // streams bank-conflict-free.
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dCov = p.addTensor("dCov", MemSpace::Dram, D * D);

    auto xb = p.addTensor("xb", MemSpace::OnChip, N * D);
    auto mub = p.addTensor("mub", MemSpace::OnChip, D);
    auto covb = p.addTensor("covb", MemSpace::OnChip, D * D);

    emitLoad(b, dX, xb, N * D, 0, loadPar, "ldx");

    // Means.
    auto d0 = b.beginLoop("md", 0, D);
    {
        auto n0 = b.beginLoop("mn", 0, N, 1, par.inner);
        b.beginBlock("msum");
        auto xv = b.read(xb, b.add(b.mul(b.iter(d0), b.cst(double(N))),
                                   b.iter(n0)));
        auto s = b.reduce(OpKind::RedAdd, xv, n0);
        b.endBlock();
        b.endLoop();
        b.beginBlock("mwr");
        b.write(mub, b.iter(d0), b.div(s, b.cst(double(N))));
        b.endBlock();
    }
    b.endLoop();

    // Covariance: cov[i,j] = sum_n (x[n,i]-mu_i)(x[n,j]-mu_j) / N.
    auto i = b.beginLoop("ci", 0, D, 1, par.outer);
    auto j = b.beginLoop("cj", 0, D);
    {
        auto n = b.beginLoop("cn", 0, N, 1, par.inner);
        b.beginBlock("cacc");
        auto xi = b.read(xb, b.add(b.mul(b.iter(i), b.cst(double(N))),
                                   b.iter(n)));
        auto xj = b.read(xb, b.add(b.mul(b.iter(j), b.cst(double(N))),
                                   b.iter(n)));
        auto mi = b.read(mub, b.iter(i));
        auto mj = b.read(mub, b.iter(j));
        auto s = b.reduce(OpKind::RedAdd,
                          b.mul(b.sub(xi, mi), b.sub(xj, mj)), n);
        b.endBlock();
        b.endLoop();
        b.beginBlock("cwr");
        b.write(covb, b.add(b.mul(b.iter(i), b.cst(double(D))),
                            b.iter(j)),
                b.div(s, b.cst(double(N))));
        b.endBlock();
    }
    b.endLoop();
    b.endLoop();
    emitStore(b, covb, dCov, D * D, 0, loadPar, "stcov");

    w.dramInputs[dX.v] = randomData(rng, N * D, -2.0, 2.0);
    w.nominalFlops = 3.0 * double(D) * D * N + double(N) * D;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildLogreg(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "logreg";
    w.computeBound = false; // Saturates off-chip BW at modest par.
    Rng rng(cfg.seed);

    const int64_t N = 256 * cfg.scale, D = 16;
    const int iters = 2;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dYl = p.addTensor("dYl", MemSpace::Dram, N);
    auto dWout = p.addTensor("dWout", MemSpace::Dram, D);

    auto xb = p.addTensor("xb", MemSpace::OnChip, N * D);
    auto yb = p.addTensor("yb", MemSpace::OnChip, N);
    auto wb = p.addTensor("wb", MemSpace::OnChip, D);
    auto errb = p.addTensor("errb", MemSpace::OnChip, N);

    emitLoad(b, dX, xb, N * D, 0, loadPar, "ldx");
    emitLoad(b, dYl, yb, N, 0, loadPar, "ldy");

    for (int it = 0; it < iters; ++it) {
        std::string tag = "lr" + std::to_string(it);
        // Phase 1: residuals.
        auto n = b.beginLoop(tag + "_n", 0, N, 1, par.outer);
        {
            auto d = b.beginLoop(tag + "_d", 0, D, 1, par.inner);
            b.beginBlock(tag + "_dot");
            auto xv = b.read(xb, b.add(b.mul(b.iter(n), b.cst(double(D))),
                                       b.iter(d)));
            auto wv = b.read(wb, b.iter(d));
            auto dot = b.reduce(OpKind::RedAdd, b.mul(xv, wv), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_err");
            auto pred = b.unary(OpKind::Sigmoid, dot);
            b.write(errb, b.iter(n), b.sub(pred, b.read(yb, b.iter(n))));
            b.endBlock();
        }
        b.endLoop();
        // Phase 2: gradient + update.
        auto d2 = b.beginLoop(tag + "_gd", 0, D);
        {
            auto n2 = b.beginLoop(tag + "_gn", 0, N, 1, par.inner);
            b.beginBlock(tag + "_grad");
            auto ev = b.read(errb, b.iter(n2));
            auto xv = b.read(xb, b.add(b.mul(b.iter(n2),
                                             b.cst(double(D))),
                                       b.iter(d2)));
            auto g = b.reduce(OpKind::RedAdd, b.mul(ev, xv), n2);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_upd");
            auto wOld = b.read(wb, b.iter(d2));
            b.write(wb, b.iter(d2),
                    b.sub(wOld, b.mul(g, b.cst(0.01 / N))));
            b.endBlock();
        }
        b.endLoop();
    }
    emitStore(b, wb, dWout, D, 0, loadPar, "stw");

    w.dramInputs[dX.v] = randomData(rng, N * D, -1.0, 1.0);
    w.dramInputs[dYl.v] = randomInts(rng, N, 0, 1);
    w.nominalFlops = double(iters) * (2.0 * N * D + 2.0 * D * N);
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildSgd(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "sgd";
    w.computeBound = false;
    Rng rng(cfg.seed);

    const int64_t batches = 8, batch = 32 * cfg.scale, D = 16;
    const int64_t N = batches * batch;
    ParSplit par = splitPar(cfg.par);
    const int loadPar = std::max(16, std::min(cfg.par, 32));

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dYl = p.addTensor("dYl", MemSpace::Dram, N);
    auto dWout = p.addTensor("dWout", MemSpace::Dram, D);

    auto wb = p.addTensor("wb", MemSpace::OnChip, D);
    auto xb = p.addTensor("xb", MemSpace::OnChip, batch * D);
    auto yb = p.addTensor("yb", MemSpace::OnChip, batch);
    auto errb = p.addTensor("errb", MemSpace::OnChip, batch);

    // Mini-batch loop: w is a loop-carried dependency (limits
    // pipelining across batches; the paper notes sgd is less
    // compute-bound).
    auto bt = b.beginLoop("bt", 0, batches);
    {
        // Stream the batch in.
        auto l = b.beginLoop("ldb", 0, batch * D, 1, 16);
        b.beginBlock("ldb_b");
        auto addr = b.add(b.mul(b.iter(bt), b.cst(double(batch * D))),
                          b.iter(l));
        b.write(xb, b.iter(l), b.read(dX, addr));
        b.endBlock();
        b.endLoop();
        auto ly = b.beginLoop("ldy", 0, batch, 1, 16);
        b.beginBlock("ldy_b");
        auto yaddr = b.add(b.mul(b.iter(bt), b.cst(double(batch))),
                           b.iter(ly));
        b.write(yb, b.iter(ly), b.read(dYl, yaddr));
        b.endBlock();
        b.endLoop();

        auto n = b.beginLoop("sn", 0, batch, 1, par.outer);
        {
            auto d = b.beginLoop("sd", 0, D, 1, par.inner);
            b.beginBlock("sdot");
            auto xv = b.read(xb, b.add(b.mul(b.iter(n), b.cst(double(D))),
                                       b.iter(d)));
            auto wv = b.read(wb, b.iter(d));
            auto dot = b.reduce(OpKind::RedAdd, b.mul(xv, wv), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock("serr");
            auto pred = b.unary(OpKind::Sigmoid, dot);
            b.write(errb, b.iter(n), b.sub(pred, b.read(yb, b.iter(n))));
            b.endBlock();
        }
        b.endLoop();

        auto d2 = b.beginLoop("gd", 0, D);
        {
            auto n2 = b.beginLoop("gn", 0, batch, 1, par.inner);
            b.beginBlock("sgrad");
            auto ev = b.read(errb, b.iter(n2));
            auto xv = b.read(xb, b.add(b.mul(b.iter(n2),
                                             b.cst(double(D))),
                                       b.iter(d2)));
            auto g = b.reduce(OpKind::RedAdd, b.mul(ev, xv), n2);
            b.endBlock();
            b.endLoop();
            b.beginBlock("supd");
            auto wOld = b.read(wb, b.iter(d2));
            b.write(wb, b.iter(d2),
                    b.sub(wOld, b.mul(g, b.cst(0.02 / batch))));
            b.endBlock();
        }
        b.endLoop();
    }
    b.endLoop();
    emitStore(b, wb, dWout, D, 0, loadPar, "stw");

    w.dramInputs[dX.v] = randomData(rng, N * D, -1.0, 1.0);
    w.dramInputs[dYl.v] = randomInts(rng, N, 0, 1);
    w.nominalFlops = double(batches) * (4.0 * batch * D);
    w.elements = static_cast<double>(N);
    return w;
}

} // namespace sara::workloads
