#include "workloads/workload.h"

#include "support/logging.h"

namespace sara::workloads {

Workload
buildByName(const std::string &name, const WorkloadConfig &cfg)
{
    if (name == "mlp")
        return buildMlp(cfg);
    if (name == "lstm")
        return buildLstm(cfg);
    if (name == "snet")
        return buildSnet(cfg);
    if (name == "pr")
        return buildPr(cfg);
    if (name == "bs")
        return buildBs(cfg);
    if (name == "sort")
        return buildSort(cfg);
    if (name == "rf")
        return buildRf(cfg);
    if (name == "ms")
        return buildMs(cfg);
    if (name == "kmeans")
        return buildKmeans(cfg);
    if (name == "gda")
        return buildGda(cfg);
    if (name == "logreg")
        return buildLogreg(cfg);
    if (name == "sgd")
        return buildSgd(cfg);
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
workloadNames()
{
    return {"mlp", "lstm", "snet", "pr",     "bs",  "sort",
            "rf",  "ms",   "kmeans", "gda", "logreg", "sgd"};
}

} // namespace sara::workloads
