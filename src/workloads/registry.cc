/**
 * @file
 * The workload registry: one table mapping names to builders, shared
 * by everything that resolves a workload by name (sarac, sarad, the
 * batch runner, fault campaigns, benches). The table carries both the
 * hand-built Table IV suite and the graph-frontend example models, so
 * a graph workload is a first-class citizen everywhere.
 *
 * The original 12 names stay the "suite" (workloadNames) — golden
 * bench row sets and the fig7/fig9 sweeps are keyed to it — while
 * graphWorkloadNames()/allWorkloadNames() expose the frontend models.
 */

#include "workloads/workload.h"

#include <set>

#include "graph/models.h"
#include "support/logging.h"

namespace sara::workloads {

namespace {

struct Entry
{
    const char *name;
    Workload (*build)(const WorkloadConfig &);
    bool graph; ///< Built through the layer-graph frontend.
};

const Entry kRegistry[] = {
    {"mlp", buildMlp, false},
    {"lstm", buildLstm, false},
    {"snet", buildSnet, false},
    {"pr", buildPr, false},
    {"bs", buildBs, false},
    {"sort", buildSort, false},
    {"rf", buildRf, false},
    {"ms", buildMs, false},
    {"kmeans", buildKmeans, false},
    {"gda", buildGda, false},
    {"logreg", buildLogreg, false},
    {"sgd", buildSgd, false},
    {"mlp_graph", graph::buildMlpGraph, true},
    {"transformer_cell", graph::buildTransformerCell, true},
    {"resnet_block", graph::buildResnetBlock, true},
};

/** A duplicate name would make lookups silently order-dependent;
 *  fail fast the first time the registry is consulted. */
void
checkUnique()
{
    static const bool ok = [] {
        std::set<std::string> seen;
        for (const Entry &e : kRegistry)
            if (!seen.insert(e.name).second)
                fatal("workload registry: duplicate name '", e.name,
                      "'");
        return true;
    }();
    (void)ok;
}

} // namespace

Workload
buildByName(const std::string &name, const WorkloadConfig &cfg)
{
    checkUnique();
    for (const Entry &e : kRegistry)
        if (name == e.name)
            return e.build(cfg);

    std::string known;
    for (const Entry &e : kRegistry) {
        if (!known.empty())
            known += ", ";
        known += e.name;
    }
    fatal("unknown workload '", name, "' (valid: ", known, ")");
}

std::vector<std::string>
workloadNames()
{
    checkUnique();
    std::vector<std::string> names;
    for (const Entry &e : kRegistry)
        if (!e.graph)
            names.push_back(e.name);
    return names;
}

std::vector<std::string>
graphWorkloadNames()
{
    checkUnique();
    std::vector<std::string> names;
    for (const Entry &e : kRegistry)
        if (e.graph)
            names.push_back(e.name);
    return names;
}

std::vector<std::string>
allWorkloadNames()
{
    checkUnique();
    std::vector<std::string> names;
    for (const Entry &e : kRegistry)
        names.push_back(e.name);
    return names;
}

} // namespace sara::workloads
