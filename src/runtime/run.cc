#include "runtime/run.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "ir/interp.h"
#include "support/json.h"
#include "support/logging.h"

namespace sara::runtime {

RunOutcome
runWorkload(const workloads::Workload &w, const RunConfig &config)
{
    RunOutcome out;
    if (config.preCompiled) {
        out.compiled = *config.preCompiled;
        out.fromCache = true;
    } else if (config.cachingCompiler) {
        auto compiled =
            config.cachingCompiler->compile(w.program, config.compiler);
        out.compiled = std::move(compiled.result);
        out.fromCache = compiled.fromCache;
        out.artifactKey = std::move(compiled.key);
    } else {
        out.compiled = compiler::compile(w.program, config.compiler);
    }

    // Merge the compile phases into the simulator's trace timeline
    // (one unified Chrome-trace file per run).
    sim::SimOptions simOpt = config.sim;
    simOpt.compileSpans = &out.compiled.phases;
    // NoC timing mirrors the chip's network spec (the same numbers PnR
    // used for its scalar estimates). Tokens ride the arbitrated
    // network only under CMMC; the vanilla FSM control uses dedicated
    // control bits, so they keep their scalar latency there.
    const auto &net = config.compiler.spec.net;
    simOpt.noc.hopLatency = net.hopLatency;
    simOpt.noc.ejectLatency = net.ejectLatency;
    simOpt.noc.minLatency = net.minLatency;
    simOpt.noc.routeTokens =
        config.compiler.control == compiler::ControlScheme::Cmmc;
    // Fabric dimensions for the per-unit counter file / heatmap.
    simOpt.fabricRows = config.compiler.spec.rows;
    simOpt.fabricCols = config.compiler.spec.cols;

    sim::Simulator simulator(out.compiled.program,
                             out.compiled.lowering.graph, config.dram,
                             simOpt);
    for (const auto &[tid, data] : w.dramInputs)
        simulator.setDramTensor(ir::TensorId(tid), data);
    out.sim = simulator.run();

    if (config.check) {
        out.checked = true;
        ir::Interpreter interp(out.compiled.program);
        for (const auto &[tid, data] : w.dramInputs)
            interp.setTensor(ir::TensorId(tid), data);
        auto ref = interp.run();
        const auto &prog = out.compiled.program;
        for (size_t t = 0; t < prog.numTensors(); ++t) {
            const auto &simT = out.sim.tensors[t];
            if (simT.empty())
                continue;
            const auto &refT = ref.tensors[t];
            if (simT.size() != refT.size()) {
                out.correct = false;
                continue;
            }
            for (size_t i = 0; i < simT.size(); ++i)
                if (std::abs(simT[i] - refT[i]) > 1e-4)
                    out.correct = false;
        }
        if (!out.correct)
            warn("workload ", w.name,
                 " produced results differing from the interpreter");
    }
    return out;
}

std::string
summarize(const workloads::Workload &w, const RunOutcome &r)
{
    std::ostringstream os;
    os << w.name << ": " << r.sim.cycles << " cycles ("
       << r.timeUs() << " us), " << r.gflops() << " GFLOPS, DRAM "
       << r.dramGBs() << " GB/s, util "
       << r.sim.avgComputeUtilization << ", "
       << r.compiled.resources.str();
    return os.str();
}

std::string
jsonReport(const workloads::Workload &w, const RunConfig &config,
           const RunOutcome &r)
{
    json::Writer j;
    j.beginObject();
    j.kv("schema", "sara-run-report/v1");
    j.kv("workload", w.name);

    j.key("config").beginObject();
    j.kv("chip", config.compiler.spec.name);
    j.kv("dram", config.dram.name);
    j.kv("control",
         config.compiler.control == compiler::ControlScheme::Cmmc
             ? "cmmc"
             : "fsm");
    j.kv("partitioner",
         compiler::partitionAlgoName(config.compiler.partitioner));
    j.endObject();

    j.key("compile").beginObject();
    j.kv("total_ms", r.compiled.totalMs());
    j.kv("from_cache", r.fromCache);
    if (!r.artifactKey.empty())
        j.kv("artifact_key", r.artifactKey);
    j.key("phases").beginArray();
    for (const auto &span : r.compiled.phases) {
        j.beginObject();
        j.kv("name", span.name);
        j.kv("ms", span.durMs);
        j.kv("depth", span.depth);
        j.key("stats").beginObject();
        for (const auto &[k, v] : span.stats)
            j.kv(k, v);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    const auto &res = r.compiled.resources;
    j.key("resources").beginObject();
    j.kv("pcus", res.pcus).kv("pmus", res.pmus).kv("ags", res.ags);
    j.kv("pcus_avail", res.pcusAvail).kv("pmus_avail", res.pmusAvail);
    j.kv("ags_avail", res.agsAvail);
    j.kv("retime_units", res.retimeUnits);
    j.kv("merge_units", res.mergeUnits);
    j.kv("controller_units", res.controllerUnits);
    j.kv("fits", res.fits);
    j.endObject();
    const auto &st = r.compiled.lowering.stats;
    j.key("cmmc").beginObject();
    j.kv("tokens", st.tokens).kv("credits", st.credits);
    j.kv("fwd_edges_pruned", st.forwardEdgesRemoved);
    j.kv("bwd_edges_pruned", st.backwardEdgesRemoved);
    j.kv("fifo_lowered", st.fifoLoweredTensors);
    j.kv("multibuffered", st.multibufferedTensors);
    j.kv("sharded", st.shardedTensors);
    j.kv("copy_elided", st.copyElidedBlocks);
    j.endObject();
    j.kv("partitions_created", r.compiled.partitionsCreated);
    j.kv("units_merged", r.compiled.unitsMerged);
    j.endObject(); // compile

    j.key("sim").beginObject();
    j.kv("cycles", r.sim.cycles);
    j.kv("time_us", r.timeUs());
    j.kv("total_firings", r.sim.totalFirings);
    j.kv("flops", r.sim.flops);
    j.kv("gflops", r.gflops());
    j.kv("compute_utilization", r.sim.avgComputeUtilization);
    // Region-parallel event core: how the run actually executed.
    // sim_threads is the achieved region count (1 = sequential), not
    // the request; a fallback reports 1 plus the reason.
    j.kv("sim_threads", r.sim.simThreads);
    j.kv("sim_regions", r.sim.simRegions);
    j.kv("quanta", r.sim.quanta);
    j.kv("barrier_wait_ratio", r.sim.barrierWaitRatio);
    j.kv("parallel_fallback", r.sim.parallelFallback);
    if (r.sim.parallelFallback)
        j.kv("fallback_reason", r.sim.fallbackReason);
    j.key("host").beginObject();
    j.kv("events", r.sim.hostEvents);
    j.kv("wakeups", r.sim.wakeups);
    j.kv("spurious_wakeups", r.sim.spuriousWakeups);
    // Per-CV-class wakeup policy accounting: which wait sites pay the
    // thundering-herd cost, and their spurious ratios.
    j.key("wakeup_classes").beginObject();
    for (int c = 0; c < sim::kNumWakeClasses; ++c) {
        uint64_t total = r.sim.wakeupsByClass[c];
        uint64_t spurious = r.sim.spuriousByClass[c];
        j.key(sim::wakeClassName(static_cast<sim::WakeClass>(c)))
            .beginObject();
        j.kv("wakeups", total);
        j.kv("spurious", spurious);
        j.kv("spurious_ratio",
             total ? static_cast<double>(spurious) /
                         static_cast<double>(total)
                   : 0.0);
        j.endObject();
    }
    j.endObject();
    j.endObject();
    j.key("stalls").beginObject();
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        j.kv(sim::stallCauseName(static_cast<sim::StallCause>(c)),
             r.sim.stallTotals[c]);
    j.endObject();
    j.key("dram").beginObject();
    j.kv("bytes", r.sim.dramBytes);
    j.kv("requests", r.sim.dramRequests);
    j.kv("row_hits", r.sim.dramRowHits);
    j.kv("achieved_gbs", r.dramGBs());
    j.kv("peak_gbs", config.dram.totalGBs());
    j.endObject();
    if (r.sim.noc.enabled) {
        const auto &n = r.sim.noc;
        j.key("noc").beginObject();
        j.kv("links", n.links);
        j.kv("peak_stream_load", n.peakStreamLoad);
        j.kv("flits", n.flits);
        j.kv("hops", n.hops);
        j.kv("queue_cycles", n.queueCycles);
        j.kv("peak_inflight", n.peakInflight);
        // The handful of busiest links (by flit-cycles queued) — the
        // hotspots a floorplan fix would target.
        auto links = n.linkUse;
        std::stable_sort(links.begin(), links.end(),
                         [](const auto &a, const auto &b) {
                             return a.waitCycles > b.waitCycles;
                         });
        if (links.size() > 10)
            links.resize(10);
        j.key("hot_links").beginArray();
        for (const auto &lu : links) {
            j.beginObject();
            j.kv("x", lu.link.x).kv("y", lu.link.y);
            j.kv("dir", dfg::linkDirName(lu.link.dir));
            j.kv("streams", lu.streams);
            j.kv("traversals", lu.traversals);
            j.kv("wait_cycles", lu.waitCycles);
            j.kv("queue_high_water", lu.queueHighWater);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    const auto &g = r.compiled.lowering.graph;
    j.key("units").beginArray();
    for (const auto &u : g.units()) {
        const auto &s = r.sim.unitStats[u.id.index()];
        if (s.firings == 0 && s.skips == 0 && s.stallTotal() == 0)
            continue; // VMU storage units and dead engines.
        j.beginObject();
        j.kv("name", u.name);
        j.kv("firings", s.firings);
        j.kv("skips", s.skips);
        j.kv("busy", s.busyCycles);
        j.kv("first_fire", s.firstFire);
        j.kv("last_fire", s.lastFire);
        j.kv("done_at", s.doneAt);
        j.key("stalls").beginObject();
        for (int c = 0; c < sim::kNumStallCauses; ++c)
            j.kv(sim::stallCauseName(static_cast<sim::StallCause>(c)),
                 s.stallCycles[c]);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    // FIFO pressure: report streams that ever came close to their
    // credit window (the interesting, backpressure-prone ones).
    j.key("fifo_pressure").beginArray();
    for (const auto &fs : r.sim.fifoStats) {
        if (fs.capacity == UINT64_MAX ||
            fs.highWater * 2 < fs.capacity)
            continue;
        j.beginObject();
        j.kv("name", fs.name);
        j.kv("high_water", fs.highWater);
        j.kv("capacity", fs.capacity);
        j.kv("pushes", fs.pushes);
        j.endObject();
    }
    j.endArray();
    // Full per-unit performance-counter file (engines + router cells);
    // same data `sarac --counters` renders as a table + heatmap.
    j.key("counters");
    r.sim.counters.writeJson(j);
    j.endObject(); // sim

    j.key("check").beginObject();
    j.kv("checked", r.checked);
    j.kv("correct", r.correct);
    j.endObject();

    j.endObject();
    return j.str();
}

void
writeJsonReport(const std::string &path, const workloads::Workload &w,
                const RunConfig &config, const RunOutcome &r)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write JSON report to ", path);
    std::string doc = jsonReport(w, config, r);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote run report to ", path);
}

} // namespace sara::runtime
