#include "runtime/run.h"

#include <cmath>
#include <sstream>

#include "ir/interp.h"
#include "support/logging.h"

namespace sara::runtime {

RunOutcome
runWorkload(const workloads::Workload &w, const RunConfig &config)
{
    RunOutcome out;
    out.compiled = compiler::compile(w.program, config.compiler);

    sim::Simulator simulator(out.compiled.program,
                             out.compiled.lowering.graph, config.dram,
                             config.sim);
    for (const auto &[tid, data] : w.dramInputs)
        simulator.setDramTensor(ir::TensorId(tid), data);
    out.sim = simulator.run();

    if (config.check) {
        out.checked = true;
        ir::Interpreter interp(out.compiled.program);
        for (const auto &[tid, data] : w.dramInputs)
            interp.setTensor(ir::TensorId(tid), data);
        auto ref = interp.run();
        const auto &prog = out.compiled.program;
        for (size_t t = 0; t < prog.numTensors(); ++t) {
            const auto &simT = out.sim.tensors[t];
            if (simT.empty())
                continue;
            const auto &refT = ref.tensors[t];
            if (simT.size() != refT.size()) {
                out.correct = false;
                continue;
            }
            for (size_t i = 0; i < simT.size(); ++i)
                if (std::abs(simT[i] - refT[i]) > 1e-4)
                    out.correct = false;
        }
        if (!out.correct)
            warn("workload ", w.name,
                 " produced results differing from the interpreter");
    }
    return out;
}

std::string
summarize(const workloads::Workload &w, const RunOutcome &r)
{
    std::ostringstream os;
    os << w.name << ": " << r.sim.cycles << " cycles ("
       << r.timeUs() << " us), " << r.gflops() << " GFLOPS, DRAM "
       << r.dramGBs() << " GB/s, util "
       << r.sim.avgComputeUtilization << ", "
       << r.compiled.resources.str();
    return os.str();
}

} // namespace sara::runtime
