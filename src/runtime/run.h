#ifndef SARA_RUNTIME_RUN_H
#define SARA_RUNTIME_RUN_H

/**
 * @file
 * Compile-and-simulate harness shared by the benchmark binaries and
 * the examples: runs a workload through the full SARA pipeline and the
 * cycle-level simulator, optionally validating against the sequential
 * interpreter, and summarizes the metrics the paper's tables report.
 */

#include <string>

#include "artifact/cache.h"
#include "compiler/driver.h"
#include "dram/dram.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace sara::runtime {

struct RunConfig
{
    compiler::CompilerOptions compiler;
    dram::DramSpec dram = dram::DramSpec::hbm2();
    /** Validate final memory against the sequential interpreter. */
    bool check = false;
    sim::SimOptions sim;
    /**
     * Cache-aware compile front-end. When set, runWorkload probes the
     * artifact cache before invoking compileProgram and stores fresh
     * compiles back; identical in-flight compiles across batch threads
     * are deduplicated. Not owned — must outlive the run (shared by
     * every job of a batch).
     */
    artifact::CachingCompiler *cachingCompiler = nullptr;
    /**
     * Pre-compiled artifact to simulate instead of compiling (set by
     * `sarac --load-artifact`). Not owned. Takes precedence over
     * cachingCompiler.
     */
    const compiler::CompileResult *preCompiled = nullptr;
};

struct RunOutcome
{
    compiler::CompileResult compiled;
    sim::SimResult sim;
    bool checked = false;
    bool correct = true;
    bool fromCache = false;     ///< Compile served from the artifact cache.
    std::string artifactKey;    ///< Content key (empty: cache not used).

    /** Runtime at the 1 GHz Plasticine clock. */
    double timeUs() const
    {
        return static_cast<double>(sim.cycles) / 1e3;
    }
    double gflops() const
    {
        return sim.cycles
                   ? static_cast<double>(sim.flops) / sim.cycles
                   : 0.0; // flops/cycle == GFLOPS at 1 GHz.
    }
    double
    dramGBs() const
    {
        return sim.dramAchievedBytesPerCycle; // bytes/cycle == GB/s.
    }
};

/** Run one workload end to end. fatal()s on compile/sim errors. */
RunOutcome runWorkload(const workloads::Workload &w,
                       const RunConfig &config);

/** One-line metric summary for reports. */
std::string summarize(const workloads::Workload &w, const RunOutcome &r);

/**
 * Machine-readable run report (schema "sara-run-report/v1"): compile
 * phase spans and pass stats, resource usage, per-cause stall totals,
 * per-unit activity, FIFO pressure, and DRAM statistics. This is the
 * payload behind `sarac --json` and the bench harness BENCH_*.json
 * trajectory files.
 */
std::string jsonReport(const workloads::Workload &w,
                       const RunConfig &config, const RunOutcome &r);

/** Write jsonReport() to `path`; fatal()s when the file can't open. */
void writeJsonReport(const std::string &path,
                     const workloads::Workload &w, const RunConfig &config,
                     const RunOutcome &r);

} // namespace sara::runtime

#endif // SARA_RUNTIME_RUN_H
