#ifndef SARA_SUPPORT_HOSTPROF_H
#define SARA_SUPPORT_HOSTPROF_H

/**
 * @file
 * Host sampling profiler: attributes simulator *wall-clock* time (not
 * simulated cycles) to coarse phase buckets so the perf harness can
 * see where Mcycles/s actually goes — scheduler drain vs. CV wait
 * bookkeeping vs. the fire path vs. NoC arbitration vs. the DRAM
 * model.
 *
 * Design: a steady-clock sampler thread periodically reads a global
 * "current phase" atomic and bumps that bucket's count; hot paths mark
 * themselves with ScopedPhase — two relaxed atomic stores when the
 * profiler runs, a single relaxed load + branch when it does not, so
 * the markers are safe to leave in the event core permanently. Scoped
 * markers must cover *synchronous* code only: a coroutine suspension
 * inside the scope would leak the phase across unrelated work.
 *
 * The profiler is process-global and single-run oriented (bench_perf
 * wraps one simulation at a time); parallel batch jobs simply leave it
 * disabled, and markers then cost the one branch.
 */

#include <atomic>
#include <cstdint>
#include <thread>

namespace sara::telemetry {

/** Wall-time attribution buckets for the simulator event core. */
enum class HostPhase : uint8_t {
    Other = 0,  ///< Outside the marked regions (compile, I/O, ...).
    Scheduler,  ///< Event-loop drain and coroutine resume glue.
    CvWait,     ///< CondVar park/notify wait-list bookkeeping.
    FirePath,   ///< Datapath evaluation (evalLops and friends).
    NocArb,     ///< NoC link polling and round-robin arbitration.
    Dram,       ///< DRAM timing model (row hits, bus scheduling).
};
inline constexpr int kNumHostPhases = 6;

const char *hostPhaseName(HostPhase phase);

class HostProfiler
{
  public:
    /** Process-wide instance (markers always target this one). */
    static HostProfiler &global();

    ~HostProfiler();

    /** Start the sampler thread at `periodUs` microseconds per sample
     *  and enable the markers. No-op when already running. */
    void start(uint32_t periodUs = 200);
    /** Stop and join the sampler; markers go back to one branch. */
    void stop();
    bool running() const { return running_; }

    void clearSamples();
    uint64_t samples(HostPhase phase) const;
    uint64_t totalSamples() const;

    /** Marker fast path (see ScopedPhase). */
    static bool
    enabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }
    static HostPhase
    exchangePhase(HostPhase phase)
    {
        return static_cast<HostPhase>(currentPhase_.exchange(
            static_cast<uint8_t>(phase), std::memory_order_relaxed));
    }
    static void
    restorePhase(HostPhase phase)
    {
        currentPhase_.store(static_cast<uint8_t>(phase),
                            std::memory_order_relaxed);
    }

  private:
    static std::atomic<bool> enabledFlag_;
    static std::atomic<uint8_t> currentPhase_;

    std::atomic<uint64_t> counts_[kNumHostPhases] = {};
    std::atomic<bool> stopFlag_{false};
    std::thread sampler_;
    bool running_ = false;
};

/** RAII phase marker. Mark synchronous scopes only — never across a
 *  coroutine suspension point. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(HostPhase phase)
    {
        if (HostProfiler::enabled()) {
            active_ = true;
            prev_ = HostProfiler::exchangePhase(phase);
        }
    }
    ~ScopedPhase()
    {
        if (active_)
            HostProfiler::restorePhase(prev_);
    }
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    bool active_ = false;
    HostPhase prev_ = HostPhase::Other;
};

} // namespace sara::telemetry

#endif // SARA_SUPPORT_HOSTPROF_H
