#include "support/logging.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace sara {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("SARA_LOG_LEVEL");
    if (!env)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0)
        return LogLevel::Error;
    std::fprintf(stderr,
                 "[sara:warn] unknown SARA_LOG_LEVEL '%s' "
                 "(want debug|info|warn|error)\n",
                 env);
    return LogLevel::Warn;
}

LogLevel &
levelRef()
{
    static LogLevel level = initialLevel();
    return level;
}

std::mutex g_logMutex;

/** Monotonic seconds since the first log call (process-start proxy). */
double
elapsedSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
logLevel()
{
    return levelRef();
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

bool
verbose()
{
    return logLevel() <= LogLevel::Info;
}

namespace detail {

void
logMessage(LogLevel level, const char *tag, const std::string &msg)
{
    // Error-severity messages (panic/fatal) always print; the level
    // gate for the rest lives in the inline callers so suppressed
    // messages never pay for concatenation.
    if (level < LogLevel::Error && level < logLevel())
        return;
    std::lock_guard<std::mutex> lock(g_logMutex);
    std::fprintf(stderr, "[sara:%s +%.3fs] %s\n", tag, elapsedSeconds(),
                 msg.c_str());
}

} // namespace detail

} // namespace sara
