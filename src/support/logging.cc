#include "support/logging.h"

#include <cstdio>
#include <mutex>

namespace sara {

namespace {

bool g_verbose = false;
std::mutex g_logMutex;

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail {

void
logMessage(const char *level, const std::string &msg)
{
    if (!g_verbose && std::string(level) == "info")
        return;
    std::lock_guard<std::mutex> lock(g_logMutex);
    std::fprintf(stderr, "[sara:%s] %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace sara
