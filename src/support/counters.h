#ifndef SARA_SUPPORT_COUNTERS_H
#define SARA_SUPPORT_COUNTERS_H

/**
 * @file
 * Per-unit performance-counter architecture. Every PCU/PMU/AG engine
 * and NoC router cell accumulates cycle-exact counters (busy cycles,
 * stalls by cause, idle cycles, firings, bytes moved, FIFO-occupancy
 * high-water) into a CounterFile keyed by unit id — the software
 * analogue of a hardware perf-counter dump, and the data source for
 * `sarac --counters`, the fabric-utilization heatmap, the per-region
 * Chrome-trace counter tracks, and the `--json` run report.
 *
 * Invariant (asserted in tests/test_counters.cc): summing any
 * `stall.<cause>` counter over all unit blocks reproduces the global
 * stall-cause accounting in SimResult::stallTotals exactly — the
 * counter file is a lossless re-keying of the same cycle attribution,
 * never a second bookkeeping that can drift.
 *
 * Region-parallel runs (DESIGN.md §4.12): the file is assembled once,
 * after the region threads join, from per-engine stats and FIFO
 * high-water marks — no cross-thread counter mutation ever happens.
 * Every cycle-attributed counter is identical to the sequential run
 * (asserted in tests/test_sim.cc, CountersIdenticalUnderParallelRun);
 * the one documented exception is `occ_peak` on cut streams, whose
 * producer-side occupancy view is conservative (credits return only
 * at quantum boundaries) and may read higher than sequential.
 *
 * Counters inside a block keep insertion order (deterministic output:
 * two runs of the same compiled graph render byte-identically, which
 * is what the golden test checks).
 */

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sara::json {
class Writer;
}

namespace sara::telemetry {

/** One unit's (or router cell's) counter set. */
struct CounterBlock
{
    std::string id;   ///< Unit name or "router(x,y)".
    std::string kind; ///< "pcu", "pmu", "ag", or "router".
    int x = -1, y = -1; ///< Grid placement (-1: unplaced / fringe).
    /** Named counters in insertion order (deterministic rendering). */
    std::vector<std::pair<std::string, uint64_t>> counters;

    /** Set (overwrite-or-append) a counter. */
    void set(const std::string &name, uint64_t value);
    /** Add to a counter (creating it at zero). */
    void add(const std::string &name, uint64_t delta);
    /** Read a counter (0 when absent). */
    uint64_t get(const std::string &name) const;
};

/** The whole dump: one block per unit, keyed by id. */
class CounterFile
{
  public:
    /** Find-or-create the block for `id` (insertion order kept). */
    CounterBlock &block(const std::string &id);
    /** Lookup; nullptr when absent. */
    const CounterBlock *find(const std::string &id) const;
    CounterBlock *findMutable(const std::string &id);

    const std::vector<CounterBlock> &blocks() const { return blocks_; }
    bool empty() const { return blocks_.empty(); }
    size_t size() const { return blocks_.size(); }

    /** Sum `counter` over every block (optionally one `kind` only). */
    uint64_t total(const std::string &counter) const;
    uint64_t total(const std::string &counter,
                   const std::string &kind) const;

    /** Emit as a JSON array of blocks:
     *  [{"id","kind","x","y","counters":{...}}, ...]. */
    void writeJson(json::Writer &j) const;

  private:
    std::vector<CounterBlock> blocks_;
    std::map<std::string, size_t> index_;
};

/** Per-unit counter table (engines only; router cells summarized). */
std::string renderCounterTable(const CounterFile &cf);

/**
 * rows x cols text heatmap of fabric utilization: each core-grid cell
 * shows busy/total on a 10-step character ramp; fringe AG columns
 * (x = -1, x = cols) are outside the grid and appear in the table
 * only. `totalCycles` is the run length the busy counters divide by.
 */
std::string renderHeatmap(const CounterFile &cf, int rows, int cols,
                          uint64_t totalCycles);

/** The full `sarac --counters` payload: table + router summary +
 *  heatmap (golden-checked in tests, so keep it deterministic). */
std::string renderCounterReport(const CounterFile &cf, int rows,
                                int cols, uint64_t totalCycles);

} // namespace sara::telemetry

#endif // SARA_SUPPORT_COUNTERS_H
