#ifndef SARA_SUPPORT_JSON_H
#define SARA_SUPPORT_JSON_H

/**
 * @file
 * Minimal JSON support: a streaming writer for the machine-readable
 * run reports (`sarac --json`, `BENCH_*.json`) and Chrome traces, and
 * a small recursive-descent parser used by tests to schema-check what
 * the writers emit. No external dependencies, no clever tricks —
 * reports are small and written once per run.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sara::json {

/** Escape `s` for embedding inside a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/** Format a double as a JSON number (finite; NaN/inf become null). */
std::string number(double v);

/**
 * Streaming JSON writer with automatic comma management. Usage:
 *
 *   Writer w;
 *   w.beginObject();
 *   w.kv("cycles", 123).key("units").beginArray(); ... w.endArray();
 *   w.endObject();
 *   std::string doc = w.str();
 *
 * The writer panics on gross misuse (value without key inside an
 * object is not detected, but unbalanced begin/end is).
 */
class Writer
{
  public:
    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();
    Writer &key(const std::string &k);
    Writer &value(const std::string &v);
    Writer &value(const char *v);
    Writer &value(double v);
    Writer &value(int64_t v);
    Writer &value(uint64_t v);
    Writer &value(int v);
    Writer &value(bool v);
    Writer &null();

    template <typename T>
    Writer &
    kv(const std::string &k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Finished document; panics if begin/end are unbalanced. */
    const std::string &str() const;

  private:
    void comma();

    std::string out_;
    std::vector<char> stack_; ///< '{' or '[' per open scope.
    bool needComma_ = false;
    bool afterKey_ = false;
};

/** Parsed JSON value (tests, schema checks, and the graph frontend). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;

    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj; ///< Insertion order.

    /**
     * Byte offset of this value's first character in the parsed text.
     * Consumers that keep the source around (the graph loader) can turn
     * it into a line:column with lineCol() for diagnostics; computing
     * positions lazily keeps the parse itself O(n).
     */
    size_t offset = 0;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    /** find() that fatal()s when the key is missing. */
    const Value &at(const std::string &key) const;
};

/**
 * Parse a complete JSON document; fatal()s on malformed input with the
 * offending line:column in the message. Strict where it matters:
 * numbers must match the JSON grammar (nan/inf/hex literals are
 * rejected), \uXXXX escapes decode to UTF-8 (surrogate pairs
 * included), unescaped control characters in strings are errors, and
 * nesting is capped at 256 levels so hostile input can't blow the
 * parser's stack.
 */
Value parse(const std::string &text);

/**
 * 1-based {line, column} of byte `offset` in `text` (clamped to the
 * end). Pairs with Value::offset for post-parse diagnostics.
 */
std::pair<int, int> lineCol(const std::string &text, size_t offset);

} // namespace sara::json

#endif // SARA_SUPPORT_JSON_H
