#include "support/counters.h"

#include <algorithm>
#include <cstdio>

#include "support/json.h"
#include "support/table.h"

namespace sara::telemetry {

// ---------------------------------------------------------------------------
// CounterBlock
// ---------------------------------------------------------------------------

void
CounterBlock::set(const std::string &name, uint64_t value)
{
    for (auto &[k, v] : counters) {
        if (k == name) {
            v = value;
            return;
        }
    }
    counters.emplace_back(name, value);
}

void
CounterBlock::add(const std::string &name, uint64_t delta)
{
    for (auto &[k, v] : counters) {
        if (k == name) {
            v += delta;
            return;
        }
    }
    counters.emplace_back(name, delta);
}

uint64_t
CounterBlock::get(const std::string &name) const
{
    for (const auto &[k, v] : counters)
        if (k == name)
            return v;
    return 0;
}

// ---------------------------------------------------------------------------
// CounterFile
// ---------------------------------------------------------------------------

CounterBlock &
CounterFile::block(const std::string &id)
{
    auto it = index_.find(id);
    if (it != index_.end())
        return blocks_[it->second];
    index_.emplace(id, blocks_.size());
    blocks_.emplace_back();
    blocks_.back().id = id;
    return blocks_.back();
}

const CounterBlock *
CounterFile::find(const std::string &id) const
{
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &blocks_[it->second];
}

CounterBlock *
CounterFile::findMutable(const std::string &id)
{
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &blocks_[it->second];
}

uint64_t
CounterFile::total(const std::string &counter) const
{
    uint64_t sum = 0;
    for (const auto &b : blocks_)
        sum += b.get(counter);
    return sum;
}

uint64_t
CounterFile::total(const std::string &counter,
                   const std::string &kind) const
{
    uint64_t sum = 0;
    for (const auto &b : blocks_)
        if (b.kind == kind)
            sum += b.get(counter);
    return sum;
}

void
CounterFile::writeJson(json::Writer &j) const
{
    j.beginArray();
    for (const auto &b : blocks_) {
        j.beginObject();
        j.kv("id", b.id);
        j.kv("kind", b.kind);
        j.kv("x", b.x);
        j.kv("y", b.y);
        j.key("counters").beginObject();
        for (const auto &[k, v] : b.counters)
            j.kv(k, v);
        j.endObject();
        j.endObject();
    }
    j.endArray();
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string
renderCounterTable(const CounterFile &cf)
{
    Table t({"unit", "kind", "place", "firings", "skips", "busy",
             "stall", "idle", "bytes", "occ-peak"});
    for (const auto &b : cf.blocks()) {
        if (b.kind == "router")
            continue;
        uint64_t stall = 0;
        for (const auto &[k, v] : b.counters)
            if (k.rfind("stall.", 0) == 0)
                stall += v;
        char place[32];
        std::snprintf(place, sizeof place, "(%d,%d)", b.x, b.y);
        t.addRow({b.id, b.kind, place, std::to_string(b.get("firings")),
                  std::to_string(b.get("skips")),
                  std::to_string(b.get("busy")), std::to_string(stall),
                  std::to_string(b.get("idle")),
                  std::to_string(b.get("bytes")),
                  std::to_string(b.get("occ_peak"))});
    }
    return t.str();
}

std::string
renderHeatmap(const CounterFile &cf, int rows, int cols,
              uint64_t totalCycles)
{
    // 10-step intensity ramp; ' ' marks cells with no placed engine.
    static const char kRamp[] = " .:-=+*#%@";
    std::vector<double> util(static_cast<size_t>(rows * cols), -1.0);
    int fringe = 0;
    for (const auto &b : cf.blocks()) {
        if (b.kind == "router")
            continue;
        if (b.x < 0 || b.x >= cols || b.y < 0 || b.y >= rows) {
            ++fringe;
            continue;
        }
        double u = totalCycles
                       ? static_cast<double>(b.get("busy")) /
                             static_cast<double>(totalCycles)
                       : 0.0;
        double &cell = util[static_cast<size_t>(b.y * cols + b.x)];
        // Colocated engines (a PMU's port next to its storage): the
        // cell shows the hottest occupant.
        cell = std::max(cell, u);
    }

    std::string out = "fabric utilization (busy cycles / " +
                      std::to_string(totalCycles) + " total, " +
                      std::to_string(cols) + "x" + std::to_string(rows) +
                      "):\n";
    std::string border = "    +" + std::string(cols, '-') + "+\n";
    out += border;
    for (int y = rows - 1; y >= 0; --y) {
        char label[8];
        std::snprintf(label, sizeof label, "%3d |", y);
        out += label;
        for (int x = 0; x < cols; ++x) {
            double u = util[static_cast<size_t>(y * cols + x)];
            char c;
            if (u < 0.0) {
                c = ' ';
            } else {
                int step = static_cast<int>(u * 10.0);
                step = std::clamp(step, 0, 9);
                if (step == 0 && u >= 0.0)
                    step = 1; // A placed engine is never blank.
                c = kRamp[step];
            }
            out += c;
        }
        out += "|\n";
    }
    out += border;
    out += "    x: 0.." + std::to_string(cols - 1) +
           " left to right; ramp ' '=unused .<20% :<30% -<40% =<50% "
           "+<60% *<70% #<80% %<90% @>=90%\n";
    if (fringe > 0)
        out += "    (" + std::to_string(fringe) +
               " fringe AG engines at x=-1/x=" + std::to_string(cols) +
               " listed in the table only)\n";
    return out;
}

std::string
renderCounterReport(const CounterFile &cf, int rows, int cols,
                    uint64_t totalCycles)
{
    std::string out = "-- per-unit performance counters --\n";
    out += renderCounterTable(cf);

    uint64_t routerCells = 0, traversals = 0, waitCycles = 0;
    for (const auto &b : cf.blocks()) {
        if (b.kind != "router")
            continue;
        ++routerCells;
        traversals += b.get("traversals");
        waitCycles += b.get("wait_cycles");
    }
    if (routerCells > 0)
        out += "routers: " + std::to_string(routerCells) +
               " active cells, " + std::to_string(traversals) +
               " traversals, " + std::to_string(waitCycles) +
               " flit-wait cycles (per-link detail: --noc-stats)\n";
    out += renderHeatmap(cf, rows, cols, totalCycles);
    return out;
}

} // namespace sara::telemetry
