#include "support/hostprof.h"

#include <chrono>

namespace sara::telemetry {

std::atomic<bool> HostProfiler::enabledFlag_{false};
std::atomic<uint8_t> HostProfiler::currentPhase_{0};

const char *
hostPhaseName(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Other: return "other";
      case HostPhase::Scheduler: return "scheduler";
      case HostPhase::CvWait: return "cv-wait";
      case HostPhase::FirePath: return "fire-path";
      case HostPhase::NocArb: return "noc-arb";
      case HostPhase::Dram: return "dram";
    }
    return "?";
}

HostProfiler &
HostProfiler::global()
{
    static HostProfiler instance;
    return instance;
}

HostProfiler::~HostProfiler()
{
    stop();
}

void
HostProfiler::start(uint32_t periodUs)
{
    if (running_)
        return;
    stopFlag_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread([this, periodUs] {
        while (!stopFlag_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(periodUs));
            uint8_t phase =
                currentPhase_.load(std::memory_order_relaxed);
            if (phase < kNumHostPhases)
                counts_[phase].fetch_add(1, std::memory_order_relaxed);
        }
    });
    enabledFlag_.store(true, std::memory_order_relaxed);
    running_ = true;
}

void
HostProfiler::stop()
{
    if (!running_)
        return;
    enabledFlag_.store(false, std::memory_order_relaxed);
    stopFlag_.store(true, std::memory_order_relaxed);
    sampler_.join();
    running_ = false;
}

void
HostProfiler::clearSamples()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

uint64_t
HostProfiler::samples(HostPhase phase) const
{
    return counts_[static_cast<int>(phase)].load(
        std::memory_order_relaxed);
}

uint64_t
HostProfiler::totalSamples() const
{
    uint64_t sum = 0;
    for (const auto &c : counts_)
        sum += c.load(std::memory_order_relaxed);
    return sum;
}

} // namespace sara::telemetry
