#include "support/telemetry.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "support/json.h"
#include "support/logging.h"

namespace sara::telemetry {

namespace {

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

uint64_t
Registry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
Registry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

std::map<std::string, uint64_t>
Registry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::map<std::string, double>
Registry::gaugeSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
}

std::string
Registry::str() const
{
    std::ostringstream os;
    for (const auto &[name, v] : counters_)
        os << name << " = " << v << "\n";
    for (const auto &[name, v] : gauges_)
        os << name << " = " << v << "\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

double
Span::stat(const std::string &key, double fallback) const
{
    for (const auto &[k, v] : stats)
        if (k == key)
            return v;
    return fallback;
}

SpanRecorder::SpanRecorder() : epochNs_(nowNs()) {}

double
SpanRecorder::nowMs() const
{
    return static_cast<double>(nowNs() - epochNs_) / 1e6;
}

int
SpanRecorder::begin(const std::string &name)
{
    if (!enabled_)
        return -1;
    Span s;
    s.name = name;
    s.startMs = nowMs();
    s.depth = static_cast<int>(open_.size());
    spans_.push_back(std::move(s));
    int idx = static_cast<int>(spans_.size()) - 1;
    open_.push_back(idx);
    return idx;
}

void
SpanRecorder::end(int idx)
{
    if (idx < 0)
        return;
    SARA_ASSERT(!open_.empty() && open_.back() == idx,
                "span ", idx, " closed out of LIFO order");
    open_.pop_back();
    spans_[idx].durMs = nowMs() - spans_[idx].startMs;
}

void
SpanRecorder::stat(int idx, const std::string &key, double value)
{
    if (idx < 0)
        return;
    SARA_ASSERT(idx < static_cast<int>(spans_.size()),
                "stat on unknown span ", idx);
    spans_[idx].stats.emplace_back(key, value);
}

const Span *
SpanRecorder::find(const std::string &name) const
{
    for (const auto &s : spans_)
        if (s.name == name)
            return &s;
    return nullptr;
}

double
SpanRecorder::ms(const std::string &name) const
{
    const Span *s = find(name);
    return s ? s->durMs : 0.0;
}

void
SpanRecorder::clear()
{
    spans_.clear();
    open_.clear();
    epochNs_ = nowNs();
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

void
TimeSeries::sample(uint64_t t, double value)
{
    if (!samples_.empty()) {
        auto &[lastT, lastV] = samples_.back();
        if (t <= lastT + interval_ - 1) {
            // Too close to the previous sample: keep the tail exact
            // by overwriting (monotone time assumed).
            if (t >= lastT) {
                lastT = t;
                lastV = value;
            }
            return;
        }
    }
    samples_.emplace_back(t, value);
    if (samples_.size() >= maxSamples_) {
        // Halve the resolution: keep every other sample (always the
        // last one) and double the spacing threshold.
        size_t kept = 0;
        for (size_t i = samples_.size() & 1 ? 0 : 1; i < samples_.size();
             i += 2)
            samples_[kept++] = samples_[i];
        samples_.resize(kept);
        interval_ *= 2;
    }
}

// ---------------------------------------------------------------------------
// ChromeTraceWriter
// ---------------------------------------------------------------------------

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
{
    f_ = std::fopen(path.c_str(), "w");
    if (!f_) {
        warn("cannot open trace file ", path);
        return;
    }
    std::fputs("[\n", f_);
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::emit(const std::string &event)
{
    if (!f_)
        return;
    if (!first_)
        std::fputs(",\n", f_);
    first_ = false;
    std::fputs(event.c_str(), f_);
    ++events_;
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, json::escape(name).c_str());
    emit(buf);
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  pid, tid, json::escape(name).c_str());
    emit(buf);
}

void
ChromeTraceWriter::complete(int pid, int tid, const std::string &name,
                            double tsUs, double durUs)
{
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%s,\"dur\":%s}",
                  json::escape(name).c_str(), pid, tid,
                  json::number(tsUs).c_str(), json::number(durUs).c_str());
    emit(buf);
}

void
ChromeTraceWriter::counter(int pid, const std::string &name, double tsUs,
                           const std::string &key, double value)
{
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":%s,"
                  "\"args\":{\"%s\":%s}}",
                  json::escape(name).c_str(), pid,
                  json::number(tsUs).c_str(), json::escape(key).c_str(),
                  json::number(value).c_str());
    emit(buf);
}

void
ChromeTraceWriter::instant(int pid, int tid, const std::string &name,
                           double tsUs)
{
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"i\",\"pid\":%d,"
                  "\"tid\":%d,\"ts\":%s,\"s\":\"t\"}",
                  json::escape(name).c_str(), pid, tid,
                  json::number(tsUs).c_str());
    emit(buf);
}

void
ChromeTraceWriter::close()
{
    if (!f_)
        return;
    std::fputs("\n]\n", f_);
    std::fclose(f_);
    f_ = nullptr;
}

} // namespace sara::telemetry
