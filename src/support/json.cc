#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/logging.h"

namespace sara::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral values print without an exponent or trailing zeros so
    // cycle counts stay exact and diffs stay readable.
    if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void
Writer::comma()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // The key already emitted its separator.
    }
    if (needComma_)
        out_ += ',';
    needComma_ = true;
}

Writer &
Writer::beginObject()
{
    comma();
    out_ += '{';
    stack_.push_back('{');
    needComma_ = false;
    return *this;
}

Writer &
Writer::endObject()
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '{',
                "json: endObject without beginObject");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    return *this;
}

Writer &
Writer::beginArray()
{
    comma();
    out_ += '[';
    stack_.push_back('[');
    needComma_ = false;
    return *this;
}

Writer &
Writer::endArray()
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '[',
                "json: endArray without beginArray");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    return *this;
}

Writer &
Writer::key(const std::string &k)
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '{',
                "json: key outside an object");
    if (needComma_)
        out_ += ',';
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    needComma_ = true;
    afterKey_ = true;
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

Writer &
Writer::value(const char *v)
{
    return value(std::string(v));
}

Writer &
Writer::value(double v)
{
    comma();
    out_ += number(v);
    return *this;
}

Writer &
Writer::value(int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(int v)
{
    return value(static_cast<int64_t>(v));
}

Writer &
Writer::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

Writer &
Writer::null()
{
    comma();
    out_ += "null";
    return *this;
}

const std::string &
Writer::str() const
{
    SARA_ASSERT(stack_.empty(), "json: document has ", stack_.size(),
                " unclosed scopes");
    return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing key '", key, "'");
    return *v;
}

namespace {

struct Parser
{
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    char
    peek()
    {
        skipWs();
        if (p >= end)
            fatal("json: unexpected end of input");
        return *p;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("json: expected '", c, "', got '", *p, "'");
        ++p;
    }

    bool
    consume(char c)
    {
        if (p < end && peek() == c) {
            ++p;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                fatal("json: dangling escape");
            char esc = *p++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (end - p < 4)
                    fatal("json: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        fatal("json: bad \\u escape");
                }
                // Reports only ever escape control characters; emit
                // the low byte (sufficient for ASCII round trips).
                out += static_cast<char>(code < 0x80 ? code : '?');
                break;
              }
              default:
                fatal("json: unknown escape \\", esc);
            }
        }
        expect('"');
        return out;
    }

    Value
    parseValue()
    {
        Value v;
        char c = peek();
        if (c == '{') {
            ++p;
            v.kind = Value::Kind::Object;
            if (!consume('}')) {
                do {
                    std::string key = parseString();
                    expect(':');
                    v.obj.emplace_back(std::move(key), parseValue());
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            ++p;
            v.kind = Value::Kind::Array;
            if (!consume(']')) {
                do {
                    v.arr.push_back(parseValue());
                } while (consume(','));
                expect(']');
            }
        } else if (c == '"') {
            v.kind = Value::Kind::String;
            v.str = parseString();
        } else if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            size_t len = std::strlen(word);
            if (static_cast<size_t>(end - p) < len ||
                std::strncmp(p, word, len) != 0)
                fatal("json: bad literal");
            p += len;
            v.kind = Value::Kind::Bool;
            v.boolean = c == 't';
        } else if (c == 'n') {
            if (end - p < 4 || std::strncmp(p, "null", 4) != 0)
                fatal("json: bad literal");
            p += 4;
        } else {
            char *after = nullptr;
            v.num = std::strtod(p, &after);
            if (after == p)
                fatal("json: bad number at '",
                      std::string(p, std::min<size_t>(8, end - p)), "'");
            v.kind = Value::Kind::Number;
            p = after;
        }
        return v;
    }
};

} // namespace

Value
parse(const std::string &text)
{
    Parser parser{text.data(), text.data() + text.size()};
    Value v = parser.parseValue();
    parser.skipWs();
    if (parser.p != parser.end)
        fatal("json: trailing garbage after document");
    return v;
}

} // namespace sara::json
