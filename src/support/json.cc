#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/logging.h"

namespace sara::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral values print without an exponent or trailing zeros so
    // cycle counts stay exact and diffs stay readable.
    if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void
Writer::comma()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // The key already emitted its separator.
    }
    if (needComma_)
        out_ += ',';
    needComma_ = true;
}

Writer &
Writer::beginObject()
{
    comma();
    out_ += '{';
    stack_.push_back('{');
    needComma_ = false;
    return *this;
}

Writer &
Writer::endObject()
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '{',
                "json: endObject without beginObject");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    return *this;
}

Writer &
Writer::beginArray()
{
    comma();
    out_ += '[';
    stack_.push_back('[');
    needComma_ = false;
    return *this;
}

Writer &
Writer::endArray()
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '[',
                "json: endArray without beginArray");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    return *this;
}

Writer &
Writer::key(const std::string &k)
{
    SARA_ASSERT(!stack_.empty() && stack_.back() == '{',
                "json: key outside an object");
    if (needComma_)
        out_ += ',';
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    needComma_ = true;
    afterKey_ = true;
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

Writer &
Writer::value(const char *v)
{
    return value(std::string(v));
}

Writer &
Writer::value(double v)
{
    comma();
    out_ += number(v);
    return *this;
}

Writer &
Writer::value(int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(int v)
{
    return value(static_cast<int64_t>(v));
}

Writer &
Writer::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

Writer &
Writer::null()
{
    comma();
    out_ += "null";
    return *this;
}

const std::string &
Writer::str() const
{
    SARA_ASSERT(stack_.empty(), "json: document has ", stack_.size(),
                " unclosed scopes");
    return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing key '", key, "'");
    return *v;
}

namespace {

/** Containers nested deeper than this are rejected: the recursive
 *  parser would otherwise turn adversarial input (`[[[[...`) into a
 *  stack overflow instead of a clean error. */
constexpr int kMaxDepth = 256;

struct Parser
{
    const char *begin;
    const char *p;
    const char *end;
    int depth = 0;

    /** 1-based line:column of `at`, for error messages. */
    std::string
    pos(const char *at) const
    {
        int line = 1, col = 1;
        for (const char *q = begin; q < at; ++q) {
            if (*q == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return "line " + std::to_string(line) + ", column " +
               std::to_string(col);
    }

    /** All parse errors funnel through here so every diagnosis carries
     *  the offending position. Throws FatalError. */
    [[noreturn]] void
    fail(const std::string &msg, const char *at = nullptr) const
    {
        fatal("json: ", msg, " at ", pos(at ? at : p));
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    char
    peek()
    {
        skipWs();
        if (p >= end)
            fail("unexpected end of input");
        return *p;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + *p + "'");
        ++p;
    }

    bool
    consume(char c)
    {
        if (p < end && peek() == c) {
            ++p;
            return true;
        }
        return false;
    }

    unsigned
    hex4()
    {
        if (end - p < 4)
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9')
                code += h - '0';
            else if (h >= 'a' && h <= 'f')
                code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F')
                code += h - 'A' + 10;
            else
                fail("bad \\u escape", p - 1);
        }
        return code;
    }

    /** Append `code` (a Unicode scalar value) to `out` as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20)
                    fail("unescaped control character in string",
                         p - 1);
                out += c;
                continue;
            }
            if (p >= end)
                fail("dangling escape");
            const char *escAt = p - 1;
            char esc = *p++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                unsigned code = hex4();
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: must pair with \uDC00-\uDFFF.
                    if (end - p < 2 || p[0] != '\\' || p[1] != 'u')
                        fail("unpaired surrogate", escAt);
                    p += 2;
                    unsigned low = hex4();
                    if (low < 0xDC00 || low > 0xDFFF)
                        fail("bad low surrogate", escAt);
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    fail("unpaired surrogate", escAt);
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail(std::string("unknown escape \\") + esc, escAt);
            }
        }
        expect('"');
        return out;
    }

    /**
     * Numbers are validated against the JSON grammar before strtod so
     * the C library's extensions (nan, inf, 0x1p3, leading '+') are
     * rejected — a report with a NaN in it should fail loudly at the
     * producer, not parse quietly at the consumer.
     */
    double
    parseNumber()
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        if (p >= end || *p < '0' || *p > '9')
            fail("bad number", start);
        if (*p == '0') {
            ++p; // A leading zero may not be followed by digits.
        } else {
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        if (p < end && *p == '.') {
            ++p;
            if (p >= end || *p < '0' || *p > '9')
                fail("bad number: expected digits after '.'", start);
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            if (p >= end || *p < '0' || *p > '9')
                fail("bad number: empty exponent", start);
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        std::string token(start, p);
        return std::strtod(token.c_str(), nullptr);
    }

    Value
    parseValue()
    {
        Value v;
        char c = peek();
        v.offset = static_cast<size_t>(p - begin);
        if (c == '{') {
            if (++depth > kMaxDepth)
                fail("nesting deeper than " +
                     std::to_string(kMaxDepth));
            ++p;
            v.kind = Value::Kind::Object;
            if (!consume('}')) {
                do {
                    if (peek() != '"')
                        fail("expected object key");
                    std::string key = parseString();
                    expect(':');
                    v.obj.emplace_back(std::move(key), parseValue());
                } while (consume(','));
                expect('}');
            }
            --depth;
        } else if (c == '[') {
            if (++depth > kMaxDepth)
                fail("nesting deeper than " +
                     std::to_string(kMaxDepth));
            ++p;
            v.kind = Value::Kind::Array;
            if (!consume(']')) {
                do {
                    v.arr.push_back(parseValue());
                } while (consume(','));
                expect(']');
            }
            --depth;
        } else if (c == '"') {
            v.kind = Value::Kind::String;
            v.str = parseString();
        } else if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            size_t len = std::strlen(word);
            if (static_cast<size_t>(end - p) < len ||
                std::strncmp(p, word, len) != 0)
                fail("bad literal");
            p += len;
            v.kind = Value::Kind::Bool;
            v.boolean = c == 't';
        } else if (c == 'n') {
            if (end - p < 4 || std::strncmp(p, "null", 4) != 0)
                fail("bad literal");
            p += 4;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            v.num = parseNumber();
            v.kind = Value::Kind::Number;
        } else {
            fail(std::string("unexpected character '") + c + "'");
        }
        return v;
    }
};

} // namespace

Value
parse(const std::string &text)
{
    Parser parser{text.data(), text.data(), text.data() + text.size()};
    Value v = parser.parseValue();
    parser.skipWs();
    if (parser.p != parser.end)
        parser.fail("trailing garbage after document");
    return v;
}

std::pair<int, int>
lineCol(const std::string &text, size_t offset)
{
    if (offset > text.size())
        offset = text.size();
    int line = 1, col = 1;
    for (size_t i = 0; i < offset; ++i) {
        if (text[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    }
    return {line, col};
}

} // namespace sara::json
