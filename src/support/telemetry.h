#ifndef SARA_SUPPORT_TELEMETRY_H
#define SARA_SUPPORT_TELEMETRY_H

/**
 * @file
 * Lightweight metrics layer shared by the compiler, simulator, and
 * benchmark harness — the instrumentation spine the evaluation
 * figures are derived from.
 *
 * Four primitives:
 *  - Registry: named counters/gauges with a global instance that is
 *    OFF by default; when disabled every operation is a single branch
 *    so instrumented hot paths cost nothing measurable.
 *  - SpanRecorder / ScopedSpan: nested wall-clock phase timings with
 *    attached numeric stats (compile phases, Fig. 11b/c).
 *  - TimeSeries: bounded (time, value) sampler with automatic
 *    decimation — sampling a billion-cycle run keeps a fixed-size,
 *    evenly thinned series (DRAM occupancy/bandwidth tracks).
 *  - ChromeTraceWriter: emits chrome://tracing / Perfetto JSON so
 *    compile spans, engine firings, and DRAM counter tracks land in
 *    one inspectable timeline.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sara::telemetry {

// ---------------------------------------------------------------------------
// Registry: named counters and gauges.
// ---------------------------------------------------------------------------

/**
 * Thread-safe when enabled: mutations take an internal lock so
 * parallel batch jobs (src/jobs) can bump shared counters. The
 * disabled fast path stays a single unsynchronized branch.
 */
class Registry
{
  public:
    /** Process-wide instance; disabled by default. */
    static Registry &global();

    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Bump a named counter (no-op when disabled). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mu_);
        counters_[name] += delta;
    }

    /** Set a named gauge to its latest value (no-op when disabled). */
    void
    set(const std::string &name, double value)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mu_);
        gauges_[name] = value;
    }

    /** Track a gauge's maximum (no-op when disabled). */
    void
    setMax(const std::string &name, double value)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mu_);
        auto it = gauges_.find(name);
        if (it == gauges_.end() || it->second < value)
            gauges_[name] = value;
    }

    uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    /** Locked copies of every metric — safe while writers are live
     *  (the sarad stats endpoint samples a running daemon). */
    std::map<std::string, uint64_t> counterSnapshot() const;
    std::map<std::string, double> gaugeSnapshot() const;

    /** Direct views — only safe once concurrent writers have quiesced
     *  (e.g. after a batch drains); use counter()/gauge() otherwise. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }

    void clear();

    /** Human-readable dump (one "name = value" line per metric). */
    std::string str() const;

  private:
    bool enabled_ = false;
    mutable std::mutex mu_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

// ---------------------------------------------------------------------------
// Spans: nested wall-clock phases with attached stats.
// ---------------------------------------------------------------------------

/** One recorded phase. Times are milliseconds since the recorder's
 *  epoch (its construction or last clear()). */
struct Span
{
    std::string name;
    double startMs = 0.0;
    double durMs = 0.0;
    int depth = 0; ///< Nesting depth when opened (0 = top level).
    std::vector<std::pair<std::string, double>> stats;

    double stat(const std::string &key, double fallback = 0.0) const;
};

/**
 * Records a tree of spans. Spans must close LIFO (enforced); use
 * ScopedSpan so scope exit closes them. Copyable — a finished
 * recording travels inside result structs.
 */
class SpanRecorder
{
  public:
    SpanRecorder();

    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Open a span; returns its index (or -1 when disabled). */
    int begin(const std::string &name);
    /** Close the span `idx` (must be the innermost open one). */
    void end(int idx);
    /** Attach a numeric stat to an open or closed span. */
    void stat(int idx, const std::string &key, double value);

    /** Milliseconds since the epoch (for callers aligning events). */
    double nowMs() const;

    const std::vector<Span> &spans() const { return spans_; }
    /** First span with `name`, or nullptr. */
    const Span *find(const std::string &name) const;
    /** Duration of the first span with `name` (0 when absent). */
    double ms(const std::string &name) const;

    void clear();

  private:
    bool enabled_ = true;
    int64_t epochNs_ = 0;
    std::vector<Span> spans_;
    std::vector<int> open_; ///< Stack of open span indices.
};

/** RAII handle opening a span for the current scope. */
class ScopedSpan
{
  public:
    ScopedSpan(SpanRecorder &recorder, const std::string &name)
        : recorder_(&recorder), idx_(recorder.begin(name))
    {
    }
    ~ScopedSpan() { end(); }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a stat to this span. */
    void
    stat(const std::string &key, double value)
    {
        if (idx_ >= 0)
            recorder_->stat(idx_, key, value);
    }

    /** Close early (idempotent; the destructor becomes a no-op). */
    void
    end()
    {
        if (idx_ >= 0)
            recorder_->end(idx_);
        idx_ = -1;
    }

  private:
    SpanRecorder *recorder_;
    int idx_;
};

// ---------------------------------------------------------------------------
// TimeSeries: bounded sampler with automatic decimation.
// ---------------------------------------------------------------------------

/**
 * Append-only (time, value) series that never exceeds `maxSamples`:
 * a sample closer than `interval` to the last one overwrites it (so
 * the final value at the tail stays exact), and filling up halves the
 * resolution (every other sample dropped, interval doubled). Sampling
 * cost is O(1) amortized; memory is O(maxSamples) regardless of run
 * length.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(size_t maxSamples = 4096,
                        uint64_t minInterval = 1)
        : maxSamples_(maxSamples < 16 ? 16 : maxSamples),
          minInterval_(minInterval < 1 ? 1 : minInterval),
          interval_(minInterval_)
    {
    }

    void sample(uint64_t t, double value);

    bool empty() const { return samples_.empty(); }
    size_t size() const { return samples_.size(); }
    uint64_t interval() const { return interval_; }
    const std::vector<std::pair<uint64_t, double>> &samples() const
    {
        return samples_;
    }

    /** Drop all samples and start a fresh epoch: the decimation
     *  stride rewinds to its construction-time minimum, so a reused
     *  series resolves short runs as finely as a fresh one. */
    void
    clear()
    {
        samples_.clear();
        interval_ = minInterval_;
    }

  private:
    std::vector<std::pair<uint64_t, double>> samples_;
    size_t maxSamples_;
    uint64_t minInterval_;
    uint64_t interval_;
};

// ---------------------------------------------------------------------------
// Chrome trace writer.
// ---------------------------------------------------------------------------

/**
 * Writes the Chrome trace-event JSON array format understood by
 * chrome://tracing and Perfetto. Timestamps are microseconds; the
 * simulator maps one cycle to one microsecond so the timeline reads
 * in cycles directly.
 */
class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(const std::string &path);
    ~ChromeTraceWriter();
    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** False when the file could not be opened (writes are no-ops). */
    bool ok() const { return f_ != nullptr; }
    size_t eventsWritten() const { return events_; }

    void processName(int pid, const std::string &name);
    void threadName(int pid, int tid, const std::string &name);
    /** Complete ("X") event: a named interval on (pid, tid). */
    void complete(int pid, int tid, const std::string &name, double tsUs,
                  double durUs);
    /** Counter ("C") event: one named track of key->value. */
    void counter(int pid, const std::string &name, double tsUs,
                 const std::string &key, double value);
    /** Instant ("i") event: a point-in-time marker on (pid, tid) —
     *  used for hang/failure annotations on the timeline. */
    void instant(int pid, int tid, const std::string &name, double tsUs);

    /** Flush and close; further writes are no-ops. */
    void close();

  private:
    void emit(const std::string &event);

    std::FILE *f_ = nullptr;
    bool first_ = true;
    size_t events_ = 0;
};

} // namespace sara::telemetry

#endif // SARA_SUPPORT_TELEMETRY_H
