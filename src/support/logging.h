#ifndef SARA_SUPPORT_LOGGING_H
#define SARA_SUPPORT_LOGGING_H

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, malformed input programs). debug()/inform()/
 * warn() report status without stopping execution.
 *
 * Output is filtered by a global log level (Warn by default, so
 * debug/info are silent). The SARA_LOG_LEVEL environment variable
 * (debug|info|warn|error) sets the initial level; setLogLevel()
 * overrides it at runtime. Every line carries a monotonic timestamp
 * relative to process start.
 */

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sara {

/** Raised by panic(): an internal invariant was violated (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the input or configuration is invalid (user error). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * A failure that may succeed on retry (I/O hiccup, injected compile
 * fault) — as opposed to a deterministic one, which would fail the
 * same way again. The jobs runner retries these with bounded backoff;
 * everything else fails the job on the first throw.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Message severities, least severe first. */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3, ///< panic/fatal diagnostics; never filtered.
};

/** Messages below `level` are suppressed. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

void logMessage(LogLevel level, const char *tag, const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report something that should never happen regardless of input. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage(LogLevel::Error, "panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage(LogLevel::Error, "fatal", msg);
    throw FatalError(msg);
}

/** Informative status message; no connotation of incorrect behaviour. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() > LogLevel::Info)
        return; // Skip the concatenation, not just the print.
    detail::logMessage(LogLevel::Info, "info",
                       detail::concat(std::forward<Args>(args)...));
}

/** Developer-facing detail; hidden unless SARA_LOG_LEVEL=debug. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() > LogLevel::Debug)
        return;
    detail::logMessage(LogLevel::Debug, "debug",
                       detail::concat(std::forward<Args>(args)...));
}

/** Possible-problem message; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() > LogLevel::Warn)
        return;
    detail::logMessage(LogLevel::Warn, "warn",
                       detail::concat(std::forward<Args>(args)...));
}

/** Back-compat switch: verbose shows inform() (level Info), quiet
 *  restores the Warn default. */
void setVerbose(bool verbose);
bool verbose();

/** panic() with a condition; message printed only on failure. */
#define SARA_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::sara::panic("assertion failed: ", #cond, " | ",                \
                          ::sara::detail::concat(__VA_ARGS__), " at ",       \
                          __FILE__, ":", __LINE__);                          \
        }                                                                    \
    } while (0)

} // namespace sara

#endif // SARA_SUPPORT_LOGGING_H
