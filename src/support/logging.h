#ifndef SARA_SUPPORT_LOGGING_H
#define SARA_SUPPORT_LOGGING_H

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, malformed input programs). inform()/warn()
 * report status without stopping execution.
 */

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sara {

/** Raised by panic(): an internal invariant was violated (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the input or configuration is invalid (user error). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

void logMessage(const char *level, const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report something that should never happen regardless of input. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage("panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::logMessage("fatal", msg);
    throw FatalError(msg);
}

/** Informative status message; no connotation of incorrect behaviour. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** Possible-problem message; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Globally enable/disable inform() output (warn/panic/fatal always print). */
void setVerbose(bool verbose);
bool verbose();

/** panic() with a condition; message printed only on failure. */
#define SARA_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::sara::panic("assertion failed: ", #cond, " | ",                \
                          ::sara::detail::concat(__VA_ARGS__), " at ",       \
                          __FILE__, ":", __LINE__);                          \
        }                                                                    \
    } while (0)

} // namespace sara

#endif // SARA_SUPPORT_LOGGING_H
