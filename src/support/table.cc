#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace sara {

void
Table::addRow(std::vector<std::string> row)
{
    SARA_ASSERT(row.size() == header_.size(),
                "row arity ", row.size(), " != header ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };
    emit(header_);
    for (size_t c = 0; c < header_.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-");
        os << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtX(double v, int precision)
{
    return fmt(v, precision) + "x";
}

} // namespace sara
