#ifndef SARA_SUPPORT_TABLE_H
#define SARA_SUPPORT_TABLE_H

/**
 * @file
 * ASCII table formatting used by the benchmark harness to print
 * paper-style tables and figure series.
 */

#include <string>
#include <vector>

namespace sara {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header)) {}

    /** Add a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment and a separator under the header. */
    std::string str() const;

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format with an 'x' suffix, e.g. speedups: "4.90x". */
    static std::string fmtX(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sara

#endif // SARA_SUPPORT_TABLE_H
