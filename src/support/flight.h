#ifndef SARA_SUPPORT_FLIGHT_H
#define SARA_SUPPORT_FLIGHT_H

/**
 * @file
 * Flight recorder: a fixed-size ring buffer of recent simulator events
 * (engine fires/skips, coroutine parks and wakeups, NoC link grants,
 * FIFO deliveries). Recording is O(1) — overwrite the oldest slot —
 * and events are raw integers; names are resolved only when a failure
 * dumps the timeline, so the recorder can stay on by default without
 * perturbing the hot path. On exit-4 paths (deadlock, classified hang,
 * budget overrun) the last-N events land in the structured
 * FailureReport, giving every hang diagnosis the timeline that led up
 * to it.
 *
 * Region-parallel runs keep one recorder per region (each written by
 * exactly one thread); when a cancelled parallel run must report, the
 * rings are merged deterministically by (at, region, slot index) into
 * a single ordered timeline — see Simulator::mergeRegionFlight — so
 * exit-4 FailureReports look the same under `--sim-threads > 1`.
 */

#include <cstdint>
#include <vector>

namespace sara::telemetry {

/** Event kinds; `a`/`b` meanings depend on the kind (the simulator
 *  resolves them against its graph when formatting a timeline). */
enum class FlightKind : uint8_t {
    Fire,      ///< a = unit id, b = duration cycles.
    Skip,      ///< a = unit id.
    Park,      ///< a = unit id, b = stream id (-1: DRAM window/drain).
    Wake,      ///< a = unit id, b = 1 when the wakeup was spurious.
    LinkGrant, ///< a = stream id, b = link index.
    Deliver,   ///< a = stream id.
};

const char *flightKindName(FlightKind kind);

struct FlightEvent
{
    uint64_t at = 0; ///< Simulated cycle.
    FlightKind kind = FlightKind::Fire;
    int32_t a = -1;
    int32_t b = -1;
};

class FlightRecorder
{
  public:
    /** `capacity` 0 disables recording entirely. */
    explicit FlightRecorder(size_t capacity = 256) { reset(capacity); }

    void
    reset(size_t capacity)
    {
        buf_.assign(capacity, FlightEvent{});
        head_ = 0;
        size_ = 0;
        total_ = 0;
    }

    bool enabled() const { return !buf_.empty(); }
    size_t capacity() const { return buf_.size(); }
    size_t size() const { return size_; }
    /** Events ever recorded (including overwritten ones). */
    uint64_t totalRecorded() const { return total_; }

    void
    record(FlightKind kind, uint64_t at, int32_t a, int32_t b = -1)
    {
        if (buf_.empty())
            return;
        buf_[head_] = FlightEvent{at, kind, a, b};
        head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
        if (size_ < buf_.size())
            ++size_;
        ++total_;
    }

    /** Retained events, oldest first. */
    std::vector<FlightEvent>
    events() const
    {
        std::vector<FlightEvent> out;
        out.reserve(size_);
        size_t start = size_ < buf_.size() ? 0 : head_;
        for (size_t i = 0; i < size_; ++i)
            out.push_back(buf_[(start + i) % buf_.size()]);
        return out;
    }

  private:
    std::vector<FlightEvent> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
    uint64_t total_ = 0;
};

inline const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
      case FlightKind::Fire: return "fire";
      case FlightKind::Skip: return "skip";
      case FlightKind::Park: return "park";
      case FlightKind::Wake: return "wake";
      case FlightKind::LinkGrant: return "link-grant";
      case FlightKind::Deliver: return "deliver";
    }
    return "?";
}

} // namespace sara::telemetry

#endif // SARA_SUPPORT_FLIGHT_H
