#include "support/digraph.h"

#include <algorithm>
#include <queue>

#include "support/logging.h"

namespace sara {

void
Digraph::addEdge(size_t src, size_t dst, bool dedup)
{
    SARA_ASSERT(src < size() && dst < size(),
                "edge (", src, ",", dst, ") out of range ", size());
    if (dedup && hasEdge(src, dst))
        return;
    succs_[src].push_back(dst);
    preds_[dst].push_back(src);
}

void
Digraph::removeEdge(size_t src, size_t dst)
{
    auto &ss = succs_[src];
    auto it = std::find(ss.begin(), ss.end(), dst);
    if (it == ss.end())
        return;
    ss.erase(it);
    auto &ps = preds_[dst];
    ps.erase(std::find(ps.begin(), ps.end(), src));
}

bool
Digraph::hasEdge(size_t src, size_t dst) const
{
    const auto &ss = succs_[src];
    return std::find(ss.begin(), ss.end(), dst) != ss.end();
}

size_t
Digraph::numEdges() const
{
    size_t total = 0;
    for (const auto &ss : succs_)
        total += ss.size();
    return total;
}

std::optional<std::vector<size_t>>
Digraph::topoSort() const
{
    std::vector<size_t> indeg(size(), 0);
    for (size_t n = 0; n < size(); ++n)
        for (size_t s : succs_[n])
            ++indeg[s];

    // Min-heap on node id for a deterministic order.
    std::priority_queue<size_t, std::vector<size_t>, std::greater<>> ready;
    for (size_t n = 0; n < size(); ++n)
        if (indeg[n] == 0)
            ready.push(n);

    std::vector<size_t> order;
    order.reserve(size());
    while (!ready.empty()) {
        size_t n = ready.top();
        ready.pop();
        order.push_back(n);
        for (size_t s : succs_[n])
            if (--indeg[s] == 0)
                ready.push(s);
    }
    if (order.size() != size())
        return std::nullopt;
    return order;
}

std::vector<bool>
Digraph::reachableFrom(size_t src) const
{
    std::vector<bool> seen(size(), false);
    std::vector<size_t> stack{src};
    seen[src] = true;
    while (!stack.empty()) {
        size_t n = stack.back();
        stack.pop_back();
        for (size_t s : succs_[n]) {
            if (!seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    return seen;
}

bool
Digraph::reachable(size_t src, size_t dst, bool skip_direct) const
{
    std::vector<bool> seen(size(), false);
    std::vector<size_t> stack;
    for (size_t s : succs_[src]) {
        if (skip_direct && s == dst)
            continue;
        if (!seen[s]) {
            seen[s] = true;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        size_t n = stack.back();
        stack.pop_back();
        if (n == dst)
            return true;
        for (size_t s : succs_[n]) {
            if (!seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    return false;
}

void
Digraph::transitiveReduction()
{
    auto order = topoSort();
    if (!order)
        panic("transitiveReduction requires a DAG");

    // For each node u (in reverse topological order) compute the set of
    // nodes reachable through paths of length >= 2 and drop direct edges
    // to them.
    for (size_t u = 0; u < size(); ++u) {
        // Candidate edges sorted for determinism.
        std::vector<size_t> outs = succs_[u];
        std::sort(outs.begin(), outs.end());
        for (size_t v : outs) {
            if (reachable(u, v, /*skip_direct=*/true))
                removeEdge(u, v);
        }
    }
}

std::vector<size_t>
Digraph::scc() const
{
    // Iterative Tarjan.
    const size_t n = size();
    std::vector<size_t> comp(n, SIZE_MAX), low(n, 0), disc(n, SIZE_MAX);
    std::vector<bool> onStack(n, false);
    std::vector<size_t> stack;
    size_t timer = 0, ncomp = 0;

    struct Frame { size_t node; size_t child; };
    for (size_t root = 0; root < n; ++root) {
        if (disc[root] != SIZE_MAX)
            continue;
        std::vector<Frame> frames{{root, 0}};
        disc[root] = low[root] = timer++;
        stack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            auto &[node, child] = frames.back();
            if (child < succs_[node].size()) {
                size_t next = succs_[node][child++];
                if (disc[next] == SIZE_MAX) {
                    disc[next] = low[next] = timer++;
                    stack.push_back(next);
                    onStack[next] = true;
                    frames.push_back({next, 0});
                } else if (onStack[next]) {
                    low[node] = std::min(low[node], disc[next]);
                }
            } else {
                if (low[node] == disc[node]) {
                    while (true) {
                        size_t w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        comp[w] = ncomp;
                        if (w == node)
                            break;
                    }
                    ++ncomp;
                }
                size_t done = node;
                frames.pop_back();
                if (!frames.empty()) {
                    size_t parent = frames.back().node;
                    low[parent] = std::min(low[parent], low[done]);
                }
            }
        }
    }
    return comp;
}

} // namespace sara
