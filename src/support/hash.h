#ifndef SARA_SUPPORT_HASH_H
#define SARA_SUPPORT_HASH_H

/**
 * @file
 * Content hashing for the artifact cache. Two primitives:
 *
 *  - Sha256: an incremental SHA-256 implementation (FIPS 180-4) used
 *    to derive content-addressed cache keys and artifact payload
 *    checksums. Self-contained — no OpenSSL dependency.
 *  - fnv1a64: a cheap non-cryptographic mix for in-memory hash keys.
 *
 * Cache keys must be stable across processes and machines, which rules
 * out std::hash (implementation-defined) and anything seeded by ASLR.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sara::support {

/** Incremental SHA-256. update() any number of times, then digest(). */
class Sha256
{
  public:
    Sha256();

    void update(const void *data, size_t len);
    void
    update(const std::string &s)
    {
        update(s.data(), s.size());
    }

    /** Finalize and return the 32-byte digest. The object must not be
     *  updated afterwards. */
    std::array<uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hex();

    /** One-shot convenience. */
    static std::string hexOf(const std::string &data);

  private:
    void compress(const uint8_t *block);

    std::array<uint32_t, 8> state_;
    uint64_t bitLen_ = 0;
    std::array<uint8_t, 64> buf_;
    size_t bufLen_ = 0;
    bool finalized_ = false;
};

/** FNV-1a 64-bit over a byte range. */
uint64_t fnv1a64(const void *data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

/** Render a byte digest as lowercase hex. */
std::string toHex(const uint8_t *data, size_t len);

} // namespace sara::support

#endif // SARA_SUPPORT_HASH_H
