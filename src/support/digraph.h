#ifndef SARA_SUPPORT_DIGRAPH_H
#define SARA_SUPPORT_DIGRAPH_H

/**
 * @file
 * A small generic directed-graph utility used throughout the compiler:
 * dependency graphs (control-reduction analysis), dataflow graphs
 * (partitioning), and the VUDFG all build on it.
 *
 * Nodes are dense integer ids [0, n). Edges are stored as adjacency
 * lists in both directions.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace sara {

/** Dense-id directed graph with forward and reverse adjacency. */
class Digraph
{
  public:
    Digraph() = default;
    explicit Digraph(size_t n) : succs_(n), preds_(n) {}

    /** Number of nodes. */
    size_t size() const { return succs_.size(); }

    /** Append a new node; returns its id. */
    size_t
    addNode()
    {
        succs_.emplace_back();
        preds_.emplace_back();
        return succs_.size() - 1;
    }

    /**
     * Add edge src -> dst. Duplicate edges are permitted unless
     * dedup is requested.
     */
    void addEdge(size_t src, size_t dst, bool dedup = true);

    /** Remove a single edge src -> dst if present. */
    void removeEdge(size_t src, size_t dst);

    bool hasEdge(size_t src, size_t dst) const;

    const std::vector<size_t> &succs(size_t n) const { return succs_[n]; }
    const std::vector<size_t> &preds(size_t n) const { return preds_[n]; }

    size_t numEdges() const;

    /**
     * Topological order of all nodes; std::nullopt if the graph has a
     * cycle. Ties are broken by node id for determinism.
     */
    std::optional<std::vector<size_t>> topoSort() const;

    /** True if the graph contains a directed cycle. */
    bool hasCycle() const { return !topoSort().has_value(); }

    /** Set of nodes reachable from src (including src). */
    std::vector<bool> reachableFrom(size_t src) const;

    /**
     * True if dst is reachable from src along a path of >= 1 edge,
     * optionally ignoring the direct edge src -> dst.
     */
    bool reachable(size_t src, size_t dst, bool skip_direct = false) const;

    /**
     * Transitive reduction for a DAG: removes every edge (u, v) for
     * which an alternative path u -> ... -> v of length >= 2 exists.
     * Preserves connectivity (and hence any ordering the graph encodes).
     * Panics if the graph is cyclic.
     */
    void transitiveReduction();

    /** Strongly connected components; returns component id per node. */
    std::vector<size_t> scc() const;

  private:
    std::vector<std::vector<size_t>> succs_;
    std::vector<std::vector<size_t>> preds_;
};

} // namespace sara

#endif // SARA_SUPPORT_DIGRAPH_H
