#ifndef SARA_SUPPORT_RNG_H
#define SARA_SUPPORT_RNG_H

/**
 * @file
 * Deterministic random-number helpers. Every randomized component in the
 * repository (workload data, property-test program generation, simulated
 * annealing) takes an explicit seed so runs are reproducible.
 */

#include <cstdint>
#include <random>

namespace sara {

/** A seeded convenience wrapper around std::mt19937_64. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1) : eng_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    intIn(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(eng_);
    }

    /** Uniform real in [lo, hi). */
    double
    realIn(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(eng_);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return realIn(0.0, 1.0) < p; }

    /** Pick a uniformly random element index for a container of size n. */
    size_t index(size_t n) { return static_cast<size_t>(intIn(0, n - 1)); }

    std::mt19937_64 &engine() { return eng_; }

  private:
    std::mt19937_64 eng_;
};

} // namespace sara

#endif // SARA_SUPPORT_RNG_H
