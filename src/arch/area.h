#ifndef SARA_ARCH_AREA_H
#define SARA_ARCH_AREA_H

/**
 * @file
 * Silicon-area model for Plasticine, grounding the paper's headline
 * "1.9x speedup over a Tesla V100 using only 12% of the silicon
 * area". Per-unit areas come from the Plasticine paper's 28 nm
 * synthesis results; technology scaling to the V100's 12 nm node uses
 * the same normalization the paper cites ([46]).
 */

#include "arch/plasticine.h"

namespace sara::arch {

/** Component areas in mm^2 at 28 nm (Plasticine [41], Table 3). */
struct AreaModel
{
    double pcuMm2 = 0.849;
    double pmuMm2 = 0.532;
    double agMm2 = 0.188;
    /** Network + fringe overhead as a fraction of unit area. */
    double interconnectOverhead = 0.30;
    /** Area scale factor from 28 nm to 12 nm (~0.36x). */
    double scaleTo12nm = 0.36;

    /** Total chip area at 28 nm for a configuration. */
    double chipMm2(const PlasticineSpec &spec) const;

    /** Area normalized to the V100's 12 nm process. */
    double chipMm2At12nm(const PlasticineSpec &spec) const;

    /** Fraction of a V100 die (815 mm^2) this chip occupies. */
    double fractionOfV100(const PlasticineSpec &spec) const;
};

} // namespace sara::arch

#endif // SARA_ARCH_AREA_H
