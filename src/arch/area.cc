#include "arch/area.h"

namespace sara::arch {

double
AreaModel::chipMm2(const PlasticineSpec &spec) const
{
    double units = spec.numPcus() * pcuMm2 + spec.numPmus() * pmuMm2 +
                   spec.numAgs * agMm2;
    return units * (1.0 + interconnectOverhead);
}

double
AreaModel::chipMm2At12nm(const PlasticineSpec &spec) const
{
    return chipMm2(spec) * scaleTo12nm;
}

double
AreaModel::fractionOfV100(const PlasticineSpec &spec) const
{
    const double v100Mm2 = 815.0;
    return chipMm2At12nm(spec) / v100Mm2;
}

} // namespace sara::arch
