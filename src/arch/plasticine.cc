#include "arch/plasticine.h"

namespace sara::arch {

PlasticineSpec
PlasticineSpec::paper()
{
    PlasticineSpec spec;
    spec.name = "plasticine-20x20";
    spec.rows = 20;
    spec.cols = 20;
    spec.numAgs = 20;
    return spec;
}

PlasticineSpec
PlasticineSpec::vanilla()
{
    PlasticineSpec spec;
    spec.name = "plasticine-16x8";
    spec.rows = 16;
    spec.cols = 8;
    spec.numAgs = 12;
    return spec;
}

PlasticineSpec
PlasticineSpec::tiny()
{
    PlasticineSpec spec;
    spec.name = "plasticine-tiny";
    spec.rows = 6;
    spec.cols = 6;
    spec.numAgs = 4;
    spec.pmu.capacityWords = 4096;
    return spec;
}

} // namespace sara::arch
