#ifndef SARA_ARCH_PLASTICINE_H
#define SARA_ARCH_PLASTICINE_H

/**
 * @file
 * The Plasticine RDA hardware specification consumed by the compiler
 * (resource constraints, Table I/III "HW Spec" constants) and by the
 * simulator (timing). Values follow the Plasticine paper [41] and the
 * configuration used in SARA's evaluation: a 20x20 checkerboard of
 * PCUs and PMUs plus DRAM address generators, 420 physical units
 * total, 1 GHz clock.
 */

#include <cstdint>
#include <string>

namespace sara::arch {

/** Pattern Compute Unit limits. */
struct PcuSpec
{
    int lanes = 16;        ///< SIMD width.
    int stages = 6;        ///< Pipeline stages = max vector ops per PCU.
    int maxIn = 6;         ///< Max input streams (c_I, Table III).
    int maxOut = 6;        ///< Max output streams with distinct sources (c_O).
    int fifoDepth = 16;    ///< Input buffer depth (b_d) in elements.
    int maxCounters = 8;   ///< Counter chain depth.
};

/** Pattern Memory Unit limits. */
struct PmuSpec
{
    int banks = 16;             ///< SRAM banks (vector access width).
    int64_t capacityWords = 65536; ///< 256 KB of 4-byte words.
    int maxIn = 6;
    int maxOut = 6;
    int fifoDepth = 16;
    int maxCounters = 8;
    /** Plasticine PMUs serve one read request stream at a time. */
    int readPorts = 1;
    int writePorts = 1;
};

/** Network parameters. */
struct NetSpec
{
    int hopLatency = 2;   ///< Cycles per grid hop (static network).
    int ejectLatency = 2; ///< Fixed end-point cost per stream.
    int minLatency = 4;   ///< Lower bound on any inter-unit stream.
};

/** Chip-level configuration. */
struct PlasticineSpec
{
    std::string name = "plasticine-20x20";
    int rows = 20;
    int cols = 20;
    /** DRAM address generators along the fringe. */
    int numAgs = 20;
    PcuSpec pcu;
    PmuSpec pmu;
    NetSpec net;
    double clockGhz = 1.0;

    int numPcus() const { return rows * cols / 2; }
    int numPmus() const { return rows * cols / 2; }
    int totalUnits() const { return rows * cols + numAgs; }

    /** The evaluation configuration (§IV-a: 20x20, 420 PUs, 1 GHz). */
    static PlasticineSpec paper();

    /** The original-Plasticine-paper configuration used for Table V
     *  (16x8 with DDR3). */
    static PlasticineSpec vanilla();

    /** Tiny configuration for unit tests (keeps PnR grids small). */
    static PlasticineSpec tiny();
};

} // namespace sara::arch

#endif // SARA_ARCH_PLASTICINE_H
