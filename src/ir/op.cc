#include "ir/op.h"

#include "support/logging.h"

namespace sara::ir {

int
opArity(OpKind kind)
{
    switch (kind) {
      case OpKind::Const:
      case OpKind::Iter:
        return 0;
      case OpKind::Neg:
      case OpKind::Abs:
      case OpKind::Exp:
      case OpKind::Log:
      case OpKind::Sqrt:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Relu:
      case OpKind::Floor:
      case OpKind::Not:
      case OpKind::Read:
      case OpKind::RedAdd:
      case OpKind::RedMin:
      case OpKind::RedMax:
      case OpKind::RedMul:
        return 1;
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Min:
      case OpKind::Max:
      case OpKind::Mod:
      case OpKind::And:
      case OpKind::Or:
      case OpKind::CmpLt:
      case OpKind::CmpLe:
      case OpKind::CmpEq:
      case OpKind::CmpNe:
      case OpKind::CmpGt:
      case OpKind::CmpGe:
      case OpKind::Write:
        return 2;
      case OpKind::Select:
      case OpKind::Mac:
        return 3;
    }
    panic("unknown op kind ", static_cast<int>(kind));
}

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::Const: return "const";
      case OpKind::Iter: return "iter";
      case OpKind::Neg: return "neg";
      case OpKind::Abs: return "abs";
      case OpKind::Exp: return "exp";
      case OpKind::Log: return "log";
      case OpKind::Sqrt: return "sqrt";
      case OpKind::Sigmoid: return "sigmoid";
      case OpKind::Tanh: return "tanh";
      case OpKind::Relu: return "relu";
      case OpKind::Floor: return "floor";
      case OpKind::Not: return "not";
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::Div: return "div";
      case OpKind::Min: return "min";
      case OpKind::Max: return "max";
      case OpKind::Mod: return "mod";
      case OpKind::And: return "and";
      case OpKind::Or: return "or";
      case OpKind::CmpLt: return "cmplt";
      case OpKind::CmpLe: return "cmple";
      case OpKind::CmpEq: return "cmpeq";
      case OpKind::CmpNe: return "cmpne";
      case OpKind::CmpGt: return "cmpgt";
      case OpKind::CmpGe: return "cmpge";
      case OpKind::Select: return "select";
      case OpKind::Mac: return "mac";
      case OpKind::Read: return "read";
      case OpKind::Write: return "write";
      case OpKind::RedAdd: return "redadd";
      case OpKind::RedMin: return "redmin";
      case OpKind::RedMax: return "redmax";
      case OpKind::RedMul: return "redmul";
    }
    return "?";
}

bool
isMemoryOp(OpKind kind)
{
    return kind == OpKind::Read || kind == OpKind::Write;
}

bool
isReduceOp(OpKind kind)
{
    return kind == OpKind::RedAdd || kind == OpKind::RedMin ||
           kind == OpKind::RedMax || kind == OpKind::RedMul;
}

} // namespace sara::ir
