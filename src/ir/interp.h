#ifndef SARA_IR_INTERP_H
#define SARA_IR_INTERP_H

/**
 * @file
 * Sequential reference interpreter. Executes a program exactly in
 * program order — the semantics CMMC must be consistent with. Used as
 * the correctness oracle for the spatially pipelined simulation and by
 * workload self-checks.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/program.h"

namespace sara::ir {

/** Final memory state after sequential execution. */
struct InterpResult
{
    /** Contents per tensor id (both on-chip and DRAM). */
    std::vector<std::vector<double>> tensors;
    /** Total hyperblock firings (one per innermost iteration). */
    uint64_t firings = 0;
    /** Total op executions (proxy for work). */
    uint64_t opsExecuted = 0;
};

/** Scalar evaluation of a single non-memory, non-reduce op kind. */
double evalScalar(OpKind kind, const double *args);

/** Executes `program` sequentially. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &program);

    /** Pre-set DRAM tensor contents (defaults to zeros). */
    void setTensor(TensorId id, std::vector<double> data);

    /** Run to completion and return final memory state. */
    InterpResult run();

    /** Safety valve for do-while loops (default 1M body rounds). */
    void setMaxWhileRounds(uint64_t rounds) { maxWhileRounds_ = rounds; }

  private:
    void execCtrl(CtrlId id);
    void execBlock(const CtrlNode &block);
    double value(OpId id) const { return values_[id.index()]; }
    int64_t boundValue(const Bound &b) const;

    const Program &p_;
    std::vector<std::vector<double>> tensors_;
    std::vector<double> values_;
    std::vector<int64_t> iters_;
    std::vector<std::vector<OpId>> loopReduces_;
    uint64_t firings_ = 0;
    uint64_t opsExecuted_ = 0;
    uint64_t maxWhileRounds_ = 1000000;
};

} // namespace sara::ir

#endif // SARA_IR_INTERP_H
