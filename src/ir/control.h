#ifndef SARA_IR_CONTROL_H
#define SARA_IR_CONTROL_H

/**
 * @file
 * The control tree: the nested CFG SARA spatially pipelines. Interior
 * nodes are loops, branches, and do-while loops; leaves are hyperblocks
 * (straight-line op lists). The root is an implicit sequence.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/id.h"

namespace sara::ir {

/** Control-node kinds. */
enum class CtrlKind : uint8_t {
    Seq,    ///< Ordered sequence of children (root, loop bodies, clauses).
    Loop,   ///< Counted for-loop, bounds static or data-dependent.
    Branch, ///< Two-clause branch on a data-dependent condition.
    While,  ///< Do-while: body runs, repeats while condition is true.
    Block,  ///< Hyperblock leaf holding ops.
};

/**
 * A loop bound: either a compile-time constant or a data dependency on
 * an op value computed in a preceding hyperblock.
 */
struct Bound
{
    bool isConst = true;
    int64_t cval = 0;
    OpId op;

    Bound() = default;
    Bound(int64_t v) : isConst(true), cval(v) {}
    static Bound
    dynamic(OpId o)
    {
        Bound b;
        b.isConst = false;
        b.op = o;
        return b;
    }
};

/** One node of the control tree. */
struct CtrlNode
{
    CtrlId id;
    CtrlKind kind = CtrlKind::Seq;
    CtrlId parent;
    std::string name;

    /** Children in program order. For Branch: thenChildren/elseChildren. */
    std::vector<CtrlId> children;
    std::vector<CtrlId> elseChildren;

    // --- Loop fields ---
    Bound min{0}, step{1}, max{0};
    /**
     * Parallelization factor. On an innermost loop (all leaf-block
     * children) this vectorizes across SIMD lanes; on an outer loop the
     * unroll pass spatially clones the body (see compiler/unroll).
     */
    int par = 1;
    /**
     * SIMD vectorization factor assigned by the unroll pass (par is
     * consumed; vec is what lowering maps to counter lanes).
     */
    int vec = 1;

    // --- Branch / While fields ---
    OpId cond; ///< Branch: condition; While: continue-while-true value.

    // --- Block fields ---
    std::vector<OpId> ops; ///< Program-ordered ops of a hyperblock.

    bool isLeaf() const { return kind == CtrlKind::Block; }
    bool isLoop() const { return kind == CtrlKind::Loop; }
};

} // namespace sara::ir

#endif // SARA_IR_CONTROL_H
