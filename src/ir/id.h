#ifndef SARA_IR_ID_H
#define SARA_IR_ID_H

/**
 * @file
 * Strongly typed dense ids for IR entities. Wrapper types prevent
 * accidentally indexing the op table with a tensor id and vice versa.
 */

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sara::ir {

/** A dense integer id tagged with the entity type it indexes. */
template <typename Tag>
struct Id
{
    int32_t v = -1;

    Id() = default;
    explicit Id(int32_t value) : v(value) {}
    explicit Id(size_t value) : v(static_cast<int32_t>(value)) {}

    bool valid() const { return v >= 0; }
    size_t index() const { return static_cast<size_t>(v); }

    friend bool operator==(Id a, Id b) { return a.v == b.v; }
    friend bool operator!=(Id a, Id b) { return a.v != b.v; }
    friend bool operator<(Id a, Id b) { return a.v < b.v; }
};

using OpId = Id<struct OpTag>;
using CtrlId = Id<struct CtrlTag>;
using TensorId = Id<struct TensorTag>;

} // namespace sara::ir

namespace std {

template <typename Tag>
struct hash<sara::ir::Id<Tag>>
{
    size_t
    operator()(sara::ir::Id<Tag> id) const noexcept
    {
        return std::hash<int32_t>()(id.v);
    }
};

} // namespace std

#endif // SARA_IR_ID_H
