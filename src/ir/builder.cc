#include "ir/builder.h"

#include "support/logging.h"

namespace sara::ir {

CtrlId
Builder::beginScope(CtrlKind kind, const std::string &name)
{
    SARA_ASSERT(!block_.valid(),
                "cannot open a control scope inside a hyperblock");
    CtrlId id = p_.addCtrl(kind, scopes_.back(), name);
    scopes_.push_back(id);
    return id;
}

void
Builder::endScope(CtrlKind kind)
{
    SARA_ASSERT(!block_.valid(), "close the open hyperblock first");
    SARA_ASSERT(scopes_.size() > 1, "scope underflow");
    SARA_ASSERT(p_.ctrl(scopes_.back()).kind == kind,
                "mismatched scope close");
    scopes_.pop_back();
}

CtrlId
Builder::beginLoop(const std::string &name, int64_t min, int64_t max,
                   int64_t step, int par)
{
    return beginLoopDyn(name, Bound(min), Bound(max), Bound(step), par);
}

CtrlId
Builder::beginLoopDyn(const std::string &name, Bound min, Bound max,
                      Bound step, int par)
{
    CtrlId id = beginScope(CtrlKind::Loop, name);
    auto &node = p_.ctrl(id);
    node.min = min;
    node.max = max;
    node.step = step;
    node.par = par;
    return id;
}

void
Builder::endLoop()
{
    endScope(CtrlKind::Loop);
}

CtrlId
Builder::beginBranch(const std::string &name, OpId cond)
{
    CtrlId id = beginScope(CtrlKind::Branch, name);
    p_.ctrl(id).cond = cond;
    return id;
}

void
Builder::elseClause()
{
    SARA_ASSERT(!block_.valid(), "close the open hyperblock first");
    CtrlId id = scopes_.back();
    auto &node = p_.ctrl(id);
    SARA_ASSERT(node.kind == CtrlKind::Branch, "elseClause outside branch");
    SARA_ASSERT(node.elseChildren.empty() && !inElseFor(id),
                "duplicate elseClause");
    elseMarks_.push_back({id, node.children.size()});
}

bool
Builder::inElseFor(CtrlId branch) const
{
    for (const auto &mark : elseMarks_)
        if (mark.branch == branch)
            return true;
    return false;
}

void
Builder::endBranch()
{
    CtrlId id = scopes_.back();
    endScope(CtrlKind::Branch);
    if (!elseMarks_.empty() && elseMarks_.back().branch == id) {
        auto mark = elseMarks_.back();
        elseMarks_.pop_back();
        auto &node = p_.ctrl(id);
        node.elseChildren.assign(node.children.begin() + mark.split,
                                 node.children.end());
        node.children.resize(mark.split);
    }
}

CtrlId
Builder::beginWhile(const std::string &name)
{
    return beginScope(CtrlKind::While, name);
}

void
Builder::endWhile(OpId cond)
{
    CtrlId id = scopes_.back();
    p_.ctrl(id).cond = cond;
    endScope(CtrlKind::While);
}

CtrlId
Builder::beginBlock(const std::string &name)
{
    SARA_ASSERT(!block_.valid(), "hyperblocks cannot nest");
    block_ = p_.addCtrl(CtrlKind::Block, scopes_.back(), name);
    return block_;
}

void
Builder::endBlock()
{
    SARA_ASSERT(block_.valid(), "no open hyperblock");
    block_ = CtrlId{};
}

OpId
Builder::cst(double v)
{
    OpId id = p_.addOp(OpKind::Const, block_);
    p_.op(id).cval = v;
    return id;
}

OpId
Builder::iter(CtrlId loop)
{
    OpId id = p_.addOp(OpKind::Iter, block_);
    p_.op(id).ctrl = loop;
    return id;
}

OpId
Builder::unary(OpKind kind, OpId a)
{
    return p_.addOp(kind, block_, {a});
}

OpId
Builder::binary(OpKind kind, OpId a, OpId b)
{
    return p_.addOp(kind, block_, {a, b});
}

OpId
Builder::mac(OpId a, OpId b, OpId c)
{
    return p_.addOp(OpKind::Mac, block_, {a, b, c});
}

OpId
Builder::select(OpId cond, OpId t, OpId f)
{
    return p_.addOp(OpKind::Select, block_, {cond, t, f});
}

OpId
Builder::read(TensorId tensor, OpId addr)
{
    OpId id = p_.addOp(OpKind::Read, block_, {addr});
    p_.op(id).tensor = tensor;
    return id;
}

OpId
Builder::write(TensorId tensor, OpId addr, OpId data)
{
    OpId id = p_.addOp(OpKind::Write, block_, {addr, data});
    p_.op(id).tensor = tensor;
    return id;
}

OpId
Builder::reduce(OpKind kind, OpId input, CtrlId loop)
{
    SARA_ASSERT(isReduceOp(kind), "reduce called with non-reduce kind");
    OpId id = p_.addOp(kind, block_, {input});
    p_.op(id).ctrl = loop;
    return id;
}

OpId
Builder::affine(OpId i, int64_t scale, int64_t base)
{
    OpId out = i;
    if (scale != 1)
        out = mul(out, cst(static_cast<double>(scale)));
    if (base != 0)
        out = add(out, cst(static_cast<double>(base)));
    return out;
}

} // namespace sara::ir
