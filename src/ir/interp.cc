#include "ir/interp.h"

#include <cmath>
#include <limits>

#include "support/logging.h"

namespace sara::ir {

double
evalScalar(OpKind kind, const double *args)
{
    switch (kind) {
      case OpKind::Neg: return -args[0];
      case OpKind::Abs: return std::fabs(args[0]);
      case OpKind::Exp: return std::exp(args[0]);
      case OpKind::Log: return std::log(args[0]);
      case OpKind::Sqrt: return std::sqrt(args[0]);
      case OpKind::Sigmoid: return 1.0 / (1.0 + std::exp(-args[0]));
      case OpKind::Tanh: return std::tanh(args[0]);
      case OpKind::Relu: return args[0] > 0.0 ? args[0] : 0.0;
      case OpKind::Floor: return std::floor(args[0]);
      case OpKind::Not: return args[0] == 0.0 ? 1.0 : 0.0;
      case OpKind::Add: return args[0] + args[1];
      case OpKind::Sub: return args[0] - args[1];
      case OpKind::Mul: return args[0] * args[1];
      case OpKind::Div: return args[0] / args[1];
      case OpKind::Min: return std::fmin(args[0], args[1]);
      case OpKind::Max: return std::fmax(args[0], args[1]);
      case OpKind::Mod: return std::fmod(args[0], args[1]);
      case OpKind::And:
        return (args[0] != 0.0 && args[1] != 0.0) ? 1.0 : 0.0;
      case OpKind::Or:
        return (args[0] != 0.0 || args[1] != 0.0) ? 1.0 : 0.0;
      case OpKind::CmpLt: return args[0] < args[1] ? 1.0 : 0.0;
      case OpKind::CmpLe: return args[0] <= args[1] ? 1.0 : 0.0;
      case OpKind::CmpEq: return args[0] == args[1] ? 1.0 : 0.0;
      case OpKind::CmpNe: return args[0] != args[1] ? 1.0 : 0.0;
      case OpKind::CmpGt: return args[0] > args[1] ? 1.0 : 0.0;
      case OpKind::CmpGe: return args[0] >= args[1] ? 1.0 : 0.0;
      case OpKind::Select: return args[0] != 0.0 ? args[1] : args[2];
      case OpKind::Mac: return args[0] * args[1] + args[2];
      default:
        panic("evalScalar: op ", opName(kind), " is not a scalar op");
    }
}

namespace {

double
reduceIdentity(OpKind kind)
{
    switch (kind) {
      case OpKind::RedAdd: return 0.0;
      case OpKind::RedMul: return 1.0;
      case OpKind::RedMin: return std::numeric_limits<double>::infinity();
      case OpKind::RedMax: return -std::numeric_limits<double>::infinity();
      default: panic("not a reduce op");
    }
}

double
reduceCombine(OpKind kind, double acc, double v)
{
    switch (kind) {
      case OpKind::RedAdd: return acc + v;
      case OpKind::RedMul: return acc * v;
      case OpKind::RedMin: return std::fmin(acc, v);
      case OpKind::RedMax: return std::fmax(acc, v);
      default: panic("not a reduce op");
    }
}

} // namespace

Interpreter::Interpreter(const Program &program) : p_(program)
{
    tensors_.resize(p_.numTensors());
    for (size_t i = 0; i < p_.numTensors(); ++i)
        tensors_[i].assign(p_.tensor(TensorId(i)).size, 0.0);
    values_.assign(p_.numOps(), 0.0);
    iters_.assign(p_.numCtrls(), 0);
    loopReduces_.resize(p_.numCtrls());
    for (size_t i = 0; i < p_.numOps(); ++i) {
        const Op &o = p_.op(OpId(i));
        if (isReduceOp(o.kind))
            loopReduces_[o.ctrl.index()].push_back(o.id);
    }
}

void
Interpreter::setTensor(TensorId id, std::vector<double> data)
{
    SARA_ASSERT(data.size() ==
                    static_cast<size_t>(p_.tensor(id).size),
                "setTensor size mismatch for ", p_.tensor(id).name);
    tensors_[id.index()] = std::move(data);
}

InterpResult
Interpreter::run()
{
    for (CtrlId c : p_.ctrl(p_.root()).children)
        execCtrl(c);
    InterpResult result;
    result.tensors = tensors_;
    result.firings = firings_;
    result.opsExecuted = opsExecuted_;
    return result;
}

int64_t
Interpreter::boundValue(const Bound &b) const
{
    if (b.isConst)
        return b.cval;
    return std::llround(value(b.op));
}

void
Interpreter::execCtrl(CtrlId id)
{
    const CtrlNode &node = p_.ctrl(id);
    switch (node.kind) {
      case CtrlKind::Seq:
        for (CtrlId c : node.children)
            execCtrl(c);
        break;
      case CtrlKind::Loop: {
        // Reduction accumulators over this loop reset at round entry.
        for (OpId r : loopReduces_[id.index()])
            values_[r.index()] = reduceIdentity(p_.op(r).kind);
        int64_t min = boundValue(node.min);
        int64_t max = boundValue(node.max);
        int64_t step = boundValue(node.step);
        SARA_ASSERT(step > 0, "loop ", node.name,
                    " requires a positive step");
        for (int64_t i = min; i < max; i += step) {
            iters_[id.index()] = i;
            for (CtrlId c : node.children)
                execCtrl(c);
        }
        break;
      }
      case CtrlKind::Branch: {
        bool taken = value(node.cond) != 0.0;
        const auto &clause = taken ? node.children : node.elseChildren;
        for (CtrlId c : clause)
            execCtrl(c);
        break;
      }
      case CtrlKind::While: {
        for (OpId r : loopReduces_[id.index()])
            values_[r.index()] = reduceIdentity(p_.op(r).kind);
        uint64_t rounds = 0;
        do {
            iters_[id.index()] = static_cast<int64_t>(rounds);
            for (CtrlId c : node.children)
                execCtrl(c);
            if (++rounds > maxWhileRounds_)
                fatal("do-while ", node.name, " exceeded ",
                      maxWhileRounds_, " rounds; non-terminating?");
        } while (value(node.cond) != 0.0);
        break;
      }
      case CtrlKind::Block:
        execBlock(node);
        break;
    }
}

void
Interpreter::execBlock(const CtrlNode &block)
{
    ++firings_;
    double args[3];
    for (OpId oid : block.ops) {
        const Op &o = p_.op(oid);
        ++opsExecuted_;
        for (size_t a = 0; a < o.operands.size(); ++a)
            args[a] = value(o.operands[a]);
        switch (o.kind) {
          case OpKind::Const:
            values_[oid.index()] = o.cval;
            break;
          case OpKind::Iter:
            values_[oid.index()] =
                static_cast<double>(iters_[o.ctrl.index()]);
            break;
          case OpKind::Read: {
            auto &mem = tensors_[o.tensor.index()];
            int64_t addr = std::llround(args[0]);
            SARA_ASSERT(addr >= 0 &&
                            addr < static_cast<int64_t>(mem.size()),
                        "read OOB on ", p_.tensor(o.tensor).name,
                        " addr ", addr);
            values_[oid.index()] = mem[addr];
            break;
          }
          case OpKind::Write: {
            auto &mem = tensors_[o.tensor.index()];
            int64_t addr = std::llround(args[0]);
            SARA_ASSERT(addr >= 0 &&
                            addr < static_cast<int64_t>(mem.size()),
                        "write OOB on ", p_.tensor(o.tensor).name,
                        " addr ", addr);
            mem[addr] = args[1];
            break;
          }
          case OpKind::RedAdd:
          case OpKind::RedMin:
          case OpKind::RedMax:
          case OpKind::RedMul:
            values_[oid.index()] =
                reduceCombine(o.kind, values_[oid.index()], args[0]);
            break;
          default:
            values_[oid.index()] = evalScalar(o.kind, args);
            break;
        }
    }
}

} // namespace sara::ir
