#ifndef SARA_IR_TENSOR_H
#define SARA_IR_TENSOR_H

/**
 * @file
 * Tensors (data structures) named by the program. Spatial expresses
 * independent data structures as disjoint memories, which is what lets
 * SARA detect independent accesses without pointer analysis — our IR
 * keeps the same property: every Read/Write names one tensor.
 */

#include <cstdint>
#include <string>

#include "ir/id.h"

namespace sara::ir {

/** Address space a tensor lives in. */
enum class MemSpace : uint8_t {
    OnChip, ///< Software-managed scratchpad, lowered to VMUs.
    Dram,   ///< Off-chip memory behind a DRAM interface.
};

/** A logical 1-D tensor (multi-dim layouts are linearized by builders). */
struct Tensor
{
    TensorId id;
    std::string name;
    MemSpace space = MemSpace::OnChip;
    int64_t size = 0; ///< Element count.
};

} // namespace sara::ir

#endif // SARA_IR_TENSOR_H
