#ifndef SARA_IR_PROGRAM_H
#define SARA_IR_PROGRAM_H

/**
 * @file
 * Program: the arena owning the control tree, ops, and tensors, plus
 * the structural queries the compiler relies on (ancestor chains,
 * least-common-ancestor, program order, subtree cloning).
 */

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ir/control.h"
#include "ir/op.h"
#include "ir/tensor.h"

namespace sara::ir {

/** A whole input program (one spatially-mapped CFG). */
class Program
{
  public:
    Program();

    // --- Construction ---
    TensorId addTensor(const std::string &name, MemSpace space,
                       int64_t size);
    CtrlId addCtrl(CtrlKind kind, CtrlId parent, const std::string &name);
    OpId addOp(OpKind kind, CtrlId block, std::vector<OpId> operands = {});

    // --- Access ---
    CtrlId root() const { return root_; }
    CtrlNode &ctrl(CtrlId id) { return ctrls_[id.index()]; }
    const CtrlNode &ctrl(CtrlId id) const { return ctrls_[id.index()]; }
    Op &op(OpId id) { return ops_[id.index()]; }
    const Op &op(OpId id) const { return ops_[id.index()]; }
    Tensor &tensor(TensorId id) { return tensors_[id.index()]; }
    const Tensor &tensor(TensorId id) const { return tensors_[id.index()]; }

    size_t numCtrls() const { return ctrls_.size(); }
    size_t numOps() const { return ops_.size(); }
    size_t numTensors() const { return tensors_.size(); }
    const std::deque<Tensor> &tensors() const { return tensors_; }

    // --- Structure queries ---
    /** Ancestor chain from root (inclusive) down to id (inclusive). */
    std::vector<CtrlId> ancestry(CtrlId id) const;

    /** Least common ancestor of two control nodes. */
    CtrlId lca(CtrlId a, CtrlId b) const;

    /**
     * The child of `ancestor` on the path toward `descendant`;
     * invalid id if descendant == ancestor.
     */
    CtrlId childToward(CtrlId ancestor, CtrlId descendant) const;

    /** True if `anc` is an ancestor of (or equal to) `node`. */
    bool isAncestor(CtrlId anc, CtrlId node) const;

    /**
     * Enclosing loop-like ancestors (Loop and While) of a node,
     * outermost first. These become the counter chain of the VCU a
     * hyperblock lowers to.
     */
    std::vector<CtrlId> enclosingLoops(CtrlId id) const;

    /** All hyperblock leaves in program order. */
    std::vector<CtrlId> blocksInOrder() const;

    /**
     * Program-order index of every control node (pre-order walk; a
     * branch's then-clause precedes its else-clause). Lower index means
     * earlier in the sequential program.
     */
    std::vector<size_t> programOrder() const;

    /** Depth-first visit of the control tree in program order. */
    void forEachCtrl(const std::function<void(const CtrlNode &)> &fn) const;

    /**
     * Clone the subtree rooted at `node` under `newParent` (appended to
     * its children). Op operands and control references *inside* the
     * subtree are remapped to the clones; references to ops/loops
     * outside it are preserved. Returns the cloned root and exposes
     * the op remapping via `opMap` (old index -> new id) when non-null.
     */
    CtrlId cloneSubtree(CtrlId node, CtrlId newParent,
                        std::vector<OpId> *opMap = nullptr);

    /** Structural validation; calls fatal() with a reason on failure. */
    void verify() const;

    /** Multi-line textual dump for debugging and golden tests. */
    std::string str() const;

  private:
    void cloneRec(CtrlId node, CtrlId newParent,
                  std::vector<OpId> &opMap, std::vector<CtrlId> &ctrlMap);
    void remapClonedOps(const std::vector<OpId> &opMap,
                        const std::vector<CtrlId> &ctrlMap);

    std::deque<CtrlNode> ctrls_;
    std::deque<Op> ops_;
    std::deque<Tensor> tensors_;
    CtrlId root_;
    std::vector<OpId> clonedOps_; ///< Scratch: new ops from cloneRec.
};

} // namespace sara::ir

#endif // SARA_IR_PROGRAM_H
