#ifndef SARA_IR_OP_H
#define SARA_IR_OP_H

/**
 * @file
 * Operations inside a hyperblock. Ops form an SSA-style dataflow:
 * each op produces one value (doubles model the 32-bit float datapath),
 * consuming operand op values, loop iterators, or constants.
 *
 * Cross-hyperblock operand references are allowed and become data
 * streams between virtual units during lowering; the rate of such a
 * stream is derived from the least-common-ancestor of the two blocks
 * in the control hierarchy (see compiler/lowering).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/id.h"

namespace sara::ir {

/** Operation kinds available in the datapath. */
enum class OpKind : uint8_t {
    // Sources
    Const,     ///< Literal constant (field cval).
    Iter,      ///< Value of an enclosing loop iterator (field ctrl).
    // Unary arithmetic
    Neg, Abs, Exp, Log, Sqrt, Sigmoid, Tanh, Relu, Floor, Not,
    // Binary arithmetic / logic
    Add, Sub, Mul, Div, Min, Max, Mod, And, Or,
    CmpLt, CmpLe, CmpEq, CmpNe, CmpGt, CmpGe,
    // Ternary
    Select,    ///< operands: cond, iftrue, iffalse.
    Mac,       ///< operands: a, b, c -> a * b + c.
    // Memory
    Read,      ///< operands: [addr]; field tensor.
    Write,     ///< operands: [addr, data]; field tensor. Produces no value.
    // Reductions: accumulate the operand every firing; the accumulator
    // resets when loop `ctrl` starts a new round and holds the final
    // value when it completes. Consumers at or above `ctrl`'s level see
    // one value per round.
    RedAdd, RedMin, RedMax, RedMul,
};

/** Number of op-value operands each kind consumes. */
int opArity(OpKind kind);

/** Human-readable mnemonic. */
const char *opName(OpKind kind);

/** True for Read/Write. */
bool isMemoryOp(OpKind kind);

/** True for RedAdd/RedMin/RedMax/RedMul. */
bool isReduceOp(OpKind kind);

/** A single operation owned by a hyperblock. */
struct Op
{
    OpId id;
    OpKind kind = OpKind::Const;
    CtrlId block;                  ///< Owning hyperblock.
    std::vector<OpId> operands;    ///< Value operands (see opArity).
    double cval = 0.0;             ///< Const literal.
    CtrlId ctrl;                   ///< Iter: the loop; Red*: reduce loop.
    TensorId tensor;               ///< Read/Write target.

    bool producesValue() const { return kind != OpKind::Write; }
};

} // namespace sara::ir

#endif // SARA_IR_OP_H
