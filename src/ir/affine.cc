#include "ir/affine.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace sara::ir {

bool
AffineForm::isConstant() const
{
    for (const auto &[loop, c] : coeffs)
        if (c != 0)
            return false;
    return true;
}

AffineForm
operator+(const AffineForm &a, const AffineForm &b)
{
    AffineForm out = a;
    out.base += b.base;
    for (const auto &[loop, c] : b.coeffs)
        out.coeffs[loop] += c;
    return out;
}

AffineForm
operator-(const AffineForm &a, const AffineForm &b)
{
    AffineForm out = a;
    out.base -= b.base;
    for (const auto &[loop, c] : b.coeffs)
        out.coeffs[loop] -= c;
    return out;
}

AffineForm
AffineForm::scaled(int64_t k) const
{
    AffineForm out = *this;
    out.base *= k;
    for (auto &[loop, c] : out.coeffs)
        c *= k;
    return out;
}

namespace {

std::optional<int64_t>
integralConst(double v)
{
    double r = std::round(v);
    if (std::fabs(v - r) > 1e-9)
        return std::nullopt;
    return static_cast<int64_t>(r);
}

std::optional<AffineForm>
matchRec(const Program &p, OpId id)
{
    const Op &o = p.op(id);
    switch (o.kind) {
      case OpKind::Const: {
        auto c = integralConst(o.cval);
        if (!c)
            return std::nullopt;
        AffineForm f;
        f.base = *c;
        return f;
      }
      case OpKind::Iter: {
        AffineForm f;
        f.coeffs[o.ctrl] = 1;
        return f;
      }
      case OpKind::Add: {
        auto a = matchRec(p, o.operands[0]);
        auto b = matchRec(p, o.operands[1]);
        if (!a || !b)
            return std::nullopt;
        return *a + *b;
      }
      case OpKind::Sub: {
        auto a = matchRec(p, o.operands[0]);
        auto b = matchRec(p, o.operands[1]);
        if (!a || !b)
            return std::nullopt;
        return *a - *b;
      }
      case OpKind::Mul: {
        auto a = matchRec(p, o.operands[0]);
        auto b = matchRec(p, o.operands[1]);
        if (!a || !b)
            return std::nullopt;
        if (a->isConstant())
            return b->scaled(a->base);
        if (b->isConstant())
            return a->scaled(b->base);
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

} // namespace

std::optional<AffineForm>
matchAffine(const Program &p, OpId addr)
{
    return matchRec(p, addr);
}

std::optional<std::pair<int64_t, int64_t>>
affineSpan(const Program &p, const AffineForm &form,
           const std::vector<CtrlId> &boundLoops)
{
    int64_t lo = form.base, hi = form.base;
    for (const auto &[loop, c] : form.coeffs) {
        if (c == 0)
            continue;
        bool bound = std::find(boundLoops.begin(), boundLoops.end(),
                               loop) != boundLoops.end();
        if (!bound)
            return std::nullopt;
        const CtrlNode &node = p.ctrl(loop);
        if (node.kind != CtrlKind::Loop || !node.min.isConst ||
            !node.max.isConst || !node.step.isConst)
            return std::nullopt;
        int64_t first = node.min.cval;
        int64_t count = (node.max.cval - node.min.cval + node.step.cval -
                         1) / node.step.cval;
        if (count <= 0)
            return std::nullopt;
        int64_t last = first + (count - 1) * node.step.cval;
        int64_t a = c * first, b = c * last;
        lo += std::min(a, b);
        hi += std::max(a, b);
    }
    return std::make_pair(lo, hi);
}

} // namespace sara::ir
