#include "ir/program.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/logging.h"

namespace sara::ir {

Program::Program()
{
    root_ = addCtrl(CtrlKind::Seq, CtrlId{}, "root");
}

TensorId
Program::addTensor(const std::string &name, MemSpace space, int64_t size)
{
    SARA_ASSERT(size > 0, "tensor ", name, " must have positive size");
    Tensor t;
    t.id = TensorId(tensors_.size());
    t.name = name;
    t.space = space;
    t.size = size;
    tensors_.push_back(t);
    return t.id;
}

CtrlId
Program::addCtrl(CtrlKind kind, CtrlId parent, const std::string &name)
{
    CtrlNode node;
    node.id = CtrlId(ctrls_.size());
    node.kind = kind;
    node.parent = parent;
    node.name = name.empty() ? ("c" + std::to_string(node.id.v)) : name;
    ctrls_.push_back(node);
    if (parent.valid())
        ctrls_[parent.index()].children.push_back(node.id);
    return node.id;
}

OpId
Program::addOp(OpKind kind, CtrlId block, std::vector<OpId> operands)
{
    SARA_ASSERT(block.valid() && ctrl(block).isLeaf(),
                "ops may only be added to hyperblocks");
    SARA_ASSERT(static_cast<int>(operands.size()) == opArity(kind),
                "op ", opName(kind), " expects ", opArity(kind),
                " operands, got ", operands.size());
    Op o;
    o.id = OpId(ops_.size());
    o.kind = kind;
    o.block = block;
    o.operands = std::move(operands);
    ops_.push_back(o);
    ctrls_[block.index()].ops.push_back(o.id);
    return o.id;
}

std::vector<CtrlId>
Program::ancestry(CtrlId id) const
{
    std::vector<CtrlId> chain;
    for (CtrlId cur = id; cur.valid(); cur = ctrl(cur).parent)
        chain.push_back(cur);
    std::reverse(chain.begin(), chain.end());
    return chain;
}

CtrlId
Program::lca(CtrlId a, CtrlId b) const
{
    auto ca = ancestry(a);
    auto cb = ancestry(b);
    CtrlId best;
    for (size_t i = 0; i < std::min(ca.size(), cb.size()); ++i) {
        if (ca[i] != cb[i])
            break;
        best = ca[i];
    }
    return best;
}

CtrlId
Program::childToward(CtrlId ancestor, CtrlId descendant) const
{
    if (ancestor == descendant)
        return CtrlId{};
    auto chain = ancestry(descendant);
    for (size_t i = 0; i + 1 < chain.size(); ++i)
        if (chain[i] == ancestor)
            return chain[i + 1];
    return CtrlId{};
}

bool
Program::isAncestor(CtrlId anc, CtrlId node) const
{
    for (CtrlId cur = node; cur.valid(); cur = ctrl(cur).parent)
        if (cur == anc)
            return true;
    return false;
}

std::vector<CtrlId>
Program::enclosingLoops(CtrlId id) const
{
    std::vector<CtrlId> loops;
    for (CtrlId c : ancestry(id)) {
        const auto &node = ctrl(c);
        if (node.kind == CtrlKind::Loop || node.kind == CtrlKind::While)
            if (c != id)
                loops.push_back(c);
    }
    return loops;
}

std::vector<CtrlId>
Program::blocksInOrder() const
{
    std::vector<CtrlId> blocks;
    forEachCtrl([&](const CtrlNode &node) {
        if (node.isLeaf())
            blocks.push_back(node.id);
    });
    return blocks;
}

std::vector<size_t>
Program::programOrder() const
{
    std::vector<size_t> order(ctrls_.size(), 0);
    size_t counter = 0;
    forEachCtrl([&](const CtrlNode &node) { order[node.id.index()] = counter++; });
    return order;
}

void
Program::forEachCtrl(const std::function<void(const CtrlNode &)> &fn) const
{
    std::function<void(CtrlId)> walk = [&](CtrlId id) {
        const auto &node = ctrl(id);
        fn(node);
        for (CtrlId c : node.children)
            walk(c);
        for (CtrlId c : node.elseChildren)
            walk(c);
    };
    walk(root_);
}

CtrlId
Program::cloneSubtree(CtrlId node, CtrlId newParent, std::vector<OpId> *opMap)
{
    std::vector<OpId> omap(ops_.size());
    std::vector<CtrlId> cmap(ctrls_.size());
    clonedOps_.clear();
    cloneRec(node, newParent, omap, cmap);
    remapClonedOps(omap, cmap);
    if (opMap)
        *opMap = omap;
    return cmap[node.index()];
}

void
Program::cloneRec(CtrlId node, CtrlId newParent, std::vector<OpId> &opMap,
                  std::vector<CtrlId> &ctrlMap)
{
    // Deliberately copy (not reference) the source: addCtrl/addOp can
    // reallocate the arenas we are iterating.
    CtrlNode src = ctrl(node);
    CtrlId copy = addCtrl(src.kind, newParent, src.name);
    ctrlMap[node.index()] = copy;
    {
        auto &dst = ctrl(copy);
        dst.min = src.min;
        dst.step = src.step;
        dst.max = src.max;
        dst.par = src.par;
        dst.vec = src.vec;
        dst.cond = src.cond;
    }
    if (src.isLeaf()) {
        for (OpId oid : src.ops) {
            Op o = op(oid);
            OpId nid = addOp(o.kind, copy, o.operands);
            auto &dst = op(nid);
            dst.cval = o.cval;
            dst.ctrl = o.ctrl;
            dst.tensor = o.tensor;
            opMap[oid.index()] = nid;
            clonedOps_.push_back(nid);
        }
    }
    for (CtrlId c : src.children)
        cloneRec(c, copy, opMap, ctrlMap);
    if (!src.elseChildren.empty()) {
        // addCtrl appends every direct child to `children`; clone the
        // else clause the same way, then move the tail into elseChildren.
        size_t nthen = ctrl(copy).children.size();
        for (CtrlId c : src.elseChildren)
            cloneRec(c, copy, opMap, ctrlMap);
        auto &dst = ctrl(copy);
        dst.elseChildren.assign(dst.children.begin() + nthen,
                                dst.children.end());
        dst.children.resize(nthen);
    }
}

void
Program::remapClonedOps(const std::vector<OpId> &opMap,
                        const std::vector<CtrlId> &ctrlMap)
{
    auto remapOp = [&](OpId o) {
        return (o.valid() && o.index() < opMap.size() &&
                opMap[o.index()].valid())
                   ? opMap[o.index()]
                   : o;
    };
    auto remapCtrl = [&](CtrlId c) {
        return (c.valid() && c.index() < ctrlMap.size() &&
                ctrlMap[c.index()].valid())
                   ? ctrlMap[c.index()]
                   : c;
    };
    for (OpId nid : clonedOps_) {
        Op &o = op(nid);
        for (OpId &operand : o.operands)
            operand = remapOp(operand);
        o.ctrl = remapCtrl(o.ctrl);
    }
    // Remap control-node references (bounds, conditions) of cloned nodes.
    for (const CtrlId &c : ctrlMap) {
        if (!c.valid())
            continue;
        CtrlNode &node = ctrl(c);
        if (!node.min.isConst)
            node.min.op = remapOp(node.min.op);
        if (!node.step.isConst)
            node.step.op = remapOp(node.step.op);
        if (!node.max.isConst)
            node.max.op = remapOp(node.max.op);
        if (node.cond.valid())
            node.cond = remapOp(node.cond);
    }
}

void
Program::verify() const
{
    auto order = programOrder();
    forEachCtrl([&](const CtrlNode &node) {
        if (node.kind == CtrlKind::Loop) {
            SARA_ASSERT(node.par >= 1, "loop ", node.name, " bad par");
            if (node.step.isConst)
                SARA_ASSERT(node.step.cval != 0,
                            "loop ", node.name, " zero step");
        }
        if (node.kind == CtrlKind::Branch || node.kind == CtrlKind::While) {
            if (!node.cond.valid())
                fatal("control ", node.name, " missing condition");
        }
        if (node.isLeaf()) {
            SARA_ASSERT(node.children.empty() && node.elseChildren.empty(),
                        "hyperblock ", node.name, " has children");
        } else {
            SARA_ASSERT(node.ops.empty(),
                        "non-leaf ", node.name, " holds ops");
        }
        // Op-level checks.
        for (OpId oid : node.ops) {
            const Op &o = op(oid);
            SARA_ASSERT(o.block == node.id, "op block mismatch");
            for (OpId operand : o.operands) {
                const Op &def = op(operand);
                SARA_ASSERT(def.producesValue(),
                            "operand of ", opName(o.kind),
                            " does not produce a value");
                // Cross-block references must come from earlier blocks.
                if (def.block != o.block) {
                    SARA_ASSERT(order[ctrl(def.block).id.index()] <
                                    order[node.id.index()],
                                "cross-block operand must be defined in an "
                                "earlier block (op ", oid.v, ")");
                }
            }
            if (o.kind == OpKind::Iter) {
                SARA_ASSERT(o.ctrl.valid() &&
                                isAncestor(o.ctrl, node.id) &&
                                (ctrl(o.ctrl).kind == CtrlKind::Loop ||
                                 ctrl(o.ctrl).kind == CtrlKind::While),
                            "iter op must reference an enclosing loop");
            }
            if (isReduceOp(o.kind)) {
                SARA_ASSERT(o.ctrl.valid() && isAncestor(o.ctrl, node.id),
                            "reduce op must reference an enclosing loop");
            }
            if (isMemoryOp(o.kind))
                SARA_ASSERT(o.tensor.valid(), "memory op without tensor");
        }
    });
}

std::string
Program::str() const
{
    std::ostringstream os;
    std::function<void(CtrlId, int)> walk = [&](CtrlId id, int depth) {
        const auto &node = ctrl(id);
        std::string pad(depth * 2, ' ');
        os << pad;
        switch (node.kind) {
          case CtrlKind::Seq:
            os << "seq " << node.name << "\n";
            break;
          case CtrlKind::Loop:
            os << "for " << node.name << " [";
            os << (node.min.isConst ? std::to_string(node.min.cval)
                                    : "dyn");
            os << ":" << (node.max.isConst ? std::to_string(node.max.cval)
                                           : "dyn");
            os << ":" << (node.step.isConst ? std::to_string(node.step.cval)
                                            : "dyn");
            os << "] par=" << node.par << "\n";
            break;
          case CtrlKind::Branch:
            os << "if " << node.name << " (op" << node.cond.v << ")\n";
            break;
          case CtrlKind::While:
            os << "dowhile " << node.name << " (op" << node.cond.v << ")\n";
            break;
          case CtrlKind::Block:
            os << "block " << node.name << "\n";
            for (OpId oid : node.ops) {
                const Op &o = op(oid);
                os << pad << "  op" << o.id.v << " = " << opName(o.kind);
                if (o.kind == OpKind::Const)
                    os << " " << o.cval;
                if (o.kind == OpKind::Iter || isReduceOp(o.kind))
                    os << " @" << ctrl(o.ctrl).name;
                if (isMemoryOp(o.kind))
                    os << " " << tensor(o.tensor).name;
                for (OpId operand : o.operands)
                    os << " op" << operand.v;
                os << "\n";
            }
            break;
        }
        for (CtrlId c : node.children)
            walk(c, depth + 1);
        if (!node.elseChildren.empty()) {
            os << pad << "else\n";
            for (CtrlId c : node.elseChildren)
                walk(c, depth + 1);
        }
    };
    walk(root_, 0);
    return os.str();
}

} // namespace sara::ir
