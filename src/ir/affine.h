#ifndef SARA_IR_AFFINE_H
#define SARA_IR_AFFINE_H

/**
 * @file
 * Affine address analysis. SARA's memory partitioner and the
 * credit-relaxation analysis (multibuffering) both depend on
 * recognizing addresses that are affine functions of the enclosing
 * loop iterators. This mirrors the address analysis the paper
 * delegates to the Spatial frontend.
 */

#include <cstdint>
#include <map>
#include <optional>

#include "ir/program.h"

namespace sara::ir {

/** addr = sum_i coeff[loop_i] * iter_i + base. */
struct AffineForm
{
    std::map<CtrlId, int64_t> coeffs;
    int64_t base = 0;

    /** Coefficient for a loop (0 when the address ignores it). */
    int64_t
    coeff(CtrlId loop) const
    {
        auto it = coeffs.find(loop);
        return it == coeffs.end() ? 0 : it->second;
    }

    /** True when the address ignores every loop (pure constant). */
    bool isConstant() const;

    friend AffineForm operator+(const AffineForm &a, const AffineForm &b);
    friend AffineForm operator-(const AffineForm &a, const AffineForm &b);
    AffineForm scaled(int64_t k) const;
};

/**
 * Try to express op `addr` as an affine function of loop iterators.
 * Returns nullopt for non-affine addresses (indirect/gather, products
 * of iterators, data-dependent terms).
 */
std::optional<AffineForm> matchAffine(const Program &p, OpId addr);

/**
 * Inclusive [min, max] address range of an affine form over full
 * rounds of the given loops (each with constant bounds); loops absent
 * from `boundLoops` contribute their coefficient * current iterator,
 * which makes the range invalid (nullopt) unless the coefficient is 0.
 */
std::optional<std::pair<int64_t, int64_t>>
affineSpan(const Program &p, const AffineForm &form,
           const std::vector<CtrlId> &boundLoops);

} // namespace sara::ir

#endif // SARA_IR_AFFINE_H
