#ifndef SARA_IR_BUILDER_H
#define SARA_IR_BUILDER_H

/**
 * @file
 * A fluent construction API for programs. Mirrors the Spatial nested
 * abstraction: begin/end scopes for loops, branches and do-while, with
 * ops added to the block currently open.
 *
 * Example (2-D elementwise scale):
 * @code
 *   Program p;
 *   Builder b(p);
 *   auto in = p.addTensor("in", MemSpace::Dram, n);
 *   auto out = p.addTensor("out", MemSpace::Dram, n);
 *   auto i = b.beginLoop("i", 0, n, 1, par);
 *   b.beginBlock("body");
 *   b.write(out, b.iter(i), b.mul(b.read(in, b.iter(i)), b.cst(2.0)));
 *   b.endBlock();
 *   b.endLoop();
 * @endcode
 */

#include <string>
#include <vector>

#include "ir/program.h"

namespace sara::ir {

/** Incremental program builder maintaining the open control scope. */
class Builder
{
  public:
    explicit Builder(Program &program) : p_(program)
    {
        scopes_.push_back(program.root());
    }

    // --- Control scopes ---
    /** Open a counted loop (constant bounds). */
    CtrlId beginLoop(const std::string &name, int64_t min, int64_t max,
                     int64_t step = 1, int par = 1);

    /** Open a counted loop with data-dependent bounds. */
    CtrlId beginLoopDyn(const std::string &name, Bound min, Bound max,
                        Bound step, int par = 1);

    /** Close the innermost open loop. */
    void endLoop();

    /** Open a branch; ops under it go to the then-clause first. */
    CtrlId beginBranch(const std::string &name, OpId cond);
    /** Switch the open branch to its else-clause. */
    void elseClause();
    void endBranch();

    /** Open a do-while loop; condition is set by endWhile. */
    CtrlId beginWhile(const std::string &name);
    /** Close the do-while, giving the continue condition (computed in
     *  a block inside the body). */
    void endWhile(OpId cond);

    /** Open/close a hyperblock leaf. */
    CtrlId beginBlock(const std::string &name = "");
    void endBlock();

    // --- Ops (must be inside an open block) ---
    OpId cst(double v);
    OpId iter(CtrlId loop);
    OpId unary(OpKind kind, OpId a);
    OpId binary(OpKind kind, OpId a, OpId b);
    OpId add(OpId a, OpId b) { return binary(OpKind::Add, a, b); }
    OpId sub(OpId a, OpId b) { return binary(OpKind::Sub, a, b); }
    OpId mul(OpId a, OpId b) { return binary(OpKind::Mul, a, b); }
    OpId div(OpId a, OpId b) { return binary(OpKind::Div, a, b); }
    OpId mod(OpId a, OpId b) { return binary(OpKind::Mod, a, b); }
    OpId mac(OpId a, OpId b, OpId c);
    OpId select(OpId cond, OpId t, OpId f);
    OpId read(TensorId tensor, OpId addr);
    OpId write(TensorId tensor, OpId addr, OpId data);
    /** Reduction of `input` over rounds of enclosing loop `loop`. */
    OpId reduce(OpKind kind, OpId input, CtrlId loop);

    /** Affine helper: base + i * scale (constants folded). */
    OpId affine(OpId i, int64_t scale, int64_t base);

    /** The currently open block (invalid if none). */
    CtrlId currentBlock() const { return block_; }

  private:
    CtrlId beginScope(CtrlKind kind, const std::string &name);
    void endScope(CtrlKind kind);
    bool inElseFor(CtrlId branch) const;

    struct ElseMark
    {
        CtrlId branch;
        size_t split;
    };

    Program &p_;
    std::vector<CtrlId> scopes_;
    std::vector<ElseMark> elseMarks_;
    CtrlId block_;
};

} // namespace sara::ir

#endif // SARA_IR_BUILDER_H
