#ifndef SARA_BASELINE_PC_WORKLOADS_H
#define SARA_BASELINE_PC_WORKLOADS_H

/**
 * @file
 * PC-era benchmark variants for the Table V comparison. The vanilla
 * Plasticine compiler supports only a single write and a single read
 * accessor per VMU and has no memory partitioner, so these programs
 * are written the way [41]-era Spatial programs were: logical buffers
 * are duplicated per consumer (extra DRAM reloads and copy loops), and
 * weight vectors that feed two stages are double-written. Both SARA
 * and PC compile the *same* program; SARA additionally gets to raise
 * the par factor (PC cannot, because unrolling multiplies accessors).
 */

#include "workloads/workload.h"

namespace sara::baseline {

workloads::Workload buildPcKmeans(const workloads::WorkloadConfig &cfg);
workloads::Workload buildPcGda(const workloads::WorkloadConfig &cfg);
workloads::Workload buildPcLogreg(const workloads::WorkloadConfig &cfg);
workloads::Workload buildPcSgd(const workloads::WorkloadConfig &cfg);

workloads::Workload buildPcByName(const std::string &name,
                                  const workloads::WorkloadConfig &cfg);

} // namespace sara::baseline

#endif // SARA_BASELINE_PC_WORKLOADS_H
