#include "baseline/gpu_model.h"

#include <algorithm>

#include "support/logging.h"

namespace sara::baseline {

KernelProfile
profileFor(const std::string &workload)
{
    // Calibration sources (qualitative, per the paper's §IV-D
    // discussion and standard V100 characterization):
    //  - snet: cuDNN convolutions run near peak; V100 wins absolute
    //    throughput but loses area-normalized.
    //  - lstm: single-batch recurrent cells leave SMs mostly idle
    //    (tiny GEMVs, kernel-serialized across time steps).
    //  - pr: GunRock parallelizes only the edge frontier; sparse
    //    graphs (delaunay_n20) expose a few percent of bandwidth.
    //  - bs/sort/ms: streaming CUDA kernels at a healthy fraction of
    //    memory bandwidth.
    //  - rf: pointer-chasing tree walks produce scattered 4-byte
    //    accesses; effective bandwidth collapses.
    if (workload == "snet")
        return {0.55, 0.70, 2, 5.0, "cuDNN conv, near-peak GEMM"};
    if (workload == "lstm")
        return {0.04, 0.15, 8, 5.0,
                "single-batch cuDNN LSTM, per-step kernels"};
    if (workload == "pr")
        return {0.02, 0.03, 4, 5.0, "GunRock frontier parallelism only"};
    if (workload == "bs")
        return {0.30, 0.60, 1, 5.0, "streaming CUDA kernel"};
    if (workload == "sort")
        return {0.10, 0.35, 7, 5.0, "thrust radix/merge passes"};
    if (workload == "rf")
        return {0.03, 0.05, 2, 5.0,
                "divergent tree walks, scattered loads"};
    if (workload == "ms")
        return {0.25, 0.45, 1, 5.0, "windowed streaming filter"};
    // Analytics set (Table V apps are not GPU-compared in the paper;
    // provide reasonable defaults for completeness).
    if (workload == "kmeans" || workload == "gda")
        return {0.35, 0.55, 4, 5.0, "batched dense analytics"};
    if (workload == "logreg" || workload == "sgd")
        return {0.20, 0.50, 4, 5.0, "bandwidth-bound analytics"};
    if (workload == "mlp")
        return {0.06, 0.25, 3, 5.0, "single-batch GEMV chain"};
    warn("no GPU profile for '", workload, "'; using defaults");
    return {};
}

GpuEstimate
estimateGpu(const GpuSpec &spec, const KernelProfile &prof, double flops,
            double bytes)
{
    SARA_ASSERT(prof.computeEfficiency > 0 && prof.memoryEfficiency > 0,
                "bad GPU profile");
    GpuEstimate e;
    e.computeTimeUs =
        flops / (spec.peakFp32Tflops * 1e12 * prof.computeEfficiency) *
        1e6;
    e.memoryTimeUs =
        bytes / (spec.memBwGBs * 1e9 * prof.memoryEfficiency) * 1e6;
    e.timeUs = std::max(e.computeTimeUs, e.memoryTimeUs) +
               prof.kernelLaunches * prof.launchOverheadUs;
    e.computeBound = e.computeTimeUs >= e.memoryTimeUs;
    return e;
}

} // namespace sara::baseline
