#include "baseline/pc_workloads.h"

#include "support/logging.h"
#include "workloads/common.h"

namespace sara::baseline {

using namespace ir;
using namespace workloads;

Workload
buildPcGda(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "gda";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 128 * cfg.scale, D = 12;
    ParSplit par = splitPar(cfg.par);

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dCov = p.addTensor("dCov", MemSpace::Dram, D * D);

    // PC-era duplication: one x copy per reader.
    auto xbi = p.addTensor("xbi", MemSpace::OnChip, N * D);
    auto xbj = p.addTensor("xbj", MemSpace::OnChip, N * D);
    auto covb = p.addTensor("covb", MemSpace::OnChip, D * D);

    emitLoad(b, dX, xbi, N * D, 0, 16, "ldxi");
    emitLoad(b, dX, xbj, N * D, 0, 16, "ldxj");

    // Uncentered second-moment matrix (the PC-expressible variant).
    auto i = b.beginLoop("ci", 0, D, 1, par.outer);
    auto j = b.beginLoop("cj", 0, D);
    {
        auto n = b.beginLoop("cn", 0, N, 1, par.inner);
        b.beginBlock("cacc");
        // Feature-major staging (x[d*N + n]): conflict-free n-vectors.
        auto xi = b.read(xbi, b.add(b.mul(b.iter(i), b.cst(double(N))),
                                    b.iter(n)));
        auto xj = b.read(xbj, b.add(b.mul(b.iter(j), b.cst(double(N))),
                                    b.iter(n)));
        auto s = b.reduce(OpKind::RedAdd, b.mul(xi, xj), n);
        b.endBlock();
        b.endLoop();
        b.beginBlock("cwr");
        b.write(covb, b.add(b.mul(b.iter(i), b.cst(double(D))),
                            b.iter(j)),
                b.div(s, b.cst(double(N))));
        b.endBlock();
    }
    b.endLoop();
    b.endLoop();
    emitStore(b, covb, dCov, D * D, 0, 16, "stcov");

    w.dramInputs[dX.v] = randomData(rng, N * D, -2.0, 2.0);
    w.nominalFlops = 2.0 * double(D) * D * N;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildPcKmeans(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "kmeans";
    w.computeBound = true;
    Rng rng(cfg.seed);

    const int64_t N = 128 * cfg.scale, D = 8, K = 4;
    const int iters = 2;
    ParSplit par = splitPar(cfg.par);

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dXT = p.addTensor("dXT", MemSpace::Dram, N * D);
    auto dC = p.addTensor("dC", MemSpace::Dram, K * D);
    auto dOut = p.addTensor("dOut", MemSpace::Dram, K * D);

    // Centroid chain: load -> it0 -> it1 -> store (one W/R each).
    std::vector<TensorId> cent;
    for (int it = 0; it <= iters; ++it)
        cent.push_back(p.addTensor("cent" + std::to_string(it),
                                   MemSpace::OnChip, K * D));
    emitLoad(b, dC, cent[0], K * D, 0, 8, "ldc");

    for (int it = 0; it < iters; ++it) {
        std::string tag = "it" + std::to_string(it);
        // PC reloads x from DRAM for each consumer of each iteration.
        auto xbA = p.addTensor("xa_" + tag, MemSpace::OnChip, N * D);
        auto xbU = p.addTensor("xu_" + tag, MemSpace::OnChip, N * D);
        emitLoad(b, dX, xbA, N * D, 0, 16, tag + "_lda");
        emitLoad(b, dXT, xbU, N * D, 0, 16, tag + "_ldu");
        auto distb = p.addTensor("dist_" + tag, MemSpace::OnChip, K);
        auto bestb = p.addTensor("best_" + tag, MemSpace::OnChip, N);

        auto n = b.beginLoop(tag + "_n", 0, N, 1, par.outer);
        {
            auto k = b.beginLoop(tag + "_k", 0, K);
            auto d = b.beginLoop(tag + "_d", 0, D, 1,
                                 std::min<int>(par.inner, 8));
            b.beginBlock(tag + "_dist");
            auto xv = b.read(xbA,
                             b.add(b.mul(b.iter(n), b.cst(double(D))),
                                   b.iter(d)));
            auto cv = b.read(cent[it],
                             b.add(b.mul(b.iter(k), b.cst(double(D))),
                                   b.iter(d)));
            auto diff = b.sub(xv, cv);
            auto dist = b.reduce(OpKind::RedAdd, b.mul(diff, diff), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_wd");
            b.write(distb, b.iter(k), dist);
            auto minD = b.reduce(OpKind::RedMin, dist, k);
            b.endBlock();
            b.endLoop();

            auto k2 = b.beginLoop(tag + "_k2", 0, K);
            b.beginBlock(tag + "_arg");
            auto dv = b.read(distb, b.iter(k2));
            auto isMin = b.binary(OpKind::CmpEq, dv, minD);
            auto cand = b.select(isMin, b.iter(k2), b.cst(-1.0));
            auto bestk = b.reduce(OpKind::RedMax, cand, k2);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_wb");
            b.write(bestb, b.iter(n), bestk);
            b.endBlock();
        }
        b.endLoop();

        auto k = b.beginLoop(tag + "_uk", 0, K);
        auto d = b.beginLoop(tag + "_ud", 0, D);
        {
            auto nn = b.beginLoop(tag + "_un", 0, N, 1, par.inner);
            b.beginBlock(tag + "_acc");
            auto bv = b.read(bestb, b.iter(nn));
            auto mine = b.binary(OpKind::CmpEq, bv, b.iter(k));
            auto xv = b.read(xbU,
                             b.add(b.mul(b.iter(d), b.cst(double(N))),
                                   b.iter(nn)));
            auto sum = b.reduce(OpKind::RedAdd,
                                b.select(mine, xv, b.cst(0.0)), nn);
            auto cnt = b.reduce(OpKind::RedAdd,
                                b.select(mine, b.cst(1.0), b.cst(0.0)),
                                nn);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_upd");
            auto denom = b.binary(OpKind::Max, cnt, b.cst(1.0));
            b.write(cent[it + 1],
                    b.add(b.mul(b.iter(k), b.cst(double(D))),
                          b.iter(d)),
                    b.div(sum, denom));
            b.endBlock();
        }
        b.endLoop();
        b.endLoop();
    }
    emitStore(b, cent[iters], dOut, K * D, 0, 8, "stc");

    auto xdata = randomData(rng, N * D, 0.0, 4.0);
    std::vector<double> xt(N * D);
    for (int64_t nn = 0; nn < N; ++nn)
        for (int64_t dd = 0; dd < D; ++dd)
            xt[dd * N + nn] = xdata[nn * D + dd];
    w.dramInputs[dX.v] = std::move(xdata);
    w.dramInputs[dXT.v] = std::move(xt);
    w.dramInputs[dC.v] = randomData(rng, K * D, 0.0, 4.0);
    w.nominalFlops = double(iters) * (3.0 * N * K * D + 2.0 * K * D * N);
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildPcLogreg(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "logreg";
    w.computeBound = false;
    Rng rng(cfg.seed);

    const int64_t N = 256 * cfg.scale, D = 16;
    const int iters = 2;
    ParSplit par = splitPar(cfg.par);

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dYl = p.addTensor("dYl", MemSpace::Dram, N);
    auto dWout = p.addTensor("dWout", MemSpace::Dram, D);

    // Weight chain with one (writer, reader) pair per stage: w0 feeds
    // iteration 0's dot stage and its update stage via two copies.
    std::vector<TensorId> wDot, wUpd;
    for (int it = 0; it <= iters; ++it) {
        wDot.push_back(p.addTensor("wdot" + std::to_string(it),
                                   MemSpace::OnChip, D));
        wUpd.push_back(p.addTensor("wupd" + std::to_string(it),
                                   MemSpace::OnChip, D));
    }

    for (int it = 0; it < iters; ++it) {
        std::string tag = "lr" + std::to_string(it);
        auto xb1 = p.addTensor("x1_" + tag, MemSpace::OnChip, N * D);
        auto xb2 = p.addTensor("x2_" + tag, MemSpace::OnChip, N * D);
        auto yb = p.addTensor("y_" + tag, MemSpace::OnChip, N);
        emitLoad(b, dX, xb1, N * D, 0, 16, tag + "_ld1");
        emitLoad(b, dX, xb2, N * D, 0, 16, tag + "_ld2");
        emitLoad(b, dYl, yb, N, 0, 16, tag + "_ldy");

        auto errb = p.addTensor("err_" + tag, MemSpace::OnChip, N);
        auto n = b.beginLoop(tag + "_n", 0, N, 1, par.outer);
        {
            auto d = b.beginLoop(tag + "_d", 0, D, 1, par.inner);
            b.beginBlock(tag + "_dot");
            auto xv = b.read(xb1,
                             b.add(b.mul(b.iter(n), b.cst(double(D))),
                                   b.iter(d)));
            auto wv = b.read(wDot[it], b.iter(d));
            auto dot = b.reduce(OpKind::RedAdd, b.mul(xv, wv), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_err");
            auto pred = b.unary(OpKind::Sigmoid, dot);
            b.write(errb, b.iter(n),
                    b.sub(pred, b.read(yb, b.iter(n))));
            b.endBlock();
        }
        b.endLoop();

        auto d2 = b.beginLoop(tag + "_gd", 0, D);
        {
            auto n2 = b.beginLoop(tag + "_gn", 0, N, 1, par.inner);
            b.beginBlock(tag + "_grad");
            auto ev = b.read(errb, b.iter(n2));
            auto xv = b.read(xb2,
                             b.add(b.mul(b.iter(n2), b.cst(double(D))),
                                   b.iter(d2)));
            auto g = b.reduce(OpKind::RedAdd, b.mul(ev, xv), n2);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_upd");
            auto wOld = b.read(wUpd[it], b.iter(d2));
            auto wNew = b.sub(wOld, b.mul(g, b.cst(0.01 / N)));
            b.write(wDot[it + 1], b.iter(d2), wNew);
            b.write(wUpd[it + 1], b.iter(d2), wNew);
            b.endBlock();
        }
        b.endLoop();
    }
    emitStore(b, wDot[iters], dWout, D, 0, 16, "stw");

    w.dramInputs[dX.v] = randomData(rng, N * D, -1.0, 1.0);
    w.dramInputs[dYl.v] = randomInts(rng, N, 0, 1);
    w.nominalFlops = double(iters) * 4.0 * N * D;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildPcSgd(const WorkloadConfig &cfg)
{
    Workload w;
    w.name = "sgd";
    w.computeBound = false;
    Rng rng(cfg.seed);

    // Statically emitted mini-batches (the loop-carried w chain forces
    // the same ping-pong duplication as logreg).
    const int64_t batches = 4, batch = 32 * cfg.scale, D = 16;
    const int64_t N = batches * batch;
    ParSplit par = splitPar(cfg.par);

    Program &p = w.program;
    Builder b(p);
    auto dX = p.addTensor("dX", MemSpace::Dram, N * D);
    auto dYl = p.addTensor("dYl", MemSpace::Dram, N);
    auto dWout = p.addTensor("dWout", MemSpace::Dram, D);

    std::vector<TensorId> wDot, wUpd;
    for (int64_t bt = 0; bt <= batches; ++bt) {
        wDot.push_back(p.addTensor("wdot" + std::to_string(bt),
                                   MemSpace::OnChip, D));
        wUpd.push_back(p.addTensor("wupd" + std::to_string(bt),
                                   MemSpace::OnChip, D));
    }

    for (int64_t bt = 0; bt < batches; ++bt) {
        std::string tag = "b" + std::to_string(bt);
        auto xb1 = p.addTensor("x1_" + tag, MemSpace::OnChip, batch * D);
        auto xb2 = p.addTensor("x2_" + tag, MemSpace::OnChip, batch * D);
        auto yb = p.addTensor("y_" + tag, MemSpace::OnChip, batch);
        emitLoad(b, dX, xb1, batch * D, bt * batch * D, 16,
                 tag + "_ld1");
        emitLoad(b, dX, xb2, batch * D, bt * batch * D, 16,
                 tag + "_ld2");
        emitLoad(b, dYl, yb, batch, bt * batch, 16, tag + "_ldy");

        auto errb = p.addTensor("err_" + tag, MemSpace::OnChip, batch);
        auto n = b.beginLoop(tag + "_n", 0, batch, 1, par.outer);
        {
            auto d = b.beginLoop(tag + "_d", 0, D, 1, par.inner);
            b.beginBlock(tag + "_dot");
            auto xv = b.read(xb1,
                             b.add(b.mul(b.iter(n), b.cst(double(D))),
                                   b.iter(d)));
            auto wv = b.read(wDot[bt], b.iter(d));
            auto dot = b.reduce(OpKind::RedAdd, b.mul(xv, wv), d);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_err");
            auto pred = b.unary(OpKind::Sigmoid, dot);
            b.write(errb, b.iter(n),
                    b.sub(pred, b.read(yb, b.iter(n))));
            b.endBlock();
        }
        b.endLoop();

        auto d2 = b.beginLoop(tag + "_gd", 0, D);
        {
            auto n2 = b.beginLoop(tag + "_gn", 0, batch, 1, par.inner);
            b.beginBlock(tag + "_grad");
            auto ev = b.read(errb, b.iter(n2));
            auto xv = b.read(xb2,
                             b.add(b.mul(b.iter(n2), b.cst(double(D))),
                                   b.iter(d2)));
            auto g = b.reduce(OpKind::RedAdd, b.mul(ev, xv), n2);
            b.endBlock();
            b.endLoop();
            b.beginBlock(tag + "_upd");
            auto wOld = b.read(wUpd[bt], b.iter(d2));
            auto wNew = b.sub(wOld, b.mul(g, b.cst(0.02 / batch)));
            b.write(wDot[bt + 1], b.iter(d2), wNew);
            b.write(wUpd[bt + 1], b.iter(d2), wNew);
            b.endBlock();
        }
        b.endLoop();
    }
    emitStore(b, wDot[batches], dWout, D, 0, 16, "stw");

    w.dramInputs[dX.v] = randomData(rng, N * D, -1.0, 1.0);
    w.dramInputs[dYl.v] = randomInts(rng, N, 0, 1);
    w.nominalFlops = double(batches) * 4.0 * batch * D;
    w.elements = static_cast<double>(N);
    return w;
}

Workload
buildPcByName(const std::string &name, const WorkloadConfig &cfg)
{
    if (name == "kmeans")
        return buildPcKmeans(cfg);
    if (name == "gda")
        return buildPcGda(cfg);
    if (name == "logreg")
        return buildPcLogreg(cfg);
    if (name == "sgd")
        return buildPcSgd(cfg);
    fatal("no PC-era variant of workload '", name, "'");
}

} // namespace sara::baseline
