#ifndef SARA_BASELINE_GPU_MODEL_H
#define SARA_BASELINE_GPU_MODEL_H

/**
 * @file
 * Analytical Tesla V100 performance model (DESIGN.md substitution #3).
 *
 * The paper measures real V100 runs (TensorFlow/cuDNN for snet and
 * lstm, GunRock for pr, CUDA libraries for bs and sort, hand-tuned
 * CUDA for rf). No GPU exists in this environment, so Table VI is
 * reproduced against a calibrated roofline: per-kernel efficiency
 * factors (fraction of peak compute / memory bandwidth the kernel
 * class achieves on a V100) are drawn from the paper's own reported
 * outcomes and from well-known V100 characterization results. The
 * model preserves the comparison *shape* — who wins and by roughly
 * what factor — not absolute silicon numbers.
 */

#include <string>

namespace sara::baseline {

/** Tesla V100 (SXM2) parameters. */
struct GpuSpec
{
    double peakFp32Tflops = 15.7;
    double memBwGBs = 900.0;
    int sms = 80;
    double clockGhz = 1.53;
    /** Die area; the paper calls the V100 8.3x larger than its
     *  Plasticine configuration after technology normalization. */
    double areaMm2 = 815.0;
    double areaRatioVsPlasticine = 8.3;

    static GpuSpec v100() { return {}; }
};

/** Per-kernel-class efficiency factors. */
struct KernelProfile
{
    /** Fraction of peak FP32 the kernel class achieves. */
    double computeEfficiency = 0.5;
    /** Fraction of peak DRAM bandwidth it achieves. */
    double memoryEfficiency = 0.6;
    /** Kernel launches per run (host-serialized; ~5 us each). This is
     *  a first-order reason GPUs lose small-batch / iterative
     *  workloads: per-step kernel launches cannot pipeline. */
    int kernelLaunches = 1;
    double launchOverheadUs = 5.0;
    std::string note;
};

/** Profile for one of the Table VI workloads (by name). */
KernelProfile profileFor(const std::string &workload);

/** Roofline estimate. */
struct GpuEstimate
{
    double timeUs = 0.0;
    double computeTimeUs = 0.0;
    double memoryTimeUs = 0.0;
    bool computeBound = false;
};

/**
 * Time for a kernel moving `bytes` and executing `flops`, under the
 * given profile.
 */
GpuEstimate estimateGpu(const GpuSpec &spec, const KernelProfile &prof,
                        double flops, double bytes);

} // namespace sara::baseline

#endif // SARA_BASELINE_GPU_MODEL_H
