#ifndef SARA_COMPILER_DRIVER_H
#define SARA_COMPILER_DRIVER_H

/**
 * @file
 * The SARA compilation pipeline (paper Fig. 3): unroll ->
 * imperative-to-dataflow lowering (+CMMC) -> compute partitioning ->
 * global merging -> retiming -> virtual-to-physical assignment ->
 * placement & routing. `compile` returns everything the simulator and
 * the benchmark harness need.
 */

#include <string>
#include <vector>

#include "compiler/lowering.h"
#include "compiler/options.h"
#include "compiler/unroll.h"
#include "ir/program.h"
#include "support/telemetry.h"

namespace sara::compiler {

/** Physical resource usage after mapping. */
struct ResourceReport
{
    int pcus = 0;       ///< Compute units used (incl. merge/retime).
    int pmus = 0;       ///< Memory units used.
    int ags = 0;        ///< DRAM address generators used.
    int retimeUnits = 0;
    int mergeUnits = 0;
    int controllerUnits = 0;
    int pcusAvail = 0, pmusAvail = 0, agsAvail = 0;
    bool fits = true;

    int total() const { return pcus + pmus + ags; }
    std::string str() const;
};

/** Full compilation output. */
struct CompileResult
{
    ir::Program program; ///< Post-unroll program (simulation oracle).
    Lowering lowering;   ///< Graph + maps + CMMC statistics.
    UnrollStats unrollStats;
    ResourceReport resources;
    /** Per-phase telemetry spans (Fig. 11b/c): a root "compile" span
     *  with one child per pipeline phase ("unroll", "lower",
     *  "partition", "merge", "pnr", "retime"), each carrying
     *  pass-level stats (nodes in/out, units created/merged/...). */
    std::vector<telemetry::Span> phases;
    int partitionsCreated = 0; ///< Sub-VCUs added by compute partition.
    int unitsMerged = 0;       ///< VUs packed by global merging.

    /** Wall-clock of the first span named `phase` (0 when absent). */
    double phaseMs(const std::string &phase) const;
    /** End-to-end compile wall-clock (the root "compile" span). */
    double totalMs() const { return phaseMs("compile"); }
};

/** Run the full pipeline on a copy of `input`. */
CompileResult compile(const ir::Program &input,
                      const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_DRIVER_H
