#ifndef SARA_COMPILER_DRIVER_H
#define SARA_COMPILER_DRIVER_H

/**
 * @file
 * The SARA compilation pipeline (paper Fig. 3): unroll ->
 * imperative-to-dataflow lowering (+CMMC) -> compute partitioning ->
 * global merging -> retiming -> virtual-to-physical assignment ->
 * placement & routing. `compile` returns everything the simulator and
 * the benchmark harness need.
 */

#include <string>

#include "compiler/lowering.h"
#include "compiler/options.h"
#include "compiler/unroll.h"
#include "ir/program.h"

namespace sara::compiler {

/** Physical resource usage after mapping. */
struct ResourceReport
{
    int pcus = 0;       ///< Compute units used (incl. merge/retime).
    int pmus = 0;       ///< Memory units used.
    int ags = 0;        ///< DRAM address generators used.
    int retimeUnits = 0;
    int mergeUnits = 0;
    int controllerUnits = 0;
    int pcusAvail = 0, pmusAvail = 0, agsAvail = 0;
    bool fits = true;

    int total() const { return pcus + pmus + ags; }
    std::string str() const;
};

/** Per-phase compile timing (Fig. 11b/c). */
struct CompileTiming
{
    double unrollMs = 0;
    double lowerMs = 0;
    double partitionMs = 0;
    double mergeMs = 0;
    double pnrMs = 0;
    double totalMs = 0;
};

/** Full compilation output. */
struct CompileResult
{
    ir::Program program; ///< Post-unroll program (simulation oracle).
    Lowering lowering;   ///< Graph + maps + CMMC statistics.
    UnrollStats unrollStats;
    ResourceReport resources;
    CompileTiming timing;
    int partitionsCreated = 0; ///< Sub-VCUs added by compute partition.
    int unitsMerged = 0;       ///< VUs packed by global merging.
};

/** Run the full pipeline on a copy of `input`. */
CompileResult compile(const ir::Program &input,
                      const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_DRIVER_H
