#ifndef SARA_COMPILER_CMMC_H
#define SARA_COMPILER_CMMC_H

/**
 * @file
 * Compiler-Managed Memory Consistency (paper §III-A): the per-tensor
 * accessor dependency graph and the control-reduction analysis
 * (§III-A3) that minimizes allocated tokens.
 *
 * Nodes are accessor indices (program order) of one tensor. Forward
 * edges order earlier accesses before later ones within an iteration
 * of their LCA scope; backward edges are loop-carried dependencies
 * (LCDs) that become credits (initial tokens).
 */

#include <vector>

#include "compiler/analysis.h"
#include "ir/program.h"

namespace sara::compiler {

/** One dependency between two accessors of a tensor. */
struct DepEdge
{
    size_t src = 0;
    size_t dst = 0;
    bool backward = false; ///< LCD edge (becomes a credit).
    ir::CtrlId loop;       ///< LCD: the associated loop (edge color in Fig. 5).
    int credit = 1;        ///< Initial tokens for backward edges.
    bool pruned = false;   ///< Scratch flag used during reduction.
};

/** Dependency graph over one tensor's accessors. */
struct DepGraph
{
    size_t n = 0;
    std::vector<DepEdge> edges;

    bool hasEdge(size_t src, size_t dst, bool backward) const;
};

/** Construction knobs. */
struct DepGraphOptions
{
    /** Enforce read-after-read order (on-chip PMUs serve one read
     *  request stream at a time). */
    bool enforceRar = false;
    /** Per-accessor static shard (-1 = dynamic); RAR only applies to
     *  reads that can collide on a shard. Empty = single shard. */
    std::vector<int> staticShard;
    /** Skip alias-based pruning and order *every* consecutive pair —
     *  the vanilla-PC control scheme. */
    bool fullSerialize = false;
};

/**
 * Build the dependency graph for one tensor (paper §III-A3a):
 * - forward W->W, W->R, R->W (and R->R per options) edges between
 *   earlier and later accessors, except pairs in exclusive branch
 *   clauses or with provably disjoint addresses;
 * - backward LCD edges on the innermost common loop for pairs that
 *   may conflict across its iterations.
 */
DepGraph buildDepGraph(const ir::Program &p, const TensorAccess &ta,
                       const DepGraphOptions &options);

/** Results of the reduction passes. */
struct ReduceStats
{
    int forwardRemoved = 0;
    int backwardRemoved = 0;
};

/**
 * Control-reduction analysis (paper §III-A3b): transitive reduction of
 * the forward-dependency DAG, then pruning of backward edges subsumed
 * by an alternative path containing exactly one backward edge of the
 * same loop and credit.
 */
ReduceStats reduceDepGraph(DepGraph &graph);

} // namespace sara::compiler

#endif // SARA_COMPILER_CMMC_H
