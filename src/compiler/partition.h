#ifndef SARA_COMPILER_PARTITION_H
#define SARA_COMPILER_PARTITION_H

/**
 * @file
 * Compute partitioning (paper §III-B1, Tables I-III): splitting a
 * VCU's local dataflow into sub-VCUs that satisfy the PCU constraints
 * (ops per unit, input/output arity with broadcast counting, no
 * cross-partition cycles), minimizing allocated partitions plus the
 * retiming cost of delay imbalance.
 *
 * The abstract problem (nodes/edges/costs) is exposed so the traversal
 * algorithms and the MIP-style solver can be compared head-to-head
 * (Fig. 11), independent of graph rewriting.
 */

#include <utility>
#include <vector>

#include "compiler/options.h"
#include "dfg/vudfg.h"

namespace sara::compiler {

/** Abstract partitioning instance (one VCU's dataflow DAG). */
struct PartitionProblem
{
    int n = 0;
    std::vector<std::pair<int, int>> edges; ///< src -> dst (a DAG).
    std::vector<int> opCost; ///< Countable ops per node (0 = free).
    int maxOps = 6;
    int maxIn = 6;
    int maxOut = 6;
    double alpha = 1.0 / 6; ///< Retiming cost multiplier (Table III).
    /** Optional second capacity (e.g. counter chains for merging). */
    std::vector<int> auxCost;
    int maxAux = 0; ///< 0 disables the aux constraint.
};

/** Assignment of nodes to partitions. */
struct PartitionSolution
{
    std::vector<int> assign;
    int numPartitions = 0;
    double cost = 0.0;
    bool feasible = true;
};

/** Cost of a solution (#partitions + alpha * retiming gaps);
 *  +inf-ish when constraints are violated. */
double partitionCost(const PartitionProblem &prob,
                     const std::vector<int> &assign, bool *feasible);

/** Traversal-based algorithm: topological chunking in BFS/DFS order,
 *  forward or backward (paper §III-B1c). */
PartitionSolution partitionTraversal(const PartitionProblem &prob,
                                     PartitionAlgo algo);

/** Result of rewriting the whole graph. */
struct PartitionReport
{
    int unitsPartitioned = 0;
    int partitionsCreated = 0; ///< Extra units added.
};

/** Partition every oversized Compute unit in `graph` and rewrite it
 *  (new sub-units + per-firing forwarding streams + replicated
 *  control inputs). */
PartitionReport partitionCompute(dfg::Vudfg &graph,
                                 const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_PARTITION_H
