#include "compiler/lowering.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "compiler/cmmc.h"
#include "support/logging.h"

namespace sara::compiler {

using namespace ir;
using dfg::AccessDir;
using dfg::InputBinding;
using dfg::InputRole;
using dfg::OutputBinding;
using dfg::StreamId;
using dfg::StreamKind;
using dfg::VuId;
using dfg::VuKind;

namespace {

/** Round v up to a multiple of m. */
int64_t
roundUp(int64_t v, int64_t m)
{
    return ((v + m - 1) / m) * m;
}

/** Nodes of the hierarchical-merge tree for a fan of `leaves`. */
int
mergeTreeCost(int leaves, int fan)
{
    int cost = 0;
    while (leaves > 1) {
        leaves = (leaves + fan - 1) / fan;
        cost += leaves;
    }
    return cost;
}

struct Lowerer
{
    const Program &p;
    const CompilerOptions &opt;
    Lowering out;

    std::vector<size_t> order;
    std::vector<TensorAccess> access;

    struct TensorPlan
    {
        bool hasVmu = false;
        bool fifoLower = false;
        int depth = 1;
        int numShards = 1;
        int64_t interleave = 0;
        std::vector<int> staticShard; ///< Per accessor; -1 = dynamic.
        std::vector<VuId> shardVmus;
        CtrlId rotateScope; ///< Loop whose iterations rotate buffers.
    };
    std::vector<TensorPlan> plans;

    /**
     * Per-hyperblock lowering state. A block lowers to one VCU per
     * "read stage": a read whose address is streamed (indirect) breaks
     * the block into request and response units (paper §III-A1) so the
     * VCU<->memory request/response loop stays acyclic.
     */
    struct BlockInfo
    {
        CtrlId id;
        std::vector<CtrlId> loops;
        int vec = 1;
        /** Stage index -> VCU (sparse; empty when copy-elided). */
        std::map<int, VuId> stages;
        /** op id -> (stage index, lop index). */
        std::unordered_map<int32_t, std::pair<int, int>> lopAt;
        std::unordered_map<int32_t, int> opStage;
        std::vector<VuId> engines; ///< Stage VCUs + ports + AGs.
    };
    std::unordered_map<int32_t, BlockInfo> blocks;
    std::unordered_map<int32_t, CtrlId> engineBlock; ///< VuId.v -> block.

    /** fifo-lowered tensors: writer unit + data lop. */
    std::unordered_map<int32_t, std::pair<VuId, int>> fifoSrc;

    /** Ops with uses outside their own block (incl. bounds/conds). */
    std::unordered_set<int32_t> externallyUsed;

    /** Live ops: everything else (mostly address arithmetic duplicated
     *  into memory engines by xbar-elm) is never lowered into a VCU. */
    std::unordered_set<int32_t> live;

    /** Import dedupe: (op id, consumer unit) -> consumer lop index. */
    std::map<std::pair<int32_t, int32_t>, int> importMap;
    /** Slice rematerialization memo: (op id, unit) -> lop index. */
    std::map<std::pair<int32_t, int32_t>, int> sliceMemo;

    explicit Lowerer(const Program &program, const CompilerOptions &options)
        : p(program), opt(options)
    {
        order = p.programOrder();
        access = collectAccessors(p);
    }

    dfg::Vudfg &g() { return out.graph; }

    // ------------------------------------------------------------------
    // Tensor planning
    // ------------------------------------------------------------------

    /** Structural equality of the sub-LCA loop nests plus address
     *  correspondence (identical coefficients, dense injective
     *  layout): the msr "lock-step" requirement. */
    bool
    lockStepStreams(const Accessor &w, const Accessor &r, CtrlId lca) const
    {
        if (!w.form || !r.form)
            return false;
        auto below = [&](CtrlId block) {
            std::vector<CtrlId> ls;
            for (CtrlId l : p.enclosingLoops(block))
                if (!(l == lca) && !p.isAncestor(l, lca))
                    ls.push_back(l);
            return ls;
        };
        auto lw = below(w.block), lr = below(r.block);
        if (lw.size() != lr.size())
            return false;
        for (size_t i = 0; i < lw.size(); ++i) {
            const CtrlNode &a = p.ctrl(lw[i]);
            const CtrlNode &b = p.ctrl(lr[i]);
            if (a.kind != CtrlKind::Loop || b.kind != CtrlKind::Loop)
                return false;
            if (!a.min.isConst || !a.max.isConst || !a.step.isConst ||
                !b.min.isConst || !b.max.isConst || !b.step.isConst)
                return false;
            if (a.min.cval != b.min.cval || a.max.cval != b.max.cval ||
                a.step.cval != b.step.cval || a.vec != b.vec)
                return false;
            if (w.form->coeff(lw[i]) != r.form->coeff(lr[i]))
                return false;
            if (w.form->coeff(lw[i]) == 0)
                return false; // Repeated addresses: not injective.
        }
        // Coefficients on shared (at-or-above LCA) loops must agree.
        for (CtrlId l : p.enclosingLoops(w.block)) {
            if (std::find(lw.begin(), lw.end(), l) != lw.end())
                continue;
            if (w.form->coeff(l) != r.form->coeff(l))
                return false;
        }
        if (w.form->base != r.form->base)
            return false;
        // Conservative injectivity: each |coeff * step| strictly
        // dominates the reachable sum of finer terms.
        std::vector<std::pair<int64_t, int64_t>> terms;
        for (CtrlId l : lw) {
            const CtrlNode &n = p.ctrl(l);
            int64_t trips =
                (n.max.cval - n.min.cval + n.step.cval - 1) / n.step.cval;
            terms.push_back({std::abs(w.form->coeff(l) * n.step.cval),
                             trips});
        }
        std::sort(terms.begin(), terms.end());
        int64_t reach = 0;
        for (auto &[c, trips] : terms) {
            if (c <= reach)
                return false;
            reach += c * (trips - 1);
        }
        return true;
    }

    bool
    branchOrWhileBetween(CtrlId scope, CtrlId block) const
    {
        for (CtrlId cur = block; cur.valid() && cur != scope;
             cur = p.ctrl(cur).parent) {
            if (cur == block)
                continue;
            auto kind = p.ctrl(cur).kind;
            if (kind == CtrlKind::Branch || kind == CtrlKind::While)
                return true;
        }
        return false;
    }

    CtrlId
    lcaOfAccessors(const std::vector<Accessor> &acc) const
    {
        CtrlId l = acc[0].block;
        for (size_t i = 1; i < acc.size(); ++i)
            l = p.lca(l, acc[i].block);
        return l;
    }

    /** Innermost loop at-or-above `scope` (the pipeline loop). */
    CtrlId
    pipelineLoop(CtrlId scope) const
    {
        for (CtrlId cur = scope; cur.valid(); cur = p.ctrl(cur).parent) {
            auto kind = p.ctrl(cur).kind;
            if (kind == CtrlKind::Loop || kind == CtrlKind::While)
                return cur;
        }
        return CtrlId{};
    }

    /**
     * Is there a dataflow path from `w.block` to `r.block` through
     * on-chip tensors other than `t` itself? FIFO-lowering t in that
     * case is a deadlock waiting to happen: the reader joins the FIFO
     * with data arriving over the longer reconvergent path, so it
     * cannot drain the FIFO until that path delivers — while the
     * producer keeps pushing. With a diamond (residual/skip
     * connections) whose tensor exceeds the FIFO depth, both sides
     * wedge. Such joins keep their VMU; straight-line producer ->
     * consumer chains are unaffected.
     */
    bool
    reconvergentPath(const Accessor &w, const Accessor &r,
                     TensorId t) const
    {
        // Block-level dataflow edges: tensor writer block -> reader
        // block labeled with the connecting tensor (on-chip only; DRAM
        // round-trips go through AGs, not backpressured streams), plus
        // unlabeled cross-block operand streams (reduction results and
        // other SSA values consumed in a different hyperblock).
        std::map<int32_t, std::vector<std::pair<int32_t, int32_t>>> adj;
        for (const auto &other : access) {
            if (p.tensor(other.tensor).space != MemSpace::OnChip)
                continue;
            for (const auto &aw : other.accessors) {
                if (!aw.isWrite)
                    continue;
                for (const auto &ar : other.accessors) {
                    if (ar.isWrite || ar.block == aw.block)
                        continue;
                    adj[aw.block.v].push_back(
                        {ar.block.v, other.tensor.v});
                }
            }
        }
        for (size_t i = 0; i < p.numOps(); ++i) {
            const Op &o = p.op(OpId(static_cast<int32_t>(i)));
            for (OpId d : o.operands) {
                CtrlId def = p.op(d).block;
                if (def.valid() && !(def == o.block))
                    adj[def.v].push_back({o.block.v, -1});
            }
        }
        // Only *multi-hop* paths W -> X -> ... -> R are hazards: a
        // direct side stream W -> R (a sibling-block reduction result,
        // the write+reduce idiom) delivers at the same LCA-derived
        // rate as the FIFO and cannot starve it.
        std::vector<int32_t> frontier = {w.block.v};
        std::set<int32_t> seen = {w.block.v};
        while (!frontier.empty()) {
            int32_t cur = frontier.back();
            frontier.pop_back();
            auto it = adj.find(cur);
            if (it == adj.end())
                continue;
            for (auto [next, via] : it->second) {
                if (via == t.v)
                    continue; // Only paths besides t itself count.
                if (next == r.block.v) {
                    if (cur != w.block.v)
                        return true;
                    continue; // Direct edge; never traverse through R.
                }
                if (seen.insert(next).second)
                    frontier.push_back(next);
            }
        }
        return false;
    }

    bool
    qualifiesFifoLower(const TensorAccess &ta) const
    {
        if (!opt.enableMsr || ta.accessors.size() != 2)
            return false;
        const Accessor &w = ta.accessors[0];
        const Accessor &r = ta.accessors[1];
        if (!w.isWrite || r.isWrite || w.block == r.block)
            return false;
        CtrlId lca = p.lca(w.block, r.block);
        if (branchOrWhileBetween(lca, w.block) ||
            branchOrWhileBetween(lca, r.block))
            return false;
        if (!lockStepStreams(w, r, lca))
            return false;
        return !reconvergentPath(w, r, ta.tensor);
    }

    /** Writer-covers-reader span check for multibuffering. */
    bool
    qualifiesMultibuffer(const TensorAccess &ta, CtrlId pipeLoop) const
    {
        if (!opt.enableMultibuffer || !pipeLoop.valid())
            return false;
        const auto &acc = ta.accessors;
        if (acc.size() < 2 || !acc[0].isWrite)
            return false;
        for (size_t i = 1; i < acc.size(); ++i)
            if (acc[i].isWrite)
                return false; // Single-writer chains only.
        // Buffer rotation assumes one accessor round per pipeline
        // round per engine: accessors must live in distinct blocks.
        for (size_t i = 0; i < acc.size(); ++i)
            for (size_t j = i + 1; j < acc.size(); ++j)
                if (acc[i].block == acc[j].block)
                    return false;
        CtrlId lca = lcaOfAccessors(acc);
        for (const auto &a : acc) {
            if (branchOrWhileBetween(lca, a.block))
                return false;
            if (!a.form)
                return false;
            for (const auto &[loop, c] : a.form->coeffs)
                if (c != 0 &&
                    (loop == pipeLoop || p.isAncestor(loop, pipeLoop)))
                    return false;
        }
        // Writer must densely cover its span each round.
        const Accessor &w = acc[0];
        std::vector<CtrlId> wloops;
        int64_t iterations = 1;
        for (const auto &[loop, c] : w.form->coeffs) {
            if (c == 0)
                continue;
            const CtrlNode &n = p.ctrl(loop);
            if (n.kind != CtrlKind::Loop || !n.min.isConst ||
                !n.max.isConst || !n.step.isConst)
                return false;
            wloops.push_back(loop);
            iterations *=
                (n.max.cval - n.min.cval + n.step.cval - 1) / n.step.cval;
        }
        auto wspan = affineSpan(p, *w.form, wloops);
        if (!wspan || wspan->second - wspan->first + 1 != iterations)
            return false;
        for (size_t i = 1; i < acc.size(); ++i) {
            std::vector<CtrlId> rloops;
            for (const auto &[loop, c] : acc[i].form->coeffs)
                if (c != 0)
                    rloops.push_back(loop);
            auto rspan = affineSpan(p, *acc[i].form, rloops);
            if (!rspan || rspan->first < wspan->first ||
                rspan->second > wspan->second)
                return false;
        }
        return true;
    }

    void
    planTensors()
    {
        plans.resize(p.numTensors());
        for (size_t t = 0; t < p.numTensors(); ++t) {
            const Tensor &tensor = p.tensor(TensorId(t));
            TensorPlan &plan = plans[t];
            const auto &acc = access[t].accessors;
            if (tensor.space == MemSpace::Dram || acc.empty())
                continue;

            if (opt.control == ControlScheme::HierarchicalFsm) {
                int writers = 0, readers = 0;
                for (const auto &a : acc)
                    a.isWrite ? ++writers : ++readers;
                if (writers > 1 || readers > 1)
                    fatal("vanilla PC supports a single write and a "
                          "single read accessor per VMU (tensor ",
                          tensor.name, " has ", writers, "W/", readers,
                          "R)");
            }

            if (qualifiesFifoLower(access[t])) {
                plan.fifoLower = true;
                ++out.stats.fifoLoweredTensors;
                continue;
            }
            plan.hasVmu = true;

            CtrlId lca = lcaOfAccessors(acc);
            CtrlId pipe = pipelineLoop(lca);
            if (qualifiesMultibuffer(access[t], pipe)) {
                plan.depth = opt.multibufferDepth;
                plan.rotateScope = pipe;
                ++out.stats.multibufferedTensors;
            }

            // Sharding (second round when a dynamic port disables
            // multibuffering and changes the capacity math).
            for (int round = 0; round < 2; ++round) {
                int64_t perShard = std::max<int64_t>(
                    1, opt.spec.pmu.capacityWords / plan.depth);
                int sCap = static_cast<int>(
                    (tensor.size + perShard - 1) / perShard);
                int writers = 0, readers = 0;
                for (const auto &a : acc)
                    a.isWrite ? ++writers : ++readers;
                int sPar = std::max(writers, readers);
                int s = std::max(sCap, std::min(sPar, 64));
                if (opt.control == ControlScheme::HierarchicalFsm) {
                    if (sCap > 1)
                        fatal("vanilla PC cannot partition tensor ",
                              tensor.name, " (needs ", sCap, " PMUs)");
                    s = 1;
                }
                if (s <= 1) {
                    plan.numShards = 1;
                    plan.interleave = tensor.size;
                } else {
                    plan.interleave =
                        roundUp((tensor.size + s - 1) / s, 16);
                    plan.numShards = static_cast<int>(
                        (tensor.size + plan.interleave - 1) /
                        plan.interleave);
                }
                plan.staticShard.assign(acc.size(), -1);
                bool anyDynamic = false;
                for (size_t i = 0; i < acc.size(); ++i) {
                    if (plan.numShards == 1) {
                        plan.staticShard[i] = 0;
                        continue;
                    }
                    if (!acc[i].form) {
                        anyDynamic = true;
                        continue;
                    }
                    std::vector<CtrlId> loops;
                    for (const auto &[loop, c] : acc[i].form->coeffs)
                        if (c != 0)
                            loops.push_back(loop);
                    auto span = affineSpan(p, *acc[i].form, loops);
                    if (span &&
                        span->first / plan.interleave ==
                            span->second / plan.interleave) {
                        plan.staticShard[i] = static_cast<int>(
                            std::min<int64_t>(
                                span->first / plan.interleave,
                                plan.numShards - 1));
                    } else {
                        anyDynamic = true;
                    }
                }
                if (anyDynamic && plan.depth > 1 && round == 0) {
                    plan.depth = 1;
                    plan.rotateScope = CtrlId{};
                    --out.stats.multibufferedTensors;
                    continue;
                }
                break;
            }
            if (plan.numShards > 1)
                ++out.stats.shardedTensors;
            for (size_t i = 0; i < acc.size(); ++i) {
                if (plan.staticShard[i] < 0) {
                    ++out.stats.dynamicPorts;
                    out.stats.mergeUnits += mergeTreeCost(
                        plan.numShards, opt.spec.pcu.maxIn);
                }
            }
        }
    }

    void
    createVmus()
    {
        for (size_t t = 0; t < p.numTensors(); ++t) {
            TensorPlan &plan = plans[t];
            if (!plan.hasVmu)
                continue;
            const Tensor &tensor = p.tensor(TensorId(t));
            for (int s = 0; s < plan.numShards; ++s) {
                VuId id = g().addUnit(VuKind::Memory,
                                      "vmu_" + tensor.name +
                                          (plan.numShards > 1
                                               ? "#" + std::to_string(s)
                                               : ""));
                auto &u = g().unit(id);
                u.tensor = TensorId(t);
                u.bufferSize = plan.interleave;
                u.bufferDepth = plan.depth;
                u.shardIndex = s;
                u.numShards = plan.numShards;
                u.shardInterleave = plan.interleave;
                plan.shardVmus.push_back(id);
            }
        }
    }

    // ------------------------------------------------------------------
    // External-use analysis (drives copy elision)
    // ------------------------------------------------------------------

    void
    computeExternalUses()
    {
        p.forEachCtrl([&](const CtrlNode &node) {
            for (OpId oid : node.ops) {
                const Op &o = p.op(oid);
                for (OpId operand : o.operands)
                    if (p.op(operand).block != o.block)
                        externallyUsed.insert(operand.v);
            }
        });
        p.forEachCtrl([&](const CtrlNode &node) {
            auto mark = [&](const Bound &b) {
                if (!b.isConst)
                    externallyUsed.insert(b.op.v);
            };
            mark(node.min);
            mark(node.step);
            mark(node.max);
            if (node.cond.valid())
                externallyUsed.insert(node.cond.v);
        });
    }

    /**
     * Liveness: a Write is always live; other ops are live when used
     * externally or by a live op — except that the address operand of
     * a memory op whose address is computed locally at its engine
     * (affine + xbar-elm) does not keep its producers alive. Dead
     * reads (unused values) are dropped entirely, including their
     * engines and tokens.
     */
    void
    computeLiveness()
    {
        // Only ops in blocks still attached to the control tree count
        // (loop unrolling leaves orphaned originals in the arena).
        std::vector<OpId> treeOps;
        p.forEachCtrl([&](const CtrlNode &node) {
            for (OpId oid : node.ops)
                treeOps.push_back(oid);
        });
        // Direct-use lists.
        std::vector<std::vector<OpId>> users(p.numOps());
        for (OpId oid : treeOps) {
            const Op &o = p.op(oid);
            for (size_t a = 0; a < o.operands.size(); ++a) {
                if (isMemoryOp(o.kind) && a == 0)
                    continue; // Handled via accessor address rules.
                users[o.operands[a].index()].push_back(o.id);
            }
        }
        // Seed: writes and externally used ops; propagate backwards.
        std::vector<OpId> work;
        auto markLive = [&](OpId oid) {
            if (live.insert(oid.v).second)
                work.push_back(oid);
        };
        for (OpId oid : treeOps) {
            const Op &o = p.op(oid);
            if (o.kind == OpKind::Write || externallyUsed.count(o.id.v))
                markLive(o.id);
        }
        while (!work.empty()) {
            OpId oid = work.back();
            work.pop_back();
            const Op &o = p.op(oid);
            for (size_t a = 0; a < o.operands.size(); ++a) {
                bool isAddr = isMemoryOp(o.kind) && a == 0;
                if (isAddr && localAddr(accessorOf(oid)))
                    continue; // Recomputed at the memory engine.
                markLive(o.operands[a]);
            }
        }
        // A value op is only truly live if a live op consumes it (the
        // seeds cover writes/external); reads with no live users are
        // dropped from the accessor lists.
        for (auto &ta : access) {
            std::vector<Accessor> kept;
            for (auto &a : ta.accessors) {
                if (!a.isWrite && !live.count(a.op.v)) {
                    bool used = false;
                    for (OpId u : users[a.op.index()])
                        if (live.count(u.v))
                            used = true;
                    if (!used)
                        continue;
                }
                Accessor copy = a;
                copy.index = kept.size();
                kept.push_back(copy);
            }
            ta.accessors = std::move(kept);
        }
    }

    // ------------------------------------------------------------------
    // Engine construction
    // ------------------------------------------------------------------

    void
    buildCounters(dfg::VUnit &u, const BlockInfo &info)
    {
        for (size_t k = 0; k < info.loops.size(); ++k) {
            const CtrlNode &node = p.ctrl(info.loops[k]);
            dfg::Counter c;
            if (node.kind == CtrlKind::While) {
                c.isWhile = true;
            } else {
                if (node.min.isConst)
                    c.min = node.min.cval;
                if (node.step.isConst)
                    c.step = node.step.cval;
                if (node.max.isConst)
                    c.max = node.max.cval;
                if (k + 1 == info.loops.size())
                    c.vec = node.vec;
            }
            u.counters.push_back(c);
        }
    }

    int
    counterIndex(const BlockInfo &info, CtrlId loop) const
    {
        for (size_t k = 0; k < info.loops.size(); ++k)
            if (info.loops[k] == loop)
                return static_cast<int>(k);
        panic("loop ", p.ctrl(loop).name, " not in chain of block ",
              p.ctrl(info.id).name);
    }

    int
    firingLevel(const BlockInfo &info) const
    {
        return static_cast<int>(info.loops.size());
    }

    /** Emit local lops computing an affine address in `u`. */
    int
    emitAffine(dfg::VUnit &u, const BlockInfo &info, const AffineForm &f)
    {
        auto pushLop = [&](dfg::LOp lop) {
            u.lops.push_back(lop);
            return static_cast<int>(u.lops.size() - 1);
        };
        dfg::LOp base;
        base.kind = OpKind::Const;
        base.cval = static_cast<double>(f.base);
        int acc = pushLop(base);
        for (const auto &[loop, c] : f.coeffs) {
            if (c == 0)
                continue;
            dfg::LOp it;
            it.kind = OpKind::Iter;
            it.counter = counterIndex(info, loop);
            int itIdx = pushLop(it);
            int term = itIdx;
            if (c != 1) {
                dfg::LOp k;
                k.kind = OpKind::Const;
                k.cval = static_cast<double>(c);
                int kIdx = pushLop(k);
                dfg::LOp mul;
                mul.kind = OpKind::Mul;
                mul.a = itIdx;
                mul.b = kIdx;
                term = pushLop(mul);
            }
            dfg::LOp add;
            add.kind = OpKind::Add;
            add.a = acc;
            add.b = term;
            acc = pushLop(add);
        }
        return acc;
    }

    /** Create a data stream and bind it on both ends. */
    StreamId
    dataStream(VuId src, int srcLop, int pushLevel, VuId dst,
               InputRole role, int popLevel, const std::string &name,
               int vec, bool expectTrue = true)
    {
        StreamId sid = g().addStream(StreamKind::Data, src, dst, name);
        auto &s = g().stream(sid);
        s.pushLevel = pushLevel;
        s.popLevel = popLevel;
        s.vec = vec;
        s.depth = opt.spec.pcu.fifoDepth;
        g().unit(src).outputs.push_back({sid, pushLevel, srcLop});
        g().unit(dst).inputs.push_back({sid, role, popLevel, expectTrue});
        return sid;
    }

    /** The unit (and lop index) currently holding op `oid`'s value. */
    std::pair<VuId, int>
    producerOf(OpId oid) const
    {
        const Op &o = p.op(oid);
        const BlockInfo &src = blocks.at(o.block.v);
        auto it = src.lopAt.find(oid.v);
        SARA_ASSERT(it != src.lopAt.end(), "op ", oid.v,
                    " has no lowered value (block ",
                    p.ctrl(o.block).name, ")");
        return {src.stages.at(it->second.first), it->second.second};
    }

    /**
     * Import op `oid`'s value into `unit` (a stage VCU or an access
     * engine of block `info`) as a StreamIn lop; returns the lop
     * index. Same-block imports are per-firing streams between stage
     * units; cross-block imports use LCA-derived rates.
     */
    int
    importValue(BlockInfo &info, VuId unit, OpId oid)
    {
        auto key = std::make_pair(oid.v, unit.v);
        auto it = importMap.find(key);
        if (it != importMap.end())
            return it->second;

        const Op &o = p.op(oid);
        auto [srcUnit, srcLop] = producerOf(oid);
        SARA_ASSERT(!(srcUnit == unit), "self-import of op ", oid.v);
        const BlockInfo &src = blocks.at(o.block.v);

        CtrlId lca = p.lca(o.block, info.id);
        int pushLevel = levelAt(p, o.block, lca);
        int popLevel = levelAt(p, info.id, lca);
        bool perFiring = pushLevel == firingLevel(src) &&
                         popLevel == firingLevel(info);
        int vec = 1;
        if (perFiring) {
            SARA_ASSERT(src.vec == info.vec || src.vec == 1,
                        "vector-width mismatch on cross-unit stream for "
                        "op ", oid.v);
            vec = src.vec;
            // A vectorized running reduction has per-lane partial
            // accumulators; only its round-boundary (cross-lane
            // combined) value is meaningful to other units.
            if (vec > 1 && isReduceOp(o.kind))
                fatal("op ", oid.v, ": a vectorized reduction may only "
                      "be consumed outside its loop (round boundary)");
        }
        dataStream(srcUnit, srcLop, pushLevel, unit, InputRole::Operand,
                   popLevel,
                   "x" + std::to_string(oid.v) + "_" +
                       g().unit(unit).name,
                   vec);
        dfg::LOp lop;
        lop.kind = OpKind::Const;
        lop.input = static_cast<int>(g().unit(unit).inputs.size() - 1);
        auto &vu = g().unit(unit);
        vu.lops.push_back(lop);
        int idx = static_cast<int>(vu.lops.size() - 1);
        importMap[key] = idx;
        return idx;
    }

    /** Lop index of `oid` usable inside `unit` (local or imported). */
    int
    valueIn(BlockInfo &info, VuId unit, OpId oid)
    {
        auto it = info.lopAt.find(oid.v);
        if (it != info.lopAt.end() &&
            info.stages.at(it->second.first) == unit)
            return it->second.second;
        return importValue(info, unit, oid);
    }

    /**
     * Rematerialize the backward slice of `oid` inside `unit` (a
     * request-slice VCU). Pure value ops are duplicated (xbar-elm
     * style); read responses and cross-block values are imported as
     * streams from their producing units.
     */
    int
    emitSlice(BlockInfo &info, VuId unit, OpId oid)
    {
        auto key = std::make_pair(oid.v, unit.v);
        auto memo = sliceMemo.find(key);
        if (memo != sliceMemo.end())
            return memo->second;
        const Op &o = p.op(oid);
        int idx;
        if (o.block != info.id || o.kind == OpKind::Read) {
            idx = importValue(info, unit, oid);
        } else {
            dfg::LOp lop;
            lop.kind = o.kind;
            lop.cval = o.cval;
            if (o.kind == OpKind::Iter || isReduceOp(o.kind))
                lop.counter = counterIndex(info, o.ctrl);
            int operands[3] = {-1, -1, -1};
            for (size_t i = 0; i < o.operands.size(); ++i)
                operands[i] = emitSlice(info, unit, o.operands[i]);
            lop.a = operands[0];
            lop.b = operands[1];
            lop.c = operands[2];
            auto &vu = g().unit(unit);
            vu.lops.push_back(lop);
            idx = static_cast<int>(vu.lops.size() - 1);
        }
        sliceMemo[key] = idx;
        return idx;
    }

    // ------------------------------------------------------------------
    // Read-depth stratification (request/response VCU splitting)
    // ------------------------------------------------------------------

    /** True when this accessor's address will be computed at the
     *  memory engine (no address stream needed). */
    bool
    localAddr(const Accessor &a) const
    {
        return a.form.has_value() && opt.enableXbarElm;
    }

    /**
     * Assign each op of the block to a stage (sub-VCU). Stages encode
     * the request/response splitting of §III-A1 generalized: a read's
     * response must land in a unit that fires strictly after the
     * units feeding any same-tensor accessor that precedes it in
     * program order (tokens enforce that memory order at runtime, so
     * fusing them would deadlock). Addresses of streamed-address
     * accesses live in dedicated request-slice units and do not
     * constrain response stages.
     */
    void
    computeStages(const CtrlNode &block, BlockInfo &info) const
    {
        for (OpId oid : block.ops) {
            if (!live.count(oid.v))
                continue; // Dead ops (xbar-elm'd addresses, dead reads).
            const Op &o = p.op(oid);
            int stage = 0;
            if (isMemoryOp(o.kind)) {
                // Token predecessors: earlier same-tensor accessors in
                // this block (conservative: any pair may be ordered).
                // Reads land one stage after them; writes track their
                // feeds so later accessors can order after the write.
                if (o.kind == OpKind::Read) {
                    for (OpId prev : block.ops) {
                        if (prev == oid)
                            break;
                        const Op &q = p.op(prev);
                        if (!isMemoryOp(q.kind) || q.tensor != o.tensor)
                            continue;
                        auto it = info.opStage.find(prev.v);
                        if (it != info.opStage.end())
                            stage = std::max(stage, it->second + 1);
                    }
                    // A streamed address: the request slice imports
                    // read values at stages <= stage(addrOp); the
                    // response must land strictly later.
                    if (!localAddr(accessorOf(oid))) {
                        const Op &addr = p.op(o.operands[0]);
                        auto it = info.opStage.find(addr.id.v);
                        if (addr.block == block.id &&
                            it != info.opStage.end())
                            stage = std::max(stage, it->second + 1);
                    }
                } else {
                    // Write: data operand's stage.
                    auto it = info.opStage.find(o.operands[1].v);
                    if (it != info.opStage.end() &&
                        p.op(o.operands[1]).block == block.id)
                        stage = std::max(stage, it->second);
                }
                // A streamed (non-affine) address slice imports values
                // from the address operand's stage; accesses ordered
                // after this one must clear that stage too.
                if (o.kind == OpKind::Write &&
                    !localAddr(accessorOf(oid))) {
                    const Op &addr = p.op(o.operands[0]);
                    auto it = info.opStage.find(addr.id.v);
                    if (addr.block == block.id &&
                        it != info.opStage.end())
                        stage = std::max(stage, it->second);
                }
            } else {
                for (OpId operand : o.operands) {
                    if (p.op(operand).block != block.id)
                        continue; // Cross-block values arrive by stream.
                    auto it = info.opStage.find(operand.v);
                    if (it != info.opStage.end())
                        stage = std::max(stage, it->second);
                }
            }
            info.opStage[oid.v] = stage;
        }
    }

    VuId
    stageUnit(BlockInfo &info, int stage)
    {
        auto it = info.stages.find(stage);
        if (it != info.stages.end())
            return it->second;
        std::string name = "vcu_" + p.ctrl(info.id).name;
        if (stage > 0)
            name += "_s" + std::to_string(stage);
        VuId id = g().addUnit(VuKind::Compute, name);
        buildCounters(g().unit(id), info);
        engineBlock[id.v] = info.id;
        info.stages[stage] = id;
        info.engines.push_back(id);
        if (!out.blockUnit.count(info.id.v))
            out.blockUnit[info.id.v] = id;
        return id;
    }

    // ------------------------------------------------------------------

    const Accessor &
    accessorOf(OpId oid) const
    {
        const Op &o = p.op(oid);
        for (const auto &a : access[o.tensor.index()].accessors)
            if (a.op == oid)
                return a;
        panic("accessor not found for op ", oid.v);
    }

    /** Access engine for one memory op; wires its address source. */
    VuId
    makeAccessEngine(const Accessor &a, BlockInfo &info,
                     const std::string &name)
    {
        const Tensor &tensor = p.tensor(a.tensor);
        bool isDram = tensor.space == MemSpace::Dram;
        VuId id = g().addUnit(isDram ? VuKind::Ag : VuKind::MemPort, name);
        {
            auto &u = g().unit(id);
            u.tensor = a.tensor;
            u.dir = a.isWrite ? AccessDir::Write : AccessDir::Read;
            buildCounters(u, info);
            if (!isDram) {
                const TensorPlan &plan = plans[a.tensor.index()];
                int shard = plan.staticShard[a.index];
                u.dynamicBank = shard < 0;
                u.shardIndex = std::max(shard, 0);
                u.numShards = plan.numShards;
                u.shardInterleave = plan.interleave;
                u.memUnit = plan.shardVmus[u.shardIndex];
                if (plan.depth > 1)
                    u.rotateLevel = levelAt(p, a.block, plan.rotateScope);
            }
        }

        if (localAddr(a)) {
            auto &u = g().unit(id);
            u.addrLop = emitAffine(u, info, *a.form);
        } else {
            // Dedicated request-slice VCU (the paper's request VCU):
            // recomputes the address expression so the access's
            // request path is independent of response-consuming
            // stages (which would otherwise deadlock against the
            // CMMC token order).
            const Op &memOp = p.op(a.op);
            OpId addrOp = memOp.operands[0];
            VuId req = g().addUnit(VuKind::Compute, name + "_req");
            buildCounters(g().unit(req), info);
            engineBlock[req.v] = a.block;
            info.engines.push_back(req);
            int addrLop = emitSlice(info, req, addrOp);
            dataStream(req, addrLop, firingLevel(info), id,
                       InputRole::Operand, firingLevel(info),
                       name + "_addr", info.vec);
            auto &u = g().unit(id);
            u.addrInput = static_cast<int>(u.inputs.size() - 1);
        }

        engineBlock[id.v] = a.block;
        info.engines.push_back(id);
        out.accessEngine[a.op.v] = id;
        return id;
    }

    /** Copy-elision qualification (rtelm, paper §III-C(b)). */
    bool
    qualifiesCopyElide(const CtrlNode &block) const
    {
        if (!opt.enableRtelm)
            return false;
        std::unordered_map<int32_t, int> uses;
        bool anyWrite = false;
        for (OpId oid : block.ops) {
            const Op &o = p.op(oid);
            if (externallyUsed.count(oid.v))
                return false;
            if (isReduceOp(o.kind))
                return false;
            for (OpId operand : o.operands) {
                if (p.op(operand).block != block.id)
                    return false;
                ++uses[operand.v];
            }
            if (o.kind == OpKind::Write) {
                anyWrite = true;
                const Op &data = p.op(o.operands[1]);
                if (data.kind != OpKind::Read || data.block != block.id)
                    return false;
                if (plans[o.tensor.index()].fifoLower)
                    return false;
                if (!matchAffine(p, o.operands[0]) || !opt.enableXbarElm)
                    return false;
            }
        }
        if (!anyWrite)
            return false;
        for (OpId oid : block.ops) {
            const Op &o = p.op(oid);
            if (o.kind == OpKind::Read) {
                if (uses[oid.v] != 1)
                    return false;
                if (plans[o.tensor.index()].fifoLower)
                    return false;
                if (!matchAffine(p, o.operands[0]) || !opt.enableXbarElm)
                    return false;
            }
            // Remaining value ops are pure address math; with all
            // addresses affine and recomputed at the engines they are
            // dead, so the block keeps no datapath.
        }
        return true;
    }

    void
    lowerCopyBlock(const CtrlNode &block, BlockInfo &info)
    {
        blocks.emplace(block.id.v, std::move(info));
        BlockInfo &bi = blocks.at(block.id.v);
        ++out.stats.copyElidedBlocks;
        for (OpId oid : block.ops) {
            const Op &o = p.op(oid);
            if (o.kind != OpKind::Write)
                continue;
            OpId readOp = o.operands[1];
            const Accessor &ra = accessorOf(readOp);
            const Accessor &wa = accessorOf(oid);
            VuId rd = makeAccessEngine(
                ra, bi, "rd_" + p.tensor(ra.tensor).name + "_" +
                            std::to_string(readOp.v));
            VuId wr = makeAccessEngine(
                wa, bi, "wr_" + p.tensor(wa.tensor).name + "_" +
                            std::to_string(oid.v));
            StreamId sid = g().addStream(StreamKind::Data, rd, wr,
                                         "copy_" + std::to_string(oid.v));
            auto &s = g().stream(sid);
            s.pushLevel = firingLevel(bi);
            s.popLevel = firingLevel(bi);
            s.vec = bi.vec;
            s.depth = opt.spec.pcu.fifoDepth;
            auto &ru = g().unit(rd);
            ru.outputs.push_back({sid, firingLevel(bi), -1});
            ru.respOutput = static_cast<int>(ru.outputs.size() - 1);
            auto &wu = g().unit(wr);
            wu.inputs.push_back(
                {sid, InputRole::Operand, firingLevel(bi), true});
            wu.dataInput = static_cast<int>(wu.inputs.size() - 1);
        }
    }

    void
    lowerBlock(const CtrlNode &block)
    {
        BlockInfo info;
        info.id = block.id;
        info.loops = p.enclosingLoops(block.id);
        info.vec =
            info.loops.empty() ? 1 : p.ctrl(info.loops.back()).vec;
        computeStages(block, info);

        if (qualifiesCopyElide(block)) {
            lowerCopyBlock(block, info);
            return;
        }

        blocks.emplace(block.id.v, std::move(info));
        BlockInfo &bi = blocks.at(block.id.v);
        stageUnit(bi, 0); // Ensure at least one VCU exists.

        for (OpId oid : block.ops) {
            const Op &o = p.op(oid);
            if (!live.count(oid.v))
                continue; // Dead (typically xbar-elm'd address math).
            switch (o.kind) {
              case OpKind::Read:
                lowerRead(bi, oid);
                break;
              case OpKind::Write:
                lowerWrite(bi, oid);
                break;
              default:
                lowerValueOp(bi, oid);
                break;
            }
        }
    }

    void
    lowerValueOp(BlockInfo &info, OpId oid)
    {
        const Op &o = p.op(oid);
        int stage = info.opStage.at(oid.v);
        VuId unit = stageUnit(info, stage);
        dfg::LOp lop;
        lop.kind = o.kind;
        lop.cval = o.cval;
        if (o.kind == OpKind::Iter || isReduceOp(o.kind))
            lop.counter = counterIndex(info, o.ctrl);
        int operands[3] = {-1, -1, -1};
        for (size_t i = 0; i < o.operands.size(); ++i)
            operands[i] = valueIn(info, unit, o.operands[i]);
        lop.a = operands[0];
        lop.b = operands[1];
        lop.c = operands[2];
        auto &vu = g().unit(unit);
        vu.lops.push_back(lop);
        info.lopAt[oid.v] = {stage,
                             static_cast<int>(vu.lops.size() - 1)};
    }

    void
    lowerRead(BlockInfo &info, OpId oid)
    {
        const Op &o = p.op(oid);
        const TensorPlan &plan = plans[o.tensor.index()];
        int stage = info.opStage.at(oid.v);
        VuId unit = stageUnit(info, stage);
        if (plan.fifoLower) {
            auto it = fifoSrc.find(o.tensor.v);
            SARA_ASSERT(it != fifoSrc.end(),
                        "fifo-lowered tensor read before written");
            auto [srcUnit, srcLop] = it->second;
            dataStream(srcUnit, srcLop,
                       static_cast<int>(
                           g().unit(srcUnit).counters.size()),
                       unit, InputRole::Operand, firingLevel(info),
                       "fifo_" + p.tensor(o.tensor).name, info.vec);
            dfg::LOp lop;
            lop.kind = OpKind::Const;
            lop.input =
                static_cast<int>(g().unit(unit).inputs.size() - 1);
            auto &vu = g().unit(unit);
            vu.lops.push_back(lop);
            info.lopAt[oid.v] = {stage,
                                 static_cast<int>(vu.lops.size() - 1)};
            return;
        }
        const Accessor &a = accessorOf(oid);
        VuId port = makeAccessEngine(
            a, info, "rd_" + p.tensor(o.tensor).name + "_" +
                         std::to_string(oid.v));
        StreamId sid = g().addStream(StreamKind::Data, port, unit,
                                     "resp_" + std::to_string(oid.v));
        auto &s = g().stream(sid);
        s.pushLevel = firingLevel(info);
        s.popLevel = firingLevel(info);
        s.vec = info.vec;
        s.depth = opt.spec.pcu.fifoDepth;
        auto &pu = g().unit(port);
        pu.outputs.push_back({sid, firingLevel(info), -1});
        pu.respOutput = static_cast<int>(pu.outputs.size() - 1);
        auto &vu = g().unit(unit);
        vu.inputs.push_back(
            {sid, InputRole::Operand, firingLevel(info), true});
        dfg::LOp lop;
        lop.kind = OpKind::Const;
        lop.input = static_cast<int>(vu.inputs.size() - 1);
        vu.lops.push_back(lop);
        info.lopAt[oid.v] = {stage,
                             static_cast<int>(vu.lops.size() - 1)};
    }

    void
    lowerWrite(BlockInfo &info, OpId oid)
    {
        const Op &o = p.op(oid);
        TensorPlan &plan = plans[o.tensor.index()];
        int stage = info.opStage.at(oid.v);
        VuId unit = stageUnit(info, stage);
        int dataLop = valueIn(info, unit, o.operands[1]);
        if (plan.fifoLower) {
            fifoSrc[o.tensor.v] = {unit, dataLop};
            return;
        }
        if (info.vec > 1 && isReduceOp(p.op(o.operands[1]).kind))
            fatal("op ", oid.v, ": a vectorized reduction may only be "
                  "stored outside its loop (round boundary)");
        const Accessor &a = accessorOf(oid);
        VuId port = makeAccessEngine(
            a, info, "wr_" + p.tensor(o.tensor).name + "_" +
                         std::to_string(oid.v));
        dataStream(unit, dataLop, firingLevel(info), port,
                   InputRole::Operand, firingLevel(info),
                   "wdata_" + std::to_string(oid.v), info.vec);
        auto &pu = g().unit(port);
        pu.dataInput = static_cast<int>(pu.inputs.size() - 1);
    }

    // ------------------------------------------------------------------
    // Control attachment
    // ------------------------------------------------------------------

    void
    checkProducerBranches(CtrlId producerBlock, CtrlId consumerBlock,
                          const char *what) const
    {
        auto pb = branchAncestors(p, producerBlock);
        auto cb = branchAncestors(p, consumerBlock);
        for (const auto &x : pb) {
            bool shared = false;
            for (const auto &y : cb)
                if (x.branch == y.branch && x.inThen == y.inThen)
                    shared = true;
            if (!shared)
                fatal("unsupported: ", what,
                      " is computed under a branch that does not "
                      "enclose its consumer (block ",
                      p.ctrl(producerBlock).name, ")");
        }
    }

    std::pair<VuId, int>
    controlProducer(OpId oid) const
    {
        auto [unit, lop] = producerOf(oid);
        return {unit, lop};
    }

    void
    attachControl()
    {
        for (CtrlId b : p.blocksInOrder()) {
            BlockInfo &info = blocks.at(b.v);
            for (VuId eng : info.engines)
                attachControlTo(eng, info);
        }
    }

    void
    attachControlTo(VuId eng, BlockInfo &info)
    {
        // Dynamic bounds and while conditions per counter.
        for (size_t k = 0; k < info.loops.size(); ++k) {
            const CtrlNode &node = p.ctrl(info.loops[k]);
            if (node.kind == CtrlKind::While) {
                const Op &cond = p.op(node.cond);
                SARA_ASSERT(p.isAncestor(node.id, cond.block),
                            "do-while condition must be computed inside "
                            "the loop body");
                checkProducerBranches(cond.block, node.id,
                                      "a do-while condition");
                auto [srcUnit, srcLop] = controlProducer(node.cond);
                dataStream(srcUnit, srcLop,
                           levelAt(p, cond.block, node.id), eng,
                           InputRole::WhileCond, static_cast<int>(k) + 1,
                           "wcond_" + node.name + "_" +
                               g().unit(eng).name,
                           1);
                auto &uu = g().unit(eng);
                uu.counters[k].whileCondInput =
                    static_cast<int>(uu.inputs.size() - 1);
                continue;
            }
            auto bindBound = [&](const Bound &b, int which) {
                if (b.isConst)
                    return;
                const Op &bop = p.op(b.op);
                int expect =
                    static_cast<int>(p.enclosingLoops(node.id).size());
                SARA_ASSERT(levelAt(p, bop.block, node.id) == expect,
                            "loop bound for ", node.name,
                            " produced at the wrong rate");
                SARA_ASSERT(order[bop.block.index()] <
                                order[node.id.index()],
                            "loop bound must be computed before the "
                            "loop");
                checkProducerBranches(bop.block, info.id, "a loop bound");
                auto [srcUnit, srcLop] = controlProducer(b.op);
                dataStream(srcUnit, srcLop,
                           levelAt(p, bop.block, node.id), eng,
                           InputRole::Bound, static_cast<int>(k),
                           "bound_" + node.name + "_" +
                               g().unit(eng).name,
                           1);
                auto &uu = g().unit(eng);
                int binding = static_cast<int>(uu.inputs.size() - 1);
                if (which == 0)
                    uu.counters[k].minInput = binding;
                else if (which == 1)
                    uu.counters[k].stepInput = binding;
                else
                    uu.counters[k].maxInput = binding;
            };
            bindBound(node.min, 0);
            bindBound(node.step, 1);
            bindBound(node.max, 2);
        }
        // Branch predicates.
        for (const auto &ba : branchAncestors(p, info.id)) {
            const CtrlNode &br = p.ctrl(ba.branch);
            const Op &cond = p.op(br.cond);
            checkProducerBranches(cond.block, info.id,
                                  "a branch condition");
            int expect =
                static_cast<int>(p.enclosingLoops(ba.branch).size());
            SARA_ASSERT(levelAt(p, cond.block, ba.branch) == expect,
                        "branch condition for ", br.name,
                        " produced at the wrong rate");
            auto [srcUnit, srcLop] = controlProducer(br.cond);
            dataStream(srcUnit, srcLop,
                       levelAt(p, cond.block, ba.branch), eng,
                       InputRole::Predicate,
                       levelAt(p, info.id, ba.branch),
                       "pred_" + br.name + "_" + g().unit(eng).name, 1,
                       ba.inThen);
        }
    }

    // ------------------------------------------------------------------
    // CMMC token emission
    // ------------------------------------------------------------------

    void
    emitTokens()
    {
        for (size_t t = 0; t < p.numTensors(); ++t) {
            const auto &ta = access[t];
            if (ta.accessors.empty() || plans[t].fifoLower)
                continue;
            const Tensor &tensor = p.tensor(TensorId(t));

            DepGraphOptions dgo;
            dgo.enforceRar = tensor.space == MemSpace::OnChip;
            dgo.staticShard = plans[t].staticShard;
            dgo.fullSerialize =
                opt.control == ControlScheme::HierarchicalFsm;
            DepGraph graph = buildDepGraph(p, ta, dgo);

            if (plans[t].depth > 1) {
                for (auto &e : graph.edges)
                    if (e.backward && e.loop == plans[t].rotateScope)
                        e.credit = plans[t].depth;
            }

            for (const auto &e : graph.edges)
                if (!e.backward)
                    ++out.stats.forwardEdgesBefore;
            if (opt.enableControlReduction && !dgo.fullSerialize) {
                ReduceStats rs = reduceDepGraph(graph);
                out.stats.forwardEdgesRemoved += rs.forwardRemoved;
                out.stats.backwardEdgesRemoved += rs.backwardRemoved;
            }

            for (const auto &e : graph.edges) {
                const Accessor &src = ta.accessors[e.src];
                const Accessor &dst = ta.accessors[e.dst];
                VuId srcEng = out.accessEngine.at(src.op.v);
                VuId dstEng = out.accessEngine.at(dst.op.v);
                if (srcEng == dstEng)
                    continue;
                CtrlId lca = p.lca(src.block, dst.block);
                int pushLevel = levelAt(p, src.block, lca);
                int popLevel = levelAt(p, dst.block, lca);
                StreamId sid = g().addStream(
                    StreamKind::Token, srcEng, dstEng,
                    std::string(e.backward ? "credit_" : "token_") +
                        tensor.name + "_" + std::to_string(e.src) + "_" +
                        std::to_string(e.dst));
                auto &s = g().stream(sid);
                s.pushLevel = pushLevel;
                s.popLevel = popLevel;
                s.initTokens = e.backward ? e.credit : 0;
                g().unit(srcEng).outputs.push_back({sid, pushLevel, -1});
                g().unit(dstEng).inputs.push_back(
                    {sid, InputRole::Gate, popLevel, true});
                ++out.stats.tokens;
                out.stats.credits += s.initTokens;
            }
        }
        if (opt.control == ControlScheme::HierarchicalFsm) {
            p.forEachCtrl([&](const CtrlNode &node) {
                if (node.kind == CtrlKind::Loop ||
                    node.kind == CtrlKind::While)
                    ++out.stats.controllerUnits;
            });
            emitFsmSequencing();
        }
    }

    /**
     * Vanilla-PC control: the hierarchical FSM executes a scope's
     * children in order (enable after the previous child's done),
     * overlapping across parent iterations only through multibuffers.
     * Model: chain consecutive hyperblocks in program order with
     * LCA-rate tokens and a depth-2 backward credit. CMMC's key win —
     * concurrent execution of independent hyperblocks in the same
     * iteration — is thereby disabled, exactly as in PC.
     */
    void
    emitFsmSequencing()
    {
        auto blocksOrdered = p.blocksInOrder();
        VuId prevEng;
        CtrlId prevBlock;
        for (CtrlId bid : blocksOrdered) {
            auto it = out.blockUnit.find(bid.v);
            if (it == out.blockUnit.end())
                continue; // Copy-elided (not expected in PC mode).
            VuId eng = it->second;
            if (prevEng.valid()) {
                CtrlId lca = p.lca(prevBlock, bid);
                int pushLevel = levelAt(p, prevBlock, lca);
                int popLevel = levelAt(p, bid, lca);
                StreamId fwd = g().addStream(
                    StreamKind::Token, prevEng, eng,
                    "fsm_" + p.ctrl(prevBlock).name + "_" +
                        p.ctrl(bid).name);
                auto &fs = g().stream(fwd);
                fs.pushLevel = pushLevel;
                fs.popLevel = popLevel;
                g().unit(prevEng).outputs.push_back(
                    {fwd, pushLevel, -1});
                g().unit(eng).inputs.push_back(
                    {fwd, InputRole::Gate, popLevel, true});
                StreamId bwd = g().addStream(
                    StreamKind::Token, eng, prevEng,
                    "fsmc_" + p.ctrl(bid).name + "_" +
                        p.ctrl(prevBlock).name);
                auto &bs = g().stream(bwd);
                bs.pushLevel = popLevel;
                bs.popLevel = pushLevel;
                bs.initTokens = 2; // Double-buffered metapipeline.
                g().unit(eng).outputs.push_back({bwd, popLevel, -1});
                g().unit(prevEng).inputs.push_back(
                    {bwd, InputRole::Gate, pushLevel, true});
                out.stats.tokens += 2;
                out.stats.credits += 2;
            }
            prevEng = eng;
            prevBlock = bid;
        }
    }

    // ------------------------------------------------------------------

    Lowering
    run()
    {
        p.verify();
        p.forEachCtrl([&](const CtrlNode &node) {
            if (node.kind == CtrlKind::Loop)
                SARA_ASSERT(node.par == 1,
                            "lowerToVudfg requires a post-unroll "
                            "program (loop ", node.name, " has par ",
                            node.par, ")");
        });
        computeExternalUses();
        computeLiveness();
        planTensors();
        createVmus();
        for (CtrlId b : p.blocksInOrder())
            lowerBlock(p.ctrl(b));
        attachControl();
        emitTokens();
        g().validate();
        return std::move(out);
    }
};

} // namespace

Lowering
lowerToVudfg(const Program &program, const CompilerOptions &options)
{
    Lowerer lowerer(program, options);
    return lowerer.run();
}

} // namespace sara::compiler
