#ifndef SARA_COMPILER_MERGING_H
#define SARA_COMPILER_MERGING_H

/**
 * @file
 * Global merging (paper §III-B1b): packing virtual units into physical
 * units to reduce resource fragmentation. Formulated as the same
 * assignment problem as compute partitioning, over the VUDFG instead
 * of a single VCU's dataflow, with the extra counter-chain capacity
 * constraint. Static memory ports are pre-merged with their VMU (the
 * paper's colocated request/response engines); AGs map one-to-one to
 * DRAM interfaces.
 */

#include "compiler/options.h"
#include "compiler/partition.h"
#include "dfg/vudfg.h"

namespace sara::compiler {

/** Merge outcome: group counts per physical-unit class. */
struct MergeReport
{
    int unitsMerged = 0; ///< Compute-class units packed with another.
    int pcuGroups = 0;
    int pmuGroups = 0;
    int agGroups = 0;

    int totalGroups() const { return pcuGroups + pmuGroups + agGroups; }
};

/**
 * Assign every unit's `mergedInto` group id and `assigned` class.
 * Uses options.partitioner for the compute-class packing.
 */
MergeReport globalMerge(dfg::Vudfg &graph, const CompilerOptions &options);

/** Build the abstract merge problem over compute-class units (exposed
 *  for the Fig. 11 benchmark). Returns the unit ids per node. */
PartitionProblem buildMergeProblem(const dfg::Vudfg &graph,
                                   const CompilerOptions &options,
                                   std::vector<dfg::VuId> *nodes);

} // namespace sara::compiler

#endif // SARA_COMPILER_MERGING_H
