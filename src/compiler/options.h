#ifndef SARA_COMPILER_OPTIONS_H
#define SARA_COMPILER_OPTIONS_H

/**
 * @file
 * Compiler configuration: the optimization toggles evaluated in
 * Fig. 10, the partitioning algorithm choices of Fig. 11, and the
 * control-scheme switch that implements the vanilla-Plasticine-
 * compiler baseline of Table V.
 */

#include <cstdint>

#include "arch/plasticine.h"

namespace sara::compiler {

/** Graph-partitioning algorithm (paper §III-B1). */
enum class PartitionAlgo : uint8_t {
    BfsFwd,  ///< Breadth-first, forward dataflow order.
    BfsBwd,  ///< Breadth-first, backward order.
    DfsFwd,  ///< Depth-first, forward order (re-sorted per partition).
    DfsBwd,  ///< Depth-first, backward order.
    Solver,  ///< MIP formulation (Table III), warm-started by DfsFwd.
};

const char *partitionAlgoName(PartitionAlgo algo);

/** Control paradigm for hierarchical pipelining. */
enum class ControlScheme : uint8_t {
    Cmmc,            ///< SARA: peer-to-peer tokens (paper §III-A).
    HierarchicalFsm, ///< Vanilla PC: per-loop controllers with
                     ///< enable/done handshakes routed through a hub.
};

/** All compiler knobs. */
struct CompilerOptions
{
    arch::PlasticineSpec spec = arch::PlasticineSpec::paper();
    ControlScheme control = ControlScheme::Cmmc;
    PartitionAlgo partitioner = PartitionAlgo::DfsFwd;

    // --- Optimizations (Fig. 10) ---
    /** msr: lower single-producer/single-consumer lock-step
     *  scratchpads to direct streams (input FIFOs). */
    bool enableMsr = true;
    /** rtelm: eliminate copy hyperblocks by wiring the source memory's
     *  read engine straight to the destination's write engine. */
    bool enableRtelm = true;
    /** retime: deepen FIFOs on imbalanced reconvergent paths
     *  (eliminates pipeline stalls at a resource cost). */
    bool enableRetime = true;
    /** retime-m: implement retiming buffers in PMUs (cheaper per
     *  element than chaining PCU FIFOs). */
    bool enableRetimeM = true;
    /** xbar-elm: duplicate affine address computation into the
     *  memory-side request engine instead of streaming addresses. */
    bool enableXbarElm = true;
    /** Credit relaxation: multibuffer producer/consumer tensors and
     *  raise the backward credit (paper §III-A1 "1+ initial credit"). */
    bool enableMultibuffer = true;
    /** Control-reduction analysis: transitive reduction + backward
     *  edge pruning (paper §III-A3). */
    bool enableControlReduction = true;
    /** Duplicate small read-shared buffers per consumer so PMU
     *  single-read-stream serialization does not defeat unrolling. */
    bool enableDuplication = true;

    int multibufferDepth = 4;

    // --- Resource handling ---
    /** Skip partitioning/merging/fit checks (semantics testing only). */
    bool ignoreResourceLimits = false;
    /** Abort instead of warning when the design does not fit. */
    bool strictFit = false;

    // --- Solver ---
    uint64_t solverIterations = 200000; ///< LNS iteration budget.
    uint64_t solverSeed = 1;

    // --- PnR ---
    uint64_t pnrSeed = 1;
    int pnrIterations = 20000;
};

} // namespace sara::compiler

#endif // SARA_COMPILER_OPTIONS_H
