#ifndef SARA_COMPILER_UNROLL_H
#define SARA_COMPILER_UNROLL_H

/**
 * @file
 * Parallelization lowering (paper §II-A(b), §III-B2 context): consumes
 * per-loop `par` factors. Innermost loops (all children are
 * hyperblocks) vectorize across the PCU SIMD lanes; outer loops are
 * spatially unrolled by cloning the body into contiguous iteration
 * blocks. Reductions over an unrolled loop get a combining hyperblock
 * that sums the per-clone partials (the paper's reduction trees).
 */

#include "ir/program.h"

namespace sara::compiler {

/** Statistics about what the pass did. */
struct UnrollStats
{
    int vectorizedLoops = 0;
    int unrolledLoops = 0;
    int clonesCreated = 0;
    int combineBlocks = 0;
};

/**
 * Rewrite `program` in place, consuming every par > 1 annotation.
 * `lanes` is the SIMD width (par beyond it spatially unrolls).
 * Requires static bounds on loops with par > 1.
 */
UnrollStats unrollProgram(ir::Program &program, int lanes);

} // namespace sara::compiler

#endif // SARA_COMPILER_UNROLL_H
