#include "compiler/analysis.h"

#include <algorithm>
#include <numeric>

#include "support/logging.h"

namespace sara::compiler {

using namespace ir;

std::vector<TensorAccess>
collectAccessors(const Program &p)
{
    std::vector<TensorAccess> out(p.numTensors());
    for (size_t t = 0; t < p.numTensors(); ++t)
        out[t].tensor = TensorId(t);
    p.forEachCtrl([&](const CtrlNode &node) {
        if (!node.isLeaf())
            return;
        for (OpId oid : node.ops) {
            const Op &o = p.op(oid);
            if (!isMemoryOp(o.kind))
                continue;
            Accessor a;
            a.op = oid;
            a.block = node.id;
            a.tensor = o.tensor;
            a.isWrite = o.kind == OpKind::Write;
            a.form = matchAffine(p, o.operands[0]);
            auto &ta = out[o.tensor.index()];
            a.index = ta.accessors.size();
            ta.accessors.push_back(std::move(a));
        }
    });
    return out;
}

namespace {

/** Value lattice of an affine form: values lie in residue + gcd * Z. */
struct Lattice
{
    bool valid = false;
    int64_t gcd = 0; ///< 0: single value (residue only).
    int64_t residue = 0;
};

Lattice
formLattice(const Program &p, const AffineForm &form)
{
    Lattice lat;
    lat.residue = form.base;
    lat.gcd = 0;
    for (const auto &[loop, c] : form.coeffs) {
        if (c == 0)
            continue;
        const CtrlNode &node = p.ctrl(loop);
        if (node.kind != CtrlKind::Loop || !node.min.isConst ||
            !node.step.isConst)
            return lat; // invalid
        lat.residue += c * node.min.cval;
        lat.gcd = std::gcd(lat.gcd, std::abs(c * node.step.cval));
    }
    lat.valid = true;
    return lat;
}

std::optional<std::pair<int64_t, int64_t>>
fullSpan(const Program &p, const AffineForm &form)
{
    std::vector<CtrlId> loops;
    for (const auto &[loop, c] : form.coeffs)
        if (c != 0)
            loops.push_back(loop);
    return affineSpan(p, form, loops);
}

} // namespace

bool
mayAlias(const Program &p, const Accessor &a, const Accessor &b)
{
    if (!a.form || !b.form)
        return true;

    // Span test: disjoint address ranges never alias.
    auto sa = fullSpan(p, *a.form);
    auto sb = fullSpan(p, *b.form);
    if (sa && sb && (sa->second < sb->first || sb->second < sa->first))
        return false;

    // Modular lattice test: A ⊆ ra + ga*Z, B ⊆ rb + gb*Z are disjoint
    // when (ra - rb) is not divisible by gcd(ga, gb).
    Lattice la = formLattice(p, *a.form);
    Lattice lb = formLattice(p, *b.form);
    if (la.valid && lb.valid) {
        int64_t g = std::gcd(la.gcd, lb.gcd);
        if (g > 0 && ((la.residue - lb.residue) % g) != 0)
            return false;
        if (g == 0 && la.residue != lb.residue)
            return false; // Both constant addresses, different values.
    }
    return true;
}

bool
lcdMayAlias(const Program &p, const Accessor &a, const Accessor &b,
            CtrlId loop)
{
    if (!a.form || !b.form)
        return true;
    // Only the identical-form case gets the sharper cross-iteration
    // test; otherwise fall back to the whole-space test.
    if (a.form->base != b.form->base)
        return mayAlias(p, a, b);
    std::map<CtrlId, int64_t> merged = a.form->coeffs;
    for (const auto &[l, c] : b.form->coeffs)
        merged.try_emplace(l, 0);
    for (const auto &[l, c] : merged)
        if (a.form->coeff(l) != b.form->coeff(l))
            return mayAlias(p, a, b);

    // Identical form. The LCD token (at LCA rate) orders the accessors
    // across iterations of `loop` AND of every loop enclosing it, so a
    // collision at any distinct common-iteration point keeps the edge:
    //  - a common loop the address ignores repeats the same addresses
    //    every one of its iterations -> collide;
    //  - otherwise the form must be injective over its whole iteration
    //    space (mixed-radix dominance) to rule out cancellation.
    if (a.form->coeff(loop) == 0)
        return true;
    for (CtrlId l : p.enclosingLoops(loop))
        if (a.form->coeff(l) == 0)
            return true;
    std::vector<std::pair<int64_t, int64_t>> terms; // (|c*step|, trips)
    for (const auto &[l, c] : a.form->coeffs) {
        if (c == 0)
            continue;
        const CtrlNode &n = p.ctrl(l);
        if (n.kind != CtrlKind::Loop || !n.min.isConst ||
            !n.max.isConst || !n.step.isConst)
            return true;
        int64_t trips =
            (n.max.cval - n.min.cval + n.step.cval - 1) / n.step.cval;
        if (trips <= 0)
            return true;
        terms.push_back({std::abs(c * n.step.cval), trips});
    }
    std::sort(terms.begin(), terms.end());
    int64_t reach = 0;
    for (const auto &[c, trips] : terms) {
        if (c <= reach)
            return true;
        reach += c * (trips - 1);
    }
    return false;
}

int
levelAt(const Program &p, CtrlId block, CtrlId scope)
{
    int count = 0;
    for (CtrlId loop : p.enclosingLoops(block))
        if (loop == scope || p.isAncestor(loop, scope))
            ++count;
    return count;
}

std::vector<BranchAncestor>
branchAncestors(const Program &p, CtrlId node)
{
    std::vector<BranchAncestor> out;
    auto chain = p.ancestry(node);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
        const CtrlNode &n = p.ctrl(chain[i]);
        if (n.kind != CtrlKind::Branch)
            continue;
        CtrlId child = chain[i + 1];
        bool inThen = std::find(n.children.begin(), n.children.end(),
                                child) != n.children.end();
        out.push_back({n.id, inThen});
    }
    return out;
}

bool
exclusiveClauses(const Program &p, CtrlId a, CtrlId b)
{
    auto ba = branchAncestors(p, a);
    auto bb = branchAncestors(p, b);
    for (const auto &x : ba)
        for (const auto &y : bb)
            if (x.branch == y.branch && x.inThen != y.inThen)
                return true;
    return false;
}

CtrlId
innermostCommonLoop(const Program &p, CtrlId a, CtrlId b)
{
    CtrlId l = p.lca(a, b);
    for (CtrlId cur = l; cur.valid(); cur = p.ctrl(cur).parent) {
        const CtrlNode &n = p.ctrl(cur);
        if ((n.kind == CtrlKind::Loop || n.kind == CtrlKind::While) &&
            cur != a && cur != b)
            return cur;
    }
    return CtrlId{};
}

bool
whileBetween(const Program &p, CtrlId scope, CtrlId node)
{
    for (CtrlId cur = node; cur.valid() && cur != scope;
         cur = p.ctrl(cur).parent)
        if (cur != node && p.ctrl(cur).kind == CtrlKind::While)
            return true;
    return false;
}

} // namespace sara::compiler
