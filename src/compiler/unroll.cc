#include "compiler/unroll.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"

namespace sara::compiler {

using namespace ir;

namespace {

struct Unroller
{
    Program &p;
    int lanes;
    UnrollStats stats;

    /** True if every child of the loop is a hyperblock. */
    bool
    isInnermost(const CtrlNode &node) const
    {
        for (CtrlId c : node.children)
            if (!p.ctrl(c).isLeaf())
                return false;
        return !node.children.empty();
    }

    /** Collect all ctrl ids in the subtree rooted at id. */
    void
    collectSubtree(CtrlId id, std::unordered_set<int32_t> &out) const
    {
        out.insert(id.v);
        const auto &node = p.ctrl(id);
        for (CtrlId c : node.children)
            collectSubtree(c, out);
        for (CtrlId c : node.elseChildren)
            collectSubtree(c, out);
    }

    /** Collect all op ids owned by blocks in the subtree. */
    void
    collectOps(const std::unordered_set<int32_t> &subtree,
               std::unordered_set<int32_t> &ops) const
    {
        for (int32_t c : subtree) {
            const auto &node = p.ctrl(CtrlId(c));
            for (OpId o : node.ops)
                ops.insert(o.v);
        }
    }

    static OpKind
    combineKind(OpKind reduce)
    {
        switch (reduce) {
          case OpKind::RedAdd: return OpKind::Add;
          case OpKind::RedMul: return OpKind::Mul;
          case OpKind::RedMin: return OpKind::Min;
          case OpKind::RedMax: return OpKind::Max;
          default: panic("not a reduce kind");
        }
    }

    /**
     * Spatially unroll loop `id` (inside `siblings` at `pos`) into U
     * contiguous-chunk clones, each vectorized by vecAssign.
     * Returns the number of nodes now occupying the original position.
     */
    size_t
    unrollLoop(CtrlId id, std::vector<CtrlId> &siblings, size_t pos,
               int factor, int vecAssign)
    {
        CtrlNode &node = p.ctrl(id);
        if (!node.min.isConst || !node.max.isConst || !node.step.isConst)
            fatal("loop ", node.name,
                  ": outer unrolling requires static bounds");
        int64_t min = node.min.cval, max = node.max.cval,
                step = node.step.cval;
        int64_t trips = (max - min + step - 1) / step;
        if (trips <= 0)
            fatal("loop ", node.name, " has non-positive trip count");
        int64_t u = std::min<int64_t>(factor, trips);
        int64_t chunk = (trips + u - 1) / u;

        // Reductions over an ancestor of this loop cannot be unrolled
        // soundly without privatization; reject.
        std::unordered_set<int32_t> subtree;
        collectSubtree(id, subtree);
        std::unordered_set<int32_t> innerOps;
        collectOps(subtree, innerOps);
        std::vector<OpId> reducesOverLoop;
        for (int32_t ov : innerOps) {
            const Op &o = p.op(OpId(ov));
            if (isReduceOp(o.kind)) {
                if (o.ctrl == id) {
                    reducesOverLoop.push_back(o.id);
                } else if (!subtree.count(o.ctrl.v)) {
                    fatal("loop ", node.name, ": cannot unroll across a "
                          "reduction over an enclosing loop");
                }
            }
        }
        std::sort(reducesOverLoop.begin(), reducesOverLoop.end());

        // Loop-private tensors (every accessor inside the body) get a
        // fresh copy per clone — the classic privatization that keeps
        // unrolled iterations independent (per-sample scratch buffers
        // would otherwise falsely alias across clones).
        std::unordered_map<int32_t, int> tensorAccessesInside;
        std::unordered_map<int32_t, int> tensorAccessesTotal;
        std::unordered_set<int32_t> readInside;
        p.forEachCtrl([&](const CtrlNode &cn) {
            for (OpId oid : cn.ops) {
                const Op &o = p.op(oid);
                if (!isMemoryOp(o.kind))
                    continue;
                ++tensorAccessesTotal[o.tensor.v];
                if (innerOps.count(o.id.v)) {
                    ++tensorAccessesInside[o.tensor.v];
                    if (o.kind == OpKind::Read)
                        readInside.insert(o.tensor.v);
                }
            }
        });
        std::vector<TensorId> privatized;
        for (const auto &[tid, inside] : tensorAccessesInside) {
            TensorId t{tid};
            // Write-only tensors are externally observable results;
            // only loop-local scratch (written AND read inside) is
            // privatized.
            if (p.tensor(t).space == MemSpace::OnChip &&
                inside == tensorAccessesTotal[tid] &&
                readInside.count(tid))
                privatized.push_back(t);
        }
        std::sort(privatized.begin(), privatized.end());

        // Consume the par factor before cloning so clones are final.
        node.par = 1;
        node.vec = vecAssign;
        CtrlId parent = node.parent;

        std::vector<CtrlId> clones;
        std::vector<std::vector<OpId>> opMaps;
        for (int64_t c = 0; c < u; ++c) {
            int64_t lo = min + c * chunk * step;
            int64_t hi = std::min(max, min + (c + 1) * chunk * step);
            if (lo >= hi)
                break;
            std::vector<OpId> omap;
            CtrlId clone = p.cloneSubtree(id, parent, &omap);
            auto &cl = p.ctrl(clone);
            cl.min = Bound(lo);
            cl.max = Bound(hi);
            cl.name = p.ctrl(id).name + "#" + std::to_string(c);
            // Privatize loop-local tensors (clone 0 keeps the
            // originals).
            if (c > 0 && !privatized.empty()) {
                std::unordered_map<int32_t, TensorId> copyOf;
                for (TensorId t : privatized)
                    copyOf[t.v] = p.addTensor(
                        p.tensor(t).name + "#" + std::to_string(c),
                        MemSpace::OnChip, p.tensor(t).size);
                for (int32_t ov : innerOps) {
                    OpId cloned = omap[OpId(ov).index()];
                    if (!cloned.valid())
                        continue;
                    Op &o = p.op(cloned);
                    if (isMemoryOp(o.kind) && copyOf.count(o.tensor.v))
                        o.tensor = copyOf[o.tensor.v];
                }
            }
            clones.push_back(clone);
            opMaps.push_back(std::move(omap));
            ++stats.clonesCreated;
        }

        // cloneSubtree appended the clones to parent's `children`; for
        // else-clause unrolling they belong in `elseChildren`. Move
        // them back out of `children` first, then splice into place.
        {
            auto &pc = p.ctrl(parent).children;
            for (CtrlId c : clones) {
                auto it = std::find(pc.begin(), pc.end(), c);
                SARA_ASSERT(it != pc.end(), "clone not under parent");
                pc.erase(it);
            }
        }

        // Combining blocks for reductions over the unrolled loop.
        std::unordered_map<int32_t, OpId> combineMap;
        std::vector<CtrlId> combineBlocks;
        if (!reducesOverLoop.empty()) {
            CtrlId blk = p.addCtrl(CtrlKind::Block, parent,
                                   p.ctrl(id).name + "_combine");
            {
                auto &pc = p.ctrl(parent).children;
                pc.erase(std::find(pc.begin(), pc.end(), blk));
            }
            for (OpId r : reducesOverLoop) {
                OpKind ck = combineKind(p.op(r).kind);
                OpId acc = opMaps[0][r.index()];
                for (size_t c = 1; c < clones.size(); ++c)
                    acc = p.addOp(ck, blk, {acc, opMaps[c][r.index()]});
                combineMap[r.v] = acc;
            }
            combineBlocks.push_back(blk);
            ++stats.combineBlocks;
        }

        // Redirect external references to subtree ops: reductions go to
        // the combining op; everything else takes the last clone's
        // value (sequential "most recent value" semantics).
        const auto &lastMap = opMaps.back();
        auto redirect = [&](OpId &ref) {
            if (!ref.valid() || !innerOps.count(ref.v))
                return;
            auto it = combineMap.find(ref.v);
            ref = (it != combineMap.end()) ? it->second
                                           : lastMap[ref.index()];
        };
        std::unordered_set<int32_t> newOps;
        for (const auto &m : opMaps)
            for (int32_t ov : innerOps)
                if (m[OpId(ov).index()].valid())
                    newOps.insert(m[OpId(ov).index()].v);
        for (size_t i = 0; i < p.numOps(); ++i) {
            Op &o = p.op(OpId(i));
            if (innerOps.count(o.id.v) || newOps.count(o.id.v))
                continue;
            for (OpId &operand : o.operands)
                redirect(operand);
        }
        p.forEachCtrl([&](const CtrlNode &cn) {
            if (subtree.count(cn.id.v))
                return;
            auto &mut = p.ctrl(cn.id);
            if (!mut.min.isConst)
                redirect(mut.min.op);
            if (!mut.step.isConst)
                redirect(mut.step.op);
            if (!mut.max.isConst)
                redirect(mut.max.op);
            if (mut.cond.valid())
                redirect(mut.cond);
        });

        // Splice: replace the original node with clones + combines.
        std::vector<CtrlId> replacement = clones;
        replacement.insert(replacement.end(), combineBlocks.begin(),
                           combineBlocks.end());
        siblings.erase(siblings.begin() + pos);
        siblings.insert(siblings.begin() + pos, replacement.begin(),
                        replacement.end());

        ++stats.unrolledLoops;
        return replacement.size();
    }

    /** Process one child-list (a scope), handling par annotations. */
    void
    processScope(CtrlId owner, bool elseList)
    {
        size_t i = 0;
        while (true) {
            // Re-read the list each step: unrolling edits it.
            auto &list = elseList ? p.ctrl(owner).elseChildren
                                  : p.ctrl(owner).children;
            if (i >= list.size())
                break;
            CtrlId child = list[i];
            CtrlNode &node = p.ctrl(child);
            switch (node.kind) {
              case CtrlKind::Block:
                ++i;
                break;
              case CtrlKind::Branch:
                processScope(child, false);
                processScope(child, true);
                ++i;
                break;
              case CtrlKind::While:
                if (node.par > 1)
                    fatal("do-while ", node.name,
                          " cannot be parallelized");
                processScope(child, false);
                ++i;
                break;
              case CtrlKind::Seq:
                processScope(child, false);
                ++i;
                break;
              case CtrlKind::Loop: {
                if (node.par <= 1) {
                    node.par = 1;
                    processScope(child, false);
                    ++i;
                    break;
                }
                bool inner = isInnermost(node);
                int vecAssign = inner ? std::min(node.par, lanes) : 1;
                int factor = inner
                                 ? (node.par + lanes - 1) / lanes
                                 : node.par;
                if (inner)
                    ++stats.vectorizedLoops;
                if (factor <= 1) {
                    node.par = 1;
                    node.vec = vecAssign;
                    processScope(child, false);
                    ++i;
                    break;
                }
                auto &siblings = elseList ? p.ctrl(owner).elseChildren
                                          : p.ctrl(owner).children;
                size_t added =
                    unrollLoop(child, siblings, i, factor, vecAssign);
                // Recurse into the replacement nodes (clones may hold
                // nested par loops); they are processed as we advance.
                size_t end = i + added;
                while (i < end) {
                    auto &lst = elseList ? p.ctrl(owner).elseChildren
                                         : p.ctrl(owner).children;
                    CtrlId n = lst[i];
                    if (p.ctrl(n).kind == CtrlKind::Loop)
                        processScope(n, false);
                    ++i;
                }
                break;
              }
            }
        }
    }
};

} // namespace

UnrollStats
unrollProgram(Program &program, int lanes)
{
    SARA_ASSERT(lanes >= 1, "bad lane count");
    Unroller u{program, lanes, {}};
    u.processScope(program.root(), false);
    program.verify();
    return u.stats;
}

} // namespace sara::compiler
