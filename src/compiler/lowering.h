#ifndef SARA_COMPILER_LOWERING_H
#define SARA_COMPILER_LOWERING_H

/**
 * @file
 * Imperative-to-dataflow lowering (paper §III-A): turns a (post-
 * unroll) program into a VUDFG. Allocates a VCU per hyperblock, a VMU
 * (shard set) per on-chip tensor, request/response engines per memory
 * access, AGs per DRAM access, cross-hyperblock data streams at
 * LCA-derived rates, control streams (dynamic bounds, branch
 * predicates, do-while conditions), and CMMC tokens/credits.
 *
 * Optimization decisions folded in here (Fig. 10 knobs):
 *  - msr: qualifying scratchpads lower to direct producer->consumer
 *    streams (no VMU);
 *  - rtelm: pure copy hyperblocks elide their VCU, wiring the read
 *    engine to the write engine;
 *  - xbar-elm: affine addresses are recomputed locally in the memory
 *    engines instead of being streamed from the compute unit;
 *  - multibuffer: producer/consumer tensors get depth-2 buffers and
 *    relaxed credits (the "1+ initial credit" of §III-A1).
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/options.h"
#include "dfg/vudfg.h"
#include "ir/program.h"

namespace sara::compiler {

/** Lowering output: the graph plus maps and statistics for tests. */
struct Lowering
{
    dfg::Vudfg graph;

    /** Hyperblock -> its VCU (absent when the block was copy-elided). */
    std::unordered_map<int32_t, dfg::VuId> blockUnit;
    /** Memory-access op -> its request engine (MemPort or AG). */
    std::unordered_map<int32_t, dfg::VuId> accessEngine;

    struct Stats
    {
        int tokens = 0;             ///< Token streams allocated.
        int credits = 0;            ///< Initial credits across them.
        int forwardEdgesBefore = 0;
        int forwardEdgesRemoved = 0;
        int backwardEdgesRemoved = 0;
        int fifoLoweredTensors = 0; ///< msr hits.
        int copyElidedBlocks = 0;   ///< rtelm hits.
        int multibufferedTensors = 0;
        int shardedTensors = 0;
        int dynamicPorts = 0;
        int mergeUnits = 0;         ///< Crossbar/merge cost (Fig. 8).
        int controllerUnits = 0;    ///< Hierarchical-FSM hubs (PC mode).
    } stats;

    std::vector<std::string> notes;
};

/** Lower `program` (must be post-unroll: no par > 1 left). */
Lowering lowerToVudfg(const ir::Program &program,
                      const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_LOWERING_H
