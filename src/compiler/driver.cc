#include "compiler/driver.h"

#include <sstream>

#include "compiler/duplicate.h"
#include "compiler/merging.h"
#include "compiler/partition.h"
#include "compiler/pnr.h"
#include "compiler/retime.h"
#include "support/logging.h"

namespace sara::compiler {

std::string
ResourceReport::str() const
{
    std::ostringstream os;
    os << "PCU " << pcus << "/" << pcusAvail << ", PMU " << pmus << "/"
       << pmusAvail << ", AG " << ags << "/" << agsAvail
       << (fits ? "" : " [DOES NOT FIT]");
    return os.str();
}

double
CompileResult::phaseMs(const std::string &phase) const
{
    for (const auto &span : phases)
        if (span.name == phase)
            return span.durMs;
    return 0.0;
}

CompileResult
compile(const ir::Program &input, const CompilerOptions &options)
{
    CompileResult result;
    telemetry::SpanRecorder rec;
    telemetry::ScopedSpan all(rec, "compile");

    // 1. Parallelization lowering (consume par factors).
    result.program = input;
    {
        telemetry::ScopedSpan span(rec, "unroll");
        span.stat("ops-in", static_cast<double>(input.numOps()));
        result.unrollStats =
            unrollProgram(result.program, options.spec.pcu.lanes);
        if (options.enableDuplication &&
            options.control == ControlScheme::Cmmc)
            duplicateReadShared(result.program, options);
        span.stat("ops-out",
                  static_cast<double>(result.program.numOps()));
        span.stat("vectorized-loops", result.unrollStats.vectorizedLoops);
        span.stat("unrolled-loops", result.unrollStats.unrolledLoops);
        span.stat("clones-created", result.unrollStats.clonesCreated);
        span.stat("combine-blocks", result.unrollStats.combineBlocks);
    }

    // 2. Imperative-to-dataflow lowering + CMMC.
    {
        telemetry::ScopedSpan span(rec, "lower");
        result.lowering = lowerToVudfg(result.program, options);
        const auto &st = result.lowering.stats;
        span.stat("units",
                  static_cast<double>(result.lowering.graph.numUnits()));
        span.stat("streams",
                  static_cast<double>(result.lowering.graph.numStreams()));
        span.stat("cmmc-tokens", st.tokens);
        span.stat("cmmc-credits", st.credits);
        span.stat("fwd-edges-pruned", st.forwardEdgesRemoved);
        span.stat("bwd-edges-pruned", st.backwardEdgesRemoved);
        span.stat("fifo-lowered", st.fifoLoweredTensors);
        span.stat("copy-elided", st.copyElidedBlocks);
        span.stat("multibuffered", st.multibufferedTensors);
        span.stat("sharded", st.shardedTensors);
    }

    // 3. Compute partitioning: split oversized VCUs (Table I/III).
    {
        telemetry::ScopedSpan span(rec, "partition");
        if (!options.ignoreResourceLimits) {
            PartitionReport pr =
                partitionCompute(result.lowering.graph, options);
            result.partitionsCreated = pr.partitionsCreated;
            span.stat("units-partitioned", pr.unitsPartitioned);
            span.stat("partitions-created", pr.partitionsCreated);
        }
    }

    // 4. Global merging: pack small VUs into physical units.
    MergeReport mr;
    {
        telemetry::ScopedSpan span(rec, "merge");
        mr = globalMerge(result.lowering.graph, options);
        result.unitsMerged = mr.unitsMerged;
        span.stat("units-merged", mr.unitsMerged);
        span.stat("pcu-groups", mr.pcuGroups);
        span.stat("pmu-groups", mr.pmuGroups);
        span.stat("ag-groups", mr.agGroups);
    }

    // 5. Placement & routing: physical latencies per stream.
    {
        telemetry::ScopedSpan span(rec, "pnr");
        PnrReport pnr = placeAndRoute(result.lowering.graph, options);
        span.stat("wirelength", pnr.wirelength);
        span.stat("max-link-load", pnr.maxLinkLoad);
        span.stat("avg-stream-latency", pnr.avgStreamLatency);
        span.stat("routed-streams", pnr.routedStreams);
        span.stat("route-hops", pnr.totalRouteHops);
    }

    // 6. Retiming: deepen FIFOs on imbalanced reconvergent paths
    //    (uses the routed latencies).
    RetimeReport rr;
    {
        telemetry::ScopedSpan span(rec, "retime");
        if (options.enableRetime)
            rr = retimeStreams(result.lowering.graph, options);
        span.stat("streams-deepened", rr.streamsDeepened);
        span.stat("retime-units", rr.retimeUnits);
    }

    // 7. Resource report.
    ResourceReport &res = result.resources;
    res.pcusAvail = options.spec.numPcus();
    res.pmusAvail = options.spec.numPmus();
    res.agsAvail = options.spec.numAgs;
    res.mergeUnits = result.lowering.stats.mergeUnits;
    res.controllerUnits = result.lowering.stats.controllerUnits;
    res.retimeUnits = rr.retimeUnits;
    res.pcus = mr.pcuGroups + res.mergeUnits + res.controllerUnits +
               rr.retimePcus;
    res.pmus = mr.pmuGroups + rr.retimePmus;
    res.ags = mr.agGroups;
    res.fits = res.pcus <= res.pcusAvail && res.pmus <= res.pmusAvail &&
               res.ags <= res.agsAvail;
    if (!res.fits) {
        if (options.strictFit && !options.ignoreResourceLimits)
            fatal("design does not fit: ", res.str());
        else
            warn("design does not fit: ", res.str());
    }

    all.end();
    result.phases = rec.spans();
    return result;
}

} // namespace sara::compiler
