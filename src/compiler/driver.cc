#include "compiler/driver.h"

#include <chrono>
#include <sstream>

#include "compiler/duplicate.h"
#include "compiler/merging.h"
#include "compiler/partition.h"
#include "compiler/pnr.h"
#include "compiler/retime.h"
#include "support/logging.h"

namespace sara::compiler {

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

std::string
ResourceReport::str() const
{
    std::ostringstream os;
    os << "PCU " << pcus << "/" << pcusAvail << ", PMU " << pmus << "/"
       << pmusAvail << ", AG " << ags << "/" << agsAvail
       << (fits ? "" : " [DOES NOT FIT]");
    return os.str();
}

CompileResult
compile(const ir::Program &input, const CompilerOptions &options)
{
    CompileResult result;
    auto t0 = std::chrono::steady_clock::now();

    // 1. Parallelization lowering (consume par factors).
    result.program = input;
    auto tUnroll = std::chrono::steady_clock::now();
    result.unrollStats =
        unrollProgram(result.program, options.spec.pcu.lanes);
    if (options.enableDuplication &&
        options.control == ControlScheme::Cmmc)
        duplicateReadShared(result.program, options);
    result.timing.unrollMs = msSince(tUnroll);

    // 2. Imperative-to-dataflow lowering + CMMC.
    auto tLower = std::chrono::steady_clock::now();
    result.lowering = lowerToVudfg(result.program, options);
    result.timing.lowerMs = msSince(tLower);

    // 3. Compute partitioning: split oversized VCUs (Table I/III).
    auto tPart = std::chrono::steady_clock::now();
    if (!options.ignoreResourceLimits) {
        PartitionReport pr =
            partitionCompute(result.lowering.graph, options);
        result.partitionsCreated = pr.partitionsCreated;
    }
    result.timing.partitionMs = msSince(tPart);

    // 4. Global merging: pack small VUs into physical units.
    auto tMerge = std::chrono::steady_clock::now();
    MergeReport mr = globalMerge(result.lowering.graph, options);
    result.unitsMerged = mr.unitsMerged;
    result.timing.mergeMs = msSince(tMerge);

    // 5. Placement & routing: physical latencies per stream.
    auto tPnr = std::chrono::steady_clock::now();
    PnrReport pnr = placeAndRoute(result.lowering.graph, options);
    result.timing.pnrMs = msSince(tPnr);
    (void)pnr;

    // 6. Retiming: deepen FIFOs on imbalanced reconvergent paths
    //    (uses the routed latencies).
    RetimeReport rr;
    if (options.enableRetime)
        rr = retimeStreams(result.lowering.graph, options);

    // 7. Resource report.
    ResourceReport &res = result.resources;
    res.pcusAvail = options.spec.numPcus();
    res.pmusAvail = options.spec.numPmus();
    res.agsAvail = options.spec.numAgs;
    res.mergeUnits = result.lowering.stats.mergeUnits;
    res.controllerUnits = result.lowering.stats.controllerUnits;
    res.retimeUnits = rr.retimeUnits;
    res.pcus = mr.pcuGroups + res.mergeUnits + res.controllerUnits +
               rr.retimePcus;
    res.pmus = mr.pmuGroups + rr.retimePmus;
    res.ags = mr.agGroups;
    res.fits = res.pcus <= res.pcusAvail && res.pmus <= res.pmusAvail &&
               res.ags <= res.agsAvail;
    if (!res.fits) {
        if (options.strictFit && !options.ignoreResourceLimits)
            fatal("design does not fit: ", res.str());
        else
            warn("design does not fit: ", res.str());
    }

    result.timing.totalMs = msSince(t0);
    return result;
}

} // namespace sara::compiler
