#ifndef SARA_COMPILER_ANALYSIS_H
#define SARA_COMPILER_ANALYSIS_H

/**
 * @file
 * Shared compiler analyses:
 *  - accessor collection (program-ordered memory ops per tensor),
 *  - address disjointness (span + modular-lattice tests) used to prune
 *    false dependencies between unrolled accessors,
 *  - control-structure queries (LCA-derived stream rates, branch
 *    ancestry) that define CMMC push/pop levels.
 */

#include <optional>
#include <vector>

#include "ir/affine.h"
#include "ir/program.h"

namespace sara::compiler {

/** One memory access site. */
struct Accessor
{
    ir::OpId op;
    ir::CtrlId block;
    ir::TensorId tensor;
    bool isWrite = false;
    /** Affine address (nullopt: indirect/gather). */
    std::optional<ir::AffineForm> form;
    /** Dense program-order index across all accessors of the tensor. */
    size_t index = 0;
};

/** All accessors of one tensor, in program order. */
struct TensorAccess
{
    ir::TensorId tensor;
    std::vector<Accessor> accessors;
};

/** Collect accessors for every tensor (indexed by tensor id). */
std::vector<TensorAccess> collectAccessors(const ir::Program &p);

/**
 * Conservative may-alias: false only when the two accessors' address
 * sets are provably disjoint over their whole iteration spaces
 * (disjoint spans, or non-overlapping modular lattices).
 */
bool mayAlias(const ir::Program &p, const Accessor &a, const Accessor &b);

/**
 * May-alias across *different iterations* of `loop` (the test for
 * loop-carried dependencies). Identical affine forms whose coefficient
 * on `loop` strictly dominates the reachable span of the deeper terms
 * can only collide within the same iteration — e.g. the classic
 * c[o] read-modify-write recurrence never conflicts across o.
 */
bool lcdMayAlias(const ir::Program &p, const Accessor &a,
                 const Accessor &b, ir::CtrlId loop);

/**
 * Number of loops enclosing `block` that are at-or-above `scope`
 * (i.e. equal to it or an ancestor of it). This is the CMMC push/pop
 * level: the counter at this index wraps once per iteration of
 * `scope`'s enclosing round ("done of the immediate child ancestor",
 * paper §III-A1).
 */
int levelAt(const ir::Program &p, ir::CtrlId block, ir::CtrlId scope);

/** Branch ancestors of a node, outermost first, with clause polarity. */
struct BranchAncestor
{
    ir::CtrlId branch;
    bool inThen = true;
};
std::vector<BranchAncestor> branchAncestors(const ir::Program &p,
                                            ir::CtrlId node);

/**
 * True if a and b sit in different clauses of a common branch (their
 * executions are mutually exclusive for the same iteration of the
 * branch's scope — paper Fig. 5b).
 */
bool exclusiveClauses(const ir::Program &p, ir::CtrlId a, ir::CtrlId b);

/** Innermost loop (or while) enclosing both nodes; invalid if none. */
ir::CtrlId innermostCommonLoop(const ir::Program &p, ir::CtrlId a,
                               ir::CtrlId b);

/** True if any While node lies strictly between `scope` and `node`. */
bool whileBetween(const ir::Program &p, ir::CtrlId scope, ir::CtrlId node);

} // namespace sara::compiler

#endif // SARA_COMPILER_ANALYSIS_H
