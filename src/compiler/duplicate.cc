#include "compiler/duplicate.h"

#include <algorithm>

#include "compiler/analysis.h"
#include "support/logging.h"

namespace sara::compiler {

using namespace ir;

namespace {

std::optional<std::pair<int64_t, int64_t>>
fullSpan(const Program &p, const Accessor &a)
{
    if (!a.form)
        return std::nullopt;
    std::vector<CtrlId> loops;
    for (const auto &[loop, c] : a.form->coeffs)
        if (c != 0)
            loops.push_back(loop);
    return affineSpan(p, *a.form, loops);
}

} // namespace

DuplicateStats
duplicateReadShared(Program &p, const CompilerOptions &options)
{
    DuplicateStats stats;
    auto access = collectAccessors(p);

    struct Plan
    {
        TensorId tensor;
        std::vector<OpId> writeOps;   ///< All producers (broadcast).
        std::vector<OpId> dupReaders; ///< Reads that get private copies.
    };
    std::vector<Plan> plans;

    for (const auto &ta : access) {
        const Tensor &tensor = p.tensor(ta.tensor);
        if (tensor.space != MemSpace::OnChip)
            continue;
        std::vector<const Accessor *> writers, readers;
        for (const auto &a : ta.accessors)
            (a.isWrite ? writers : readers).push_back(&a);
        if (writers.empty() || readers.size() < 2)
            continue;
        if (readers.size() > 64 || writers.size() > 8)
            continue; // Copy explosion; sharding handles the rest.
        if (tensor.size > options.spec.pmu.capacityWords / 2)
            continue;
        // Read-modify-write in a writer's block: keep shared.
        bool rmw = false;
        for (const auto *r : readers)
            for (const auto *wr : writers)
                if (r->block == wr->block)
                    rmw = true;
        if (rmw)
            continue;
        // Duplicate only when readers would contend: overlapping
        // spans (disjoint-span readers land on distinct shards).
        bool contended = false;
        for (size_t i = 0; i < readers.size() && !contended; ++i) {
            auto si = fullSpan(p, *readers[i]);
            for (size_t j = i + 1; j < readers.size(); ++j) {
                auto sj = fullSpan(p, *readers[j]);
                if (!si || !sj ||
                    !(si->second < sj->first || sj->second < si->first)) {
                    contended = true;
                    break;
                }
            }
        }
        if (!contended)
            continue;

        Plan plan;
        plan.tensor = ta.tensor;
        for (const auto *wr : writers)
            plan.writeOps.push_back(wr->op);
        for (size_t i = 1; i < readers.size(); ++i)
            plan.dupReaders.push_back(readers[i]->op);
        plans.push_back(std::move(plan));
    }

    for (const auto &plan : plans) {
        int copy = 0;
        for (OpId readOp : plan.dupReaders) {
            TensorId dup = p.addTensor(
                p.tensor(plan.tensor).name + "_dup" +
                    std::to_string(copy++),
                MemSpace::OnChip, p.tensor(plan.tensor).size);
            p.op(readOp).tensor = dup;
            // Broadcast every producer's write (same address and data
            // ops; the lowering turns each into an extra colocated
            // write engine on the copy's PMU).
            for (OpId wid : plan.writeOps) {
                const Op writeOp = p.op(wid);
                OpId w = p.addOp(
                    OpKind::Write, writeOp.block,
                    {writeOp.operands[0], writeOp.operands[1]});
                p.op(w).tensor = dup;
            }
            ++stats.copiesCreated;
        }
        ++stats.tensorsDuplicated;
    }
    if (!plans.empty())
        p.verify();
    return stats;
}

} // namespace sara::compiler
