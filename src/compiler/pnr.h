#ifndef SARA_COMPILER_PNR_H
#define SARA_COMPILER_PNR_H

/**
 * @file
 * Placement and routing (paper Fig. 3, phase two). Places merged unit
 * groups onto the Plasticine checkerboard (PCU/PMU cells plus fringe
 * AG slots) with simulated annealing on total weighted wirelength,
 * routes streams in X-Y dimension order to estimate congestion, and
 * annotates every stream with its physical latency — the numbers the
 * cycle-level simulator then honours.
 */

#include "compiler/options.h"
#include "dfg/vudfg.h"

namespace sara::compiler {

struct PnrReport
{
    bool placed = true;
    int gridRows = 0;
    int gridCols = 0;   ///< May exceed the spec for oversized designs.
    double wirelength = 0.0;
    /** Peak streams sharing one directed link (== the NoC's static
     *  per-link registration count; see tests/test_noc.cc). */
    int maxLinkLoad = 0;
    double avgStreamLatency = 0.0;
    int routedStreams = 0;  ///< Streams with a non-empty physical route.
    int totalRouteHops = 0; ///< Sum of route lengths (directed links).
};

/** Place groups, set VUnit::placeX/Y and Stream::latency. */
PnrReport placeAndRoute(dfg::Vudfg &graph, const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_PNR_H
