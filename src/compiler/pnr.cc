#include "compiler/pnr.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"

namespace sara::compiler {

using dfg::PuType;
using dfg::StreamKind;

namespace {

struct Cell
{
    int x = 0, y = 0;
    PuType type = PuType::Pcu;
    int group = -1; ///< Occupying group (-1 free).
};

struct Placer
{
    const CompilerOptions &opt;
    dfg::Vudfg &g;

    int rows = 0, cols = 0;
    std::vector<Cell> cells;
    std::vector<int> cellOf;          ///< group -> cell index.
    std::vector<PuType> groupType;
    /** Inter-group nets: (groupA, groupB) -> weight. */
    std::map<std::pair<int, int>, double> nets;

    int
    manhattan(int ca, int cb) const
    {
        return std::abs(cells[ca].x - cells[cb].x) +
               std::abs(cells[ca].y - cells[cb].y);
    }

    double
    totalCost() const
    {
        double cost = 0.0;
        for (const auto &[key, w] : nets)
            cost += w * manhattan(cellOf[key.first], cellOf[key.second]);
        return cost;
    }

    double
    groupCost(int group) const
    {
        double cost = 0.0;
        for (const auto &[key, w] : nets) {
            if (key.first != group && key.second != group)
                continue;
            cost += w * manhattan(cellOf[key.first], cellOf[key.second]);
        }
        return cost;
    }
};

} // namespace

PnrReport
placeAndRoute(dfg::Vudfg &graph, const CompilerOptions &options)
{
    PnrReport report;
    const auto &spec = options.spec;

    // --- Collect groups. ---
    int numGroups = 0;
    for (const auto &u : graph.units())
        numGroups = std::max(numGroups, u.mergedInto + 1);
    if (numGroups == 0) {
        // Merging did not run (semantics-only flows): every unit is
        // its own group of its natural type.
        for (auto &u : graph.units()) {
            u.mergedInto = numGroups++;
            u.assigned = u.kind == dfg::VuKind::Memory ||
                                 (u.kind == dfg::VuKind::MemPort &&
                                  !u.dynamicBank)
                             ? PuType::Pmu
                             : (u.kind == dfg::VuKind::Ag ? PuType::AgIf
                                                          : PuType::Pcu);
        }
    }

    Placer placer{options, graph, 0, 0, {}, {}, {}, {}};
    placer.groupType.assign(numGroups, PuType::Pcu);
    int pcuNeed = 0, pmuNeed = 0, agNeed = 0;
    {
        std::vector<bool> seen(numGroups, false);
        for (const auto &u : graph.units()) {
            if (seen[u.mergedInto])
                continue;
            seen[u.mergedInto] = true;
            placer.groupType[u.mergedInto] = u.assigned;
            switch (u.assigned) {
              case PuType::Pmu: ++pmuNeed; break;
              case PuType::AgIf: ++agNeed; break;
              default: ++pcuNeed; break;
            }
        }
    }

    // --- Build the (possibly virtually scaled) grid. ---
    int rows = spec.rows, cols = spec.cols;
    auto capacity = [&](int r, int c) {
        return std::make_pair(r * c / 2, r * c / 2);
    };
    while (capacity(rows, cols).first < pcuNeed ||
           capacity(rows, cols).second < pmuNeed) {
        rows += 2;
        cols += 2;
        report.placed = false; // Virtual overflow grid.
    }
    int agSlots = std::max(spec.numAgs, agNeed);
    placer.rows = rows;
    placer.cols = cols;
    report.gridRows = rows;
    report.gridCols = cols;

    // Checkerboard cells + AG fringe on the two vertical edges.
    std::vector<int> freePcu, freePmu, freeAg;
    for (int y = 0; y < rows; ++y) {
        for (int x = 0; x < cols; ++x) {
            Cell cell;
            cell.x = x;
            cell.y = y;
            cell.type = ((x + y) % 2 == 0) ? PuType::Pcu : PuType::Pmu;
            placer.cells.push_back(cell);
            (cell.type == PuType::Pcu ? freePcu : freePmu)
                .push_back(static_cast<int>(placer.cells.size() - 1));
        }
    }
    for (int i = 0; i < agSlots; ++i) {
        Cell cell;
        cell.x = (i % 2 == 0) ? -1 : cols;
        cell.y = (i / 2) % rows;
        cell.type = PuType::AgIf;
        placer.cells.push_back(cell);
        freeAg.push_back(static_cast<int>(placer.cells.size() - 1));
    }

    // --- Nets between groups. ---
    for (const auto &s : graph.streams()) {
        int a = graph.unit(s.src).mergedInto;
        int b = graph.unit(s.dst).mergedInto;
        if (a == b)
            continue;
        double w = s.kind == StreamKind::Token ? 0.5
                   : (s.vec > 1 ? 2.0 : 1.0);
        auto key = std::minmax(a, b);
        placer.nets[{key.first, key.second}] += w;
    }

    // --- Initial placement: group order, round-robin into free cells
    // (snake order gives locality for consecutive ids). ---
    placer.cellOf.assign(numGroups, -1);
    size_t iPcu = 0, iPmu = 0, iAg = 0;
    for (int gIdx = 0; gIdx < numGroups; ++gIdx) {
        switch (placer.groupType[gIdx]) {
          case PuType::Pmu:
            SARA_ASSERT(iPmu < freePmu.size(), "PMU overflow in PnR");
            placer.cellOf[gIdx] = freePmu[iPmu++];
            break;
          case PuType::AgIf:
            SARA_ASSERT(iAg < freeAg.size(), "AG overflow in PnR");
            placer.cellOf[gIdx] = freeAg[iAg++];
            break;
          default:
            SARA_ASSERT(iPcu < freePcu.size(), "PCU overflow in PnR");
            placer.cellOf[gIdx] = freePcu[iPcu++];
            break;
        }
        placer.cells[placer.cellOf[gIdx]].group = gIdx;
    }

    // --- Simulated annealing: swap same-class placements. ---
    {
        Rng rng(options.pnrSeed);
        // Per-class group lists and free cells (occupied or not).
        std::vector<std::vector<int>> classGroups(3);
        auto classIdx = [](PuType t) {
            return t == PuType::Pmu ? 1 : (t == PuType::AgIf ? 2 : 0);
        };
        for (int gIdx = 0; gIdx < numGroups; ++gIdx)
            classGroups[classIdx(placer.groupType[gIdx])].push_back(gIdx);
        std::vector<std::vector<int>> classCells(3);
        for (size_t c = 0; c < placer.cells.size(); ++c)
            classCells[classIdx(placer.cells[c].type)].push_back(
                static_cast<int>(c));

        double temp = 4.0;
        const double decay = std::pow(
            0.001 / temp, 1.0 / std::max(1, options.pnrIterations));
        for (int it = 0; it < options.pnrIterations; ++it) {
            int cls = static_cast<int>(rng.intIn(0, 2));
            if (classGroups[cls].empty()) {
                temp *= decay;
                continue;
            }
            int gIdx = classGroups[cls][rng.index(classGroups[cls].size())];
            int target = classCells[cls][rng.index(classCells[cls].size())];
            int from = placer.cellOf[gIdx];
            if (target == from) {
                temp *= decay;
                continue;
            }
            int other = placer.cells[target].group;
            double before = placer.groupCost(gIdx) +
                            (other >= 0 ? placer.groupCost(other) : 0.0);
            // Apply swap.
            placer.cells[from].group = other;
            placer.cells[target].group = gIdx;
            placer.cellOf[gIdx] = target;
            if (other >= 0)
                placer.cellOf[other] = from;
            double after = placer.groupCost(gIdx) +
                           (other >= 0 ? placer.groupCost(other) : 0.0);
            double delta = after - before;
            if (delta > 0 &&
                rng.realIn(0.0, 1.0) >=
                    std::exp(-delta / std::max(temp, 1e-9))) {
                // Revert.
                placer.cells[target].group = other;
                placer.cells[from].group = gIdx;
                placer.cellOf[gIdx] = from;
                if (other >= 0)
                    placer.cellOf[other] = target;
            }
            temp *= decay;
        }
    }

    report.wirelength = placer.totalCost();

    // --- Record placement on units. ---
    for (auto &u : graph.units()) {
        const Cell &cell = placer.cells[placer.cellOf[u.mergedInto]];
        u.placeX = cell.x;
        u.placeY = cell.y;
    }

    // --- Route (X-Y dimension order). ---
    // Each stream gets the explicit sequence of directed links it
    // crosses (X run at the source row, then Y run at the destination
    // column); per-link loads over those routes drive the congestion
    // estimate, and the cycle-level NoC replays the exact same routes,
    // so `maxLinkLoad` here equals the network's measured peak
    // streams-per-link by construction (asserted in tests/test_noc.cc).
    auto buildRoute = [](int x1, int y1, int x2, int y2) {
        std::vector<dfg::RouteLink> route;
        int x = x1, y = y1;
        while (x != x2) {
            bool east = x2 > x;
            route.push_back({static_cast<int16_t>(x),
                             static_cast<int16_t>(y),
                             east ? dfg::LinkDir::East
                                  : dfg::LinkDir::West});
            x += east ? 1 : -1;
        }
        while (y != y2) {
            bool south = y2 > y;
            route.push_back({static_cast<int16_t>(x),
                             static_cast<int16_t>(y),
                             south ? dfg::LinkDir::South
                                   : dfg::LinkDir::North});
            y += south ? 1 : -1;
        }
        return route;
    };
    std::map<dfg::RouteLink, int> linkLoad; // streams per directed link
    const int linkCapacity = 8;
    double latencySum = 0.0;
    int latencyCount = 0;
    for (auto &s : graph.streams()) {
        const auto &su = graph.unit(s.src);
        const auto &du = graph.unit(s.dst);
        if (su.mergedInto == du.mergedInto) {
            s.latency = 1; // Same physical unit.
            s.route.clear();
            continue;
        }
        s.route =
            buildRoute(su.placeX, su.placeY, du.placeX, du.placeY);
        int dist = static_cast<int>(s.route.size());
        int load = 0;
        for (const auto &link : s.route)
            load = std::max(load, ++linkLoad[link]);
        report.maxLinkLoad = std::max(report.maxLinkLoad, load);
        report.routedStreams += dist > 0;
        report.totalRouteHops += dist;
        int congestion = std::max(0, load - linkCapacity);
        s.latency = std::max(spec.net.minLatency,
                             spec.net.ejectLatency +
                                 spec.net.hopLatency * dist) +
                    2 * congestion;
        if (options.control == ControlScheme::HierarchicalFsm &&
            s.kind == StreamKind::Token) {
            // Enable/done handshakes traverse the loop controller hub:
            // roughly double the path plus the hub's reaction time.
            s.latency = 2 * s.latency + spec.net.minLatency;
        }
        latencySum += s.latency;
        ++latencyCount;
    }
    report.avgStreamLatency =
        latencyCount ? latencySum / latencyCount : 0.0;
    return report;
}

} // namespace sara::compiler
