#include "compiler/merging.h"

#include <algorithm>
#include <map>
#include <set>

#include "solver/mip.h"
#include "support/digraph.h"
#include "support/logging.h"

namespace sara::compiler {

using dfg::PuType;
using dfg::VuId;
using dfg::VuKind;

namespace {

bool
countableLop(const dfg::LOp &lop)
{
    if (lop.isStreamIn())
        return false;
    return lop.kind != ir::OpKind::Const && lop.kind != ir::OpKind::Iter;
}

int
unitOps(const dfg::VUnit &u)
{
    int ops = 0;
    for (const auto &lop : u.lops)
        if (countableLop(lop))
            ++ops;
    return ops;
}

/** Compute-class: VCUs plus dynamic memory ports (crossbar clients). */
bool
isComputeClass(const dfg::VUnit &u)
{
    if (u.kind == VuKind::Compute)
        return true;
    return u.kind == VuKind::MemPort && u.dynamicBank;
}

} // namespace

PartitionProblem
buildMergeProblem(const dfg::Vudfg &graph, const CompilerOptions &options,
                  std::vector<VuId> *nodes)
{
    PartitionProblem prob;
    std::vector<int> nodeOf(graph.numUnits(), -1);
    for (const auto &u : graph.units()) {
        if (!isComputeClass(u))
            continue;
        nodeOf[u.id.index()] = prob.n++;
        if (nodes)
            nodes->push_back(u.id);
        prob.opCost.push_back(
            std::min(unitOps(u), options.spec.pcu.stages));
        prob.auxCost.push_back(u.chainSize());
    }
    // Do-while condition streams are loop feedback, not forward
    // dataflow; including them would make the merge problem cyclic.
    std::vector<bool> isFeedback(graph.numStreams(), false);
    for (const auto &u : graph.units())
        for (const auto &in : u.inputs)
            if (in.role == dfg::InputRole::WhileCond)
                isFeedback[in.stream.index()] = true;
    std::set<std::pair<int, int>> edgeSet;
    for (const auto &s : graph.streams()) {
        if (s.initTokens > 0 || s.src == s.dst ||
            isFeedback[s.id.index()])
            continue;
        int a = nodeOf[s.src.index()], b = nodeOf[s.dst.index()];
        if (a < 0 || b < 0 || a == b)
            continue;
        edgeSet.insert({a, b});
    }
    prob.edges.assign(edgeSet.begin(), edgeSet.end());
    prob.maxOps = options.spec.pcu.stages;
    prob.maxIn = options.spec.pcu.maxIn;
    prob.maxOut = options.spec.pcu.maxOut;
    prob.maxAux = options.spec.pcu.maxCounters;
    prob.alpha = 1.0 / std::min(prob.maxIn, prob.maxOut);
    return prob;
}

MergeReport
globalMerge(dfg::Vudfg &graph, const CompilerOptions &options)
{
    MergeReport report;
    int nextGroup = 0;

    // PMU groups: one per VMU; static ports join their VMU's group.
    std::map<int32_t, int> vmuGroup;
    for (auto &u : graph.units()) {
        if (u.kind == VuKind::Memory) {
            u.mergedInto = nextGroup++;
            u.assigned = PuType::Pmu;
            vmuGroup[u.id.v] = u.mergedInto;
            ++report.pmuGroups;
        }
    }
    for (auto &u : graph.units()) {
        if (u.kind == VuKind::MemPort && !u.dynamicBank) {
            u.mergedInto = vmuGroup.at(u.memUnit.v);
            u.assigned = PuType::Pmu;
        }
    }
    // AG groups: one engine per DRAM interface.
    for (auto &u : graph.units()) {
        if (u.kind == VuKind::Ag) {
            u.mergedInto = nextGroup++;
            u.assigned = PuType::AgIf;
            ++report.agGroups;
        }
    }

    // Compute-class packing.
    std::vector<VuId> nodes;
    PartitionProblem prob = buildMergeProblem(graph, options, &nodes);
    if (prob.n == 0)
        return report;

    PartitionSolution sol;
    bool cyclic = false;
    {
        // The compute-class subgraph can, in rare shapes, be cyclic
        // through do-while condition feedback; fall back to singleton
        // groups in that case.
        Digraph check(prob.n);
        for (const auto &[a, b] : prob.edges)
            check.addEdge(a, b);
        cyclic = check.hasCycle();
    }
    if (cyclic) {
        warn("compute-class unit graph is cyclic; merging skipped");
        sol.assign.resize(prob.n);
        for (int i = 0; i < prob.n; ++i)
            sol.assign[i] = i;
        sol.numPartitions = prob.n;
    } else if (options.partitioner == PartitionAlgo::Solver) {
        PartitionSolution warm =
            partitionTraversal(prob, PartitionAlgo::DfsFwd);
        int totalOps = 0;
        for (int c : prob.opCost)
            totalOps += c;
        solver::AnnealOptions ao;
        ao.iterations = options.solverIterations;
        ao.seed = options.solverSeed;
        ao.lowerBound =
            std::max(1, (totalOps + prob.maxOps - 1) / prob.maxOps);
        auto res = solver::anneal(
            prob.n, warm.assign,
            [&](const std::vector<int> &a, bool *f) {
                return partitionCost(prob, a, f);
            },
            ao);
        sol.assign = res.feasible ? res.assign : warm.assign;
        sol.numPartitions = 0;
        for (int a : sol.assign)
            sol.numPartitions = std::max(sol.numPartitions, a + 1);
    } else {
        sol = partitionTraversal(prob, options.partitioner);
        if (!sol.feasible) {
            // Traversal is heuristic; fall back to singletons rather
            // than emit an illegal packing.
            for (int i = 0; i < prob.n; ++i)
                sol.assign[i] = i;
            sol.numPartitions = prob.n;
        }
    }

    std::vector<int> groupOf(sol.numPartitions, -1);
    std::vector<int> groupSize(sol.numPartitions, 0);
    for (int i = 0; i < prob.n; ++i)
        ++groupSize[sol.assign[i]];
    for (int i = 0; i < prob.n; ++i) {
        int part = sol.assign[i];
        if (groupOf[part] < 0) {
            groupOf[part] = nextGroup++;
            ++report.pcuGroups;
        }
        auto &u = graph.unit(nodes[i]);
        u.mergedInto = groupOf[part];
        u.assigned = PuType::Pcu;
        if (groupSize[part] > 1)
            ++report.unitsMerged;
    }
    return report;
}

} // namespace sara::compiler
