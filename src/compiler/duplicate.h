#ifndef SARA_COMPILER_DUPLICATE_H
#define SARA_COMPILER_DUPLICATE_H

/**
 * @file
 * Read-shared buffer duplication. A Plasticine PMU serves one read
 * request stream at a time (paper §III-A3a), so CMMC must serialize
 * readers that share a shard — which would destroy the linear scaling
 * of §IV-A whenever unrolled consumers all sweep one small buffer
 * (weights, lookup tables, per-tile inputs). Spatial programs solve
 * this by duplicating small read-shared buffers per consumer; this
 * pass does it automatically: each additional reader gets a private
 * copy, and the single producer broadcasts its writes to every copy.
 */

#include "compiler/options.h"
#include "ir/program.h"

namespace sara::compiler {

struct DuplicateStats
{
    int tensorsDuplicated = 0;
    int copiesCreated = 0;
};

/** Rewrite `program` in place (post-unroll). */
DuplicateStats duplicateReadShared(ir::Program &program,
                                   const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_DUPLICATE_H
