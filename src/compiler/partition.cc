#include "compiler/partition.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <map>
#include <set>

#include "solver/mip.h"
#include "support/logging.h"

namespace sara::compiler {

using dfg::InputRole;
using dfg::StreamId;
using dfg::StreamKind;
using dfg::VuId;
using dfg::VuKind;

const char *
partitionAlgoName(PartitionAlgo algo)
{
    switch (algo) {
      case PartitionAlgo::BfsFwd: return "bfs-fwd";
      case PartitionAlgo::BfsBwd: return "bfs-bwd";
      case PartitionAlgo::DfsFwd: return "dfs-fwd";
      case PartitionAlgo::DfsBwd: return "dfs-bwd";
      case PartitionAlgo::Solver: return "solver";
    }
    return "?";
}

double
partitionCost(const PartitionProblem &prob, const std::vector<int> &assign,
              bool *feasible)
{
    bool ok = true;
    int parts = 0;
    for (int a : assign)
        parts = std::max(parts, a + 1);

    // Per-partition ops and arity.
    std::vector<int> ops(parts, 0), aux(parts, 0);
    std::vector<std::set<int>> inSrcs(parts);  // External source nodes.
    std::vector<std::set<int>> outNodes(parts); // Nodes w/ external dest.
    for (int i = 0; i < prob.n; ++i) {
        ops[assign[i]] += prob.opCost[i];
        if (prob.maxAux > 0)
            aux[assign[i]] += prob.auxCost[i];
    }
    for (const auto &[s, d] : prob.edges) {
        if (assign[s] == assign[d])
            continue;
        inSrcs[assign[d]].insert(s);
        outNodes[assign[s]].insert(s);
    }
    for (int pIdx = 0; pIdx < parts; ++pIdx) {
        if (ops[pIdx] > prob.maxOps ||
            static_cast<int>(inSrcs[pIdx].size()) > prob.maxIn ||
            static_cast<int>(outNodes[pIdx].size()) > prob.maxOut)
            ok = false;
        if (prob.maxAux > 0 && aux[pIdx] > prob.maxAux)
            ok = false;
    }

    // Acyclicity across partitions + retiming gaps via partition
    // longest-path depths.
    std::vector<std::set<int>> succ(parts);
    std::vector<int> indeg(parts, 0);
    for (const auto &[s, d] : prob.edges) {
        int a = assign[s], b = assign[d];
        if (a != b && succ[a].insert(b).second)
            ++indeg[b];
    }
    std::deque<int> ready;
    for (int i = 0; i < parts; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    std::vector<int> depth(parts, 0);
    int seen = 0;
    while (!ready.empty()) {
        int cur = ready.front();
        ready.pop_front();
        ++seen;
        for (int nxt : succ[cur]) {
            depth[nxt] = std::max(depth[nxt], depth[cur] + 1);
            if (--indeg[nxt] == 0)
                ready.push_back(nxt);
        }
    }
    if (seen != parts)
        ok = false; // Cycle across partitions.

    double retime = 0.0;
    if (ok) {
        for (const auto &[s, d] : prob.edges) {
            int gap = depth[assign[d]] - depth[assign[s]];
            if (assign[s] != assign[d] && gap > 1)
                retime += gap - 1;
        }
    }
    if (feasible)
        *feasible = ok;
    return ok ? parts + prob.alpha * retime : 1e18;
}

namespace {

/** Topological order with a BFS (FIFO) or DFS (LIFO) ready list, on
 *  the forward or reversed graph. */
std::vector<int>
topoOrder(const PartitionProblem &prob, bool dfs, bool backward)
{
    std::vector<std::vector<int>> succ(prob.n);
    std::vector<int> indeg(prob.n, 0);
    for (auto [s, d] : prob.edges) {
        if (backward)
            std::swap(s, d);
        succ[s].push_back(d);
        ++indeg[d];
    }
    std::deque<int> ready;
    for (int i = 0; i < prob.n; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    std::vector<int> order;
    order.reserve(prob.n);
    while (!ready.empty()) {
        int cur;
        if (dfs) {
            cur = ready.back();
            ready.pop_back();
        } else {
            cur = ready.front();
            ready.pop_front();
        }
        order.push_back(cur);
        for (int nxt : succ[cur])
            if (--indeg[nxt] == 0)
                ready.push_back(nxt);
    }
    SARA_ASSERT(static_cast<int>(order.size()) == prob.n,
                "partition problem graph has a cycle");
    if (backward)
        std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

PartitionSolution
partitionTraversal(const PartitionProblem &prob, PartitionAlgo algo)
{
    bool dfs = algo == PartitionAlgo::DfsFwd ||
               algo == PartitionAlgo::DfsBwd;
    bool backward = algo == PartitionAlgo::BfsBwd ||
                    algo == PartitionAlgo::DfsBwd;
    if (algo == PartitionAlgo::Solver)
        dfs = true; // Warm start uses DfsFwd.

    std::vector<std::vector<int>> preds(prob.n);
    for (const auto &[s, d] : prob.edges)
        preds[d].push_back(s);

    auto order = topoOrder(prob, dfs, backward);

    PartitionSolution sol;
    sol.assign.assign(prob.n, -1);
    int current = 0;
    int ops = 0;
    int auxSum = 0;
    int nodes = 0;
    std::set<int> extSrcs;
    // Chunk total nodes so out-arity (<= nodes in chunk) stays legal.
    const int nodeCap = std::max(prob.maxOps, prob.maxOut);
    for (int idx : order) {
        std::set<int> added;
        for (int s : preds[idx])
            if (sol.assign[s] != current)
                added.insert(s);
        std::set<int> merged = extSrcs;
        merged.insert(added.begin(), added.end());
        int auxNeed = prob.maxAux > 0 ? prob.auxCost[idx] : 0;
        bool fits = ops + prob.opCost[idx] <= prob.maxOps &&
                    nodes + 1 <= nodeCap &&
                    static_cast<int>(merged.size()) <= prob.maxIn &&
                    (prob.maxAux == 0 ||
                     auxSum + auxNeed <= prob.maxAux);
        if (!fits && nodes > 0) {
            ++current;
            ops = 0;
            auxSum = 0;
            nodes = 0;
            extSrcs.clear();
            merged.clear();
            for (int s : preds[idx])
                merged.insert(s);
        }
        sol.assign[idx] = current;
        ops += prob.opCost[idx];
        auxSum += auxNeed;
        ++nodes;
        extSrcs = std::move(merged);
    }
    sol.numPartitions = prob.n ? current + 1 : 0;
    bool feasible = true;
    sol.cost = partitionCost(prob, sol.assign, &feasible);
    sol.feasible = feasible;
    return sol;
}

// ---------------------------------------------------------------------------
// Graph rewriting
// ---------------------------------------------------------------------------

namespace {

/** True for lops that occupy a PCU pipeline stage. */
bool
countable(const dfg::LOp &lop)
{
    if (lop.isStreamIn())
        return false;
    return lop.kind != ir::OpKind::Const && lop.kind != ir::OpKind::Iter;
}

/** Rewrites one oversized unit according to `assign`. */
void
rewriteUnit(dfg::Vudfg &g, VuId uid, const std::vector<int> &nodeOf,
            const std::vector<int> &lopOfNode,
            const std::vector<int> &assign, int parts,
            const CompilerOptions &opt)
{
    (void)lopOfNode;
    // Snapshot the original unit.
    dfg::VUnit orig = g.unit(uid);
    const int n = static_cast<int>(orig.lops.size());
    const int firing = orig.chainSize();
    const int vec = orig.vec();

    // Order partitions topologically (cross-partition edges must go
    // from lower to higher rank so forwarding streams are forward).
    std::vector<std::set<int>> psucc(parts);
    std::vector<int> pindeg(parts, 0);
    for (int i = 0; i < n; ++i) {
        if (nodeOf[i] < 0)
            continue;
        const auto &lop = orig.lops[i];
        for (int operand : {lop.a, lop.b, lop.c}) {
            if (operand < 0 || nodeOf[operand] < 0)
                continue;
            int a = assign[nodeOf[operand]], b = assign[nodeOf[i]];
            if (a != b && psucc[a].insert(b).second)
                ++pindeg[b];
        }
    }
    std::vector<int> firstPos(parts, INT32_MAX);
    for (int i = 0; i < n; ++i)
        if (nodeOf[i] >= 0)
            firstPos[assign[nodeOf[i]]] =
                std::min(firstPos[assign[nodeOf[i]]], i);
    std::vector<int> rank(parts, -1);
    {
        auto cmp = [&](int a, int b) { return firstPos[a] > firstPos[b]; };
        std::priority_queue<int, std::vector<int>, decltype(cmp)> ready(
            cmp);
        for (int i = 0; i < parts; ++i)
            if (pindeg[i] == 0)
                ready.push(i);
        int next = 0;
        while (!ready.empty()) {
            int cur = ready.top();
            ready.pop();
            rank[cur] = next++;
            for (int s : psucc[cur])
                if (--pindeg[s] == 0)
                    ready.push(s);
        }
        SARA_ASSERT(next == parts, "cyclic partition assignment");
    }

    // Create sub-units (index 0 reuses the original id).
    std::vector<VuId> units(parts);
    units[0] = uid;
    for (int k = 1; k < parts; ++k)
        units[k] = g.addUnit(VuKind::Compute,
                             orig.name + "_p" + std::to_string(k));
    for (int k = 0; k < parts; ++k) {
        auto &u = g.unit(units[k]);
        u.counters = orig.counters;
        if (k == 0) {
            u.lops.clear();
            u.inputs.clear();
            u.outputs.clear();
        }
    }

    // Map original lop -> (unit rank, new index); fill per-unit lops.
    std::vector<std::pair<int, int>> newLoc(n, {-1, -1});
    // Per unit: map of original input binding -> new binding index.
    std::vector<std::map<int, int>> bindingMap(parts);

    // Control inputs (Predicate/Bound/WhileCond) replicate to every
    // sub-unit; Operand inputs follow their StreamIn node.
    // First, figure out which partition each original input feeds.
    std::vector<int> operandPart(orig.inputs.size(), -1);
    for (int i = 0; i < n; ++i) {
        if (orig.lops[i].isStreamIn() && nodeOf[i] >= 0)
            operandPart[orig.lops[i].input] = rank[assign[nodeOf[i]]];
    }

    auto addInputTo = [&](int partRank, const dfg::InputBinding &ib,
                          bool retarget, StreamId sid) {
        auto &u = g.unit(units[partRank]);
        dfg::InputBinding nb = ib;
        nb.stream = sid;
        u.inputs.push_back(nb);
        if (retarget)
            g.stream(sid).dst = units[partRank];
        return static_cast<int>(u.inputs.size() - 1);
    };

    // Replicate/move original inputs.
    for (size_t bi = 0; bi < orig.inputs.size(); ++bi) {
        const auto &ib = orig.inputs[bi];
        if (ib.role == InputRole::Operand) {
            int pr = operandPart[bi];
            SARA_ASSERT(pr >= 0, "operand input without StreamIn node");
            int nbi = addInputTo(pr, ib, true, ib.stream);
            bindingMap[pr][static_cast<int>(bi)] = nbi;
        } else {
            // Control input: original stream to rank 0, clones to rest.
            int nbi = addInputTo(0, ib, true, ib.stream);
            bindingMap[0][static_cast<int>(bi)] = nbi;
            const auto &os = g.stream(ib.stream);
            for (int r = 1; r < parts; ++r) {
                StreamId sid = g.addStream(os.kind, os.src, units[r],
                                           os.name + "_p" +
                                               std::to_string(r));
                auto &s = g.stream(sid);
                s.pushLevel = os.pushLevel;
                s.popLevel = os.popLevel;
                s.vec = os.vec;
                s.depth = os.depth;
                s.initTokens = os.initTokens;
                // Source replicates its output binding.
                for (const auto &ob : g.unit(os.src).outputs) {
                    if (ob.stream == os.id) {
                        g.unit(os.src).outputs.push_back(
                            {sid, ob.level, ob.lop});
                        break;
                    }
                }
                int rbi = static_cast<int>(
                    g.unit(units[r]).inputs.size());
                g.unit(units[r]).inputs.push_back(
                    {sid, ib.role, ib.level, ib.expectTrue});
                bindingMap[r][static_cast<int>(bi)] = rbi;
            }
        }
    }

    // Fix counter bound binding indices per unit.
    for (int r = 0; r < parts; ++r) {
        auto &u = g.unit(units[r]);
        for (auto &c : u.counters) {
            auto remap = [&](int &slot) {
                if (slot < 0)
                    return;
                auto it = bindingMap[r].find(slot);
                SARA_ASSERT(it != bindingMap[r].end(),
                            "lost counter bound binding");
                slot = it->second;
            };
            remap(c.minInput);
            remap(c.stepInput);
            remap(c.maxInput);
            remap(c.whileCondInput);
        }
    }

    // Forwarding streams for cross-partition values.
    // forwarded[(origLop, partRank)] -> local index.
    std::map<std::pair<int, int>, int> forwarded;
    auto valueIn = [&](int origLop, int partRank) -> int {
        auto &[locRank, locIdx] = newLoc[origLop];
        if (locRank == partRank)
            return locIdx;
        const auto &src = orig.lops[origLop];
        // Rematerialize free sources locally.
        if (!src.isStreamIn() && (src.kind == ir::OpKind::Const ||
                                  src.kind == ir::OpKind::Iter)) {
            auto key = std::make_pair(origLop, partRank);
            auto it = forwarded.find(key);
            if (it != forwarded.end())
                return it->second;
            auto &u = g.unit(units[partRank]);
            dfg::LOp copy = src;
            copy.a = copy.b = copy.c = -1;
            u.lops.push_back(copy);
            int idx = static_cast<int>(u.lops.size() - 1);
            forwarded[key] = idx;
            return idx;
        }
        SARA_ASSERT(locRank >= 0, "cross-partition use before def");
        auto key = std::make_pair(origLop, partRank);
        auto it = forwarded.find(key);
        if (it != forwarded.end())
            return it->second;
        // Per-firing forwarding stream.
        StreamId sid = g.addStream(
            StreamKind::Data, units[locRank], units[partRank],
            orig.name + "_fw" + std::to_string(origLop) + "_" +
                std::to_string(partRank));
        auto &s = g.stream(sid);
        s.pushLevel = firing;
        s.popLevel = firing;
        s.vec = vec;
        s.depth = opt.spec.pcu.fifoDepth;
        g.unit(units[locRank]).outputs.push_back({sid, firing, locIdx});
        auto &du = g.unit(units[partRank]);
        du.inputs.push_back(
            {sid, InputRole::Operand, firing, true});
        dfg::LOp lop;
        lop.kind = ir::OpKind::Const;
        lop.input = static_cast<int>(du.inputs.size() - 1);
        du.lops.push_back(lop);
        int idx = static_cast<int>(du.lops.size() - 1);
        forwarded[key] = idx;
        return idx;
    };

    // Emit lops partition by partition, in original order.
    for (int r = 0; r < parts; ++r) {
        for (int i = 0; i < n; ++i) {
            if (nodeOf[i] < 0 || rank[assign[nodeOf[i]]] != r)
                continue;
            const auto &src = orig.lops[i];
            auto &u = g.unit(units[r]);
            dfg::LOp lop = src;
            if (src.isStreamIn()) {
                auto it = bindingMap[r].find(src.input);
                SARA_ASSERT(it != bindingMap[r].end(),
                            "StreamIn binding not mapped");
                lop.input = it->second;
            } else {
                if (src.a >= 0)
                    lop.a = valueIn(src.a, r);
                if (src.b >= 0)
                    lop.b = valueIn(src.b, r);
                if (src.c >= 0)
                    lop.c = valueIn(src.c, r);
            }
            u.lops.push_back(lop);
            newLoc[i] = {r, static_cast<int>(u.lops.size() - 1)};
        }
    }
    // Free lops (Const/Iter not in the node graph) are materialized on
    // demand by valueIn; resolve remaining references lazily now.
    for (int i = 0; i < n; ++i) {
        if (newLoc[i].first >= 0)
            continue;
        // Unassigned free lop: only legal if no one references it
        // anymore (operands were rematerialized); outputs may still
        // reference it though.
    }

    // Re-home original outputs to the partition holding the source.
    for (const auto &ob : orig.outputs) {
        int srcLop = ob.lop;
        int r = 0;
        int idx = -1;
        if (srcLop >= 0) {
            if (newLoc[srcLop].first < 0) {
                // Free lop never emitted: materialize in rank 0.
                idx = valueIn(srcLop, 0);
                r = 0;
            } else {
                r = newLoc[srcLop].first;
                idx = newLoc[srcLop].second;
            }
        }
        auto &u = g.unit(units[r]);
        u.outputs.push_back({ob.stream, ob.level, idx});
        g.stream(ob.stream).src = units[r];
    }
}

} // namespace

PartitionReport
partitionCompute(dfg::Vudfg &graph, const CompilerOptions &options)
{
    PartitionReport report;
    const auto &pcu = options.spec.pcu;
    size_t unitCount = graph.numUnits(); // New units are already legal.
    for (size_t ui = 0; ui < unitCount; ++ui) {
        VuId uid{ui};
        if (graph.unit(uid).kind != VuKind::Compute)
            continue;

        // Build the abstract problem: nodes = countable + StreamIn
        // lops (Const/Iter are rematerialized freely).
        const auto &u = graph.unit(uid);
        int countOps = 0;
        for (const auto &lop : u.lops)
            if (countable(lop))
                ++countOps;
        if (countOps <= pcu.stages)
            continue;

        std::vector<int> nodeOf(u.lops.size(), -1);
        std::vector<int> lopOfNode;
        for (size_t i = 0; i < u.lops.size(); ++i) {
            const auto &lop = u.lops[i];
            if (countable(lop) || lop.isStreamIn()) {
                nodeOf[i] = static_cast<int>(lopOfNode.size());
                lopOfNode.push_back(static_cast<int>(i));
            }
        }
        PartitionProblem prob;
        prob.n = static_cast<int>(lopOfNode.size());
        prob.maxOps = pcu.stages;
        prob.maxIn = pcu.maxIn;
        prob.maxOut = pcu.maxOut;
        prob.alpha = 1.0 / std::min(pcu.maxIn, pcu.maxOut);
        prob.opCost.resize(prob.n);
        for (int i = 0; i < prob.n; ++i)
            prob.opCost[i] =
                countable(u.lops[lopOfNode[i]]) ? 1 : 0;
        for (size_t i = 0; i < u.lops.size(); ++i) {
            if (nodeOf[i] < 0)
                continue;
            const auto &lop = u.lops[i];
            for (int operand : {lop.a, lop.b, lop.c})
                if (operand >= 0 && nodeOf[operand] >= 0)
                    prob.edges.push_back(
                        {nodeOf[operand], nodeOf[i]});
        }

        PartitionSolution sol;
        if (options.partitioner == PartitionAlgo::Solver) {
            PartitionSolution warm =
                partitionTraversal(prob, PartitionAlgo::DfsFwd);
            int totalOps = 0;
            for (int c : prob.opCost)
                totalOps += c;
            solver::AnnealOptions ao;
            ao.iterations = options.solverIterations;
            ao.seed = options.solverSeed;
            ao.lowerBound = (totalOps + prob.maxOps - 1) / prob.maxOps;
            auto res = solver::anneal(
                prob.n, warm.assign,
                [&](const std::vector<int> &a, bool *f) {
                    return partitionCost(prob, a, f);
                },
                ao);
            sol.assign = res.feasible ? res.assign : warm.assign;
            sol.numPartitions = 0;
            for (int a : sol.assign)
                sol.numPartitions = std::max(sol.numPartitions, a + 1);
            sol.cost = res.feasible ? res.cost : warm.cost;
            sol.feasible = res.feasible || warm.feasible;
        } else {
            sol = partitionTraversal(prob, options.partitioner);
        }
        SARA_ASSERT(sol.feasible, "infeasible partitioning for unit ",
                    graph.unit(uid).name);

        rewriteUnit(graph, uid, nodeOf, lopOfNode, sol.assign,
                    sol.numPartitions, options);
        ++report.unitsPartitioned;
        report.partitionsCreated += sol.numPartitions - 1;
    }
    graph.validate();
    return report;
}

} // namespace sara::compiler
