#ifndef SARA_COMPILER_RETIME_H
#define SARA_COMPILER_RETIME_H

/**
 * @file
 * Retiming-buffer insertion (paper §III-B1a, §III-C(c)): imbalanced
 * reconvergent dataflow paths stall the pipeline when the short path's
 * FIFO fills before the long path delivers. This pass deepens stream
 * FIFOs to cover the measured slack and accounts the cost in retiming
 * units — chained PCU FIFOs by default, or PMU scratchpads when
 * retime-m is enabled (much cheaper per element).
 */

#include "compiler/options.h"
#include "dfg/vudfg.h"

namespace sara::compiler {

struct RetimeReport
{
    int streamsDeepened = 0;
    int retimeUnits = 0;
    int retimePcus = 0;
    int retimePmus = 0;
};

/** Deepen imbalanced streams; must run after PnR (uses latencies). */
RetimeReport retimeStreams(dfg::Vudfg &graph,
                           const CompilerOptions &options);

} // namespace sara::compiler

#endif // SARA_COMPILER_RETIME_H
