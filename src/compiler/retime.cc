#include "compiler/retime.h"

#include <algorithm>
#include <deque>

#include "support/logging.h"

namespace sara::compiler {

using dfg::InputRole;
using dfg::StreamKind;

RetimeReport
retimeStreams(dfg::Vudfg &graph, const CompilerOptions &options)
{
    RetimeReport report;
    const size_t n = graph.numUnits();

    // Role lookup per stream (from its destination binding).
    std::vector<InputRole> role(graph.numStreams(), InputRole::Operand);
    for (const auto &u : graph.units())
        for (const auto &in : u.inputs)
            role[in.stream.index()] = in.role;

    auto considered = [&](const dfg::Stream &s) {
        if (s.kind != StreamKind::Data)
            return false;
        if (s.src == s.dst)
            return false; // do-while self feedback.
        if (role[s.id.index()] == InputRole::WhileCond)
            return false; // Round-boundary feedback.
        return true;
    };

    // Longest-arrival delay per unit over the forward data DAG.
    std::vector<int> indeg(n, 0);
    for (const auto &s : graph.streams())
        if (considered(s))
            ++indeg[s.dst.index()];
    std::deque<size_t> ready;
    for (size_t i = 0; i < n; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    std::vector<int64_t> delay(n, 0);
    size_t seen = 0;
    while (!ready.empty()) {
        size_t cur = ready.front();
        ready.pop_front();
        ++seen;
        for (const auto &s : graph.streams()) {
            if (!considered(s) || s.src.index() != cur)
                continue;
            size_t d = s.dst.index();
            delay[d] = std::max(delay[d], delay[cur] + s.latency + 1);
            if (--indeg[d] == 0)
                ready.push_back(d);
        }
    }
    if (seen != n) {
        warn("retiming skipped: data-flow graph has a cycle");
        return report;
    }

    // Slack per stream: how much earlier than the consumer's critical
    // input this stream's data arrives. That many elements can pile up
    // and must be buffered for a stall-free pipeline.
    const int fifoDepth = options.spec.pcu.fifoDepth;
    const int pcuRetimeCapacity =
        options.spec.pcu.stages * options.spec.pcu.fifoDepth;
    const int64_t pmuRetimeCapacity =
        options.spec.pmu.capacityWords /
        std::max(1, options.spec.pcu.lanes);
    for (auto &s : graph.streams()) {
        if (!considered(s))
            continue;
        int64_t arrive = delay[s.src.index()] + s.latency + 1;
        int64_t slack = delay[s.dst.index()] - arrive;
        if (slack <= s.depth)
            continue;
        int64_t extra = slack - fifoDepth;
        s.depth = static_cast<int>(slack + fifoDepth);
        ++report.streamsDeepened;
        if (extra > 0) {
            if (options.enableRetimeM) {
                int units = static_cast<int>(
                    (extra + pmuRetimeCapacity - 1) / pmuRetimeCapacity);
                report.retimePmus += units;
                report.retimeUnits += units;
            } else {
                int units = static_cast<int>(
                    (extra + pcuRetimeCapacity - 1) / pcuRetimeCapacity);
                report.retimePcus += units;
                report.retimeUnits += units;
            }
        }
    }
    return report;
}

} // namespace sara::compiler
