#include "compiler/cmmc.h"

#include <algorithm>

#include "support/digraph.h"
#include "support/logging.h"

namespace sara::compiler {

using namespace ir;

bool
DepGraph::hasEdge(size_t src, size_t dst, bool backward) const
{
    for (const auto &e : edges)
        if (e.src == src && e.dst == dst && e.backward == backward)
            return true;
    return false;
}

DepGraph
buildDepGraph(const Program &p, const TensorAccess &ta,
              const DepGraphOptions &options)
{
    const auto &acc = ta.accessors;
    DepGraph g;
    g.n = acc.size();

    auto shardOf = [&](size_t i) -> int {
        if (options.staticShard.empty())
            return 0;
        return options.staticShard[i];
    };
    auto sameShardPossible = [&](size_t i, size_t j) {
        int si = shardOf(i), sj = shardOf(j);
        if (si < 0 || sj < 0)
            return true; // A dynamic port touches every shard.
        return si == sj;
    };

    for (size_t j = 0; j < acc.size(); ++j) {
        for (size_t i = 0; i < j; ++i) {
            const Accessor &a = acc[i];
            const Accessor &b = acc[j];
            bool conflict = a.isWrite || b.isWrite;
            bool rar = !a.isWrite && !b.isWrite && options.enforceRar &&
                       sameShardPossible(i, j);
            if (options.fullSerialize) {
                // Vanilla PC: every consecutive accessor pair is
                // ordered via the hierarchical FSM.
                if (j == i + 1) {
                    g.edges.push_back({i, j, false, CtrlId{}, 1});
                    CtrlId loop = innermostCommonLoop(p, a.block, b.block);
                    if (loop.valid())
                        g.edges.push_back({j, i, true, loop, 1});
                }
                continue;
            }
            if (!conflict && !rar)
                continue;
            bool disjoint = conflict && !rar && !mayAlias(p, a, b);
            if (disjoint)
                continue;
            // Forward dependency unless the two accesses are mutually
            // exclusive for the same iteration (different clauses of a
            // common branch, Fig. 5b).
            if (!exclusiveClauses(p, a.block, b.block))
                g.edges.push_back({i, j, false, CtrlId{}, 1});
            // Backward LCD on the innermost common loop: accessor i in
            // the next iteration must wait for accessor j in this one.
            // RAR LCDs are a port-ordering constraint and apply
            // regardless of addresses; data LCDs are pruned when the
            // addresses provably never collide across iterations.
            CtrlId loop = innermostCommonLoop(p, a.block, b.block);
            if (loop.valid() &&
                (rar || lcdMayAlias(p, a, b, loop)))
                g.edges.push_back({j, i, true, loop, 1});
        }
    }
    return g;
}

ReduceStats
reduceDepGraph(DepGraph &g)
{
    ReduceStats stats;

    // --- Pass 1: transitive reduction of the forward DAG. ---
    Digraph fwd(g.n);
    for (const auto &e : g.edges)
        if (!e.backward)
            fwd.addEdge(e.src, e.dst);
    size_t before = fwd.numEdges();
    fwd.transitiveReduction();
    stats.forwardRemoved = static_cast<int>(before - fwd.numEdges());
    std::vector<DepEdge> kept;
    for (const auto &e : g.edges) {
        if (e.backward || fwd.hasEdge(e.src, e.dst))
            kept.push_back(e);
    }
    // Deduplicate forward edges that appeared multiple times.
    std::vector<DepEdge> dedup;
    for (const auto &e : kept) {
        bool dup = false;
        for (const auto &k : dedup)
            if (k.src == e.src && k.dst == e.dst &&
                k.backward == e.backward && k.loop == e.loop)
                dup = true;
        if (!dup)
            dedup.push_back(e);
    }
    stats.forwardRemoved +=
        static_cast<int>(kept.size() - dedup.size());
    g.edges = std::move(dedup);

    // --- Pass 2: backward-edge pruning. A backward edge (b -> a,
    // loop L, credit X) is subsumed when an alternative path from b to
    // a uses forward edges plus exactly one other backward edge with
    // the same loop and credit (paper §III-A3b). ---
    auto forwardReach = [&](size_t from, size_t to) {
        if (from == to)
            return true;
        std::vector<bool> seen(g.n, false);
        std::vector<size_t> stack{from};
        seen[from] = true;
        while (!stack.empty()) {
            size_t cur = stack.back();
            stack.pop_back();
            if (cur == to)
                return true;
            for (const auto &e : g.edges) {
                if (e.backward || e.src != cur)
                    continue;
                if (!seen[e.dst]) {
                    seen[e.dst] = true;
                    stack.push_back(e.dst);
                }
            }
        }
        return false;
    };

    for (size_t i = 0; i < g.edges.size(); ++i) {
        DepEdge &e = g.edges[i];
        if (!e.backward || e.pruned)
            continue;
        for (size_t j = 0; j < g.edges.size(); ++j) {
            if (j == i)
                continue;
            const DepEdge &alt = g.edges[j];
            if (!alt.backward || alt.pruned || alt.loop != e.loop ||
                alt.credit != e.credit)
                continue;
            if (forwardReach(e.src, alt.src) &&
                forwardReach(alt.dst, e.dst)) {
                e.pruned = true;
                ++stats.backwardRemoved;
                break;
            }
        }
    }
    std::vector<DepEdge> remaining;
    for (const auto &e : g.edges)
        if (!e.pruned)
            remaining.push_back(e);
    g.edges = std::move(remaining);
    return stats;
}

} // namespace sara::compiler
