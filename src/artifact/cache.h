#ifndef SARA_ARTIFACT_CACHE_H
#define SARA_ARTIFACT_CACHE_H

/**
 * @file
 * Content-addressed on-disk compile cache plus the cache-aware compile
 * front-end the runtime and batch runner share.
 *
 * Layout: one `<key>.sara` artifact per compiled (workload IR,
 * CompilerOptions, arch config) triple under the cache directory
 * (default `~/.sara-cache`, overridable via SARA_CACHE_DIR or
 * `--cache-dir`). Keys are SHA-256 content hashes, so a changed input
 * or a bumped format version simply misses — no explicit invalidation
 * protocol. Corrupt entries are detected by the artifact checksum,
 * counted, quarantined (renamed to `<key>.sara.quarantine`, preserving
 * the evidence) and treated as misses.
 *
 * Crash safety: stores publish via unique-temp + fsync + atomic rename
 * (see writeArtifactBytes), and recover() sweeps the directory at
 * daemon startup — stale temp files from a crashed writer are removed,
 * torn or corrupt entries are quarantined, intact entries survive. A
 * kill -9 at any point costs at most the in-flight entry.
 *
 * Telemetry (Registry::global(), when enabled):
 *   artifact.cache.hit / .miss / .store / .corrupt / .evict
 *   artifact.cache.quarantined / .recovered / .tmp_removed
 *   artifact.cache.fault.enospc / .fault.short_write (injected)
 *   jobs.compile.deduped (CachingCompiler in-flight dedup)
 *
 * CachingCompiler is thread-safe: concurrent compiles of *different*
 * keys proceed in parallel; concurrent compiles of the *same* key are
 * deduplicated — one thread compiles, the rest block on its result.
 */

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "artifact/artifact.h"
#include "fault/fault.h"

namespace sara::artifact {

/** On-disk cache of compiled artifacts keyed by content hash. */
class ArtifactCache
{
  public:
    /**
     * Open (and create if needed) the cache at `dir`. Empty `dir`
     * resolves to $SARA_CACHE_DIR, then $HOME/.sara-cache, then
     * ./.sara-cache. `maxBytes` bounds the directory; exceeding it on
     * store evicts least-recently-used entries (0 = unbounded).
     */
    explicit ArtifactCache(std::string dir = "",
                           uint64_t maxBytes = 4ULL << 30);

    const std::string &dir() const { return dir_; }

    /** Filesystem path an artifact with `key` would live at. */
    std::string pathFor(const std::string &key) const;

    /** Where a corrupt entry for `key` is parked (never served,
     *  never silently deleted — kept for post-mortem). */
    std::string quarantinePathFor(const std::string &key) const;

    /**
     * Look up `key`. Returns the decoded result on a hit; nullopt on
     * miss. Corrupt or version-skewed entries are quarantined and
     * counted as misses — the caller recompiles and re-stores.
     */
    std::optional<compiler::CompileResult>
    lookup(const std::string &key);

    /** Persist a compiled result under `key` (best-effort: failures
     *  warn and are counted, never thrown — the compile already
     *  succeeded and the caller holds the result). */
    void store(const std::string &key, const compiler::CompileResult &r);

    /** Whether `key` is present (no decode, no counters). */
    bool contains(const std::string &key) const;

    /**
     * Evict least-recently-used entries until the directory is under
     * `maxBytes`. Returns the number of entries removed.
     *
     * Entries opened by lookup() within the trim window are held —
     * skipped even when they are the LRU candidates — so a concurrent
     * cache hit can never have its file deleted between the existence
     * probe and the read (which would surface as a spurious corrupt
     * entry). The directory may transiently exceed `maxBytes` by the
     * held entries; they become evictable once the window expires.
     */
    int trim(uint64_t maxBytes);

    /** Trim hold window in milliseconds (default 10s). Tests shrink it
     *  to exercise expiry; 0 disables the hold entirely. */
    void setTrimWindowMs(double ms) { trimWindowMs_ = ms; }

    /** Remove every cache entry, including quarantined entries and
     *  stale temp files. Returns the number removed. */
    int clear();

    /** Outcome of a startup recovery sweep. */
    struct RecoveryStats
    {
        int scanned = 0;     ///< `.sara` entries examined.
        int ok = 0;          ///< Entries that verified clean.
        int quarantined = 0; ///< Torn/corrupt entries parked.
        int tmpRemoved = 0;  ///< Stale writer temp files deleted.
    };

    /**
     * Startup recovery sweep (crash-only discipline: the recovery path
     * IS the startup path). Verifies every `.sara` entry end to end —
     * container magic, version, checksum, stored-key/filename match —
     * quarantines the ones that fail instead of serving or silently
     * deleting them, and removes stale `*.sara.tmp.*` files left by a
     * writer that died before publishing. Assumes no concurrent writer
     * (single daemon instance per cache directory); sarad calls this
     * once before accepting connections.
     */
    RecoveryStats recover();

    /** Number of quarantined entries currently parked in the
     *  directory (surfaceable in the daemon's stats endpoint). */
    int quarantinedCount() const;

    /** Attach a fault injector (may be null). When set:
     *  - lookups with an artifact-flip fault planned for the key read
     *    the container bytes, flip one byte at the injector-chosen
     *    offset, and feed the damaged buffer to the normal unpack
     *    path — exercising the quarantine + recompile fallback;
     *  - stores with a disk-enospc fault fail as a counted store
     *    failure (the compile result is still returned to callers);
     *  - stores with a disk-short-write fault publish a deliberately
     *    truncated file under the final name, bypassing the atomic
     *    writer — the torn entry must be caught by lookup validation
     *    or the recovery sweep, never served.
     *  Not owned; must outlive the cache. */
    void setFaultInjector(const fault::FaultInjector *inj)
    {
        inj_ = inj;
    }

  private:
    void noteOpen(const std::string &key);
    bool recentlyOpened(const std::string &key) const;

    std::string dir_;
    uint64_t maxBytes_;
    const fault::FaultInjector *inj_ = nullptr;

    // Keys lookup() opened recently, held back from trim eviction.
    mutable std::mutex openMu_;
    std::map<std::string, std::chrono::steady_clock::time_point>
        recentOpens_;
    double trimWindowMs_ = 10000.0;
};

/**
 * Cache-aware, deduplicating compile service. Stateless users call
 * compile(); everything else (key derivation, cache probe, in-flight
 * dedup, store-back) is handled here.
 */
class CachingCompiler
{
  public:
    /** `cache` may be null (dedup-only mode). Not owned. */
    explicit CachingCompiler(ArtifactCache *cache) : cache_(cache) {}

    struct Compiled
    {
        compiler::CompileResult result;
        std::string key;
        bool fromCache = false; ///< Served from disk, not compiled.
        bool deduped = false;   ///< Waited on an identical in-flight job.
    };

    /** Compile (or fetch) `input` under `options`. Thread-safe. */
    Compiled compile(const ir::Program &input,
                     const compiler::CompilerOptions &options);

    ArtifactCache *cache() const { return cache_; }

    /** Attach a fault injector (may be null). Compile-fault plans make
     *  compile() throw support::TransientError for the first `count`
     *  attempts per key — the hook the jobs runner's retry-with-backoff
     *  is tested against. Not owned; must outlive the compiler. */
    void setFaultInjector(const fault::FaultInjector *inj)
    {
        inj_ = inj;
    }

  private:
    using Shared = std::shared_ptr<Compiled>;

    ArtifactCache *cache_;
    const fault::FaultInjector *inj_ = nullptr;
    std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<Shared>>
        inflight_;
};

} // namespace sara::artifact

#endif // SARA_ARTIFACT_CACHE_H
