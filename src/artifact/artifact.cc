#include "artifact/artifact.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <unistd.h>

#include "support/hash.h"
#include "support/logging.h"

namespace sara::artifact {

using namespace ir;
using namespace dfg;

namespace {

constexpr char kMagic[8] = {'S', 'A', 'R', 'A', 'A', 'R', 'T', '1'};

void
encodeBound(Encoder &e, const Bound &b)
{
    e.boolean(b.isConst);
    e.i64(b.cval);
    e.i32(b.op.v);
}

Bound
decodeBound(Decoder &d)
{
    Bound b;
    b.isConst = d.boolean();
    b.cval = d.i64();
    b.op = OpId(d.i32());
    return b;
}

void
encodeIdVec(Encoder &e, const std::vector<CtrlId> &v)
{
    e.u32(static_cast<uint32_t>(v.size()));
    for (CtrlId id : v)
        e.i32(id.v);
}

std::vector<CtrlId>
decodeCtrlIdVec(Decoder &d)
{
    size_t n = d.count(4);
    std::vector<CtrlId> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(CtrlId(d.i32()));
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// ir::Program
// ---------------------------------------------------------------------------

void
encodeProgram(Encoder &e, const Program &p)
{
    e.u32(static_cast<uint32_t>(p.numTensors()));
    for (size_t i = 0; i < p.numTensors(); ++i) {
        const Tensor &t = p.tensor(TensorId(i));
        e.str(t.name);
        e.u8(static_cast<uint8_t>(t.space));
        e.i64(t.size);
    }

    e.u32(static_cast<uint32_t>(p.numCtrls()));
    for (size_t i = 0; i < p.numCtrls(); ++i) {
        const CtrlNode &c = p.ctrl(CtrlId(i));
        e.u8(static_cast<uint8_t>(c.kind));
        e.i32(c.parent.v);
        e.str(c.name);
        encodeIdVec(e, c.children);
        encodeIdVec(e, c.elseChildren);
        encodeBound(e, c.min);
        encodeBound(e, c.step);
        encodeBound(e, c.max);
        e.i32(c.par);
        e.i32(c.vec);
        e.i32(c.cond.v);
        e.u32(static_cast<uint32_t>(c.ops.size()));
        for (OpId o : c.ops)
            e.i32(o.v);
    }

    e.u32(static_cast<uint32_t>(p.numOps()));
    for (size_t i = 0; i < p.numOps(); ++i) {
        const Op &o = p.op(OpId(i));
        e.u8(static_cast<uint8_t>(o.kind));
        e.i32(o.block.v);
        e.u32(static_cast<uint32_t>(o.operands.size()));
        for (OpId operand : o.operands)
            e.i32(operand.v);
        e.f64(o.cval);
        e.i32(o.ctrl.v);
        e.i32(o.tensor.v);
    }
}

Program
decodeProgram(Decoder &d)
{
    Program p;

    size_t numTensors = d.count(13);
    for (size_t i = 0; i < numTensors; ++i) {
        std::string name = d.str();
        auto space = static_cast<MemSpace>(d.u8());
        if (space != MemSpace::OnChip && space != MemSpace::Dram)
            throw ArtifactError("artifact: bad tensor space");
        int64_t size = d.i64();
        if (size <= 0)
            throw ArtifactError("artifact: bad tensor size");
        p.addTensor(name, space, size);
    }

    size_t numCtrls = d.count(4);
    if (numCtrls == 0)
        throw ArtifactError("artifact: program without a root");
    // Pass 1: create the nodes (the constructor made the root; child
    // nodes always have ids greater than their parent's, so creation
    // in id order keeps addCtrl's parent check satisfied).
    struct RawCtrl
    {
        std::vector<CtrlId> children, elseChildren;
        Bound min, step, max;
        int par, vec;
        OpId cond;
        std::vector<OpId> ops;
    };
    std::vector<RawCtrl> raw(numCtrls);
    for (size_t i = 0; i < numCtrls; ++i) {
        auto kind = static_cast<CtrlKind>(d.u8());
        if (kind > CtrlKind::Block)
            throw ArtifactError("artifact: bad ctrl kind");
        CtrlId parent{d.i32()};
        std::string name = d.str();
        if (i == 0) {
            p.ctrl(p.root()).kind = kind;
            p.ctrl(p.root()).name = name;
        } else {
            if (!parent.valid() ||
                parent.index() >= i) // Parents precede children.
                throw ArtifactError("artifact: bad ctrl parent");
            p.addCtrl(kind, parent, name);
        }
        RawCtrl &rc = raw[i];
        rc.children = decodeCtrlIdVec(d);
        rc.elseChildren = decodeCtrlIdVec(d);
        rc.min = decodeBound(d);
        rc.step = decodeBound(d);
        rc.max = decodeBound(d);
        rc.par = d.i32();
        rc.vec = d.i32();
        rc.cond = OpId(d.i32());
        size_t nops = d.count(4);
        rc.ops.reserve(nops);
        for (size_t o = 0; o < nops; ++o)
            rc.ops.push_back(OpId(d.i32()));
    }

    size_t numOps = d.count(25);
    for (size_t i = 0; i < numOps; ++i) {
        auto kind = static_cast<OpKind>(d.u8());
        if (kind > OpKind::RedMul)
            throw ArtifactError("artifact: bad op kind");
        CtrlId block{d.i32()};
        if (!block.valid() || block.index() >= numCtrls ||
            !p.ctrl(block).isLeaf())
            throw ArtifactError("artifact: op outside a hyperblock");
        size_t noperands = d.count(4);
        if (static_cast<int>(noperands) != opArity(kind))
            throw ArtifactError("artifact: op arity mismatch");
        std::vector<OpId> operands;
        operands.reserve(noperands);
        for (size_t o = 0; o < noperands; ++o)
            operands.push_back(OpId(d.i32()));
        OpId id = p.addOp(kind, block, std::move(operands));
        Op &op = p.op(id);
        op.cval = d.f64();
        op.ctrl = CtrlId(d.i32());
        op.tensor = TensorId(d.i32());
    }

    // Pass 2: restore the exact recorded tree shape. addCtrl/addOp
    // appended to children/ops in id order; the recorded lists carry
    // the true program order (clones and combine blocks are spliced,
    // else-clauses live in elseChildren).
    for (size_t i = 0; i < numCtrls; ++i) {
        CtrlNode &c = p.ctrl(CtrlId(i));
        RawCtrl &rc = raw[i];
        for (CtrlId child : rc.children)
            if (!child.valid() || child.index() >= numCtrls)
                throw ArtifactError("artifact: bad child id");
        for (CtrlId child : rc.elseChildren)
            if (!child.valid() || child.index() >= numCtrls)
                throw ArtifactError("artifact: bad else-child id");
        for (OpId o : rc.ops)
            if (!o.valid() || o.index() >= numOps)
                throw ArtifactError("artifact: bad block op id");
        c.children = std::move(rc.children);
        c.elseChildren = std::move(rc.elseChildren);
        c.min = rc.min;
        c.step = rc.step;
        c.max = rc.max;
        c.par = rc.par;
        c.vec = rc.vec;
        c.cond = rc.cond;
        c.ops = std::move(rc.ops);
    }
    return p;
}

// ---------------------------------------------------------------------------
// dfg::Vudfg
// ---------------------------------------------------------------------------

namespace {

void
encodeCounter(Encoder &e, const Counter &c)
{
    e.i64(c.min);
    e.i64(c.step);
    e.i64(c.max);
    e.i32(c.minInput);
    e.i32(c.stepInput);
    e.i32(c.maxInput);
    e.boolean(c.isWhile);
    e.i32(c.whileCondInput);
    e.i32(c.vec);
}

Counter
decodeCounter(Decoder &d)
{
    Counter c;
    c.min = d.i64();
    c.step = d.i64();
    c.max = d.i64();
    c.minInput = d.i32();
    c.stepInput = d.i32();
    c.maxInput = d.i32();
    c.isWhile = d.boolean();
    c.whileCondInput = d.i32();
    c.vec = d.i32();
    return c;
}

} // namespace

void
encodeGraph(Encoder &e, const Vudfg &g)
{
    e.u32(static_cast<uint32_t>(g.numUnits()));
    for (const VUnit &u : g.units()) {
        e.str(u.name);
        e.u8(static_cast<uint8_t>(u.kind));
        e.u32(static_cast<uint32_t>(u.counters.size()));
        for (const Counter &c : u.counters)
            encodeCounter(e, c);
        e.u32(static_cast<uint32_t>(u.lops.size()));
        for (const LOp &l : u.lops) {
            e.u8(static_cast<uint8_t>(l.kind));
            e.i32(l.a);
            e.i32(l.b);
            e.i32(l.c);
            e.f64(l.cval);
            e.i32(l.counter);
            e.i32(l.input);
        }
        e.u32(static_cast<uint32_t>(u.inputs.size()));
        for (const InputBinding &b : u.inputs) {
            e.i32(b.stream.v);
            e.u8(static_cast<uint8_t>(b.role));
            e.i32(b.level);
            e.boolean(b.expectTrue);
        }
        e.u32(static_cast<uint32_t>(u.outputs.size()));
        for (const OutputBinding &b : u.outputs) {
            e.i32(b.stream.v);
            e.i32(b.level);
            e.i32(b.lop);
        }
        e.i32(u.tensor.v);
        e.i64(u.bufferSize);
        e.i32(u.bufferDepth);
        e.i32(u.shardIndex);
        e.i32(u.numShards);
        e.i64(u.shardInterleave);
        e.i32(u.memUnit.v);
        e.u8(static_cast<uint8_t>(u.dir));
        e.i32(u.addrLop);
        e.i32(u.addrInput);
        e.i32(u.dataInput);
        e.i32(u.respOutput);
        e.boolean(u.dynamicBank);
        e.i32(u.rotateLevel);
        e.u8(static_cast<uint8_t>(u.assigned));
        e.i32(u.placeX);
        e.i32(u.placeY);
        e.i32(u.mergedInto);
    }

    e.u32(static_cast<uint32_t>(g.numStreams()));
    for (const Stream &s : g.streams()) {
        e.str(s.name);
        e.u8(static_cast<uint8_t>(s.kind));
        e.i32(s.src.v);
        e.i32(s.dst.v);
        e.i32(s.pushLevel);
        e.i32(s.popLevel);
        e.i32(s.initTokens);
        e.i32(s.vec);
        e.i32(s.depth);
        e.i32(s.latency);
        e.i32(s.srcLop);
        e.u32(static_cast<uint32_t>(s.route.size()));
        for (const RouteLink &rl : s.route) {
            e.i32(rl.x);
            e.i32(rl.y);
            e.u8(static_cast<uint8_t>(rl.dir));
        }
    }
}

Vudfg
decodeGraph(Decoder &d)
{
    Vudfg g;
    size_t numUnits = d.count(4);
    for (size_t i = 0; i < numUnits; ++i) {
        std::string name = d.str();
        auto kind = static_cast<VuKind>(d.u8());
        if (kind > VuKind::Ag)
            throw ArtifactError("artifact: bad unit kind");
        VuId id = g.addUnit(kind, name);
        VUnit &u = g.unit(id);
        size_t nc = d.count(8);
        u.counters.reserve(nc);
        for (size_t c = 0; c < nc; ++c)
            u.counters.push_back(decodeCounter(d));
        size_t nl = d.count(25);
        u.lops.reserve(nl);
        for (size_t l = 0; l < nl; ++l) {
            LOp lop;
            lop.kind = static_cast<OpKind>(d.u8());
            if (lop.kind > OpKind::RedMul)
                throw ArtifactError("artifact: bad lop kind");
            lop.a = d.i32();
            lop.b = d.i32();
            lop.c = d.i32();
            lop.cval = d.f64();
            lop.counter = d.i32();
            lop.input = d.i32();
            u.lops.push_back(lop);
        }
        size_t ni = d.count(13);
        u.inputs.reserve(ni);
        for (size_t b = 0; b < ni; ++b) {
            InputBinding ib;
            ib.stream = StreamId(d.i32());
            ib.role = static_cast<InputRole>(d.u8());
            if (ib.role > InputRole::Gate)
                throw ArtifactError("artifact: bad input role");
            ib.level = d.i32();
            ib.expectTrue = d.boolean();
            u.inputs.push_back(ib);
        }
        size_t no = d.count(12);
        u.outputs.reserve(no);
        for (size_t b = 0; b < no; ++b) {
            OutputBinding ob;
            ob.stream = StreamId(d.i32());
            ob.level = d.i32();
            ob.lop = d.i32();
            u.outputs.push_back(ob);
        }
        u.tensor = TensorId(d.i32());
        u.bufferSize = d.i64();
        u.bufferDepth = d.i32();
        u.shardIndex = d.i32();
        u.numShards = d.i32();
        u.shardInterleave = d.i64();
        u.memUnit = VuId(d.i32());
        u.dir = static_cast<AccessDir>(d.u8());
        u.addrLop = d.i32();
        u.addrInput = d.i32();
        u.dataInput = d.i32();
        u.respOutput = d.i32();
        u.dynamicBank = d.boolean();
        u.rotateLevel = d.i32();
        u.assigned = static_cast<PuType>(d.u8());
        if (u.assigned > PuType::None)
            throw ArtifactError("artifact: bad PU assignment");
        u.placeX = d.i32();
        u.placeY = d.i32();
        u.mergedInto = d.i32();
    }

    size_t numStreams = d.count(25);
    for (size_t i = 0; i < numStreams; ++i) {
        std::string name = d.str();
        auto kind = static_cast<StreamKind>(d.u8());
        if (kind > StreamKind::Token)
            throw ArtifactError("artifact: bad stream kind");
        VuId src{d.i32()}, dst{d.i32()};
        if (!src.valid() || src.index() >= numUnits || !dst.valid() ||
            dst.index() >= numUnits)
            throw ArtifactError("artifact: stream endpoint out of range");
        StreamId id = g.addStream(kind, src, dst, name);
        Stream &s = g.stream(id);
        s.pushLevel = d.i32();
        s.popLevel = d.i32();
        s.initTokens = d.i32();
        s.vec = d.i32();
        s.depth = d.i32();
        s.latency = d.i32();
        s.srcLop = d.i32();
        size_t hops = d.count(9);
        s.route.reserve(hops);
        for (size_t h = 0; h < hops; ++h) {
            RouteLink rl;
            rl.x = static_cast<int16_t>(d.i32());
            rl.y = static_cast<int16_t>(d.i32());
            rl.dir = static_cast<LinkDir>(d.u8());
            if (rl.dir > LinkDir::South)
                throw ArtifactError("artifact: bad route direction");
            s.route.push_back(rl);
        }
    }
    return g;
}

// ---------------------------------------------------------------------------
// Options + content key
// ---------------------------------------------------------------------------

void
encodeOptions(Encoder &e, const compiler::CompilerOptions &opt)
{
    const arch::PlasticineSpec &s = opt.spec;
    e.str(s.name);
    e.i32(s.rows);
    e.i32(s.cols);
    e.i32(s.numAgs);
    e.i32(s.pcu.lanes);
    e.i32(s.pcu.stages);
    e.i32(s.pcu.maxIn);
    e.i32(s.pcu.maxOut);
    e.i32(s.pcu.fifoDepth);
    e.i32(s.pcu.maxCounters);
    e.i32(s.pmu.banks);
    e.i64(s.pmu.capacityWords);
    e.i32(s.pmu.maxIn);
    e.i32(s.pmu.maxOut);
    e.i32(s.pmu.fifoDepth);
    e.i32(s.pmu.maxCounters);
    e.i32(s.pmu.readPorts);
    e.i32(s.pmu.writePorts);
    e.i32(s.net.hopLatency);
    e.i32(s.net.ejectLatency);
    e.i32(s.net.minLatency);
    e.f64(s.clockGhz);

    e.u8(static_cast<uint8_t>(opt.control));
    e.u8(static_cast<uint8_t>(opt.partitioner));
    e.boolean(opt.enableMsr);
    e.boolean(opt.enableRtelm);
    e.boolean(opt.enableRetime);
    e.boolean(opt.enableRetimeM);
    e.boolean(opt.enableXbarElm);
    e.boolean(opt.enableMultibuffer);
    e.boolean(opt.enableControlReduction);
    e.boolean(opt.enableDuplication);
    e.i32(opt.multibufferDepth);
    e.boolean(opt.ignoreResourceLimits);
    e.boolean(opt.strictFit);
    e.u64(opt.solverIterations);
    e.u64(opt.solverSeed);
    e.u64(opt.pnrSeed);
    e.i32(opt.pnrIterations);
}

std::string
contentKey(const Program &input, const compiler::CompilerOptions &opt)
{
    Encoder e;
    e.str("sara-artifact-key");
    e.u32(kFormatVersion);
    encodeProgram(e, input);
    encodeOptions(e, opt);
    return support::Sha256::hexOf(e.buffer());
}

// ---------------------------------------------------------------------------
// CompileResult
// ---------------------------------------------------------------------------

std::string
encodeCompileResult(const compiler::CompileResult &r)
{
    Encoder e;
    encodeProgram(e, r.program);
    encodeGraph(e, r.lowering.graph);

    // unordered_map contents in sorted key order — the encoding must
    // not leak hash-table iteration order into the bytes.
    auto encodeVuMap =
        [&](const std::unordered_map<int32_t, VuId> &m) {
            std::map<int32_t, int32_t> sorted;
            for (const auto &[k, v] : m)
                sorted[k] = v.v;
            e.u32(static_cast<uint32_t>(sorted.size()));
            for (const auto &[k, v] : sorted) {
                e.i32(k);
                e.i32(v);
            }
        };
    encodeVuMap(r.lowering.blockUnit);
    encodeVuMap(r.lowering.accessEngine);

    const auto &st = r.lowering.stats;
    e.i32(st.tokens);
    e.i32(st.credits);
    e.i32(st.forwardEdgesBefore);
    e.i32(st.forwardEdgesRemoved);
    e.i32(st.backwardEdgesRemoved);
    e.i32(st.fifoLoweredTensors);
    e.i32(st.copyElidedBlocks);
    e.i32(st.multibufferedTensors);
    e.i32(st.shardedTensors);
    e.i32(st.dynamicPorts);
    e.i32(st.mergeUnits);
    e.i32(st.controllerUnits);

    e.u32(static_cast<uint32_t>(r.lowering.notes.size()));
    for (const auto &note : r.lowering.notes)
        e.str(note);

    e.i32(r.unrollStats.vectorizedLoops);
    e.i32(r.unrollStats.unrolledLoops);
    e.i32(r.unrollStats.clonesCreated);
    e.i32(r.unrollStats.combineBlocks);

    const auto &res = r.resources;
    e.i32(res.pcus);
    e.i32(res.pmus);
    e.i32(res.ags);
    e.i32(res.retimeUnits);
    e.i32(res.mergeUnits);
    e.i32(res.controllerUnits);
    e.i32(res.pcusAvail);
    e.i32(res.pmusAvail);
    e.i32(res.agsAvail);
    e.boolean(res.fits);

    // Spans: structure and pass stats are deterministic, wall-clock
    // times are not — zero the times so identical compiles produce
    // byte-identical artifacts.
    e.u32(static_cast<uint32_t>(r.phases.size()));
    for (const auto &span : r.phases) {
        e.str(span.name);
        e.i32(span.depth);
        e.u32(static_cast<uint32_t>(span.stats.size()));
        for (const auto &[k, v] : span.stats) {
            e.str(k);
            e.f64(v);
        }
    }

    e.i32(r.partitionsCreated);
    e.i32(r.unitsMerged);
    return e.take();
}

compiler::CompileResult
decodeCompileResult(const std::string &payload)
{
    Decoder d(payload);
    compiler::CompileResult r;
    r.program = decodeProgram(d);
    r.lowering.graph = decodeGraph(d);

    auto decodeVuMap = [&](std::unordered_map<int32_t, VuId> &m) {
        size_t n = d.count(8);
        for (size_t i = 0; i < n; ++i) {
            int32_t k = d.i32();
            m[k] = VuId(d.i32());
        }
    };
    decodeVuMap(r.lowering.blockUnit);
    decodeVuMap(r.lowering.accessEngine);

    auto &st = r.lowering.stats;
    st.tokens = d.i32();
    st.credits = d.i32();
    st.forwardEdgesBefore = d.i32();
    st.forwardEdgesRemoved = d.i32();
    st.backwardEdgesRemoved = d.i32();
    st.fifoLoweredTensors = d.i32();
    st.copyElidedBlocks = d.i32();
    st.multibufferedTensors = d.i32();
    st.shardedTensors = d.i32();
    st.dynamicPorts = d.i32();
    st.mergeUnits = d.i32();
    st.controllerUnits = d.i32();

    size_t numNotes = d.count(4);
    r.lowering.notes.reserve(numNotes);
    for (size_t i = 0; i < numNotes; ++i)
        r.lowering.notes.push_back(d.str());

    r.unrollStats.vectorizedLoops = d.i32();
    r.unrollStats.unrolledLoops = d.i32();
    r.unrollStats.clonesCreated = d.i32();
    r.unrollStats.combineBlocks = d.i32();

    auto &res = r.resources;
    res.pcus = d.i32();
    res.pmus = d.i32();
    res.ags = d.i32();
    res.retimeUnits = d.i32();
    res.mergeUnits = d.i32();
    res.controllerUnits = d.i32();
    res.pcusAvail = d.i32();
    res.pmusAvail = d.i32();
    res.agsAvail = d.i32();
    res.fits = d.boolean();

    size_t numSpans = d.count(9);
    r.phases.reserve(numSpans);
    for (size_t i = 0; i < numSpans; ++i) {
        telemetry::Span span;
        span.name = d.str();
        span.depth = d.i32();
        size_t nstats = d.count(12);
        span.stats.reserve(nstats);
        for (size_t s = 0; s < nstats; ++s) {
            std::string k = d.str();
            double v = d.f64();
            span.stats.emplace_back(std::move(k), v);
        }
        r.phases.push_back(std::move(span));
    }

    r.partitionsCreated = d.i32();
    r.unitsMerged = d.i32();
    d.expectEnd();
    return r;
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

std::string
packArtifact(const std::string &key, const compiler::CompileResult &r)
{
    std::string payload = encodeCompileResult(r);
    support::Sha256 sha;
    sha.update(payload);
    auto digest = sha.digest();

    Encoder e;
    e.bytes(kMagic, sizeof kMagic);
    e.u32(kFormatVersion);
    e.str(key);
    e.u64(payload.size());
    e.bytes(digest.data(), digest.size());
    e.bytes(payload.data(), payload.size());
    return e.take();
}

LoadedArtifact
unpackArtifact(const std::string &bytes)
{
    Decoder d(bytes);
    std::string magic = d.raw(sizeof kMagic);
    if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0)
        throw ArtifactError("artifact: bad magic");
    uint32_t version = d.u32();
    if (version != kFormatVersion)
        throw ArtifactError("artifact: format version " +
                            std::to_string(version) + " != " +
                            std::to_string(kFormatVersion));
    LoadedArtifact out;
    out.key = d.raw(d.count(1)); // Key: hex string, arbitrary length.
    uint64_t payloadSize = d.u64();
    std::string digest = d.raw(32);
    if (d.remaining() != payloadSize)
        throw ArtifactError("artifact: payload size mismatch");
    std::string payload = d.raw(payloadSize);
    d.expectEnd();

    support::Sha256 sha;
    sha.update(payload);
    auto actual = sha.digest();
    if (std::memcmp(actual.data(), digest.data(), actual.size()) != 0)
        throw ArtifactError("artifact: checksum mismatch (corrupt)");

    out.result = decodeCompileResult(payload);
    return out;
}

namespace {

/** write(2) the whole buffer, riding out EINTR/partial writes. */
bool
writeAll(int fd, const char *data, size_t size)
{
    size_t done = 0;
    while (done < size) {
        ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

/** fsync the directory containing `path` so a just-published rename
 *  survives a crash (the rename itself is only durable once the
 *  directory's metadata hits disk). Best-effort: some filesystems
 *  refuse directory fsync; the data fsync already happened. */
void
syncParentDir(const std::string &path)
{
    std::string dir = ".";
    if (size_t slash = path.rfind('/'); slash != std::string::npos)
        dir = slash == 0 ? "/" : path.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return;
    ::fsync(dfd);
    ::close(dfd);
}

} // namespace

void
writeArtifactFile(const std::string &path, const std::string &key,
                  const compiler::CompileResult &r)
{
    std::string bytes = packArtifact(key, r);
    writeArtifactBytes(path, bytes);
}

void
writeArtifactBytes(const std::string &path, const std::string &bytes)
{
    // Crash-safe publish: write a uniquely-named temp file, fsync it,
    // rename over the destination (atomic on POSIX), fsync the
    // directory. A crash at any point leaves either the old entry, no
    // entry plus a stale tmp the recovery scan removes, or the new
    // entry — never a half-written file under the final name.
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw ArtifactError("artifact: cannot write " + tmp + ": " +
                            std::strerror(errno));
    if (!writeAll(fd, bytes.data(), bytes.size())) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw ArtifactError("artifact: short write to " + tmp + ": " +
                            std::strerror(err));
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw ArtifactError("artifact: fsync failed for " + tmp + ": " +
                            std::strerror(err));
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw ArtifactError("artifact: close failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        throw ArtifactError("artifact: cannot rename into " + path +
                            ": " + std::strerror(err));
    }
    syncParentDir(path);
}

std::string
readArtifactBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw ArtifactError("artifact: cannot open " + path);
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return bytes;
}

LoadedArtifact
readArtifactFile(const std::string &path)
{
    return unpackArtifact(readArtifactBytes(path));
}

} // namespace sara::artifact
