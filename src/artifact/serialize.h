#ifndef SARA_ARTIFACT_SERIALIZE_H
#define SARA_ARTIFACT_SERIALIZE_H

/**
 * @file
 * Low-level binary encoding for compiled-program artifacts: a byte
 * buffer of little-endian fixed-width scalars, length-prefixed strings
 * and vectors. Deliberately boring — a stable wire format matters more
 * than compactness, and artifacts are hashed byte-for-byte so the
 * encoding must be fully deterministic (no padding, no pointers, no
 * iteration-order leaks).
 *
 * The Decoder never trusts its input: every read is bounds-checked and
 * malformed data raises ArtifactError, which cache lookups catch to
 * fall back to a fresh compile.
 */

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace sara::artifact {

/** Raised on truncated, corrupt, or version-mismatched artifacts. */
class ArtifactError : public std::runtime_error
{
  public:
    explicit ArtifactError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Append-only little-endian byte sink. */
class Encoder
{
  public:
    void
    u8(uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<char>(v >> (i * 8)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<char>(v >> (i * 8)));
    }
    void
    i32(int32_t v)
    {
        u32(static_cast<uint32_t>(v));
    }
    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out_.append(s);
    }
    void
    bytes(const void *data, size_t len)
    {
        out_.append(static_cast<const char *>(data), len);
    }

    const std::string &buffer() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked reader over an encoded buffer. */
class Decoder
{
  public:
    explicit Decoder(const std::string &data)
        : p_(data.data()), end_(data.data() + data.size())
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return static_cast<uint8_t>(*p_++);
    }
    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++))
                 << (i * 8);
        return v;
    }
    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++))
                 << (i * 8);
        return v;
    }
    int32_t
    i32()
    {
        return static_cast<int32_t>(u32());
    }
    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }
    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    bool
    boolean()
    {
        uint8_t v = u8();
        if (v > 1)
            throw ArtifactError("artifact: bad boolean byte");
        return v != 0;
    }
    std::string
    str()
    {
        uint32_t len = u32();
        need(len);
        std::string s(p_, len);
        p_ += len;
        return s;
    }

    /** Read exactly `n` raw bytes. */
    std::string
    raw(size_t n)
    {
        need(n);
        std::string s(p_, n);
        p_ += n;
        return s;
    }

    /** Read a length prefix, sanity-capped to the bytes remaining. */
    size_t
    count(size_t elemMinBytes = 1)
    {
        uint32_t n = u32();
        if (elemMinBytes > 0 &&
            static_cast<size_t>(n) > remaining() / elemMinBytes)
            throw ArtifactError("artifact: implausible element count");
        return n;
    }

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }
    bool atEnd() const { return p_ == end_; }

    /** Fail unless the whole buffer was consumed. */
    void
    expectEnd() const
    {
        if (!atEnd())
            throw ArtifactError("artifact: trailing bytes after payload");
    }

  private:
    void
    need(size_t n) const
    {
        if (remaining() < n)
            throw ArtifactError("artifact: truncated payload");
    }

    const char *p_;
    const char *end_;
};

} // namespace sara::artifact

#endif // SARA_ARTIFACT_SERIALIZE_H
