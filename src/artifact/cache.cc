#include "artifact/cache.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "support/logging.h"
#include "support/telemetry.h"

namespace sara::artifact {

namespace fs = std::filesystem;

namespace {

void
count(const char *name)
{
    telemetry::Registry::global().add(name);
}

std::string
resolveDir(std::string dir)
{
    if (!dir.empty())
        return dir;
    if (const char *env = std::getenv("SARA_CACHE_DIR"); env && *env)
        return env;
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.sara-cache";
    return ".sara-cache";
}

} // namespace

ArtifactCache::ArtifactCache(std::string dir, uint64_t maxBytes)
    : dir_(resolveDir(std::move(dir))), maxBytes_(maxBytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        warn("artifact cache: cannot create ", dir_, ": ",
             ec.message());
}

std::string
ArtifactCache::pathFor(const std::string &key) const
{
    return dir_ + "/" + key + ".sara";
}

std::string
ArtifactCache::quarantinePathFor(const std::string &key) const
{
    return pathFor(key) + ".quarantine";
}

namespace {

/** A writer's unpublished temp file (`<key>.sara.tmp.<pid>`). */
bool
isStaleTmp(const fs::path &p)
{
    return p.filename().string().find(".sara.tmp.") != std::string::npos;
}

} // namespace

void
ArtifactCache::noteOpen(const std::string &key)
{
    auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(openMu_);
    // Opportunistically drop expired holds so the map stays small.
    for (auto it = recentOpens_.begin(); it != recentOpens_.end();) {
        double ageMs =
            std::chrono::duration<double, std::milli>(now - it->second)
                .count();
        it = ageMs >= trimWindowMs_ ? recentOpens_.erase(it)
                                    : std::next(it);
    }
    recentOpens_[key] = now;
}

bool
ArtifactCache::recentlyOpened(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(openMu_);
    auto it = recentOpens_.find(key);
    if (it == recentOpens_.end())
        return false;
    double ageMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - it->second)
                       .count();
    return ageMs < trimWindowMs_;
}

std::optional<compiler::CompileResult>
ArtifactCache::lookup(const std::string &key)
{
    // Claim the key before probing the filesystem: a concurrent trim
    // must hold (skip) this entry for the whole open window, or the
    // exists -> read gap below could dangle on a deleted file.
    noteOpen(key);
    std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        count("artifact.cache.miss");
        return std::nullopt;
    }
    try {
        std::string bytes = readArtifactBytes(path);
        if (inj_ && !bytes.empty() && inj_->artifactFlip(key))
            bytes[inj_->flipOffset(key, bytes.size())] ^= 0x01;
        LoadedArtifact art = unpackArtifact(bytes);
        if (art.key != key)
            throw ArtifactError("artifact: stored key mismatch");
        count("artifact.cache.hit");
        // Touch for LRU eviction ordering.
        fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        debug("artifact cache hit: ", key);
        return std::move(art.result);
    } catch (const ArtifactError &err) {
        // Quarantine, don't delete: the corrupt bytes are the evidence
        // (disk fault? torn write? format bug?) and must neither be
        // served again nor silently destroyed.
        std::string parked = quarantinePathFor(key);
        warn("artifact cache: quarantining corrupt entry ", path,
             " -> ", parked, " (", err.what(), ")");
        count("artifact.cache.corrupt");
        count("artifact.cache.quarantined");
        count("artifact.cache.miss");
        fs::rename(path, parked, ec);
        if (ec)
            fs::remove(path, ec); // Last resort: never serve it.
        return std::nullopt;
    }
}

void
ArtifactCache::store(const std::string &key,
                     const compiler::CompileResult &r)
{
    if (inj_ && inj_->diskEnospc(key)) {
        // Disk full: the store fails cleanly. The caller still holds
        // the freshly-compiled result, so this is a counted warning,
        // never an error surfaced to the request.
        warn("artifact cache: injected ENOSPC storing ", key);
        count("artifact.cache.fault.enospc");
        count("artifact.cache.store_failed");
        return;
    }
    if (inj_ && inj_->diskShortWrite(key)) {
        // Torn publish: deliberately bypass the atomic writer and drop
        // a truncated container under the *final* name, modeling a
        // filesystem that lied about durability. The entry must be
        // caught by lookup validation or the recovery sweep.
        std::string bytes = packArtifact(key, r);
        bytes.resize(inj_->shortWriteKeep(key, bytes.size()));
        std::FILE *f = std::fopen(pathFor(key).c_str(), "wb");
        if (f) {
            std::fwrite(bytes.data(), 1, bytes.size(), f);
            std::fclose(f);
        }
        warn("artifact cache: injected short write storing ", key);
        count("artifact.cache.fault.short_write");
        return;
    }
    try {
        writeArtifactFile(pathFor(key), key, r);
        count("artifact.cache.store");
        debug("artifact cache store: ", key);
    } catch (const ArtifactError &err) {
        warn("artifact cache: store failed: ", err.what());
        count("artifact.cache.store_failed");
        return;
    }
    if (maxBytes_ > 0)
        trim(maxBytes_);
}

bool
ArtifactCache::contains(const std::string &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

int
ArtifactCache::trim(uint64_t maxBytes)
{
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        uint64_t size;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file(ec) ||
            de.path().extension() != ".sara")
            continue;
        Entry en{de.path(), de.last_write_time(ec),
                 de.file_size(ec)};
        total += en.size;
        entries.push_back(std::move(en));
    }
    if (total <= maxBytes)
        return 0;
    // Oldest first: LRU because hits re-touch their entry.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    int evicted = 0;
    for (const auto &en : entries) {
        if (total <= maxBytes)
            break;
        // Hold-or-skip: an entry a reader opened inside the window may
        // be mid-read right now — never delete it under their feet.
        if (recentlyOpened(en.path.stem().string()))
            continue;
        if (fs::remove(en.path, ec)) {
            total -= en.size;
            ++evicted;
            count("artifact.cache.evict");
            debug("artifact cache evict: ", en.path.string());
        }
    }
    return evicted;
}

int
ArtifactCache::clear()
{
    // Explicit wipe overrides the trim holds.
    {
        std::lock_guard<std::mutex> lock(openMu_);
        recentOpens_.clear();
    }
    int removed = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        auto ext = de.path().extension();
        if (ext != ".sara" && ext != ".quarantine" &&
            !isStaleTmp(de.path()))
            continue;
        if (fs::remove(de.path(), ec))
            ++removed;
    }
    return removed;
}

ArtifactCache::RecoveryStats
ArtifactCache::recover()
{
    RecoveryStats st;
    std::error_code ec;
    std::vector<fs::path> entries, tmps;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        if (isStaleTmp(de.path()))
            tmps.push_back(de.path());
        else if (de.path().extension() == ".sara")
            entries.push_back(de.path());
    }
    // A temp file under the sweep means its writer died before the
    // rename: the entry was never published, so it is garbage (the
    // sweep runs before any worker thread can be mid-store).
    for (const auto &t : tmps) {
        if (fs::remove(t, ec)) {
            ++st.tmpRemoved;
            count("artifact.cache.tmp_removed");
            inform("artifact cache recovery: removed stale temp ",
                 t.string());
        }
    }
    for (const auto &p : entries) {
        ++st.scanned;
        std::string key = p.stem().string();
        try {
            LoadedArtifact art = unpackArtifact(
                readArtifactBytes(p.string()));
            if (art.key != key)
                throw ArtifactError("artifact: stored key mismatch");
            ++st.ok;
        } catch (const ArtifactError &err) {
            std::string parked = p.string() + ".quarantine";
            warn("artifact cache recovery: quarantining ", p.string(),
                 " -> ", parked, " (", err.what(), ")");
            fs::rename(p, parked, ec);
            if (ec)
                fs::remove(p, ec);
            ++st.quarantined;
            count("artifact.cache.quarantined");
        }
    }
    if (st.quarantined > 0 || st.tmpRemoved > 0)
        inform("artifact cache recovery: ", st.scanned, " scanned, ",
             st.ok, " ok, ", st.quarantined, " quarantined, ",
             st.tmpRemoved, " stale temps removed");
    count("artifact.cache.recovered");
    return st;
}

int
ArtifactCache::quarantinedCount() const
{
    int n = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec))
        if (de.path().extension() == ".quarantine")
            ++n;
    return n;
}

// ---------------------------------------------------------------------------
// CachingCompiler
// ---------------------------------------------------------------------------

CachingCompiler::Compiled
CachingCompiler::compile(const ir::Program &input,
                         const compiler::CompilerOptions &options)
{
    std::string key = contentKey(input, options);

    if (inj_ && inj_->compileFault(key))
        throw TransientError(
            "injected transient compile fault for key " + key);

    // Fast path: already on disk.
    if (cache_) {
        if (auto hit = cache_->lookup(key))
            return {std::move(*hit), key, /*fromCache=*/true,
                    /*deduped=*/false};
    }

    // Claim the key or join the thread already compiling it.
    std::promise<Shared> promise;
    std::shared_future<Shared> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            future = promise.get_future().share();
            inflight_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }

    if (!owner) {
        telemetry::Registry::global().add("jobs.compile.deduped");
        Shared shared = future.get();
        if (!shared)
            // The owner failed; surface the same error by recompiling
            // (rare path, and errors must not be silently swallowed).
            return {compiler::compile(input, options), key, false,
                    true};
        Compiled out = *shared;
        out.deduped = true;
        out.fromCache = false;
        return out;
    }

    Compiled out;
    out.key = key;
    try {
        out.result = compiler::compile(input, options);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(key);
        }
        promise.set_value(nullptr);
        throw;
    }
    if (cache_)
        cache_->store(key, out.result);
    promise.set_value(std::make_shared<Compiled>(out));
    {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
    }
    return out;
}

} // namespace sara::artifact
