#ifndef SARA_ARTIFACT_ARTIFACT_H
#define SARA_ARTIFACT_ARTIFACT_H

/**
 * @file
 * Serializable compiled programs. SARA's compile pipeline is
 * deliberately expensive (solver-based partitioning, PnR); the service
 * model is compile-once / run-many, so the full compilation output —
 * post-unroll program, post-PnR VUDFG with CMMC token/credit wiring,
 * memory banking and placement, resource report — round-trips through
 * a versioned binary format.
 *
 * Container layout:
 *
 *   8   magic "SARAART1"
 *   4   format version (u32 LE)
 *   key (length-prefixed content key of the producing compile)
 *   8   payload size (u64 LE)
 *   32  SHA-256 of the payload
 *   payload (encoded CompileResult)
 *
 * Corruption anywhere — bad magic, version skew, size or checksum
 * mismatch, truncation, trailing bytes — raises ArtifactError; callers
 * (the cache, sarac --load-artifact) degrade to a fresh compile.
 *
 * Artifacts are deterministic: encoding the result of compiling the
 * same (program, options) twice yields byte-identical buffers. Span
 * wall-clock times are zeroed at encode time to keep that property;
 * span names/depths/stats (which are pure functions of the input) are
 * preserved.
 */

#include <string>

#include "artifact/serialize.h"
#include "compiler/driver.h"
#include "compiler/options.h"
#include "ir/program.h"

namespace sara::artifact {

/** Bumped whenever any encoding below changes shape. Participates in
 *  content keys, so stale cache entries self-invalidate. */
inline constexpr uint32_t kFormatVersion = 2; ///< v2: stream routes.

// --- Component codecs (exposed for tests) ---
void encodeProgram(Encoder &e, const ir::Program &p);
ir::Program decodeProgram(Decoder &d);

void encodeGraph(Encoder &e, const dfg::Vudfg &g);
dfg::Vudfg decodeGraph(Decoder &d);

/** Canonical encoding of every compiler knob incl. the arch spec. */
void encodeOptions(Encoder &e, const compiler::CompilerOptions &opt);

/**
 * Content-addressed cache key: SHA-256 over (format version, workload
 * IR, CompilerOptions, arch config), as 64 hex chars. Identical inputs
 * hash identically across processes and machines.
 */
std::string contentKey(const ir::Program &input,
                       const compiler::CompilerOptions &opt);

/** Encode / decode a full compilation output (the artifact payload). */
std::string encodeCompileResult(const compiler::CompileResult &r);
compiler::CompileResult decodeCompileResult(const std::string &payload);

/** A parsed artifact container. */
struct LoadedArtifact
{
    std::string key; ///< Content key recorded by the producer.
    compiler::CompileResult result;
};

/** Wrap a compile result in the versioned, checksummed container. */
std::string packArtifact(const std::string &key,
                         const compiler::CompileResult &r);
/** Parse + verify a container; throws ArtifactError on corruption. */
LoadedArtifact unpackArtifact(const std::string &bytes);

/** File convenience wrappers. Reader throws ArtifactError on any I/O
 *  or integrity failure; writer publishes crash-safely (unique temp +
 *  fsync + atomic rename + directory fsync), so a crash mid-store can
 *  never leave a half-written file under the final name. */
void writeArtifactFile(const std::string &path, const std::string &key,
                       const compiler::CompileResult &r);
LoadedArtifact readArtifactFile(const std::string &path);

/** Crash-safe publish of pre-packed container bytes (the writer above
 *  after packArtifact; exposed so the cache can inject disk faults
 *  between pack and publish). Throws ArtifactError on any I/O error. */
void writeArtifactBytes(const std::string &path,
                        const std::string &bytes);

/** Raw container bytes of an artifact file (no parse, no verify).
 *  Throws ArtifactError when the file cannot be opened. Exposed so the
 *  cache can interpose fault injection between read and unpack. */
std::string readArtifactBytes(const std::string &path);

} // namespace sara::artifact

#endif // SARA_ARTIFACT_ARTIFACT_H
