#ifndef SARA_FAULT_FAULT_H
#define SARA_FAULT_FAULT_H

/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * A fault plan is a list of FaultSpecs, each naming a fault model plus
 * where (site substring), when (cycle window) and how often (probability
 * and count cap) it strikes. The injector answers point queries from
 * the simulator, NoC, FIFO and artifact layers; every decision is a
 * pure hash of (seed, spec index, site, cycle), so it is independent of
 * query order and a failing run replays cycle-identically from its
 * seed. With no injector attached (the default), every injection point
 * compiles down to a null-pointer check — zero overhead when off.
 *
 * Every positive decision is logged as an InjectionRecord; the hang
 * diagnosis engine (failure.h) matches blocked resources against these
 * records to tell an injected-fault-induced hang from a genuine
 * protocol deadlock.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sara::fault {

/** The pluggable fault models. */
enum class FaultKind : uint8_t {
    NocDelay,     ///< Extra cycles on a granted flit's link traversal.
    NocDup,       ///< A granted flit re-arbitrates its link once.
    StuckCredit,  ///< Link-buffer slots permanently held at a NoC link.
    DramTimeout,  ///< A DRAM response never completes.
    DramTail,     ///< Tail-latency spike on a DRAM access.
    FifoLeak,     ///< A popped credit is lost (capacity shrinks by one).
    ArtifactFlip, ///< Flip one byte of a loaded artifact container.
    CompileFault, ///< Transient compile failure (retry path).
    // Host-level kinds: strike the process's disk and socket I/O paths
    // rather than the simulated machine. Like artifact-flip and
    // compile-fault they have no cycle clock; each I/O operation is one
    // opportunity and retries of the same site can differ.
    DiskShortWrite, ///< Artifact store publishes a truncated file.
    DiskEnospc,     ///< Artifact store fails as if the disk were full.
    SockTornWrite,  ///< A response line is cut mid-write, conn dropped.
    SockDrop,       ///< The connection dies before the response line.
};
inline constexpr int kNumFaultKinds = 12;

const char *faultKindName(FaultKind kind);

/** One entry of a fault plan. */
struct FaultSpec
{
    FaultKind kind = FaultKind::NocDelay;
    /** Per-opportunity strike probability in [0, 1]. */
    double prob = 1.0;
    /** Substring match against the injection site name; empty = any. */
    std::string site;
    /** Only cycles in [windowLo, windowHi] are eligible. Process-level
     *  faults (artifact-flip, compile-fault) ignore the window. */
    uint64_t windowLo = 0;
    uint64_t windowHi = UINT64_MAX;
    /** Max strikes from this spec; -1 = unlimited. */
    int count = -1;
    /** Magnitude: extra cycles (noc-delay, dram-tail) or held buffer
     *  slots (stuck-credit). */
    uint64_t delay = 16;
};

/**
 * Parse the `--inject` grammar:
 *   kind[@prob][:site=S][:window=LO-HI][:count=N][:delay=D]
 * e.g. "noc-delay@0.05:delay=8", "stuck-credit:site=(1,2)E:window=100-".
 * fatal()s (FatalError, exit 3 from sarac) on a malformed spec.
 */
FaultSpec parseFaultSpec(const std::string &text);

/** One positive injection decision. */
struct InjectionRecord
{
    FaultKind kind;
    std::string site;
    uint64_t cycle = 0;
};

/**
 * Answers "does a fault strike here, now?" for every injection point.
 * Thread-safe: decisions are stateless hashes; only the log mutates
 * under a mutex (batch jobs share one injector across threads).
 */
class FaultInjector
{
  public:
    FaultInjector(std::vector<FaultSpec> plan, uint64_t seed);

    uint64_t seed() const { return seed_; }
    bool empty() const { return plan_.empty(); }
    const std::vector<FaultSpec> &plan() const { return plan_; }

    // --- Cycle-level query points (one call per opportunity) ---------

    /** Extra cycles to add to a granted flit's hop traversal. */
    uint64_t flitDelay(const std::string &linkSite, uint64_t cycle) const;
    /** Whether a granted flit must re-arbitrate its link once. */
    bool duplicateFlit(const std::string &linkSite, uint64_t cycle) const;
    /** Buffer slots permanently held at this link from `cycle` on.
     *  Sticky: once the window opens the credits never come back. */
    int stuckCredits(const std::string &linkSite, uint64_t cycle) const;
    /** Whether this DRAM access's completion is dropped forever. */
    bool dramTimeout(const std::string &unitSite, uint64_t cycle) const;
    /** Extra response latency for this DRAM access. */
    uint64_t dramTailLatency(const std::string &unitSite,
                             uint64_t cycle) const;
    /** Whether this pop loses one credit of the stream's window. */
    bool fifoLeak(const std::string &streamSite, uint64_t cycle) const;

    // --- Process-level query points (no cycle clock) -----------------

    /** Whether to flip a byte of the artifact stored under `key`. */
    bool artifactFlip(const std::string &key) const;
    /** Deterministic byte offset to corrupt in a `size`-byte blob. */
    size_t flipOffset(const std::string &key, size_t size) const;
    /** Whether this compile attempt fails transiently. `attempt`
     *  distinguishes retries so a bounded count cap lets them pass. */
    bool compileFault(const std::string &key) const;

    // --- Host-level query points (disk + socket I/O) -----------------

    /** Whether this artifact store is published truncated. */
    bool diskShortWrite(const std::string &key) const;
    /** How many bytes of a `size`-byte container a short write keeps
     *  (deterministic in (seed, key); always < size, never 0 so the
     *  torn file exists and must be caught by validation, not ENOENT). */
    size_t shortWriteKeep(const std::string &key, size_t size) const;
    /** Whether this artifact store fails with a disk-full error. */
    bool diskEnospc(const std::string &key) const;
    /** Whether this response write is torn mid-line (connection site,
     *  e.g. "conn-7"). The server closes the connection after tearing. */
    bool sockTornWrite(const std::string &connSite) const;
    /** Whether the connection drops before this response is written. */
    bool sockDrop(const std::string &connSite) const;

    // --- Diagnosis support -------------------------------------------

    /** Log an extra record under a caller-chosen site name (used to
     *  name the resource a dropped response would have surfaced on). */
    void note(FaultKind kind, const std::string &site,
              uint64_t cycle) const;

    /** Injection log, in decision order (capped; see totalInjections).
     *  Single-run queries are single-threaded, so the order — and the
     *  FailureReport built from it — is deterministic. */
    std::vector<InjectionRecord> injections() const;
    uint64_t totalInjections() const;
    /** First logged *permanent* fault (stuck-credit, dram-timeout,
     *  fifo-leak) whose site matches `resource`; nullopt-like: an
     *  empty site means no match. */
    bool findPermanentFault(const std::string &resource,
                            InjectionRecord &out) const;
    /** First logged permanent fault at any site (classification
     *  fallback: a frozen network often surfaces as a stalled CMMC
     *  token loop far from the poisoned link). */
    bool firstPermanentFault(InjectionRecord &out) const;

  private:
    bool decide(const FaultSpec &spec, size_t specIdx,
                const std::string &site, uint64_t cycle) const;
    /** Shared per-opportunity decision for process/host-level kinds:
     *  every call advances the matching specs' attempt sequence so
     *  retries of one site can differ and a count cap is an attempt
     *  cap (compile-fault semantics). */
    bool attemptFault(FaultKind kind, const std::string &site) const;
    void record(FaultKind kind, const std::string &site,
                uint64_t cycle) const;

    std::vector<FaultSpec> plan_;
    uint64_t seed_ = 0;

    mutable std::mutex mu_;
    mutable std::vector<InjectionRecord> log_; ///< Capped at kLogCap.
    mutable uint64_t total_ = 0;
    mutable std::vector<int64_t> struck_; ///< Strikes per spec (count cap).
};

} // namespace sara::fault

#endif // SARA_FAULT_FAULT_H
