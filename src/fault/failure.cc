#include "fault/failure.h"

#include <algorithm>

#include "support/json.h"

namespace sara::fault {

const char *
hangClassName(HangClass c)
{
    switch (c) {
      case HangClass::Deadlock: return "deadlock";
      case HangClass::Starvation: return "starvation-livelock";
      case HangClass::InjectedFault: return "injected-fault-induced";
    }
    return "?";
}

namespace {

/**
 * Find a cycle in the wait-for graph. Each blocked engine wants at
 * most one resource here (it is parked on exactly one condition), so
 * out-degree <= 1 and chasing provider edges from each node with a
 * colour array finds any cycle in O(n). Returns the cycle in edge
 * order, rotated to start at its smallest index for determinism.
 */
std::vector<int>
findCycle(const std::vector<WaitNode> &blocked)
{
    enum : uint8_t { White, Grey, Black };
    std::vector<uint8_t> colour(blocked.size(), White);
    for (size_t start = 0; start < blocked.size(); ++start) {
        if (colour[start] != White)
            continue;
        std::vector<int> path;
        int v = static_cast<int>(start);
        while (v >= 0 && colour[v] == White) {
            colour[v] = Grey;
            path.push_back(v);
            v = blocked[v].provider;
        }
        if (v >= 0 && colour[v] == Grey) {
            // Cycle: the suffix of `path` starting at v.
            auto it = std::find(path.begin(), path.end(), v);
            std::vector<int> cyc(it, path.end());
            auto smallest = std::min_element(cyc.begin(), cyc.end());
            std::rotate(cyc.begin(), smallest, cyc.end());
            return cyc;
        }
        for (int n : path)
            colour[n] = Black;
    }
    return {};
}

} // namespace

FailureReport
classify(std::vector<WaitNode> blocked, const FaultInjector *inj,
         uint64_t atCycle)
{
    FailureReport r;
    r.atCycle = atCycle;
    r.blocked = std::move(blocked);
    if (inj) {
        r.seeded = true;
        r.seed = inj->seed();
        r.injections = inj->injections();
        r.injectionsTotal = inj->totalInjections();
    }

    // Injected faults win: a stuck credit or dropped DRAM response
    // usually *also* closes a wait-for cycle through its victim, and
    // blaming the injection is the useful diagnosis.
    if (inj) {
        for (const auto &n : r.blocked) {
            InjectionRecord hit;
            if (inj->findPermanentFault(n.resource, hit)) {
                r.cls = HangClass::InjectedFault;
                r.culprit = hit.site;
                return r;
            }
        }
        // Fallback: no blocked engine waits on the poisoned resource
        // directly, but a permanent fault struck before quiescence —
        // a frozen link usually surfaces as a stalled CMMC token loop
        // several hops from the injection, and blaming the injection
        // is still the right diagnosis.
        InjectionRecord hit;
        if (inj->firstPermanentFault(hit) && hit.cycle <= atCycle) {
            r.cls = HangClass::InjectedFault;
            r.culprit = hit.site;
            r.cycle = findCycle(r.blocked); // Keep the victim loop.
            return r;
        }
    }

    r.cycle = findCycle(r.blocked);
    r.cls = r.cycle.empty() ? HangClass::Starvation : HangClass::Deadlock;
    return r;
}

std::string
FailureReport::str() const
{
    std::string out =
        cancelled
            ? "simulation cancelled at cycle " + std::to_string(atCycle) +
                  " (watchdog deadline): classified " + hangClassName(cls)
        : budgetExceeded
            ? "simulation exceeded its " + std::to_string(budget) +
                  "-cycle budget at cycle " + std::to_string(atCycle) +
                  ": classified " + hangClassName(cls)
            : "simulation hang at cycle " + std::to_string(atCycle) +
                  ": classified " + hangClassName(cls);
    if (cls == HangClass::InjectedFault)
        out += " (injection site: " + culprit + ")";
    if (seeded)
        out += " [seed " + std::to_string(seed) + ", " +
               std::to_string(injectionsTotal) + " injections]";
    if (!cycle.empty()) {
        out += "\nwait-for cycle:";
        for (size_t i = 0; i < cycle.size(); ++i) {
            const WaitNode &n = blocked[cycle[i]];
            const WaitNode &next = blocked[cycle[(i + 1) % cycle.size()]];
            out += "\n  " + n.unit + " wants " + n.wants + " [" +
                   n.resource + "] held by " + next.unit;
        }
    }
    out += "\nblocked engines:";
    for (const auto &n : blocked) {
        out += "\n  " + n.unit + ": waiting on " + n.wants + " [" +
               n.resource + "]";
        if (n.providerFinished)
            out += " (producer already finished)";
        if (!n.stalls.empty()) {
            out += "; stalls:";
            for (const auto &[name, cycles] : n.stalls)
                out += " " + name + "=" + std::to_string(cycles);
        }
    }
    if (!timeline.empty()) {
        out += "\nrecent events (flight recorder, last " +
               std::to_string(timeline.size()) + " of " +
               std::to_string(timelineDropped + timeline.size()) + "):";
        for (const auto &te : timeline)
            out += "\n  @" + std::to_string(te.cycle) + " " + te.kind +
                   " " + te.detail;
    }
    return out;
}

std::string
FailureReport::json() const
{
    json::Writer j;
    j.beginObject();
    j.kv("schema", "sara-failure-report/v1");
    j.kv("classification", hangClassName(cls));
    j.kv("at_cycle", atCycle);
    if (budgetExceeded) {
        j.kv("budget_exceeded", true);
        j.kv("cycle_budget", budget);
    }
    if (cancelled)
        j.kv("cancelled", true);
    if (seeded) {
        j.kv("inject_seed", seed);
        j.kv("injections_total", injectionsTotal);
    }
    if (cls == HangClass::InjectedFault)
        j.kv("culprit_site", culprit);
    j.key("wait_cycle").beginArray();
    for (size_t i = 0; i < cycle.size(); ++i) {
        const WaitNode &n = blocked[cycle[i]];
        const WaitNode &next = blocked[cycle[(i + 1) % cycle.size()]];
        j.beginObject();
        j.kv("unit", n.unit);
        j.kv("wants", n.wants);
        j.kv("resource", n.resource);
        j.kv("held_by", next.unit);
        j.endObject();
    }
    j.endArray();
    j.key("blocked").beginArray();
    for (const auto &n : blocked) {
        j.beginObject();
        j.kv("unit", n.unit);
        j.kv("wants", n.wants);
        j.kv("resource", n.resource);
        j.kv("provider_finished", n.providerFinished);
        j.key("stalls").beginObject();
        for (const auto &[name, cycles] : n.stalls)
            j.kv(name, cycles);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    j.key("injections").beginArray();
    for (const auto &rec : injections) {
        j.beginObject();
        j.kv("kind", faultKindName(rec.kind));
        j.kv("site", rec.site);
        j.kv("cycle", rec.cycle);
        j.endObject();
    }
    j.endArray();
    j.key("timeline").beginArray();
    for (const auto &te : timeline) {
        j.beginObject();
        j.kv("cycle", te.cycle);
        j.kv("kind", te.kind);
        j.kv("detail", te.detail);
        j.endObject();
    }
    j.endArray();
    j.kv("timeline_dropped", timelineDropped);
    j.endObject();
    return j.str();
}

} // namespace sara::fault
