#include "fault/fault.h"

#include <algorithm>

#include "support/logging.h"

namespace sara::fault {

namespace {

/** Bound on the retained log; the total is counted past the cap so a
 *  high-probability plan (e.g. fifo-leak@1.0) cannot eat memory. */
constexpr size_t kLogCap = 256;

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Pure decision hash: independent of query order and of every other
 *  decision, so replays are cycle-identical from the seed alone. */
double
unitHash(uint64_t seed, size_t specIdx, const std::string &site,
         uint64_t cycle)
{
    uint64_t h = splitmix64(seed ^ splitmix64(specIdx + 1) ^
                            fnv1a(site) ^ splitmix64(cycle));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
siteMatches(const FaultSpec &spec, const std::string &site)
{
    return spec.site.empty() || site.find(spec.site) != std::string::npos;
}

bool
isPermanentKind(FaultKind kind)
{
    return kind == FaultKind::StuckCredit ||
           kind == FaultKind::DramTimeout || kind == FaultKind::FifoLeak;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::NocDelay: return "noc-delay";
      case FaultKind::NocDup: return "noc-dup";
      case FaultKind::StuckCredit: return "stuck-credit";
      case FaultKind::DramTimeout: return "dram-timeout";
      case FaultKind::DramTail: return "dram-tail";
      case FaultKind::FifoLeak: return "fifo-leak";
      case FaultKind::ArtifactFlip: return "artifact-flip";
      case FaultKind::CompileFault: return "compile-fault";
      case FaultKind::DiskShortWrite: return "disk-short-write";
      case FaultKind::DiskEnospc: return "disk-enospc";
      case FaultKind::SockTornWrite: return "sock-torn-write";
      case FaultKind::SockDrop: return "sock-drop";
    }
    return "?";
}

FaultSpec
parseFaultSpec(const std::string &text)
{
    // kind[@prob][:site=S][:window=LO-HI][:count=N][:delay=D]
    FaultSpec spec;
    size_t pos = text.find(':');
    std::string head = text.substr(0, pos);
    std::string kind = head;
    if (size_t at = head.find('@'); at != std::string::npos) {
        kind = head.substr(0, at);
        std::string p = head.substr(at + 1);
        try {
            size_t used = 0;
            spec.prob = std::stod(p, &used);
            if (used != p.size())
                throw std::invalid_argument(p);
        } catch (const std::exception &) {
            fatal("fault spec '", text, "': bad probability '", p, "'");
        }
        if (spec.prob < 0.0 || spec.prob > 1.0)
            fatal("fault spec '", text, "': probability out of [0,1]");
    }

    bool known = false;
    for (int k = 0; k < kNumFaultKinds; ++k) {
        if (kind == faultKindName(static_cast<FaultKind>(k))) {
            spec.kind = static_cast<FaultKind>(k);
            known = true;
            break;
        }
    }
    if (!known)
        fatal("fault spec '", text, "': unknown fault kind '", kind,
              "' (expected noc-delay, noc-dup, stuck-credit, "
              "dram-timeout, dram-tail, fifo-leak, artifact-flip, "
              "compile-fault, disk-short-write, disk-enospc, "
              "sock-torn-write or sock-drop)");

    auto parseU64 = [&](const std::string &v) -> uint64_t {
        try {
            size_t used = 0;
            uint64_t n = std::stoull(v, &used);
            if (used != v.size())
                throw std::invalid_argument(v);
            return n;
        } catch (const std::exception &) {
            fatal("fault spec '", text, "': bad number '", v, "'");
        }
    };

    while (pos != std::string::npos) {
        size_t end = text.find(':', pos + 1);
        std::string field = text.substr(
            pos + 1,
            end == std::string::npos ? std::string::npos : end - pos - 1);
        pos = end;
        size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("fault spec '", text, "': expected key=value, got '",
                  field, "'");
        std::string k = field.substr(0, eq);
        std::string v = field.substr(eq + 1);
        if (k == "site") {
            spec.site = v;
        } else if (k == "window") {
            // LO-HI with either side optional: "100-", "-500", "100-500".
            size_t dash = v.find('-');
            if (dash == std::string::npos)
                fatal("fault spec '", text,
                      "': window must be LO-HI, got '", v, "'");
            std::string lo = v.substr(0, dash), hi = v.substr(dash + 1);
            if (!lo.empty())
                spec.windowLo = parseU64(lo);
            if (!hi.empty())
                spec.windowHi = parseU64(hi);
            if (spec.windowHi < spec.windowLo)
                fatal("fault spec '", text, "': empty cycle window");
        } else if (k == "count") {
            spec.count = static_cast<int>(parseU64(v));
        } else if (k == "delay") {
            spec.delay = parseU64(v);
        } else {
            fatal("fault spec '", text, "': unknown field '", k, "'");
        }
    }
    return spec;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed), struck_(plan_.size(), 0)
{
}

bool
FaultInjector::decide(const FaultSpec &spec, size_t specIdx,
                      const std::string &site, uint64_t cycle) const
{
    if (!siteMatches(spec, site))
        return false;
    if (cycle < spec.windowLo || cycle > spec.windowHi)
        return false;
    if (spec.prob < 1.0 &&
        unitHash(seed_, specIdx, site, cycle) >= spec.prob)
        return false;
    if (spec.count >= 0) {
        std::lock_guard<std::mutex> lock(mu_);
        if (struck_[specIdx] >= spec.count)
            return false;
        ++struck_[specIdx];
    }
    return true;
}

void
FaultInjector::record(FaultKind kind, const std::string &site,
                      uint64_t cycle) const
{
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (log_.size() < kLogCap)
        log_.push_back({kind, site, cycle});
}

uint64_t
FaultInjector::flitDelay(const std::string &linkSite, uint64_t cycle) const
{
    uint64_t extra = 0;
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::NocDelay)
            continue;
        if (decide(s, i, linkSite, cycle)) {
            extra += s.delay;
            record(s.kind, linkSite, cycle);
        }
    }
    return extra;
}

bool
FaultInjector::duplicateFlit(const std::string &linkSite,
                             uint64_t cycle) const
{
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::NocDup)
            continue;
        if (decide(s, i, linkSite, cycle)) {
            record(s.kind, linkSite, cycle);
            return true;
        }
    }
    return false;
}

int
FaultInjector::stuckCredits(const std::string &linkSite,
                            uint64_t cycle) const
{
    // Sticky from windowLo on: stuck credits never come back, so the
    // window's upper bound and the probability are ignored — the model
    // is "this link loses N credits at cycle windowLo".
    int held = 0;
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::StuckCredit)
            continue;
        if (!siteMatches(s, linkSite) || cycle < s.windowLo)
            continue;
        held += static_cast<int>(
            std::min<uint64_t>(s.delay, 1 << 20));
        // Log the onset once per (spec, site).
        std::lock_guard<std::mutex> lock(mu_);
        bool seen = false;
        for (const auto &r : log_)
            if (r.kind == FaultKind::StuckCredit && r.site == linkSite)
                seen = true;
        if (!seen) {
            ++total_;
            if (log_.size() < kLogCap)
                log_.push_back({s.kind, linkSite, s.windowLo});
        }
    }
    return held;
}

bool
FaultInjector::dramTimeout(const std::string &unitSite,
                           uint64_t cycle) const
{
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::DramTimeout)
            continue;
        if (decide(s, i, unitSite, cycle)) {
            record(s.kind, unitSite, cycle);
            return true;
        }
    }
    return false;
}

uint64_t
FaultInjector::dramTailLatency(const std::string &unitSite,
                               uint64_t cycle) const
{
    uint64_t extra = 0;
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::DramTail)
            continue;
        if (decide(s, i, unitSite, cycle)) {
            extra += s.delay;
            record(s.kind, unitSite, cycle);
        }
    }
    return extra;
}

bool
FaultInjector::fifoLeak(const std::string &streamSite,
                        uint64_t cycle) const
{
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::FifoLeak)
            continue;
        if (decide(s, i, streamSite, cycle)) {
            record(s.kind, streamSite, cycle);
            return true;
        }
    }
    return false;
}

bool
FaultInjector::artifactFlip(const std::string &key) const
{
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != FaultKind::ArtifactFlip)
            continue;
        if (decide(s, i, key, 0)) {
            record(s.kind, key, 0);
            return true;
        }
    }
    return false;
}

size_t
FaultInjector::flipOffset(const std::string &key, size_t size) const
{
    if (size == 0)
        return 0;
    return static_cast<size_t>(splitmix64(seed_ ^ fnv1a(key)) % size);
}

bool
FaultInjector::attemptFault(FaultKind kind, const std::string &site) const
{
    for (size_t i = 0; i < plan_.size(); ++i) {
        const FaultSpec &s = plan_[i];
        if (s.kind != kind)
            continue;
        // Repeated attempts on one site must be able to differ (that is
        // what a *transient* fault means), so each attempt advances a
        // per-spec sequence number feeding the decision hash.
        uint64_t attempt;
        {
            std::lock_guard<std::mutex> lock(mu_);
            attempt = static_cast<uint64_t>(++struck_[i]);
        }
        if (!siteMatches(s, site))
            continue;
        if (s.count >= 0 && attempt > static_cast<uint64_t>(s.count))
            continue;
        if (s.prob < 1.0 && unitHash(seed_, i, site, attempt) >= s.prob)
            continue;
        record(s.kind, site, 0);
        return true;
    }
    return false;
}

bool
FaultInjector::compileFault(const std::string &key) const
{
    return attemptFault(FaultKind::CompileFault, key);
}

bool
FaultInjector::diskShortWrite(const std::string &key) const
{
    return attemptFault(FaultKind::DiskShortWrite, key);
}

size_t
FaultInjector::shortWriteKeep(const std::string &key, size_t size) const
{
    if (size <= 1)
        return size; // Nothing to truncate meaningfully.
    // Keep in [1, size-1]: the torn file exists but is incomplete.
    return 1 + static_cast<size_t>(splitmix64(seed_ ^ fnv1a(key) ^
                                              0x5157ULL) %
                                   (size - 1));
}

bool
FaultInjector::diskEnospc(const std::string &key) const
{
    return attemptFault(FaultKind::DiskEnospc, key);
}

bool
FaultInjector::sockTornWrite(const std::string &connSite) const
{
    return attemptFault(FaultKind::SockTornWrite, connSite);
}

bool
FaultInjector::sockDrop(const std::string &connSite) const
{
    return attemptFault(FaultKind::SockDrop, connSite);
}

void
FaultInjector::note(FaultKind kind, const std::string &site,
                    uint64_t cycle) const
{
    record(kind, site, cycle);
}

std::vector<InjectionRecord>
FaultInjector::injections() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
}

uint64_t
FaultInjector::totalInjections() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

bool
FaultInjector::findPermanentFault(const std::string &resource,
                                  InjectionRecord &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &r : log_) {
        if (isPermanentKind(r.kind) && r.site == resource) {
            out = r;
            return true;
        }
    }
    return false;
}

bool
FaultInjector::firstPermanentFault(InjectionRecord &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &r : log_) {
        if (isPermanentKind(r.kind)) {
            out = r;
            return true;
        }
    }
    return false;
}

} // namespace sara::fault
