#ifndef SARA_FAULT_FAILURE_H
#define SARA_FAULT_FAILURE_H

/**
 * @file
 * Hang diagnosis: wait-for-graph classification and structured failure
 * escalation.
 *
 * When the simulator's event queue drains with unfinished engines, the
 * sim layer snapshots every blocked engine as a WaitNode — who it is,
 * what resource it wants (stream data, credits, a NoC link slot, a
 * DRAM response) and which engine could provide it — and hands the
 * snapshot to classify():
 *
 *   injected-fault-induced  a permanently-injected fault (stuck
 *                           credits, DRAM timeout, leaked FIFO
 *                           credits) holds a resource some blocked
 *                           engine waits on; takes precedence since an
 *                           injected hang usually *also* closes a
 *                           wait-for cycle through the victim.
 *   deadlock                the wait-for graph has a cycle: every
 *                           engine on it holds what the next one
 *                           wants. The exact cycle (units, wanted
 *                           resources, edges) is reported.
 *   starvation-livelock     no cycle: every wait chain ends at a
 *                           finished engine or an external resource
 *                           that will never produce again.
 *
 * The result is a FailureReport: human-readable via str(), embedded in
 * the run's JSON output via json() (schema sara-failure-report/v1, no
 * wall-clock fields, so two seeded replays serialize byte-identically)
 * and thrown as HangError — a PanicError subclass, preserving the
 * exit-code contract (4 = internal failure) while carrying structure.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "support/logging.h"

namespace sara::fault {

/** Hang classification outcomes. */
enum class HangClass : uint8_t {
    Deadlock,
    Starvation,
    InjectedFault,
};

const char *hangClassName(HangClass c);

/** One blocked engine at quiescence. */
struct WaitNode
{
    std::string unit;     ///< Engine (virtual unit) name.
    std::string wants;    ///< "data", "credit", "link-slot", ...
    std::string resource; ///< Stream name / link site / unit name.
    /** Index (into the blocked list) of the engine that could produce
     *  `resource`; -1 when the provider is external, finished, or a
     *  storage unit with no engine. */
    int provider = -1;
    /** The provider engine exists but already ran to completion — the
     *  signature of starvation rather than deadlock. */
    bool providerFinished = false;
    /** Nonzero stall-cause histogram entries (name, cycles). */
    std::vector<std::pair<std::string, uint64_t>> stalls;
};

/** One flight-recorder event, formatted for the failure report: what
 *  happened (fired/parked/woke/link-grant/deliver), when, to whom. */
struct TimelineEvent
{
    uint64_t cycle = 0;
    std::string kind;
    std::string detail;
};

/** Structured description of a hung simulation. */
struct FailureReport
{
    HangClass cls = HangClass::Starvation;
    uint64_t atCycle = 0;
    /** Injection seed (valid when `seeded`). */
    uint64_t seed = 0;
    bool seeded = false;
    std::vector<WaitNode> blocked;
    /** Indices into `blocked` forming the wait-for cycle, in edge
     *  order (Deadlock only). */
    std::vector<int> cycle;
    /** Injection site implicated in the hang (InjectedFault only). */
    std::string culprit;
    std::vector<InjectionRecord> injections;
    uint64_t injectionsTotal = 0;
    /** The run hit its cycle budget with events still firing (livelock
     *  tripwire) rather than quiescing with a drained event queue. */
    bool budgetExceeded = false;
    /** The exhausted cycle budget (valid when `budgetExceeded`). */
    uint64_t budget = 0;
    /** The run was cancelled from outside (daemon watchdog deadline)
     *  rather than hanging on its own; `atCycle` is where it stopped. */
    bool cancelled = false;
    /** The last events leading up to the hang, oldest first (from the
     *  simulator's flight-recorder ring; empty when disabled). */
    std::vector<TimelineEvent> timeline;
    /** Events that fell off the ring before the dump. */
    uint64_t timelineDropped = 0;

    /** Human-readable diagnosis (the panic message). */
    std::string str() const;
    /** Schema sara-failure-report/v1. Deterministic: derived from sim
     *  state only, so seeded replays serialize byte-identically. */
    std::string json() const;
};

/**
 * Classify a quiesced-but-unfinished simulation. `inj` may be null
 * (no fault injection attached).
 */
FailureReport classify(std::vector<WaitNode> blocked,
                       const FaultInjector *inj, uint64_t atCycle);

/** A classified hang. Subclasses PanicError so existing catch sites
 *  and the sarac exit-code contract (4) are preserved. */
class HangError : public PanicError
{
  public:
    explicit HangError(FailureReport report)
        : PanicError(report.str()), report_(std::move(report))
    {
    }

    const FailureReport &report() const { return report_; }

  private:
    FailureReport report_;
};

} // namespace sara::fault

#endif // SARA_FAULT_FAILURE_H
