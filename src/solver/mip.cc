#include "solver/mip.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/rng.h"

namespace sara::solver {

namespace {

/** Renumber partitions to 0..k-1 preserving first-appearance order. */
void
compact(std::vector<int> &assign)
{
    std::vector<int> remap(assign.size(), -1);
    int next = 0;
    for (int &a : assign) {
        if (remap[a] < 0)
            remap[a] = next++;
        a = remap[a];
    }
}

int
numParts(const std::vector<int> &assign)
{
    int parts = 0;
    for (int a : assign)
        parts = std::max(parts, a + 1);
    return parts;
}

} // namespace

Assignment
anneal(int n, const std::vector<int> &warm, const CostFn &cost,
       const AnnealOptions &options)
{
    SARA_ASSERT(static_cast<int>(warm.size()) == n,
                "warm start size mismatch");
    Rng rng(options.seed);

    std::vector<int> cur = warm;
    compact(cur);
    bool curFeasible = false;
    double curCost = cost(cur, &curFeasible);

    Assignment best;
    best.assign = cur;
    best.cost = curCost;
    best.feasible = curFeasible;

    if (n <= 1) {
        best.iterations = 0;
        return best;
    }

    double temp = options.initTemp;
    const double decay =
        std::pow(options.minTemp / options.initTemp,
                 1.0 / std::max<uint64_t>(1, options.iterations));

    for (uint64_t it = 0; it < options.iterations; ++it) {
        std::vector<int> cand = cur;
        int parts = numParts(cand);
        int move = static_cast<int>(rng.intIn(0, 2));
        if (move == 0) {
            // Relocate a node (possibly opening a new partition).
            int node = static_cast<int>(rng.index(n));
            int target = static_cast<int>(rng.intIn(0, parts));
            if (target == cand[node])
                target = parts; // Open fresh partition instead.
            cand[node] = target;
        } else if (move == 1 && n >= 2) {
            int a = static_cast<int>(rng.index(n));
            int b = static_cast<int>(rng.index(n));
            std::swap(cand[a], cand[b]);
        } else if (parts >= 2) {
            // Merge two partitions.
            int pa = static_cast<int>(rng.intIn(0, parts - 1));
            int pb = static_cast<int>(rng.intIn(0, parts - 1));
            if (pa == pb)
                pb = (pb + 1) % parts;
            for (int &a : cand)
                if (a == pa)
                    a = pb;
        }
        compact(cand);

        bool feasible = false;
        double c = cost(cand, &feasible);
        double delta = c - curCost;
        if (delta <= 0 ||
            rng.realIn(0.0, 1.0) < std::exp(-delta / std::max(temp, 1e-9))) {
            cur = std::move(cand);
            curCost = c;
            curFeasible = feasible;
            if (feasible &&
                (!best.feasible || curCost < best.cost)) {
                best.assign = cur;
                best.cost = curCost;
                best.feasible = true;
            }
        }
        temp *= decay;
        best.iterations = it + 1;

        if (best.feasible && options.lowerBound > 0 &&
            best.cost <=
                options.lowerBound * (1.0 + options.targetGap))
            break;
    }
    return best;
}

} // namespace sara::solver
