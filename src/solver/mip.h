#ifndef SARA_SOLVER_MIP_H
#define SARA_SOLVER_MIP_H

/**
 * @file
 * The optimization engine behind SARA's solver-based partitioning and
 * merging (paper §III-B1d, Table III).
 *
 * SUBSTITUTION NOTE (DESIGN.md #1): the paper formulates the node-to-
 * partition assignment as a MIP and solves it with Gurobi, warm-
 * started by the traversal algorithm and stopped at a 15% optimality
 * gap. Gurobi is commercial and unavailable offline, so this module
 * solves the same assignment model with a large-neighborhood search /
 * simulated-annealing hybrid over the identical cost function and
 * constraints (supplied by the caller as a callback). Like the paper's
 * setup it is warm-started from the traversal solution and trades
 * compile time for solution quality; Fig. 11 exercises exactly that
 * trade-off.
 */

#include <cstdint>
#include <functional>
#include <vector>

namespace sara::solver {

/** Result of an assignment search. */
struct Assignment
{
    std::vector<int> assign;
    double cost = 0.0;
    bool feasible = false;
    uint64_t iterations = 0;
};

/**
 * Cost callback: evaluates an assignment; sets *feasible. Infeasible
 * assignments should return a large value (they are still explored,
 * with a penalty schedule, but never reported as best).
 */
using CostFn =
    std::function<double(const std::vector<int> &, bool *feasible)>;

/** Search knobs. */
struct AnnealOptions
{
    uint64_t iterations = 200000;
    uint64_t seed = 1;
    double initTemp = 2.0;
    double minTemp = 1e-3;
    /** Stop early when within this relative gap of the known lower
     *  bound (mirrors the paper's 15% Gurobi gap setting). */
    double targetGap = 0.15;
    double lowerBound = 0.0; ///< Problem-specific LB (0 = unknown).
};

/**
 * Anneal node-to-partition assignments starting from `warm`.
 * Moves: relocate one node, swap two nodes, merge two partitions.
 * Partition ids are kept compact.
 */
Assignment anneal(int n, const std::vector<int> &warm, const CostFn &cost,
                  const AnnealOptions &options);

} // namespace sara::solver

#endif // SARA_SOLVER_MIP_H
