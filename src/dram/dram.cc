#include "dram/dram.h"

#include <algorithm>

#include "support/hostprof.h"
#include "support/logging.h"

namespace sara::dram {

DramSpec
DramSpec::hbm2()
{
    DramSpec s;
    s.name = "hbm2-1tbps";
    s.channels = 8;
    s.bytesPerCycle = 128.0;
    s.interleave = 256;
    s.rowBytes = 2048;
    s.rowHitLatency = 30;
    s.rowMissLatency = 70;
    s.burstBytes = 64;
    return s;
}

DramSpec
DramSpec::ddr3()
{
    DramSpec s;
    s.name = "ddr3-49gbps";
    s.channels = 4;
    s.bytesPerCycle = 12.25;
    s.interleave = 512;
    s.rowBytes = 8192;
    s.rowHitLatency = 45;
    s.rowMissLatency = 120;
    s.burstBytes = 64;
    return s;
}

DramModel::DramModel(DramSpec spec) : spec_(std::move(spec))
{
    SARA_ASSERT(spec_.channels > 0 && spec_.bytesPerCycle > 0,
                "bad dram spec");
    channels_.resize(spec_.channels);
}

DramResult
DramModel::access(uint64_t byteAddr, uint32_t bytes, uint64_t now)
{
    telemetry::ScopedPhase phase(telemetry::HostPhase::Dram);
    bytes = std::max(bytes, spec_.burstBytes);
    size_t ch = (byteAddr / spec_.interleave) % spec_.channels;
    Channel &c = channels_[ch];
    uint64_t row = byteAddr / spec_.rowBytes;

    bool hit = (c.openRow == row);
    int lat = hit ? spec_.rowHitLatency : spec_.rowMissLatency;
    double start = std::max(static_cast<double>(now), c.freeAt);
    double transfer = bytes / spec_.bytesPerCycle;
    c.freeAt = start + transfer;
    c.openRow = row;
    c.busy += transfer;

    ++requests_;
    bytesTransferred_ += bytes;
    if (hit)
        ++rowHits_;

    DramResult r;
    r.completeAt = static_cast<uint64_t>(start + lat + transfer) + 1;
    return r;
}

uint64_t
DramModel::busyCycles() const
{
    double total = 0;
    for (const auto &c : channels_)
        total += c.busy;
    return static_cast<uint64_t>(total);
}

double
DramModel::achievedBytesPerCycle(uint64_t endCycle) const
{
    if (endCycle == 0)
        return 0.0;
    return static_cast<double>(bytesTransferred_) /
           static_cast<double>(endCycle);
}

} // namespace sara::dram
