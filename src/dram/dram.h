#ifndef SARA_DRAM_DRAM_H
#define SARA_DRAM_DRAM_H

/**
 * @file
 * Off-chip DRAM timing model — the stand-in for Ramulator in the
 * paper's methodology (§IV-a). Channel-interleaved, row-buffer-aware,
 * bandwidth-limited queueing model. Two configurations mirror the
 * evaluation: HBM2 at 1 TB/s (scalability + GPU comparison) and DDR3
 * at 49 GB/s (vanilla-Plasticine comparison, Table V).
 *
 * Fidelity notes (see DESIGN.md substitution #2): the evaluation needs
 * saturation behaviour (memory-bound kernels plateau when achieved
 * bandwidth hits the pin limit) and a realistic random-access penalty
 * (row misses); both are modeled. Bank-level parallelism within a
 * channel is folded into the per-channel service rate.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace sara::dram {

/** DRAM technology parameters (timed in accelerator cycles @ 1 GHz). */
struct DramSpec
{
    std::string name = "hbm2";
    int channels = 8;
    /** Peak per-channel transfer rate, bytes per accelerator cycle. */
    double bytesPerCycle = 128.0;
    /** Channel interleave granularity in bytes. */
    uint32_t interleave = 256;
    /** Row-buffer size in bytes. */
    uint32_t rowBytes = 2048;
    /** Latency (cycles) for a row-buffer hit / miss. */
    int rowHitLatency = 30;
    int rowMissLatency = 70;
    /** Minimum transfer granularity in bytes (one burst). */
    uint32_t burstBytes = 64;

    double totalGBs() const { return channels * bytesPerCycle; }

    /** HBM2, ~1 TB/s aggregate (paper's scalability + GPU studies). */
    static DramSpec hbm2();
    /** DDR3, ~49 GB/s aggregate (paper's Table V configuration). */
    static DramSpec ddr3();
};

/** One in-flight request result. */
struct DramResult
{
    uint64_t completeAt = 0; ///< Cycle the last byte arrives.
};

/**
 * Timing-only DRAM model: callers present (byte address, size, issue
 * cycle) and receive a completion cycle. Functional data is owned by
 * the simulator's tensor store.
 */
class DramModel
{
  public:
    explicit DramModel(DramSpec spec);

    /** Issue a request; returns when it completes. */
    DramResult access(uint64_t byteAddr, uint32_t bytes, uint64_t now);

    /** Totals for reporting achieved bandwidth. */
    uint64_t bytesTransferred() const { return bytesTransferred_; }
    uint64_t requests() const { return requests_; }
    uint64_t rowHits() const { return rowHits_; }
    uint64_t busyCycles() const;

    const DramSpec &spec() const { return spec_; }

    /** Achieved bandwidth in bytes/cycle over [0, endCycle]. */
    double achievedBytesPerCycle(uint64_t endCycle) const;

  private:
    struct Channel
    {
        double freeAt = 0.0;
        uint64_t openRow = UINT64_MAX;
        double busy = 0.0;
    };

    DramSpec spec_;
    std::vector<Channel> channels_;
    uint64_t bytesTransferred_ = 0;
    uint64_t requests_ = 0;
    uint64_t rowHits_ = 0;
};

} // namespace sara::dram

#endif // SARA_DRAM_DRAM_H
