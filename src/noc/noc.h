#ifndef SARA_NOC_NOC_H
#define SARA_NOC_NOC_H

/**
 * @file
 * Cycle-level model of the Plasticine static hybrid interconnect.
 *
 * PnR exports, per stream, the exact sequence of directed mesh links
 * the stream crosses (X-Y dimension order). This model replays those
 * routes flit by flit instead of honouring the router's collapsed
 * scalar latency:
 *
 *  - every element (all vector lanes of one firing) is one flit;
 *  - each directed link grants at most one flit per cycle, chosen by a
 *    deterministic round-robin over stream ids among the flits whose
 *    next-hop buffer has space;
 *  - each link has a small input buffer (`NocSpec::linkBuffer` flits);
 *    a granted flit reserves its slot in the downstream buffer before
 *    it starts the `hopLatency`-cycle traversal — link-level credit
 *    flow control, so congestion back-pressures hop by hop all the way
 *    to the producer, which blocks in `StallCause::Network`;
 *  - ejection into the destination FIFO never blocks (the end-to-end
 *    credit window `depth + latency` bounds what a producer may have
 *    in flight), which together with the turn-free X-then-Y routes
 *    makes the network deadlock-free by construction.
 *
 * Determinism: the scheduler resolves same-cycle events in insertion
 * order and arbitration state is a per-link cursor over stream ids, so
 * two runs of the same compiled graph are cycle-identical.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dfg/vudfg.h"
#include "fault/fault.h"
#include "sim/task.h"
#include "support/flight.h"
#include "support/telemetry.h"

namespace sara::noc {

/** Network timing/flow-control parameters (mirrors arch::NetSpec). */
struct NocSpec
{
    int hopLatency = 2;   ///< Cycles for a granted flit to cross a link.
    int ejectLatency = 2; ///< Last grant -> destination FIFO delivery.
    int minLatency = 4;   ///< Floor on end-to-end transit (switch entry).
    int linkBuffer = 2;   ///< Flit slots per link input buffer.
    /** Route Token streams through the arbitrated network. CMMC rides
     *  the shared static network; the vanilla hierarchical-FSM control
     *  uses the dedicated control bits, so tokens keep their scalar
     *  latency there. */
    bool routeTokens = true;
};

/** Per-link telemetry snapshot. */
struct LinkUse
{
    dfg::RouteLink link;
    int streams = 0;             ///< Statically routed streams.
    uint64_t traversals = 0;     ///< Flits granted across this link.
    uint64_t waitCycles = 0;     ///< Flit-cycles queued at this link.
    uint64_t queueHighWater = 0; ///< Peak input-buffer occupancy.
};

/** Whole-network statistics for SimResult / the JSON report. */
struct NocStats
{
    bool enabled = false;
    int links = 0;             ///< Directed links with >= 1 route.
    int peakStreamLoad = 0;    ///< Max streams sharing one link.
    uint64_t flits = 0;        ///< Flits injected.
    uint64_t hops = 0;         ///< Link traversals (grants).
    uint64_t queueCycles = 0;  ///< Total flit-cycles spent queued.
    uint64_t peakInflight = 0; ///< Peak flits in the network at once.
    std::vector<LinkUse> linkUse; ///< Sorted by (x, y, dir).
    telemetry::TimeSeries load;   ///< Flits in flight over time.
    telemetry::TimeSeries busyLinks; ///< Links with queued flits.
};

/**
 * The network model. Register every stream once (before simulation),
 * then producers gate on `canAccept` and call `inject`/`injectAt`;
 * the model invokes the delivery callback when the flit ejects at the
 * destination, in per-stream push order.
 */
class NocModel
{
  public:
    using DeliverFn = void (*)(void *);

    NocModel(sim::Scheduler &sched, const NocSpec &spec);
    ~NocModel();

    NocModel(const NocModel &) = delete;
    NocModel &operator=(const NocModel &) = delete;

    /** Record a stream's static route (all kinds count toward link
     *  load; only participating kinds are arbitrated). */
    void registerStream(const dfg::Stream &s);

    /** True when the stream's flits traverse the arbitrated network
     *  (non-empty route and a routed kind). */
    bool participates(dfg::StreamId id) const;

    /** True when the stream's first-hop buffer can take a flit now. */
    bool canAccept(dfg::StreamId id) const;

    /** Wait list for `canAccept` (notified when a slot frees). */
    sim::CondVar &acceptCv(dfg::StreamId id);

    /** Inject one flit now. Caller must gate on `canAccept`. */
    void inject(dfg::StreamId id, DeliverFn deliver, void *ctx);

    /**
     * Inject at absolute time `at` (DRAM responses). Not gated on
     * buffer space — the AG's response queue merges into the fabric —
     * and clamped so per-stream injection order matches call order.
     */
    void injectAt(dfg::StreamId id, uint64_t at, DeliverFn deliver,
                  void *ctx);

    /** Max streams statically sharing one directed link — must equal
     *  `PnrReport::maxLinkLoad` (asserted in tests). */
    int peakStreamLoad() const;

    /**
     * Attach a fault injector (may be null). Injection points: flit
     * delay and duplication at grant time, stuck credits shrinking a
     * link's effective buffer. Not owned — must outlive the model.
     */
    void setFaultInjector(const fault::FaultInjector *inj) { inj_ = inj; }

    /** Wake one parked producer per freed link slot (a grant frees
     *  exactly one) instead of broadcasting to every producer sharing
     *  the first-hop link. Cycle-identical to the broadcast; kept
     *  switchable for the perf harness's wakeup A/B accounting. */
    void setTargetedWakeups(bool on) { targetedWakeups_ = on; }

    /** Attach a flight recorder (may be null): every link grant is
     *  recorded as a LinkGrant event for failure timelines. Not owned
     *  — must outlive the model. */
    void setFlightRecorder(telemetry::FlightRecorder *f) { flight_ = f; }

    /** Site name ("(x,y)D") of the link with the given index, as
     *  recorded in LinkGrant flight events; "?" when out of range. */
    const std::string &linkSite(int idx) const;

    /** Site name of the stream's first-hop link, e.g. "(1,2)E"; empty
     *  for streams that don't ride the arbitrated network. Producers
     *  blocked on admission report this as the wanted resource, which
     *  is what stuck-credit injections are matched against. */
    std::string firstLinkSite(dfg::StreamId id) const;

    /** Flits currently inside the network (queued or on a link). */
    uint64_t inflight() const { return inflight_; }

    NocStats stats() const;

  private:
    /** One in-network element (all lanes of one firing). */
    struct Flit
    {
        NocModel *model = nullptr;
        int stream = 0;        ///< Stream id index (RR key).
        int hop = 0;           ///< Index into the stream's link path.
        uint64_t injectedAt = 0;
        uint64_t arrivedAt = 0; ///< Entered the current input buffer.
        DeliverFn deliver = nullptr;
        void *ctx = nullptr;
        bool duped = false; ///< Already paid a duplicated traversal.
    };

    /** One directed link: input buffer + single-grant-per-cycle port. */
    struct Link
    {
        NocModel *model = nullptr;
        dfg::RouteLink where;
        int idx = -1;     ///< Index into links_ (flight-event key).
        std::string site; ///< "(x,y)D" — fault-injection site name.
        int streams = 0;          ///< Static load (routed streams).
        std::deque<Flit *> q;     ///< Waiting flits, arrival order.
        int reserved = 0;         ///< Slots held by in-transit flits.
        uint64_t freeAt = 0;      ///< Next cycle a grant is possible.
        bool pollScheduled = false;
        int rrCursor = -1;        ///< Stream id of the last grant.
        std::vector<int> feeders; ///< Upstream link indices to re-poll.
        sim::CondVar spaceCv;     ///< Producers waiting to inject here.
        uint64_t traversals = 0, waitCycles = 0, qHighWater = 0;
    };

    Link &firstLink(dfg::StreamId id);
    const Link &firstLink(dfg::StreamId id) const;
    /** Buffer slots usable for new flits: linkBuffer minus occupancy,
     *  reservations and any injected stuck credits. */
    int freeSlots(const Link &link) const;
    void enqueue(Flit *f, int linkIdx);
    void schedulePoll(Link &link, uint64_t at);
    void poll(Link &link);
    void grant(Link &link, size_t qPos);
    void deliverFlit(Flit *f);
    void sampleLoad();

    sim::Scheduler *sched_;
    NocSpec spec_;
    const fault::FaultInjector *inj_ = nullptr;
    telemetry::FlightRecorder *flight_ = nullptr;
    bool targetedWakeups_ = true;

    struct StreamState
    {
        std::vector<int> path; ///< Link indices along the route.
        bool registered = false;
        bool participates = false;
        uint64_t lastInjectAt = 0;
    };
    std::vector<StreamState> streams_; ///< Indexed by stream id.
    int numStreams_ = 0;               ///< Round-robin modulus.

    std::deque<Link> links_; ///< Stable addresses (CondVar refs).
    std::map<dfg::RouteLink, int> linkIndex_;

    uint64_t inflight_ = 0, peakInflight_ = 0;
    uint64_t flitsInjected_ = 0, totalHops_ = 0, totalQueueCycles_ = 0;
    int busyLinks_ = 0;
    telemetry::TimeSeries loadSeries_{4096, 8};
    telemetry::TimeSeries busySeries_{4096, 8};
};

} // namespace sara::noc

#endif // SARA_NOC_NOC_H
