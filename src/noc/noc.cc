#include "noc/noc.h"

#include <algorithm>
#include <cstdio>

#include "support/hostprof.h"
#include "support/logging.h"

namespace sara::noc {

NocModel::NocModel(sim::Scheduler &sched, const NocSpec &spec)
    : sched_(&sched), spec_(spec)
{
    SARA_ASSERT(spec_.linkBuffer >= 1, "NoC link buffer must hold >= 1 flit");
    SARA_ASSERT(spec_.hopLatency >= 1, "NoC hop latency must be >= 1");
}

NocModel::~NocModel()
{
    for (auto &link : links_)
        for (Flit *f : link.q)
            delete f;
}

void
NocModel::registerStream(const dfg::Stream &s)
{
    size_t idx = s.id.index();
    if (streams_.size() <= idx)
        streams_.resize(idx + 1);
    numStreams_ = std::max(numStreams_, static_cast<int>(idx) + 1);
    StreamState &ss = streams_[idx];
    SARA_ASSERT(!ss.registered, "stream registered twice: ", s.name);
    ss.registered = true;
    if (s.route.empty())
        return;
    ss.participates =
        s.kind == dfg::StreamKind::Data || spec_.routeTokens;
    ss.path.reserve(s.route.size());
    for (const auto &rl : s.route) {
        auto [it, inserted] =
            linkIndex_.try_emplace(rl, static_cast<int>(links_.size()));
        if (inserted) {
            links_.emplace_back();
            links_.back().model = this;
            links_.back().where = rl;
            links_.back().idx = it->second;
            char buf[32];
            std::snprintf(buf, sizeof buf, "(%d,%d)%s", rl.x, rl.y,
                          dfg::linkDirName(rl.dir));
            links_.back().site = buf;
        }
        Link &link = links_[it->second];
        link.spaceCv.bind(*sched_);
        ++link.streams;
        ss.path.push_back(it->second);
    }
    // Feeder edges: when a slot frees in link i+1, link i may have a
    // flit that just became eligible and must be re-polled.
    for (size_t i = 0; i + 1 < ss.path.size(); ++i) {
        auto &feeders = links_[ss.path[i + 1]].feeders;
        if (std::find(feeders.begin(), feeders.end(), ss.path[i]) ==
            feeders.end())
            feeders.push_back(ss.path[i]);
    }
}

bool
NocModel::participates(dfg::StreamId id) const
{
    size_t idx = id.index();
    return idx < streams_.size() && streams_[idx].participates;
}

NocModel::Link &
NocModel::firstLink(dfg::StreamId id)
{
    const StreamState &ss = streams_[id.index()];
    SARA_ASSERT(ss.participates, "stream does not ride the NoC");
    return links_[ss.path.front()];
}

const NocModel::Link &
NocModel::firstLink(dfg::StreamId id) const
{
    return const_cast<NocModel *>(this)->firstLink(id);
}

int
NocModel::freeSlots(const Link &link) const
{
    int buf = spec_.linkBuffer;
    if (inj_)
        buf -= std::min(buf,
                        inj_->stuckCredits(link.site, sched_->now()));
    return buf - static_cast<int>(link.q.size()) - link.reserved;
}

bool
NocModel::canAccept(dfg::StreamId id) const
{
    if (!participates(id))
        return true; // Fixed-latency streams are never admission-gated.
    return freeSlots(firstLink(id)) > 0;
}

std::string
NocModel::firstLinkSite(dfg::StreamId id) const
{
    if (!participates(id))
        return "";
    return firstLink(id).site;
}

sim::CondVar &
NocModel::acceptCv(dfg::StreamId id)
{
    return firstLink(id).spaceCv;
}

void
NocModel::inject(dfg::StreamId id, DeliverFn deliver, void *ctx)
{
    injectAt(id, sched_->now(), deliver, ctx);
}

void
NocModel::injectAt(dfg::StreamId id, uint64_t at, DeliverFn deliver,
                   void *ctx)
{
    StreamState &ss = streams_[id.index()];
    SARA_ASSERT(ss.participates, "inject on a stream without a route");
    // Per-stream injection order must match call order even when DRAM
    // response delays differ (in-order streams).
    at = std::max(at, ss.lastInjectAt);
    ss.lastInjectAt = at;
    Flit *f = new Flit{this,    static_cast<int>(id.index()), 0, at,
                       at,      deliver,
                       ctx};
    ++flitsInjected_;
    ++inflight_;
    peakInflight_ = std::max(peakInflight_, inflight_);
    if (at == sched_->now()) {
        sampleLoad();
        enqueue(f, ss.path.front());
    } else {
        sched_->scheduleFnAt(
            [](void *p) {
                Flit *flit = static_cast<Flit *>(p);
                NocModel *m = flit->model;
                m->sampleLoad();
                m->enqueue(
                    flit,
                    m->streams_[flit->stream].path[flit->hop]);
            },
            f, at);
    }
}

void
NocModel::enqueue(Flit *f, int linkIdx)
{
    Link &link = links_[linkIdx];
    f->arrivedAt = sched_->now();
    if (link.q.empty())
        ++busyLinks_;
    link.q.push_back(f);
    link.qHighWater =
        std::max(link.qHighWater, static_cast<uint64_t>(link.q.size()));
    schedulePoll(link, std::max(sched_->now(), link.freeAt));
}

void
NocModel::schedulePoll(Link &link, uint64_t at)
{
    if (link.pollScheduled)
        return;
    link.pollScheduled = true;
    sched_->scheduleFnAt(
        [](void *p) {
            Link *l = static_cast<Link *>(p);
            l->model->poll(*l);
        },
        &link, at);
}

const std::string &
NocModel::linkSite(int idx) const
{
    static const std::string kUnknown = "?";
    if (idx < 0 || static_cast<size_t>(idx) >= links_.size())
        return kUnknown;
    return links_[idx].site;
}

void
NocModel::poll(Link &link)
{
    telemetry::ScopedPhase phase(telemetry::HostPhase::NocArb);
    link.pollScheduled = false;
    uint64_t now = sched_->now();
    if (now < link.freeAt) {
        schedulePoll(link, link.freeAt);
        return;
    }
    if (link.q.empty())
        return;
    // Deterministic round-robin: among queued flits whose next hop has
    // buffer space (the destination FIFO always does), grant the one
    // whose stream id follows the cursor closest in cyclic order; for
    // several flits of that stream, the earliest-queued wins.
    int bestDist = -1;
    size_t bestPos = 0;
    for (size_t i = 0; i < link.q.size(); ++i) {
        const Flit *f = link.q[i];
        const StreamState &ss = streams_[f->stream];
        if (static_cast<size_t>(f->hop) + 1 < ss.path.size()) {
            const Link &next = links_[ss.path[f->hop + 1]];
            if (freeSlots(next) <= 0)
                continue; // Downstream buffer full (or credits stuck).
        }
        int dist = (f->stream - link.rrCursor - 1 + 2 * numStreams_) %
                   numStreams_;
        if (bestDist < 0 || dist < bestDist) {
            bestDist = dist;
            bestPos = i;
        }
    }
    if (bestDist < 0)
        return; // All blocked downstream; feeder re-poll will retry.
    grant(link, bestPos);
    if (!link.q.empty())
        schedulePoll(link, link.freeAt);
}

void
NocModel::grant(Link &link, size_t qPos)
{
    uint64_t now = sched_->now();
    Flit *f = link.q[qPos];
    link.q.erase(link.q.begin() + static_cast<ptrdiff_t>(qPos));
    if (link.q.empty())
        --busyLinks_;
    link.freeAt = now + 1;
    link.rrCursor = f->stream;
    ++link.traversals;
    ++totalHops_;
    if (flight_)
        flight_->record(telemetry::FlightKind::LinkGrant, now, f->stream,
                        link.idx);
    link.waitCycles += now - f->arrivedAt;
    totalQueueCycles_ += now - f->arrivedAt;

    // The vacated slot unblocks producers injecting here and feeder
    // links with flits destined here. One grant frees one slot, so
    // targeted mode wakes only the longest-parked producer; the rest
    // would lose the re-check race anyway (thundering herd). Guarded
    // behind hasWaiters so uncontended grants skip scheduler traffic.
    if (link.spaceCv.hasWaiters()) {
        if (targetedWakeups_)
            link.spaceCv.notifyOne();
        else
            link.spaceCv.notifyAll();
    }
    for (int fi : link.feeders)
        schedulePoll(links_[fi], now);

    // Injected faults on the granted traversal: extra wire delay,
    // and/or a duplicated crossing (the flit lands back in its own
    // input buffer and must re-arbitrate; it still delivers exactly
    // once, so payload accounting is untouched).
    uint64_t faultDelay = inj_ ? inj_->flitDelay(link.site, now) : 0;
    if (inj_ && !f->duped && inj_->duplicateFlit(link.site, now)) {
        f->duped = true;
        sched_->scheduleFnAt(
            [](void *p) {
                Flit *flit = static_cast<Flit *>(p);
                NocModel *m = flit->model;
                m->enqueue(flit,
                           m->streams_[flit->stream].path[flit->hop]);
            },
            f,
            now + static_cast<uint64_t>(spec_.hopLatency) + faultDelay);
        return;
    }

    const StreamState &ss = streams_[f->stream];
    if (static_cast<size_t>(f->hop) + 1 < ss.path.size()) {
        // Reserve the downstream slot for the duration of the flight.
        Link &next = links_[ss.path[f->hop + 1]];
        ++next.reserved;
        ++f->hop;
        sched_->scheduleFnAt(
            [](void *p) {
                Flit *flit = static_cast<Flit *>(p);
                NocModel *m = flit->model;
                Link &l =
                    m->links_[m->streams_[flit->stream].path[flit->hop]];
                --l.reserved;
                m->enqueue(flit, m->streams_[flit->stream].path[flit->hop]);
            },
            f, now + static_cast<uint64_t>(spec_.hopLatency) + faultDelay);
    } else {
        // Eject: never blocks. The minLatency floor models switch
        // entry/exit, matching the router's scalar estimate on an
        // uncongested path.
        uint64_t at = std::max(
            now + static_cast<uint64_t>(spec_.ejectLatency) + faultDelay,
            f->injectedAt + static_cast<uint64_t>(spec_.minLatency));
        sched_->scheduleFnAt(
            [](void *p) {
                Flit *flit = static_cast<Flit *>(p);
                flit->model->deliverFlit(flit);
            },
            f, at);
    }
}

void
NocModel::deliverFlit(Flit *f)
{
    SARA_ASSERT(inflight_ > 0, "delivery with nothing in flight");
    --inflight_;
    sampleLoad();
    DeliverFn deliver = f->deliver;
    void *ctx = f->ctx;
    delete f;
    deliver(ctx);
}

void
NocModel::sampleLoad()
{
    uint64_t now = sched_->now();
    loadSeries_.sample(now, static_cast<double>(inflight_));
    busySeries_.sample(now, static_cast<double>(busyLinks_));
}

int
NocModel::peakStreamLoad() const
{
    int peak = 0;
    for (const auto &link : links_)
        peak = std::max(peak, link.streams);
    return peak;
}

NocStats
NocModel::stats() const
{
    NocStats s;
    s.enabled = true;
    s.links = static_cast<int>(links_.size());
    s.peakStreamLoad = peakStreamLoad();
    s.flits = flitsInjected_;
    s.hops = totalHops_;
    s.queueCycles = totalQueueCycles_;
    s.peakInflight = peakInflight_;
    s.load = loadSeries_;
    s.busyLinks = busySeries_;
    s.linkUse.reserve(links_.size());
    // linkIndex_ iterates in (x, y, dir) order — deterministic output.
    for (const auto &[where, idx] : linkIndex_) {
        const Link &link = links_[idx];
        s.linkUse.push_back({where, link.streams, link.traversals,
                             link.waitCycles, link.qHighWater});
    }
    return s;
}

} // namespace sara::noc
